#!/usr/bin/env python
"""Diff BENCH_runtime.json (and BENCH_parallel.json) against the
committed baselines.

CI runs the runtime benchmark (``pytest
benchmarks/test_bench_runtime.py::test_runtime_bench_report``), which
writes ``BENCH_runtime.json`` at the repo root, then runs this script
to flag regressions against ``benchmarks/BENCH_runtime_baseline.json``.
The slow-test job regenerates ``BENCH_parallel.json`` (the
2000-job/4-shard drain tier) the same way; whichever copy is on disk
is diffed against ``benchmarks/BENCH_parallel_baseline.json``.

Metrics fall into two classes:

* **deterministic** — counts the simulation fully determines
  (completed jobs, warehouse entries, rollup rows, traced events).
  Any drift beyond ``--tolerance`` (default 20 %) fails the check: the
  run itself changed, not the machine.
* **wall-clock** — throughput and latency numbers that vary with the
  host.  These are flagged at ``--wall-tolerance`` (default 150 %),
  loose enough for shared CI runners but still a backstop against a
  pathological slowdown.

Every compared metric's percent delta is printed even when the check
passes, so CI logs show the perf trajectory, not just a verdict.  The
metrics-log overhead additionally has a hard absolute ceiling (5 % of
the run), mirroring the assertion inside the benchmark.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Deterministic metrics and their direction (``0`` = either way is a
#: change worth flagging).
DETERMINISTIC = (
    "completed_jobs",
    "metrics_log_entries",
    "rollup_rows",
    "events_traced",
    "tuner_cells_executed",
    "tuner_unpruned_cell_runs",
    "steal_count",
    "parallel_jobs",
    "parallel_shards",
    "shard_worker_count",
    "recal_ticks",
    "recal_adjustments",
    "recal_attainment_gain_pts",
)

#: Wall-clock metrics: name → +1 when higher is better, -1 when lower.
WALL_CLOCK = {
    "jobs_per_wall_s": +1,
    "service_wall_s": -1,
    "replan_latency_ms": -1,
    "metrics_log_ns_per_sample": -1,
    "metrics_log_overhead_pct": -1,
    "tuner_cells_per_s": +1,
    "sim_events_per_s": +1,
    "net_events_per_s": +1,
    "sim_kernel_speedup": +1,
    "sharded_jobs_per_wall_s": +1,
    "parallel_speedup": +1,
    "parallel_jobs_per_wall_s": +1,
    "in_process_wall_s": -1,
    "parallel_serial_wall_s": -1,
    "parallel_wall_s": -1,
}

#: Hard absolute ceiling for the warehouse ingest overhead (percent).
MAX_LOG_OVERHEAD_PCT = 5.0


def _change_pct(current: float, baseline: float) -> float:
    """Signed percent change from baseline (0 baseline → 0 or inf)."""
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return 100.0 * (current - baseline) / baseline


def check(
    current: dict, baseline: dict, tolerance: float, wall_tolerance: float
) -> tuple[list[str], list[str]]:
    """(failed comparisons, per-metric delta lines) for one report."""
    complaints = []
    deltas = []
    # A benchmark row silently disappearing is itself a regression —
    # every metric the baseline pins must still be reported.
    for name in sorted(baseline):
        if name not in current:
            complaints.append(
                f"{name}: present in the baseline but missing from the "
                f"current report (benchmark row dropped?)"
            )
    for name in DETERMINISTIC:
        if name not in baseline:
            continue
        change = _change_pct(
            float(current.get(name, 0.0)), float(baseline[name])
        )
        deltas.append(
            f"{name}: {current.get(name)} vs {baseline[name]} "
            f"({change:+.1f}%, deterministic ±{tolerance:.0f}%)"
        )
        if abs(change) > tolerance:
            complaints.append(
                f"{name}: {current.get(name)} vs baseline "
                f"{baseline[name]} ({change:+.1f}% > ±{tolerance:.0f}%)"
            )
    for name, direction in WALL_CLOCK.items():
        if name not in baseline:
            continue
        change = _change_pct(
            float(current.get(name, 0.0)), float(baseline[name])
        )
        # A regression is the metric moving *against* its direction.
        regression = -change if direction > 0 else change
        deltas.append(
            f"{name}: {float(current.get(name, 0.0)):.4g} vs "
            f"{float(baseline[name]):.4g} ({change:+.1f}%, "
            f"{'higher' if direction > 0 else 'lower'} is better)"
        )
        if regression > wall_tolerance:
            complaints.append(
                f"{name}: {current.get(name):.4g} vs baseline "
                f"{float(baseline[name]):.4g} "
                f"({regression:+.1f}% worse > {wall_tolerance:.0f}%)"
            )
    overhead = float(current.get("metrics_log_overhead_pct", -1.0))
    if overhead >= MAX_LOG_OVERHEAD_PCT:
        complaints.append(
            f"metrics_log_overhead_pct: {overhead:.2f} breaches the "
            f"hard {MAX_LOG_OVERHEAD_PCT}% ceiling"
        )
    return complaints, deltas


def _check_pair(
    current_path: Path,
    baseline_path: Path,
    tolerance: float,
    wall_tolerance: float,
) -> tuple[list[str], int]:
    """Check one report/baseline pair; returns (complaints, compared)."""
    try:
        current = json.loads(current_path.read_text())
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        return [f"cannot load {current_path.name}: {exc}"], 0
    complaints, deltas = check(current, baseline, tolerance, wall_tolerance)
    print(f"{current_path.name} vs {baseline_path.name}:")
    for line in deltas:
        print(f"  {line}")
    return complaints, len(deltas)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--current",
        default=REPO / "BENCH_runtime.json",
        type=Path,
        help="report written by the runtime benchmark",
    )
    parser.add_argument(
        "--baseline",
        default=REPO / "benchmarks" / "BENCH_runtime_baseline.json",
        type=Path,
        help="committed baseline to diff against",
    )
    parser.add_argument(
        "--parallel-current",
        default=REPO / "BENCH_parallel.json",
        type=Path,
        help="report written by the slow parallel drain tier",
    )
    parser.add_argument(
        "--parallel-baseline",
        default=REPO / "benchmarks" / "BENCH_parallel_baseline.json",
        type=Path,
        help="committed parallel-tier baseline to diff against",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=20.0,
        help="percent drift allowed on deterministic metrics",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=150.0,
        help="percent regression allowed on wall-clock metrics",
    )
    args = parser.parse_args(argv)
    complaints = []
    compared = 0
    for current_path, baseline_path in (
        (args.current, args.baseline),
        (args.parallel_current, args.parallel_baseline),
    ):
        pair_complaints, pair_compared = _check_pair(
            current_path, baseline_path, args.tolerance, args.wall_tolerance
        )
        complaints.extend(pair_complaints)
        compared += pair_compared
    if complaints:
        print("benchmark regression check FAILED:")
        for complaint in complaints:
            print(f"  - {complaint}")
        return 1
    print(
        f"benchmark regression check passed "
        f"({compared} metrics within tolerance)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
