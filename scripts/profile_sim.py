#!/usr/bin/env python
"""cProfile the simulator's event hot loop and print the top-N rows.

Two workloads, selected with ``--mode``:

* ``kernel`` (default) — the bare event kernel: bulk arrival waves via
  ``schedule_many`` where every arrival cancels and re-arms a shared
  completion event, whose firings chain until the wave drains (the
  ``NetworkSimulator._schedule_completion`` shape with the network
  math stripped out).
* ``network`` — a crowded single-pair ``NetworkSimulator`` drain with
  strictly increasing transfer sizes, so every completion re-shares
  the surviving crowd (the transfer kernel's worst case).

Prints a ``tottime``-sorted table and, with ``--output``, writes the
same rows as JSON for tooling::

    PYTHONPATH=src python scripts/profile_sim.py --transfers 50000 \\
        --top 15 --output profile.json
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.kernel import Simulator  # noqa: E402


def _kernel_workload(n_transfers: int) -> Simulator:
    """Run the arrival/re-arm/chained-completion event workload."""
    sim = Simulator()
    state: dict = {"live": 0, "next": None}

    def complete() -> None:
        state["next"] = None
        state["live"] -= 1
        rearm()

    def rearm() -> None:
        if state["next"] is not None:
            state["next"].cancel()
            state["next"] = None
        if state["live"] > 0:
            state["next"] = sim.schedule(1.0, complete, priority=1)

    def arrive() -> None:
        state["live"] += 1
        rearm()

    wave = 1000
    for _ in range(max(1, n_transfers // wave)):
        sim.schedule_many((0.001 * (k // 10), arrive) for k in range(wave))
        sim.run()
    return sim


def _network_workload(n_transfers: int, kernel: str) -> Simulator:
    """Drain one crowded WAN pair through the NetworkSimulator."""
    from repro.net.dynamics import StaticModel
    from repro.net.simulator import NetworkSimulator
    from repro.net.topology import Topology

    topology = Topology.build(("us-east-1", "us-west-1"), "t2.medium")
    net = NetworkSimulator(topology, fluctuation=StaticModel(), kernel=kernel)
    for i in range(n_transfers):
        net.start_transfer("us-east-1", "us-west-1", 100.0 + 0.25 * i)
    net.sim.run()
    return net.sim


def _rows(stats: pstats.Stats, top: int) -> list[dict]:
    """The ``top`` tottime-heaviest profile entries as plain dicts."""
    entries = []
    for (filename, line, name), row in stats.stats.items():  # type: ignore[attr-defined]
        cc, ncalls, tottime, cumtime, _ = row
        entries.append(
            {
                "function": name,
                "file": filename,
                "line": line,
                "ncalls": ncalls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    entries.sort(key=lambda e: e["tottime_s"], reverse=True)
    return entries[:top]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mode",
        choices=("kernel", "network"),
        default="kernel",
        help="which hot loop to profile",
    )
    parser.add_argument(
        "--transfers",
        type=int,
        default=50_000,
        help="transfers to push through the loop (network mode caps "
        "practical sizes around a few thousand)",
    )
    parser.add_argument(
        "--kernel",
        choices=("scalar", "vectorized"),
        default="vectorized",
        help="transfer-advancement kernel for network mode",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="profile rows to report"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="also write the rows as JSON to this path",
    )
    args = parser.parse_args(argv)
    if args.transfers < 1:
        parser.error(f"--transfers must be ≥ 1: {args.transfers}")

    profiler = cProfile.Profile()
    profiler.enable()
    if args.mode == "kernel":
        sim = _kernel_workload(args.transfers)
    else:
        sim = _network_workload(args.transfers, args.kernel)
    profiler.disable()

    stats = pstats.Stats(profiler)
    rows = _rows(stats, args.top)
    total = sum(r["tottime_s"] for r in rows)
    print(
        f"{args.mode} workload: {sim.events_processed} events dispatched; "
        f"top {len(rows)} rows cover {total:.3f} s tottime"
    )
    width = max((len(r["function"]) for r in rows), default=8)
    print(f"{'function':<{width}}  {'ncalls':>10}  {'tottime':>9}  {'cumtime':>9}")
    for r in rows:
        print(
            f"{r['function']:<{width}}  {r['ncalls']:>10}  "
            f"{r['tottime_s']:>9.4f}  {r['cumtime_s']:>9.4f}"
        )
    if args.output is not None:
        payload = {
            "mode": args.mode,
            "transfers": args.transfers,
            "events_processed": sim.events_processed,
            "rows": rows,
        }
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
