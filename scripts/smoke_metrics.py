#!/usr/bin/env python
"""CI smoke: serve briefly, scrape /metrics, validate the exposition.

Launches ``python -m repro serve`` as a subprocess with an ephemeral
metrics port and a linger window, finds the advertised scrape URL on
its stdout, fetches ``/metrics``, and strictly parses the response with
:func:`repro.runtime.observability.parse_prometheus_text`.  The check
fails if the text does not parse, if any family in
:data:`~repro.runtime.observability.REQUIRED_METRIC_FAMILIES` is
missing, or if the completed-jobs counter does not match the workload —
i.e. if the service stopped being observable.
"""

from __future__ import annotations

import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.runtime.observability import (  # noqa: E402 - path set above
    REQUIRED_METRIC_FAMILIES,
    parse_prometheus_text,
)

SERVE = [
    sys.executable,
    "-u",
    "-m",
    "repro",
    "serve",
    "us-east-1",
    "us-west-1",
    "ap-southeast-1",
    "--jobs",
    "2",
    "--scale-mb",
    "600",
    "--datasets",
    "6",
    "--estimators",
    "5",
    "--metrics-port",
    "0",
    "--metrics-linger",
    "60",
]

#: Overall deadline for the whole smoke (seconds).
DEADLINE_S = 240.0


def main() -> int:
    """Entry point; returns the process exit code."""
    import os

    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    process = subprocess.Popen(
        SERVE,
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    url = None
    deadline = time.monotonic() + DEADLINE_S
    try:
        assert process.stdout is not None
        # The URL prints before the run; the linger line marks the run
        # done (final counters).  Scraping is valid from either point —
        # waiting for the linger keeps the assertions deterministic.
        for line in process.stdout:
            sys.stdout.write(line)
            if line.startswith("metrics: "):
                url = line.split("metrics: ", 1)[1].strip()
            if "lingering" in line:
                break
            if time.monotonic() > deadline:
                print("smoke_metrics: timed out waiting for serve")
                return 1
        if url is None:
            print("smoke_metrics: serve never advertised a metrics URL")
            return 1
        with urllib.request.urlopen(url, timeout=30.0) as response:
            content_type = response.headers.get("Content-Type", "")
            body = response.read().decode()
        if "version=0.0.4" not in content_type:
            print(f"smoke_metrics: bad Content-Type {content_type!r}")
            return 1
        families = parse_prometheus_text(body)
        missing = [
            name for name in REQUIRED_METRIC_FAMILIES if name not in families
        ]
        if missing:
            print(f"smoke_metrics: missing families: {', '.join(missing)}")
            return 1
        completed = families["wanify_jobs_completed_total"]["samples"]
        if completed != [("wanify_jobs_completed_total", {}, 2.0)]:
            print(f"smoke_metrics: unexpected job count: {completed}")
            return 1
        print(
            f"smoke_metrics: OK — {len(families)} families, "
            f"{sum(len(f['samples']) for f in families.values())} samples "
            f"from {url}"
        )
        return 0
    finally:
        process.kill()
        process.wait(timeout=30.0)


if __name__ == "__main__":
    sys.exit(main())
