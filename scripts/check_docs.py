#!/usr/bin/env python
"""Docs CI: code blocks must import-and-run, links must resolve.

Checks, over README.md and every ``docs/*.md``:

1. **Python code blocks compile** — syntax rot in a fenced
   ```` ```python ```` block fails the job;
2. **imports execute** — every top-level ``import`` / ``from … import``
   line in a block actually runs (with ``src/`` on the path), so a
   renamed or removed public name breaks the build the moment a doc
   still mentions it;
3. **blocks marked ``# doctest: run`` execute fully** — for small
   self-contained examples we want exercised end to end;
4. **intra-repo links resolve** — every relative markdown link target
   (``[text](path)``, anchors stripped) must exist on disk;
5. **config coverage** — every field of ``PipelineConfig`` and
   ``ServiceConfig`` must appear (as `` `field_name` ``) in
   docs/OPERATIONS.md, so the operator's guide cannot silently rot
   when a config knob is added.

Shell blocks and absolute/external URLs are left alone.  Exit code 0
when everything passes; 1 with a findings list otherwise.

Run locally::

    python scripts/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Documents the job guards.
DOCUMENTS = (
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/API.md",
    "docs/SCHEDULING.md",
    "docs/OPERATIONS.md",
    "docs/TUNING.md",
)

#: The operator's guide — must document every config field.
OPERATIONS = "docs/OPERATIONS.md"

#: ```python … ``` fenced blocks.
CODE_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)

#: [text](target) links, excluding images' inner half and bare URLs.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Marker that promotes a block from compile+imports to full execution.
RUN_MARKER = "# doctest: run"


def display(path: Path) -> str:
    """Repo-relative spelling when possible (absolute otherwise)."""
    try:
        return str(path.relative_to(REPO))
    except ValueError:
        return str(path)


def iter_documents() -> list[Path]:
    """The markdown files under check (existing ones only)."""
    found = [REPO / name for name in DOCUMENTS if (REPO / name).exists()]
    for extra in sorted((REPO / "docs").glob("*.md")):
        if extra not in found:
            found.append(extra)
    return found


def import_statements(code: str) -> ast.Module:
    """The top-level import statements of a code block, as a module."""
    tree = ast.parse(code)
    imports = [
        node
        for node in tree.body
        if isinstance(node, (ast.Import, ast.ImportFrom))
    ]
    return ast.Module(body=imports, type_ignores=[])


def check_code_blocks(path: Path, failures: list[str]) -> int:
    """Compile each block, execute its imports (or all of it)."""
    text = path.read_text()
    checked = 0
    for index, match in enumerate(CODE_BLOCK.finditer(text), start=1):
        code = match.group(1)
        label = f"{display(path)} block {index}"
        checked += 1
        try:
            compile(code, str(label), "exec")
        except SyntaxError as exc:
            failures.append(f"{label}: does not compile: {exc}")
            continue
        if RUN_MARKER in code:
            compiled = compile(code, str(label), "exec")
        else:
            module = import_statements(code)
            if not module.body:
                continue
            compiled = compile(
                ast.fix_missing_locations(module), str(label), "exec"
            )
        try:
            exec(compiled, {"__name__": "__docs__"})
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"{label}: imports failed: {exc!r}")
    return checked


def check_links(path: Path, failures: list[str]) -> int:
    """Every relative link target must exist on disk."""
    checked = 0
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        checked += 1
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            failures.append(f"{display(path)}: broken link -> {target}")
    return checked


def check_config_coverage(failures: list[str]) -> int:
    """Every ``PipelineConfig``/``ServiceConfig`` field must appear in
    docs/OPERATIONS.md as a backticked name.

    Requires ``src/`` on ``sys.path`` (``main`` arranges this).  The
    config dataclasses are the source of truth: adding a field without
    documenting its default/spelling/consumer fails the docs job.
    """
    import dataclasses

    from repro.pipeline.config import PipelineConfig, ServiceConfig

    operations = REPO / OPERATIONS
    if not operations.exists():
        failures.append(f"{OPERATIONS}: missing (config fields undocumented)")
        return 0
    text = operations.read_text()
    checked = 0
    names: set[str] = set()
    for cls in (PipelineConfig, ServiceConfig):
        for field in dataclasses.fields(cls):
            names.add(field.name)
    for name in sorted(names):
        checked += 1
        if f"`{name}`" not in text:
            failures.append(
                f"{OPERATIONS}: config field `{name}` undocumented "
                f"(add it to the knob tables)"
            )
    return checked


def main() -> int:
    """Run every check; print a summary; 0 iff clean."""
    sys.path.insert(0, str(REPO / "src"))
    failures: list[str] = []
    blocks = links = 0
    documents = iter_documents()
    for path in documents:
        blocks += check_code_blocks(path, failures)
        links += check_links(path, failures)
    fields = check_config_coverage(failures)
    print(
        f"checked {len(documents)} documents: {blocks} code blocks, "
        f"{links} intra-repo links, {fields} config fields"
    )
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
