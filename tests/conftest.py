"""Shared test fixtures: small topologies and deterministic weather."""

import pytest

from repro.cloud.regions import PAPER_REGIONS
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.topology import Topology

#: A 3-DC corner of the paper's testbed: two nearby DCs + one distant.
TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


@pytest.fixture
def triad() -> Topology:
    """3-DC probe topology (t3.nano, like the §2.2 motivation)."""
    return Topology.build(TRIAD, "t3.nano")


@pytest.fixture
def triad_workers() -> Topology:
    """3-DC worker topology (t2.medium)."""
    return Topology.build(TRIAD, "t2.medium")


@pytest.fixture
def full_topology() -> Topology:
    """All 8 paper regions on worker VMs."""
    return Topology.build(PAPER_REGIONS, "t2.medium")


@pytest.fixture
def weather() -> FluctuationModel:
    """Seeded fluctuation model."""
    return FluctuationModel(seed=123)


@pytest.fixture
def calm() -> StaticModel:
    """No fluctuation."""
    return StaticModel()
