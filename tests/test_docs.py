"""The docs checker (scripts/check_docs.py) as part of tier-1.

The CI docs job runs the same script; keeping it in the suite means a
doc-breaking rename fails locally before it fails in CI.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsHealth:
    def test_docs_exist_and_are_linked_from_readme(self):
        readme = (REPO / "README.md").read_text()
        assert (REPO / "docs" / "ARCHITECTURE.md").exists()
        assert (REPO / "docs" / "API.md").exists()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/API.md" in readme

    def test_checker_passes(self, check_docs, capsys):
        assert check_docs.main() == 0
        out = capsys.readouterr().out
        assert "code blocks" in out
        assert "FAIL" not in out

    def test_checker_catches_broken_links(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [missing](does-not-exist.md)\n")
        failures: list[str] = []
        assert check_docs.check_links(page, failures) == 1
        assert failures and "does-not-exist.md" in failures[0]

    def test_checker_catches_bad_imports(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "```python\nfrom repro import DoesNotExistAnywhere\n```\n"
        )
        failures: list[str] = []
        sys.path.insert(0, str(REPO / "src"))
        try:
            assert check_docs.check_code_blocks(page, failures) == 1
        finally:
            sys.path.remove(str(REPO / "src"))
        assert failures and "imports failed" in failures[0]

    def test_checker_catches_syntax_rot(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```python\ndef broken(:\n```\n")
        failures: list[str] = []
        check_docs.check_code_blocks(page, failures)
        assert failures and "does not compile" in failures[0]

    def test_config_coverage_passes_on_shipped_operations_doc(
        self, check_docs
    ):
        failures: list[str] = []
        sys.path.insert(0, str(REPO / "src"))
        try:
            checked = check_docs.check_config_coverage(failures)
        finally:
            sys.path.remove(str(REPO / "src"))
        assert checked > 30  # PipelineConfig ∪ ServiceConfig fields
        assert failures == []

    def test_config_coverage_catches_undocumented_field(
        self, check_docs, monkeypatch
    ):
        """An OPERATIONS.md missing a config field fails the job."""
        operations = (REPO / "docs" / "OPERATIONS.md").read_text()
        assert "`drift_threshold`" in operations
        stripped = operations.replace("`drift_threshold`", "`gone`")
        sys.path.insert(0, str(REPO / "src"))
        try:
            import pathlib

            original = pathlib.Path.read_text

            def patched(self, *args, **kwargs):
                if self.name == "OPERATIONS.md":
                    return stripped
                return original(self, *args, **kwargs)

            monkeypatch.setattr(pathlib.Path, "read_text", patched)
            failures: list[str] = []
            check_docs.check_config_coverage(failures)
        finally:
            sys.path.remove(str(REPO / "src"))
        assert any("drift_threshold" in f for f in failures)
