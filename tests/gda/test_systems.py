"""Tests for the placement policies (vanilla, Tetrium, Kimchi)."""

import numpy as np
import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import StageSpec
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy, solve_placement_lp
from repro.gda.systems.vanilla import LocalityPolicy
from repro.net.dynamics import StaticModel
from repro.net.matrix import BandwidthMatrix

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


@pytest.fixture
def cluster():
    return GeoCluster.build(TRIAD, "t2.medium", fluctuation=StaticModel())


@pytest.fixture
def bw(cluster):
    return BandwidthMatrix(
        TRIAD,
        np.array([[0, 900, 120], [900, 0, 130], [120, 130, 0]], float),
    )


STAGE = StageSpec("reduce", cpu_s_per_mb=0.1, output_ratio=1.0, shuffle=True)
DATA = {dc: 1000.0 for dc in TRIAD}


class TestVanilla:
    def test_slots_proportional(self, cluster, bw):
        placement = LocalityPolicy().place_stage(STAGE, DATA, bw, cluster)
        assert placement == pytest.approx(
            {dc: 1 / 3 for dc in TRIAD}
        )

    def test_no_migration(self, cluster, bw):
        assert LocalityPolicy().plan_migration(DATA, bw, cluster) == []


class TestPlacementLp:
    def test_fractions_sum_to_one(self, cluster, bw):
        placement = solve_placement_lp(DATA, bw, cluster, 0.1)
        assert sum(placement.values()) == pytest.approx(1.0)
        assert all(f >= 0 for f in placement.values())

    def test_weak_dc_gets_no_more_than_strong(self, cluster, bw):
        placement = solve_placement_lp(DATA, bw, cluster, 0.05)
        assert (
            placement["ap-southeast-1"]
            <= placement["us-east-1"] + 1e-6
        )

    def test_empty_data_uniform(self, cluster, bw):
        placement = solve_placement_lp({}, bw, cluster, 0.1)
        assert placement == pytest.approx({dc: 1 / 3 for dc in TRIAD})

    def test_compute_heavy_stage_balances_slots(self, cluster, bw):
        # With enormous compute weight, placement approaches uniform
        # (equal slots everywhere).
        placement = solve_placement_lp(DATA, bw, cluster, 100.0)
        for fraction in placement.values():
            assert fraction == pytest.approx(1 / 3, abs=0.05)

    def test_cost_weight_shifts_toward_data(self, cluster, bw):
        skewed = {"us-east-1": 2500.0, "us-west-1": 400.0,
                  "ap-southeast-1": 100.0}
        cheap = solve_placement_lp(
            skewed, bw, cluster, 0.1, network_cost_weight=0.0
        )
        costly = solve_placement_lp(
            skewed, bw, cluster, 0.1, network_cost_weight=5000.0
        )
        # Cost-averse placement keeps more work where the data is.
        assert costly["us-east-1"] >= cheap["us-east-1"] - 1e-6


class TestTetrium:
    def test_migrates_bottlenecked_dc_when_shuffle_heavy(self, cluster):
        bw = BandwidthMatrix(
            TRIAD,
            np.array([[0, 900, 20], [900, 0, 25], [20, 25, 0]], float),
        )
        policy = TetriumPolicy()
        moves = policy.plan_migration(DATA, bw, cluster, shuffle_mb=5000.0)
        assert moves
        assert all(src == "ap-southeast-1" for src, _, _ in moves)
        assert sum(mb for _, _, mb in moves) == pytest.approx(700.0)

    def test_no_migration_without_bw(self, cluster):
        assert TetriumPolicy().plan_migration(DATA, None, cluster) == []

    def test_no_migration_when_balanced(self, cluster):
        bw = BandwidthMatrix.full(TRIAD, 500.0)
        assert (
            TetriumPolicy().plan_migration(DATA, bw, cluster, 5000.0) == []
        )

    def test_no_migration_when_shuffle_small(self, cluster):
        bw = BandwidthMatrix(
            TRIAD,
            np.array([[0, 900, 20], [900, 0, 25], [20, 25, 0]], float),
        )
        moves = TetriumPolicy().plan_migration(
            DATA, bw, cluster, shuffle_mb=100.0
        )
        assert moves == []

    def test_place_stage_without_bw_falls_back(self, cluster):
        placement = TetriumPolicy().place_stage(STAGE, DATA, None, cluster)
        assert placement == pytest.approx({dc: 1 / 3 for dc in TRIAD})

    def test_migration_disabled_flag(self, cluster):
        bw = BandwidthMatrix(
            TRIAD,
            np.array([[0, 900, 20], [900, 0, 25], [20, 25, 0]], float),
        )
        policy = TetriumPolicy(migrate_input=False)
        assert policy.plan_migration(DATA, bw, cluster, 5000.0) == []


class TestKimchi:
    def test_invalid_cost_weight(self):
        with pytest.raises(ValueError):
            KimchiPolicy(cost_weight=-1.0)

    def test_stricter_migration_bar_than_tetrium(self, cluster):
        bw = BandwidthMatrix(
            TRIAD,
            np.array([[0, 900, 20], [900, 0, 25], [20, 25, 0]], float),
        )
        # A shuffle size where Tetrium migrates but Kimchi does not
        # (volume 700 vs bars 0.65×1200=780 and 0.55×1200=660).
        tetrium_moves = TetriumPolicy().plan_migration(
            DATA, bw, cluster, shuffle_mb=1200.0
        )
        kimchi_moves = KimchiPolicy().plan_migration(
            DATA, bw, cluster, shuffle_mb=1200.0
        )
        assert tetrium_moves
        assert kimchi_moves == []

    def test_placement_differs_from_tetrium_under_cost_pressure(
        self, cluster, bw
    ):
        skewed = {"us-east-1": 2500.0, "us-west-1": 400.0,
                  "ap-southeast-1": 100.0}
        tetrium = TetriumPolicy().place_stage(STAGE, skewed, bw, cluster)
        kimchi = KimchiPolicy(cost_weight=5000.0).place_stage(
            STAGE, skewed, bw, cluster
        )
        assert kimchi["us-east-1"] >= tetrium["us-east-1"] - 1e-6
