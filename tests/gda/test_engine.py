"""Tests for the GDA execution engine."""

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.gda.engine.engine import GdaEngine, validate_placement
from repro.gda.systems.vanilla import LocalityPolicy
from repro.net.dynamics import StaticModel

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


def make_engine(shuffle_overhead=4.0) -> GdaEngine:
    cluster = GeoCluster.build(TRIAD, "t2.medium", fluctuation=StaticModel())
    return GdaEngine(cluster, shuffle_overhead=shuffle_overhead)


def simple_job(shuffle=True, input_mb=300.0) -> JobSpec:
    stages = [StageSpec("map", 0.1, 1.0)]
    if shuffle:
        stages.append(StageSpec("reduce", 0.1, 0.5, shuffle=True))
    return JobSpec(
        "job", stages, {dc: input_mb / 3 for dc in TRIAD}
    )


class TestExecution:
    def test_compute_only_job_timing(self):
        engine = make_engine()
        result = engine.run(simple_job(shuffle=False), LocalityPolicy())
        # 100 MB per DC × 0.1 cpu-s/MB ÷ 2 slots = 5 s, no WAN.
        assert result.jct_s == pytest.approx(5.0)
        assert result.wan_gb == 0.0
        assert result.network_s == 0.0

    def test_shuffle_moves_cross_dc_data(self):
        engine = make_engine()
        result = engine.run(simple_job(), LocalityPolicy())
        assert result.wan_gb > 0
        assert result.network_s > 0
        reduce_stage = result.stages[1]
        # Uniform placement: 2/3 of 300 MB crosses DCs.
        assert reduce_stage.moved_mb == pytest.approx(200.0, rel=0.01)

    def test_shuffle_overhead_amplifies_wan_bytes(self):
        lean = make_engine(shuffle_overhead=1.0).run(
            simple_job(), LocalityPolicy()
        )
        heavy = make_engine(shuffle_overhead=4.0).run(
            simple_job(), LocalityPolicy()
        )
        assert heavy.wan_gb == pytest.approx(4 * lean.wan_gb, rel=0.01)
        assert heavy.network_s > lean.network_s

    def test_invalid_overhead_rejected(self):
        with pytest.raises(ValueError):
            make_engine(shuffle_overhead=0.5)

    def test_output_ratio_shrinks_downstream(self):
        engine = make_engine()
        job = JobSpec(
            "chain",
            [
                StageSpec("map", 0.01, 0.1),
                StageSpec("reduce", 0.01, 1.0, shuffle=True),
            ],
            {dc: 100.0 for dc in TRIAD},
        )
        result = engine.run(job, LocalityPolicy())
        # Only 30 MB enters the shuffle (×2/3 cross-DC).
        assert result.stages[1].moved_mb == pytest.approx(20.0, rel=0.02)

    def test_cost_includes_all_components(self):
        result = make_engine().run(simple_job(), LocalityPolicy())
        assert result.cost.compute_usd > 0
        assert result.cost.network_usd > 0
        assert result.cost.total_usd > result.cost.compute_usd

    def test_result_metadata(self):
        result = make_engine().run(simple_job(), LocalityPolicy())
        assert result.job_name == "job"
        assert result.system_name == "vanilla-spark"
        assert result.jct_minutes == pytest.approx(result.jct_s / 60.0)

    def test_unknown_input_dc_rejected(self):
        engine = make_engine()
        job = JobSpec(
            "bad", [StageSpec("map", 0.1, 1.0)], {"nowhere-1": 100.0}
        )
        with pytest.raises(KeyError):
            engine.run(job, LocalityPolicy())

    def test_sequential_runs_are_independent(self):
        engine = make_engine()
        first = engine.run(simple_job(), LocalityPolicy())
        second = engine.run(simple_job(), LocalityPolicy())
        assert second.jct_s == pytest.approx(first.jct_s, rel=0.05)
        assert second.wan_gb == pytest.approx(first.wan_gb, rel=0.01)


class TestMigration:
    def test_policy_migration_executes(self):
        class MigratingPolicy(LocalityPolicy):
            name = "migrator"

            def plan_migration(self, data, bw, cluster, shuffle_mb=0.0):
                return [("ap-southeast-1", "us-east-1", 50.0)]

        engine = make_engine()
        result = engine.run(simple_job(), MigratingPolicy())
        assert result.migration_mb == pytest.approx(50.0)
        assert result.migration_s > 0


class TestPlacementValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            validate_placement({"a": 0.5}, ("a", "b"))

    def test_unknown_dc_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_placement({"z": 1.0}, ("a", "b"))

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError, match="sum|negative"):
            validate_placement({"a": 1.5, "b": -0.5}, ("a", "b"))
