"""Tests for the Iridium policy (network-only placement + greedy
iterative data placement)."""

import numpy as np
import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import StageSpec
from repro.gda.engine.engine import GdaEngine
from repro.gda.systems.iridium import (
    IridiumPolicy,
    bottleneck_transfer_s,
)
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.net.dynamics import StaticModel
from repro.net.matrix import BandwidthMatrix

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")
STAGE = StageSpec("reduce", cpu_s_per_mb=0.1, output_ratio=1.0, shuffle=True)
DATA = {dc: 1000.0 for dc in TRIAD}


@pytest.fixture
def cluster():
    return GeoCluster.build(TRIAD, "t2.medium", fluctuation=StaticModel())


@pytest.fixture
def bw():
    return BandwidthMatrix(
        TRIAD,
        np.array([[0, 900, 120], [900, 0, 130], [120, 130, 0]], float),
    )


class TestBottleneckEstimate:
    def test_weakest_loaded_link_dominates(self, bw):
        fractions = {dc: 1 / 3 for dc in TRIAD}
        t = bottleneck_transfer_s(DATA, fractions, bw)
        # The 120 Mbps link carries 1000/3 MB × overhead — by far the
        # slowest path.
        expected = 1000.0 / 3 * 4.0 / (120.0 / 8.0)
        assert t == pytest.approx(expected, rel=0.1)

    def test_empty_data_is_zero(self, bw):
        assert bottleneck_transfer_s({}, {dc: 1 / 3 for dc in TRIAD}, bw) == 0.0

    def test_colocated_fraction_costs_nothing(self, bw):
        # All work placed where the only data lives → no WAN transfer.
        t = bottleneck_transfer_s(
            {"us-east-1": 1000.0}, {"us-east-1": 1.0}, bw
        )
        assert t == 0.0


class TestPlacement:
    def test_fractions_sum_to_one(self, cluster, bw):
        placement = IridiumPolicy().place_stage(STAGE, DATA, bw, cluster)
        assert sum(placement.values()) == pytest.approx(1.0)

    def test_weak_dc_gets_no_more_than_strong(self, cluster, bw):
        placement = IridiumPolicy().place_stage(STAGE, DATA, bw, cluster)
        assert (
            placement["ap-southeast-1"] <= placement["us-east-1"] + 1e-6
        )

    def test_ignores_compute_unlike_tetrium(self, cluster, bw):
        """A compute-heavy stage pulls Tetrium toward balance but leaves
        Iridium's network-only placement unchanged."""
        light = StageSpec("r", cpu_s_per_mb=0.01, output_ratio=1.0,
                          shuffle=True)
        heavy = StageSpec("r", cpu_s_per_mb=100.0, output_ratio=1.0,
                          shuffle=True)
        iridium = IridiumPolicy()
        p_light = iridium.place_stage(light, DATA, bw, cluster)
        p_heavy = iridium.place_stage(heavy, DATA, bw, cluster)
        for dc in TRIAD:
            assert p_light[dc] == pytest.approx(p_heavy[dc], abs=1e-6)
        t_light = TetriumPolicy().place_stage(light, DATA, bw, cluster)
        t_heavy = TetriumPolicy().place_stage(heavy, DATA, bw, cluster)
        assert any(
            abs(t_light[dc] - t_heavy[dc]) > 0.01 for dc in TRIAD
        )

    def test_fallback_without_bw(self, cluster):
        placement = IridiumPolicy().place_stage(STAGE, DATA, None, cluster)
        assert placement == pytest.approx({dc: 1 / 3 for dc in TRIAD})


#: The Iridium data-placement scenario: the weakly connected DC also
#: hoards the input (the §2.2 / Fig. 10 premise) — moving chunks off it
#: helps both the shuffle bottleneck and the compute barrier.
SKEWED = {
    "us-east-1": 600.0,
    "us-west-1": 600.0,
    "ap-southeast-1": 1800.0,
}


class TestDataPlacement:
    def weak_bw(self):
        return BandwidthMatrix(
            TRIAD,
            np.array([[0, 900, 20], [900, 0, 25], [20, 25, 0]], float),
        )

    def test_moves_off_the_skewed_bottleneck_site(self, cluster):
        moves = IridiumPolicy().plan_migration(
            SKEWED, self.weak_bw(), cluster, shuffle_mb=5000.0
        )
        assert moves
        assert all(src == "ap-southeast-1" for src, _, _ in moves)

    def test_moves_reduce_the_bottleneck(self, cluster):
        bw = self.weak_bw()
        policy = IridiumPolicy()
        moves = policy.plan_migration(SKEWED, bw, cluster, shuffle_mb=5000.0)
        data_after = dict(SKEWED)
        for src, dst, mb in moves:
            data_after[src] -= mb
            data_after[dst] = data_after.get(dst, 0.0) + mb
        before = bottleneck_transfer_s(
            SKEWED, policy._fractions(SKEWED, bw, cluster), bw
        )
        after = bottleneck_transfer_s(
            data_after, policy._fractions(data_after, bw, cluster), bw
        )
        assert after < before

    def test_budget_caps_total_volume(self, cluster):
        shuffle_mb = 400.0
        moves = IridiumPolicy().plan_migration(
            SKEWED, self.weak_bw(), cluster, shuffle_mb=shuffle_mb
        )
        assert sum(mb for _, _, mb in moves) <= 0.65 * shuffle_mb + 1e-6

    def test_no_moves_for_uniform_data(self, cluster):
        """With balanced input, any move inflates the compute barrier —
        the query-speedup guard must reject it even though the transfer
        estimate looks better."""
        moves = IridiumPolicy().plan_migration(
            DATA, self.weak_bw(), cluster, shuffle_mb=5000.0
        )
        assert moves == []

    def test_no_moves_when_balanced(self, cluster):
        bw = BandwidthMatrix.full(TRIAD, 500.0)
        moves = IridiumPolicy().plan_migration(SKEWED, bw, cluster, 5000.0)
        # A flat network gives the greedy nothing to relax beyond the
        # gain bar; a small equalizing move is acceptable but nothing
        # should leave a data-light site.
        assert all(src == "ap-southeast-1" for src, _, _ in moves)

    def test_no_moves_without_bw(self, cluster):
        assert IridiumPolicy().plan_migration(SKEWED, None, cluster) == []

    def test_migration_disabled_flag(self, cluster):
        policy = IridiumPolicy(migrate_input=False)
        assert (
            policy.plan_migration(SKEWED, self.weak_bw(), cluster, 5000.0)
            == []
        )

    def test_invalid_chunk_fraction(self):
        with pytest.raises(ValueError):
            IridiumPolicy(chunk_fraction=0.0)
        with pytest.raises(ValueError):
            IridiumPolicy(chunk_fraction=1.5)


class TestEndToEnd:
    def test_runs_terasort_through_the_engine(self, cluster, bw):
        job = terasort_job(DATA)
        result = GdaEngine(cluster).run(job, IridiumPolicy(), bw)
        assert result.system_name == "iridium"
        assert result.jct_s > 0
        assert result.wan_gb > 0

    def test_better_bw_knowledge_does_not_hurt(self, bw):
        """Feeding Iridium the true (runtime-ish) matrix must not yield
        a materially worse JCT than a stale wrong matrix — the Table 4
        premise applied to the third system."""
        wrong = BandwidthMatrix(
            TRIAD,
            np.array([[0, 150, 800], [150, 0, 900], [800, 900, 0]], float),
        )
        job = terasort_job(DATA)

        def jct(matrix):
            cluster = GeoCluster.build(
                TRIAD, "t2.medium", fluctuation=StaticModel()
            )
            return GdaEngine(cluster).run(
                job, IridiumPolicy(), matrix
            ).jct_s

        assert jct(bw) <= jct(wrong) * 1.05
