"""Tests for the SAGQ quantized geo-ML trainer."""

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.systems.sagq import (
    FULL_BITS,
    MLModelSpec,
    SagqTrainer,
    bits_for_bw,
)
from repro.net.dynamics import StaticModel
from repro.net.matrix import BandwidthMatrix

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


def make_trainer(epochs=2) -> SagqTrainer:
    cluster = GeoCluster.build(TRIAD, "t2.medium", fluctuation=StaticModel())
    model = MLModelSpec(sync_mb_per_pair=100.0, compute_s_per_epoch=30.0)
    return SagqTrainer(cluster, model, epochs=epochs)


class TestQuantization:
    def test_bits_ladder_monotone(self):
        bws = [50, 130, 400, 900, 2000]
        bits = [bits_for_bw(b) for b in bws]
        assert bits == sorted(bits)
        assert bits[0] == 4
        assert bits[-1] == FULL_BITS

    def test_payload_scales_with_bits(self):
        model = MLModelSpec(sync_mb_per_pair=128.0)
        assert model.payload_mb(32) == pytest.approx(128.0)
        assert model.payload_mb(8) == pytest.approx(32.0)

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            MLModelSpec().payload_mb(0)

    def test_bits_matrix_from_decision_bw(self):
        trainer = make_trainer()
        bw = BandwidthMatrix.full(TRIAD, 1000.0)
        bw.set("us-east-1", "ap-southeast-1", 100.0)
        bits = trainer.bits_matrix(bw)
        assert bits[("us-east-1", "us-west-1")] == FULL_BITS
        assert bits[("us-east-1", "ap-southeast-1")] == 4

    def test_none_bw_means_full_precision(self):
        trainer = make_trainer()
        bits = trainer.bits_matrix(None)
        assert set(bits.values()) == {FULL_BITS}


class TestTraining:
    def test_noq_slower_than_quantized(self):
        noq = make_trainer().run("NoQ", decision_bw=None)
        bw = BandwidthMatrix.full(TRIAD, 50.0)  # all links weak → 4 bits
        quant = make_trainer().run("Q", decision_bw=bw)
        assert quant.total_s < noq.total_s
        assert quant.network_s < noq.network_s
        assert quant.compute_s == pytest.approx(noq.compute_s)

    def test_epoch_structure(self):
        result = make_trainer(epochs=3).run("NoQ")
        assert result.epochs == 3
        assert result.total_s == pytest.approx(
            result.compute_s + result.network_s, rel=0.01
        )

    def test_cost_positive_and_accuracy_constant(self):
        result = make_trainer().run("NoQ")
        assert result.cost.total_usd > 0
        assert result.test_accuracy == pytest.approx(0.97)

    def test_invalid_epochs_rejected(self):
        cluster = GeoCluster.build(TRIAD)
        with pytest.raises(ValueError):
            SagqTrainer(cluster, MLModelSpec(), epochs=0)

    def test_quantized_network_cost_lower(self):
        noq = make_trainer().run("NoQ")
        bw = BandwidthMatrix.full(TRIAD, 50.0)
        quant = make_trainer().run("Q", decision_bw=bw)
        assert quant.cost.network_usd < noq.cost.network_usd
