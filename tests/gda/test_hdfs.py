"""Tests for the HDFS-like block store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gda.engine.hdfs import HdfsStore

KEYS = ("a", "b", "c", "d")


class TestPlacement:
    def test_uniform_splits_evenly(self):
        store = HdfsStore.uniform(KEYS, 4096.0, block_size_mb=128.0)
        data = store.data_by_dc()
        assert all(mb == pytest.approx(1024.0) for mb in data.values())
        assert store.total_mb == pytest.approx(4096.0)

    def test_weighted_placement(self):
        store = HdfsStore.weighted(
            KEYS, 1000.0, {"a": 3, "b": 1, "c": 1, "d": 0}
        )
        data = store.data_by_dc()
        assert data["a"] == pytest.approx(600.0)
        assert data.get("d", 0.0) == 0.0

    def test_block_size_respected(self):
        store = HdfsStore.uniform(KEYS, 1000.0, block_size_mb=64.0)
        sizes = {b.size_mb for b in store.blocks}
        assert all(s <= 64.0 for s in sizes)

    def test_invalid_total_rejected(self):
        with pytest.raises(ValueError):
            HdfsStore.uniform(KEYS, 0.0)

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            HdfsStore.weighted(KEYS, 100.0, {k: 0.0 for k in KEYS})


class TestMove:
    def test_move_relocates_volume(self):
        store = HdfsStore.uniform(KEYS, 4096.0)
        moved = store.move("a", "b", 512.0)
        assert moved == pytest.approx(512.0)
        data = store.data_by_dc()
        assert data["a"] == pytest.approx(512.0)
        assert data["b"] == pytest.approx(1536.0)
        assert store.total_mb == pytest.approx(4096.0)

    def test_move_splits_partial_blocks(self):
        store = HdfsStore.uniform(KEYS, 4096.0, block_size_mb=128.0)
        moved = store.move("a", "b", 100.0)
        assert moved == pytest.approx(100.0)

    def test_move_capped_at_available(self):
        store = HdfsStore.uniform(KEYS, 400.0)
        moved = store.move("a", "b", 1e6)
        assert moved == pytest.approx(100.0)

    def test_move_zero_is_noop(self):
        store = HdfsStore.uniform(KEYS, 400.0)
        assert store.move("a", "b", 0.0) == 0.0


class TestSkew:
    def test_skew_concentrates_data(self):
        store = HdfsStore.uniform(KEYS, 4096.0, block_size_mb=64.0)
        dist = store.skew_to(["a", "b"], fraction=0.8)
        heavy = dist["a"] + dist["b"]
        assert heavy / store.total_mb > 0.7

    def test_skew_preserves_total(self):
        store = HdfsStore.uniform(KEYS, 4096.0, block_size_mb=64.0)
        store.skew_to(["a"], fraction=0.9)
        assert store.total_mb == pytest.approx(4096.0)

    def test_invalid_fraction_rejected(self):
        store = HdfsStore.uniform(KEYS, 400.0)
        with pytest.raises(ValueError):
            store.skew_to(["a"], fraction=1.5)

    def test_no_targets_rejected(self):
        store = HdfsStore.uniform(KEYS, 400.0)
        with pytest.raises(ValueError):
            store.skew_to([], fraction=0.5)


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=10.0, max_value=1e5),
    st.floats(min_value=1.0, max_value=512.0),
)
def test_uniform_total_preserved(total, block):
    store = HdfsStore.uniform(KEYS, total, block_size_mb=block)
    assert store.total_mb == pytest.approx(total, rel=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=1.0, max_value=1000.0),
    st.floats(min_value=0.0, max_value=2000.0),
)
def test_move_conserves_mass(total, amount):
    store = HdfsStore.uniform(KEYS, total)
    before = store.total_mb
    store.move("a", "c", amount)
    assert store.total_mb == pytest.approx(before, rel=1e-9)
