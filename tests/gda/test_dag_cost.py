"""Tests for job/stage specs and cost accounting."""

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.cost import CostBreakdown, job_cost
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.gda.workloads.terasort import terasort_job
from repro.gda.workloads.tpcds import TPCDS_QUERIES, tpcds_job
from repro.gda.workloads.wordcount import wordcount_job

INPUT = {"us-east-1": 500.0, "eu-west-1": 500.0}


class TestSpecs:
    def test_stage_validation(self):
        with pytest.raises(ValueError):
            StageSpec("bad", cpu_s_per_mb=-1.0, output_ratio=1.0)
        with pytest.raises(ValueError):
            StageSpec("bad", cpu_s_per_mb=1.0, output_ratio=-1.0)

    def test_job_needs_stages(self):
        with pytest.raises(ValueError, match="no stages"):
            JobSpec("empty", [], INPUT)

    def test_first_stage_cannot_shuffle(self):
        with pytest.raises(ValueError, match="first stage"):
            JobSpec(
                "bad",
                [StageSpec("s", 0.1, 1.0, shuffle=True)],
                INPUT,
            )

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError, match="negative input"):
            JobSpec(
                "bad",
                [StageSpec("s", 0.1, 1.0)],
                {"us-east-1": -5.0},
            )

    def test_intermediate_volume_terasort(self):
        job = terasort_job(INPUT)
        # TeraSort's shuffle equals its input.
        assert job.intermediate_mb() == pytest.approx(1000.0)

    def test_intermediate_volume_wordcount(self):
        job = wordcount_job(INPUT, intermediate_mb=50.0)
        assert job.intermediate_mb() == pytest.approx(50.0)

    def test_tpcds_queries_defined(self):
        assert set(TPCDS_QUERIES) == {82, 95, 11, 78}
        for query in TPCDS_QUERIES:
            job = tpcds_job(query, INPUT)
            assert job.shuffle_stages()

    def test_tpcds_unknown_query(self):
        with pytest.raises(KeyError, match="unsupported query"):
            tpcds_job(99, INPUT)

    def test_heavy_query_shuffles_most(self):
        light = tpcds_job(82, INPUT).intermediate_mb()
        heavy = tpcds_job(78, INPUT).intermediate_mb()
        assert heavy > 5 * light


class TestCost:
    def test_components_positive(self):
        cluster = GeoCluster.build(("us-east-1", "eu-west-1"))
        cost = job_cost(cluster, 3600.0, 8.0 * 1024 * 10, 1000.0)
        assert cost.compute_usd > 0
        assert cost.network_usd == pytest.approx(10 * 0.02, rel=0.01)
        assert cost.storage_usd > 0
        assert cost.total_usd == pytest.approx(
            cost.compute_usd + cost.network_usd + cost.storage_usd
        )

    def test_compute_scales_with_jct(self):
        cluster = GeoCluster.build(("us-east-1", "eu-west-1"))
        short = job_cost(cluster, 600.0, 0.0, 0.0)
        long = job_cost(cluster, 1200.0, 0.0, 0.0)
        assert long.compute_usd == pytest.approx(2 * short.compute_usd)

    def test_negative_jct_rejected(self):
        cluster = GeoCluster.build(("us-east-1",))
        with pytest.raises(ValueError):
            job_cost(cluster, -1.0, 0.0, 0.0)

    def test_cost_addition(self):
        a = CostBreakdown(1.0, 2.0, 3.0)
        b = CostBreakdown(0.5, 0.5, 0.5)
        total = a + b
        assert total.total_usd == pytest.approx(7.5)


class TestCluster:
    def test_slots_and_speed(self):
        cluster = GeoCluster.build(
            ("us-east-1", "eu-west-1"), "t2.medium", {"us-east-1": 2}
        )
        assert cluster.slots("us-east-1") == 4
        assert cluster.slots("eu-west-1") == 2
        assert cluster.speed("us-east-1") == 1.0

    def test_compute_seconds(self):
        cluster = GeoCluster.build(("us-east-1",), "t2.medium")
        # 100 MB at 0.2 cpu-s/MB over 2 slots → 10 s.
        assert cluster.compute_seconds(
            "us-east-1", 100.0, 0.2
        ) == pytest.approx(10.0)

    def test_zero_volume_zero_time(self):
        cluster = GeoCluster.build(("us-east-1",))
        assert cluster.compute_seconds("us-east-1", 0.0, 1.0) == 0.0

    def test_total_vms(self):
        cluster = GeoCluster.build(
            ("us-east-1", "eu-west-1"), vms_per_dc={"us-east-1": 3}
        )
        assert cluster.total_vms() == 4
