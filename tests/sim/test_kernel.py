"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Event, Process, Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_priority_then_insertion(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("low"), priority=1)
        sim.schedule(1.0, lambda: fired.append("high"), priority=0)
        sim.schedule(1.0, lambda: fired.append("low2"), priority=1)
        sim.run()
        assert fired == ["high", "low", "low2"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        # Remaining event still pending.
        assert sim.peek() == 2.0

    def test_step_returns_false_when_drained(self):
        sim = Simulator()
        assert sim.step() is False

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0


class TestProcess:
    def test_periodic_ticks(self):
        sim = Simulator()
        ticks = []
        Process(sim, interval=2.0, body=ticks.append)
        sim.run(until=7.0)
        assert ticks == [0.0, 2.0, 4.0, 6.0]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        Process(sim, interval=2.0, body=ticks.append, start_delay=1.0)
        sim.run(until=6.0)
        assert ticks == [1.0, 3.0, 5.0]

    def test_stop_ends_ticks(self):
        sim = Simulator()
        ticks = []
        process = Process(sim, interval=1.0, body=ticks.append)
        sim.run(until=2.5)
        process.stop()
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Process(sim, interval=0.0, body=lambda t: None)

    def test_event_ordering_is_deterministic(self):
        def run_once():
            sim = Simulator()
            out = []
            for i in range(20):
                sim.schedule(1.0, lambda i=i: out.append(i))
            sim.run()
            return out

        assert run_once() == run_once()


class TestDaemonEvents:
    """Daemon events observe the simulation without keeping it alive."""

    def test_open_ended_run_ignores_pending_daemons(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("work"))
        sim.schedule(0.5, lambda: fired.append("d"), daemon=True)
        sim.schedule(99.0, lambda: fired.append("late-d"), daemon=True)
        sim.run()
        # The daemon before the work fires; the one after does not.
        assert fired == ["d", "work"]

    def test_run_with_only_daemons_returns_immediately(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("d"), daemon=True)
        sim.run()
        assert fired == []
        assert sim.now == 0.0

    def test_bounded_run_still_fires_daemons(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("d"), daemon=True)
        sim.run(until=5.0)
        assert fired == ["d"]
        assert sim.now == 5.0

    def test_daemon_periodic_process_does_not_wedge_run(self):
        sim = Simulator()
        ticks = []
        Process(sim, 1.0, ticks.append, start_delay=1.0)  # daemon default
        sim.schedule(3.5, lambda: None)
        sim.run()  # would never return if the process kept it alive
        assert sim.now == 3.5
        assert ticks == [1.0, 2.0, 3.0]

    def test_non_daemon_process_keeps_run_alive_until_stopped(self):
        sim = Simulator()
        holder = {}

        def body(now):
            if now >= 3.0:
                holder["proc"].stop()

        holder["proc"] = Process(
            sim, 1.0, body, start_delay=1.0, daemon=False
        )
        sim.run()
        assert sim.now == 3.0

    def test_cancelled_work_releases_open_ended_run(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        sim.schedule(1.0, event.cancel)
        sim.run()
        assert sim.now == 1.0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.schedule(1.0, lambda: None)
        sim.run()  # live count must not go negative and wedge the loop
        assert sim.now == 1.0

    def test_work_scheduled_by_daemon_still_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("work"))

        def tick(now):
            if now == 1.0:
                sim.schedule(0.5, lambda: fired.append("from-daemon"))

        Process(sim, 1.0, tick, start_delay=1.0)
        sim.run()
        assert fired == ["from-daemon", "work"]
