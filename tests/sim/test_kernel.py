"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Event, Process, Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_priority_then_insertion(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("low"), priority=1)
        sim.schedule(1.0, lambda: fired.append("high"), priority=0)
        sim.schedule(1.0, lambda: fired.append("low2"), priority=1)
        sim.run()
        assert fired == ["high", "low", "low2"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(5.5, lambda: None)
        sim.run()
        assert sim.now == 5.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_halts_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]
        # Remaining event still pending.
        assert sim.peek() == 2.0

    def test_step_returns_false_when_drained(self):
        sim = Simulator()
        assert sim.step() is False

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0


class TestProcess:
    def test_periodic_ticks(self):
        sim = Simulator()
        ticks = []
        Process(sim, interval=2.0, body=ticks.append)
        sim.run(until=7.0)
        assert ticks == [0.0, 2.0, 4.0, 6.0]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        Process(sim, interval=2.0, body=ticks.append, start_delay=1.0)
        sim.run(until=6.0)
        assert ticks == [1.0, 3.0, 5.0]

    def test_stop_ends_ticks(self):
        sim = Simulator()
        ticks = []
        process = Process(sim, interval=1.0, body=ticks.append)
        sim.run(until=2.5)
        process.stop()
        sim.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Process(sim, interval=0.0, body=lambda t: None)

    def test_event_ordering_is_deterministic(self):
        def run_once():
            sim = Simulator()
            out = []
            for i in range(20):
                sim.schedule(1.0, lambda i=i: out.append(i))
            sim.run()
            return out

        assert run_once() == run_once()


class TestDaemonEvents:
    """Daemon events observe the simulation without keeping it alive."""

    def test_open_ended_run_ignores_pending_daemons(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("work"))
        sim.schedule(0.5, lambda: fired.append("d"), daemon=True)
        sim.schedule(99.0, lambda: fired.append("late-d"), daemon=True)
        sim.run()
        # The daemon before the work fires; the one after does not.
        assert fired == ["d", "work"]

    def test_run_with_only_daemons_returns_immediately(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("d"), daemon=True)
        sim.run()
        assert fired == []
        assert sim.now == 0.0

    def test_bounded_run_still_fires_daemons(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("d"), daemon=True)
        sim.run(until=5.0)
        assert fired == ["d"]
        assert sim.now == 5.0

    def test_daemon_periodic_process_does_not_wedge_run(self):
        sim = Simulator()
        ticks = []
        Process(sim, 1.0, ticks.append, start_delay=1.0)  # daemon default
        sim.schedule(3.5, lambda: None)
        sim.run()  # would never return if the process kept it alive
        assert sim.now == 3.5
        assert ticks == [1.0, 2.0, 3.0]

    def test_non_daemon_process_keeps_run_alive_until_stopped(self):
        sim = Simulator()
        holder = {}

        def body(now):
            if now >= 3.0:
                holder["proc"].stop()

        holder["proc"] = Process(
            sim, 1.0, body, start_delay=1.0, daemon=False
        )
        sim.run()
        assert sim.now == 3.0

    def test_cancelled_work_releases_open_ended_run(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        sim.schedule(1.0, event.cancel)
        sim.run()
        assert sim.now == 1.0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(10.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.schedule(1.0, lambda: None)
        sim.run()  # live count must not go negative and wedge the loop
        assert sim.now == 1.0

    def test_work_scheduled_by_daemon_still_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("work"))

        def tick(now):
            if now == 1.0:
                sim.schedule(0.5, lambda: fired.append("from-daemon"))

        Process(sim, 1.0, tick, start_delay=1.0)
        sim.run()
        assert fired == ["from-daemon", "work"]


class TestScheduleAtValidation:
    def test_past_time_raises_naming_the_call_and_time(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0
        with pytest.raises(ValueError) as excinfo:
            sim.schedule_at(3.0, lambda: None)
        message = str(excinfo.value)
        assert "schedule_at" in message
        assert "3.0" in message
        assert "5.0" in message  # the current clock, for debuggability

    def test_exactly_now_is_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(0.0, lambda: fired.append("now"))
        sim.run()
        assert fired == ["now"]


class TestScheduleMany:
    def test_matches_sequential_schedule_order(self):
        """Bulk insert must fire in the same total order as one-by-one."""
        delays = [3.0, 1.0, 2.0, 1.0, 3.0, 0.0, 2.0, 1.0]

        sequential = Simulator()
        fired_seq = []
        for index, delay in enumerate(delays):
            sequential.schedule(
                delay, lambda i=index: fired_seq.append(i)
            )
        sequential.run()

        bulk = Simulator()
        fired_bulk = []
        bulk.schedule_many(
            (delay, lambda i=index: fired_bulk.append(i))
            for index, delay in enumerate(delays)
        )
        bulk.run()

        assert fired_bulk == fired_seq
        assert bulk.now == sequential.now
        assert bulk.events_processed == sequential.events_processed

    def test_bulk_insert_mid_run_interleaves_correctly(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("late"))

        def inject():
            fired.append("inject")
            sim.schedule_many(
                [
                    (1.0, lambda: fired.append("b1")),
                    (0.5, lambda: fired.append("b0")),
                    (6.0, lambda: fired.append("b2")),
                ]
            )

        sim.schedule(2.0, inject)
        sim.run()
        assert fired == ["inject", "b0", "b1", "late", "b2"]
        assert sim.now == 8.0

    def test_negative_delay_rejected_per_entry(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="negative delay"):
            sim.schedule_many([(1.0, lambda: None), (-0.5, lambda: None)])

    def test_small_batch_on_deep_queue_keeps_order(self):
        """The push-vs-heapify crossover must not change semantics."""
        sim = Simulator()
        fired = []
        for index in range(100):
            sim.schedule(
                float(index) + 10.0, lambda i=index: fired.append(i)
            )
        # Batch of 2 against a 100-deep queue takes the per-push path.
        sim.schedule_many(
            [(1.0, lambda: fired.append("a")), (2.0, lambda: fired.append("b"))]
        )
        sim.run()
        assert fired[:2] == ["a", "b"]
        assert fired[2:] == list(range(100))

    def test_daemon_batch_does_not_keep_run_alive(self):
        sim = Simulator()
        fired = []
        sim.schedule_many(
            [(10.0, lambda: fired.append("d"))], daemon=True
        )
        sim.schedule(1.0, lambda: fired.append("work"))
        sim.run()
        assert fired == ["work"]
        assert sim.now == 1.0

    def test_returns_events_that_can_cancel(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_many(
            [(1.0, lambda: fired.append("a")), (2.0, lambda: fired.append("b"))]
        )
        events[1].cancel()
        sim.run()
        assert fired == ["a"]


class TestBatchDispatch:
    """run() dispatches same-instant events in one inner loop."""

    def test_same_instant_events_fire_in_priority_seq_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("p1"), priority=1)
        sim.schedule(1.0, lambda: fired.append("p0-first"), priority=0)
        sim.schedule(1.0, lambda: fired.append("p0-second"), priority=0)
        sim.run()
        assert fired == ["p0-first", "p0-second", "p1"]

    def test_callback_scheduling_same_instant_stays_in_order(self):
        """A zero-delay event scheduled mid-batch must respect priority."""
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            # Same instant, lower priority than the pending "last":
            # must fire before it regardless of insertion time.
            sim.schedule(0.0, lambda: fired.append("injected"), priority=1)

        sim.schedule(1.0, first, priority=0)
        sim.schedule(1.0, lambda: fired.append("last"), priority=2)
        sim.run()
        assert fired == ["first", "injected", "last"]

    def test_stop_mid_batch_halts_immediately(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(1.0, sim.stop)
        sim.schedule(1.0, lambda: fired.append("after-stop"))
        sim.schedule(2.0, lambda: fired.append("later"))
        sim.run()
        assert fired == ["a"]
        sim.run()
        assert fired == ["a", "after-stop", "later"]

    def test_live_reaching_zero_mid_instant_stops_before_daemons(self):
        """Open-ended run returns as soon as real work drains, even if
        a daemon shares the final instant."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("work"), priority=0)
        sim.schedule(
            1.0, lambda: fired.append("daemon"), priority=1, daemon=True
        )
        sim.run()
        assert fired == ["work"]

    def test_until_boundary_respected_across_batches(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(1.0, lambda: fired.append("b"))
        sim.schedule(3.0, lambda: fired.append("past"))
        sim.run(until=2.0)
        assert fired == ["a", "b"]
        assert sim.now == 2.0


class TestCancelAfterFire:
    """Cancelling an event that already executed must be inert."""

    def test_late_cancel_does_not_double_decrement_live(self):
        sim = Simulator()
        fired = []
        holder = {}

        def body():
            fired.append("tick")
            holder["event"].cancel()  # cancels itself *while firing*

        holder["event"] = sim.schedule(1.0, body)
        # A second pending job: if the live count double-decremented,
        # the open-ended run would end before this fires.
        sim.schedule(2.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["tick", "second"]
        assert sim.now == 2.0

    def test_process_stop_from_own_tick_keeps_kernel_consistent(self):
        """A non-daemon Process stopping itself mid-tick cancels the
        event being executed; later runs must still work."""
        sim = Simulator()
        ticks = []
        holder = {}

        def body(now):
            ticks.append(now)
            if now >= 2.0:
                holder["proc"].stop()

        holder["proc"] = Process(
            sim, 1.0, body, start_delay=1.0, daemon=False
        )
        sim.schedule(5.0, lambda: ticks.append("tail"))
        sim.run()
        assert ticks == [1.0, 2.0, "tail"]
        # The kernel survived: schedule + run again works and the
        # live count never went negative (a fresh job keeps the
        # open-ended run alive exactly until it fires).
        sim.schedule(1.0, lambda: ticks.append("again"))
        sim.run()
        assert ticks[-1] == "again"

    def test_stop_racing_rearm_with_external_cancel(self):
        """stop() called by *another* event at the same instant as the
        process's tick must not corrupt the live count either way."""
        sim = Simulator()
        ticks = []
        proc = Process(sim, 1.0, ticks.append, start_delay=1.0, daemon=False)
        # Scheduled before the process re-arms, so at t=2 the tie
        # breaks by sequence: stop() fires *first* and cancels the
        # pending tick sharing the instant.
        sim.schedule(2.0, proc.stop)
        sim.schedule(4.0, lambda: ticks.append("tail"))
        sim.run()
        assert ticks == [1.0, "tail"]
