"""Tests for the command-line interface (:mod:`repro.cli`)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_run_requires_experiment_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict"])
        assert args.vm == "t2.medium"
        assert args.seed == 42
        assert args.datasets == 40


class TestList:
    def test_lists_every_experiment(self):
        code, text = run_cli("list")
        assert code == 0
        for exp_id in ("E-T1", "E-T2", "E-F2", "E-T4", "E-F11", "E-S583"):
            assert exp_id in text

    def test_mentions_how_to_run(self):
        _, text = run_cli("list")
        assert "run <id>" in text


class TestRun:
    def test_unknown_id_fails_cleanly(self):
        code, text = run_cli("run", "E-NOPE")
        assert code == 2
        assert "unknown experiment" in text

    def test_id_is_case_insensitive(self):
        # Table 2 is pure arithmetic — fast enough for a unit test.
        code, text = run_cli("run", "e-t2")
        assert code == 0
        assert "E-T2" in text

    def test_runs_table2_and_prints_table(self):
        code, text = run_cli("run", "E-T2")
        assert code == 0
        # The monitoring-vs-prediction cost rows for 4/6/8 DCs.
        assert "Runtime monitoring" in text or "monitoring" in text.lower()


class TestTopology:
    def test_paper_default_regions(self):
        code, text = run_cli("topology")
        assert code == 0
        assert "8 DCs" in text
        assert "us-east-1" in text
        assert "sa-east-1" in text

    def test_explicit_regions(self):
        code, text = run_cli("topology", "us-east-1", "eu-west-1")
        assert code == 0
        assert "2 DCs" in text
        assert "RTT" in text

    def test_unknown_region_fails_cleanly(self):
        code, text = run_cli("topology", "mars-north-1")
        assert code == 2
        assert "mars-north-1" in text

    def test_unknown_vm_fails_cleanly(self):
        code, text = run_cli("topology", "us-east-1", "--vm", "z9.mega")
        assert code == 2
        assert "z9.mega" in text


class TestPredict:
    def test_small_cluster_end_to_end(self):
        code, text = run_cli(
            "predict",
            "us-east-1",
            "us-west-1",
            "ap-southeast-1",
            "--datasets",
            "6",
            "--estimators",
            "5",
        )
        assert code == 0
        assert "Predicted runtime BWs" in text
        assert "Optimal connection windows" in text
        assert "achievable" in text

    def test_deterministic_given_seed(self):
        argv = (
            "predict",
            "us-east-1",
            "eu-west-1",
            "--datasets",
            "6",
            "--estimators",
            "5",
            "--seed",
            "7",
        )
        _, first = run_cli(*argv)
        _, second = run_cli(*argv)
        assert first == second


class TestReport:
    def test_report_writes_file(self, tmp_path, monkeypatch):
        # Point the generator at a stub registry so the test stays fast:
        # report generation over all 15 experiments is exercised by the
        # real EXPERIMENTS.md build, not unit tests.
        import repro.experiments.report as report

        class FakeModule:
            __name__ = "repro.experiments.table2"

            @staticmethod
            def run(fast=True):
                return {"value": 1}

            @staticmethod
            def render(results):
                return f"value = {results['value']}"

        monkeypatch.setattr(
            report,
            "EXPERIMENTS",
            [("E-XX", "stub experiment", FakeModule)],
        )
        target = tmp_path / "EXPERIMENTS.md"
        code, text = run_cli("report", "-o", str(target))
        assert code == 0
        assert target.exists()
        content = target.read_text()
        assert "E-XX" in content
        assert "value = 1" in content


class TestServe:
    SMALL = (
        "serve",
        "us-east-1",
        "us-west-1",
        "ap-southeast-1",
        "--jobs",
        "3",
        "--scale-mb",
        "800",
        "--datasets",
        "6",
        "--estimators",
        "5",
    )

    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.scenario == "step-drop"
        assert args.jobs == 6
        assert args.max_concurrent == 3
        assert not args.static

    def test_unknown_scenario_fails_cleanly(self):
        code, text = run_cli("serve", "--scenario", "meteor-strike")
        assert code == 2
        assert "meteor-strike" in text

    def test_unknown_region_fails_cleanly(self):
        code, text = run_cli("serve", "mars-north-1")
        assert code == 2
        assert "mars-north-1" in text

    def test_small_service_end_to_end(self):
        code, text = run_cli(*self.SMALL, "--scenario", "calm")
        assert code == 0
        assert "completed 3 jobs" in text
        assert "wordcount-0" in text
        assert "jobs/sim-hour" in text

    def test_compare_prints_speedup(self):
        code, text = run_cli(
            *self.SMALL, "--scenario", "calm", "--compare"
        )
        assert code == 0
        assert "static plan (no re-planning)" in text
        assert "total-JCT speedup" in text

    def test_deterministic_given_seed(self):
        argv = (*self.SMALL, "--seed", "9")
        _, first = run_cli(*argv)
        _, second = run_cli(*argv)
        assert first == second


class TestSweep:
    def test_dry_run_expands_the_example_matrix(self):
        code, text = run_cli(
            "sweep", "--config", "examples/sweep.toml", "--dry-run"
        )
        assert code == 0
        assert "2×2×2" in text
        assert "8 cells" in text
        assert "gauger=passive-telemetry" in text
        assert "dry run: nothing executed" in text

    def test_missing_config_fails_cleanly(self):
        code, text = run_cli("sweep")
        assert code == 2
        assert "--config" in text

    def test_bad_axis_value_fails_cleanly(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('[sweep]\ngaugers = ["sonar"]\n')
        code, text = run_cli("sweep", "--config", str(path), "--dry-run")
        assert code == 2
        assert "sonar" in text

    def test_tiny_sweep_writes_reports(self, tmp_path):
        path = tmp_path / "tiny.toml"
        path.write_text(
            'regions = ["us-east-1", "us-west-1"]\n'
            "n_training_datasets = 3\n"
            "n_estimators = 2\n"
            "[sweep]\n"
            'gaugers = ["snapshot", "passive-telemetry"]\n'
            "jobs = 1\n"
            "scale_mb = 300.0\n"
        )
        out_dir = tmp_path / "report"
        code, text = run_cli(
            "sweep", "--config", str(path), "--output", str(out_dir)
        )
        assert code == 0
        assert (out_dir / "sweep.json").exists()
        assert (out_dir / "sweep.md").exists()
        assert "probe_transfers" in text

    def test_schedulers_axis_dry_run(self):
        code, text = run_cli(
            "sweep", "--config", "examples/slo_sweep.toml", "--dry-run"
        )
        assert code == 0
        assert "scheduler=deadline-edf" in text
        assert "scheduler=fair-share" in text

    def test_parallel_workers_match_sequential(self, tmp_path):
        path = tmp_path / "tiny.toml"
        path.write_text(
            'regions = ["us-east-1", "us-west-1"]\n'
            "n_training_datasets = 3\n"
            "n_estimators = 2\n"
            "[sweep]\n"
            'schedulers = ["fifo", "priority"]\n'
            "jobs = 1\n"
            "scale_mb = 300.0\n"
        )
        seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
        code, _ = run_cli("sweep", "--config", str(path), "--output", str(seq_dir))
        assert code == 0
        code, _ = run_cli(
            "sweep", "--config", str(path), "--output", str(par_dir),
            "--jobs", "2",
        )
        assert code == 0
        assert (seq_dir / "sweep.json").read_text() == (
            par_dir / "sweep.json"
        ).read_text()

    def test_bad_worker_count_fails_cleanly(self):
        code, text = run_cli(
            "sweep", "--config", "examples/sweep.toml", "--jobs", "0"
        )
        assert code == 2
        assert "--jobs" in text
        # The check must not be skipped in dry-run mode either.
        code, text = run_cli(
            "sweep", "--config", "examples/sweep.toml", "--jobs", "0",
            "--dry-run",
        )
        assert code == 2
        assert "--jobs" in text


class TestRegisteredNameErrors:
    """Every name an error message advertises must actually resolve."""

    def test_unknown_gauger_fails_cleanly(self):
        code, text = run_cli("serve", "--gauger", "sonar")
        assert code == 2
        assert "unknown gauger" in text

    def test_unknown_predictor_fails_cleanly_in_predict(self):
        code, text = run_cli("predict", "--predictor", "oracle")
        assert code == 2
        assert "unknown predictor" in text

    @staticmethod
    def advertised_names(text: str) -> list[str]:
        known = text.split("known:", 1)[1]
        known = known.split("(")[0]  # drop the "(join with +…)" hint
        return [name.strip() for name in known.split(",") if name.strip()]

    def test_scenario_error_names_all_resolve(self):
        from repro.runtime.scenarios import scenario_known

        _, text = run_cli("serve", "--scenario", "meteor-strike")
        names = self.advertised_names(text)
        assert "diurnal+flash-crowd" in names  # composition is advertised
        for name in names:
            assert scenario_known(name), name

    @pytest.mark.parametrize(
        "flag, registry_name",
        [
            ("--variant", "variant_registry"),
            ("--policy", "policy_registry"),
            ("--gauger", "gauger_registry"),
            ("--predictor", "predictor_registry"),
            ("--planner", "planner_registry"),
            ("--scheduler", "admission_policy_registry"),
        ],
    )
    def test_registry_error_names_all_resolve(self, flag, registry_name):
        import repro.pipeline.registry as registry_module

        registry = getattr(registry_module, registry_name)
        _, text = run_cli("serve", flag, "nope-not-registered")
        names = self.advertised_names(text)
        assert names, text
        for name in names:
            assert name in registry, name


class TestProfiles:
    def test_topology_profile_flag(self):
        code, text = run_cli(
            "topology", "us-east-1", "eu-west-1", "--profile",
            "public-internet",
        )
        assert code == 0
        assert "public-internet" in text

    def test_unknown_profile_fails_cleanly(self):
        code, text = run_cli(
            "topology", "us-east-1", "--profile", "tin-cans"
        )
        assert code == 2
        assert "tin-cans" in text

    def test_public_internet_predicts_lower_bws(self):
        argv = (
            "us-east-1",
            "ap-southeast-1",
            "--datasets",
            "6",
            "--estimators",
            "5",
        )
        _, vpc = run_cli("predict", *argv)
        code, pub = run_cli(
            "predict", *argv, "--profile", "public-internet"
        )
        assert code == 0

        def min_achievable(text: str) -> float:
            line = [l for l in text.splitlines() if "achievable" in l][0]
            return float(line.split("achievable")[1].split()[0])

        assert min_achievable(pub) < min_achievable(vpc)
