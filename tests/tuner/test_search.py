"""Tests for the offline tuner (:mod:`repro.tuner.search`).

Covers tune-file validation, the successive-halving rung plan, the
pruning contract (pruned cells never execute again, unchanged-fidelity
survivors reuse their measured row), deterministic parallel execution,
full-fidelity parity of the final rung against the sweep runner's own
``run_cell``, and the winner.toml round-trip through the layered
config loader.
"""

import json

import pytest

from repro.experiments.sweep import CellResult, run_cell
from repro.pipeline.config import ServiceConfig, layered_config
from repro.tuner import (
    TuneError,
    load_tune,
    render_tune_markdown,
    rung_plan,
    run_tune,
    winning_toml,
    write_tune_report,
)

#: Two tiny regions + miniature training keep a real run in seconds.
FAST_BASE = """
regions = ["us-east-1", "us-west-1"]
n_training_datasets = 3
n_estimators = 2
seed = 11
"""


def write_toml(tmp_path, body, name="tune.toml"):
    path = tmp_path / name
    path.write_text(body)
    return path


class TestLoadTune:
    def test_parses_the_tune_table(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE
            + """
[sweep]
gaugers = ["snapshot", "passive-telemetry"]
jobs = 4

[tune]
target = 0.7
eta = 3
min_jobs = 2
""",
        )
        spec = load_tune(path)
        assert spec.target == pytest.approx(0.7)
        assert spec.eta == 3
        assert spec.min_jobs == 2
        assert len(spec.sweep.cells) == 2

    def test_target_defaults_to_the_base_tune_target(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE + 'tune_target = 0.85\n\n[sweep]\njobs = 1\n',
        )
        assert load_tune(path).target == pytest.approx(0.85)

    def test_tune_table_is_optional(self, tmp_path):
        path = write_toml(tmp_path, FAST_BASE + "\n[sweep]\njobs = 2\n")
        spec = load_tune(path)
        assert spec.target == ServiceConfig().tune_target
        assert spec.eta == 2
        assert spec.min_jobs == 1

    def test_unknown_tune_key_fails(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + "\n[sweep]\njobs = 1\n\n[tune]\ngoal = 0.9\n"
        )
        with pytest.raises(TuneError, match="goal"):
            load_tune(path)

    def test_bad_target_fails(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + "\n[sweep]\njobs = 1\n\n[tune]\ntarget = 1.5\n"
        )
        with pytest.raises(TuneError, match="target"):
            load_tune(path)

    def test_bad_eta_fails(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + "\n[sweep]\njobs = 1\n\n[tune]\neta = 1\n"
        )
        with pytest.raises(TuneError, match="eta"):
            load_tune(path)

    def test_min_jobs_above_jobs_fails(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE + "\n[sweep]\njobs = 2\n\n[tune]\nmin_jobs = 3\n",
        )
        with pytest.raises(TuneError, match="min_jobs"):
            load_tune(path)

    def test_example_tune_file_is_valid(self):
        spec = load_tune("examples/tune.toml")
        assert len(spec.sweep.cells) == 8
        assert spec.min_jobs == 2


class TestRungPlan:
    def test_ladder_grows_toward_full_fidelity(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE
            + """
[sweep]
gaugers = ["snapshot", "passive-telemetry"]
schedulers = ["fifo", "deadline-edf"]
preemptions = ["none", "urgent-slo"]
jobs = 8
repeats = 2
""",
        )
        # 8 cells, eta 2 -> 3 reduced rungs + the full-fidelity rung.
        assert rung_plan(load_tune(path)) == [(1, 1), (2, 1), (4, 1), (8, 2)]

    def test_min_jobs_floors_the_early_rungs(self):
        spec = load_tune("examples/tune.toml")
        plan = rung_plan(spec)
        assert all(jobs >= spec.min_jobs for jobs, _ in plan)
        assert plan[-1] == (spec.sweep.jobs, spec.sweep.repeats)

    def test_single_cell_matrix_runs_full_fidelity_only(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + "\n[sweep]\njobs = 4\nrepeats = 3\n"
        )
        assert rung_plan(load_tune(path)) == [(4, 3)]


def synthetic_runner(executed, attainment_by_gauger, cost_by_gauger):
    """A fake ``run_cell`` with scripted metrics, recording every call."""

    def fake_run_cell(rung_spec, cell, trained):
        executed.append((rung_spec.jobs, rung_spec.repeats, cell["gauger"]))
        gauger = cell["gauger"]
        return CellResult(
            cell=dict(cell),
            label=f"gauger={gauger}",
            metrics={
                "slo_attainment": attainment_by_gauger[gauger],
                "probe_cost_usd": cost_by_gauger[gauger],
                "replan_cost_usd": 0.0,
                "mean_jct_s": 100.0,
            },
        )

    return fake_run_cell


class TestPruning:
    """The sweep-runner-reuse contract under successive halving."""

    @pytest.fixture
    def spec(self, tmp_path):
        # Four cells, jobs=2, min_jobs=2: every rung (including the
        # final one) runs at fidelity (2, 1), so the measured-row
        # cache must collapse all re-runs — each cell executes once.
        path = write_toml(
            tmp_path,
            FAST_BASE
            + """
[sweep]
gaugers = ["snapshot", "passive-telemetry"]
schedulers = ["fifo", "deadline-edf"]
jobs = 2

[tune]
min_jobs = 2
target = 0.5
""",
        )
        return load_tune(path)

    def test_unchanged_fidelity_reuses_measured_rows(self, spec, monkeypatch):
        executed = []
        monkeypatch.setattr(
            "repro.tuner.search.run_cell",
            synthetic_runner(
                executed,
                {"snapshot": 0.9, "passive-telemetry": 0.2},
                {"snapshot": 0.10, "passive-telemetry": 0.01},
            ),
        )
        result = run_tune(spec)
        # Every rung shares fidelity (2, 1): each of the 4 cells runs
        # exactly once, ever — survivors reuse their measured row.
        assert len(executed) == 4
        assert result.cells_executed == 4
        # Feasible snapshot cells beat cheap-but-infeasible passive ones.
        assert result.winner.cell["gauger"] == "snapshot"
        assert result.feasible
        pruned = {label for rung in result.rungs for label in rung.pruned}
        assert any("passive-telemetry" in label for label in pruned)

    def test_pruned_cells_never_execute_at_higher_fidelity(
        self, tmp_path, monkeypatch
    ):
        path = write_toml(
            tmp_path,
            FAST_BASE
            + """
[sweep]
gaugers = ["snapshot", "passive-telemetry"]
schedulers = ["fifo", "deadline-edf"]
jobs = 4

[tune]
target = 0.5
""",
        )
        spec = load_tune(path)
        assert rung_plan(spec) == [(1, 1), (2, 1), (4, 1)]
        executed = []
        monkeypatch.setattr(
            "repro.tuner.search.run_cell",
            synthetic_runner(
                executed,
                {"snapshot": 0.9, "passive-telemetry": 0.2},
                {"snapshot": 0.10, "passive-telemetry": 0.01},
            ),
        )
        result = run_tune(spec)
        # 4 cells at jobs=1, 2 survivors at jobs=2, 1 at jobs=4 —
        # versus 12 cell-runs had nothing been pruned.
        assert result.cells_executed == 7
        # The infeasible passive cells were pruned at the first rung
        # and never ran again at any higher fidelity.
        assert all(
            gauger != "passive-telemetry"
            for jobs, _, gauger in executed
            if jobs > 1
        )
        assert result.winner.cell["gauger"] == "snapshot"

    def test_infeasible_matrix_flags_least_bad_winner(self, spec, monkeypatch):
        executed = []
        monkeypatch.setattr(
            "repro.tuner.search.run_cell",
            synthetic_runner(
                executed,
                {"snapshot": 0.4, "passive-telemetry": 0.3},
                {"snapshot": 0.10, "passive-telemetry": 0.01},
            ),
        )
        result = run_tune(spec)
        assert not result.feasible
        # Nothing meets 0.5: ranking falls back to cost, then
        # attainment — the cheap passive cells survive.
        assert result.winner.cell["gauger"] == "passive-telemetry"

    def test_progress_reports_rung_labels(self, spec, monkeypatch):
        executed, seen = [], []
        monkeypatch.setattr(
            "repro.tuner.search.run_cell",
            synthetic_runner(
                executed,
                {"snapshot": 0.9, "passive-telemetry": 0.2},
                {"snapshot": 0.10, "passive-telemetry": 0.01},
            ),
        )
        run_tune(spec, progress=lambda done, total, label: seen.append(label))
        assert seen
        assert all("rung" in label for label in seen)


class TestRealRuns:
    @pytest.fixture(scope="class")
    def spec(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("tune") / "tune.toml"
        path.write_text(
            FAST_BASE
            + """
[sweep]
gaugers = ["snapshot", "passive-telemetry"]
jobs = 1
scale_mb = 300.0

[tune]
target = 0.5
"""
        )
        return load_tune(path)

    @pytest.fixture(scope="class")
    def result(self, spec):
        return run_tune(spec)

    def test_parallel_run_matches_sequential(self, spec, result):
        parallel = run_tune(spec, workers=2)
        assert parallel.winner.to_json() == result.winner.to_json()
        assert [r.to_json() for r in parallel.rungs] == [
            r.to_json() for r in result.rungs
        ]
        assert parallel.cells_executed == result.cells_executed

    def test_winner_matches_the_unpruned_sweep_path(self, spec, result):
        # The final rung runs at full (jobs, repeats) through the same
        # run_cell the sweep runner uses, so the winner's row must be
        # identical to a direct full-fidelity measurement of that cell.
        direct = run_cell(spec.sweep, result.winner.cell, {})
        assert direct.to_json() == result.winner.to_json()

    def test_bad_worker_count_rejected(self, spec):
        with pytest.raises(TuneError, match="workers"):
            run_tune(spec, workers=0)

    def test_report_artifacts(self, result, tmp_path):
        json_path, md_path, toml_path = write_tune_report(
            result, tmp_path / "report"
        )
        data = json.loads(json_path.read_text())
        assert data["cells"] == 2
        assert data["cells_executed"] == result.cells_executed
        assert data["winner"]["label"] == result.winner.label
        assert "## Winner" in md_path.read_text()
        assert toml_path.read_text().startswith("# Winning configuration")

    def test_winner_toml_round_trips_through_layered_config(
        self, result, tmp_path
    ):
        _, _, toml_path = write_tune_report(result, tmp_path / "report")
        loaded = layered_config(ServiceConfig, path=toml_path)
        assert loaded == result.best_config()

    def test_markdown_names_the_objective(self, result):
        markdown = render_tune_markdown(result)
        assert "slo_attainment" in markdown
        assert "winner.toml" in markdown

    def test_winning_toml_spells_out_swept_axes(self, result):
        text = winning_toml(result)
        assert f'gauger = "{result.winner.cell["gauger"]}"' in text
        assert "seed = 11" in text


class TestRepeatsParity:
    def test_final_rung_repeats_match_direct_run_cell(self, tmp_path):
        # repeats > 1: the winner row must carry the same mean ± stdev
        # the unpruned path computes for that cell.
        path = write_toml(
            tmp_path,
            FAST_BASE
            + """
[sweep]
jobs = 1
scale_mb = 300.0
repeats = 2

[tune]
target = 0.5
""",
        )
        spec = load_tune(path)
        result = run_tune(spec)
        direct = run_cell(spec.sweep, result.winner.cell, {})
        assert result.winner.seeds == direct.seeds
        assert result.winner.metrics == direct.metrics
        assert result.winner.metrics_std == direct.metrics_std
