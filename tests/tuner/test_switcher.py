"""Tests for the online policy switcher (:mod:`repro.tuner.switcher`).

Unit-level coverage runs the switcher against scripted scheduler/plane
stand-ins (the switcher only touches a five-method surface), then the
integration half pins the teardown-restore ledger, the summary
columns, the observability wiring, and the committed E-TUNE
acceptance: adaptive ≥ the best static bundle at equal or lower
probe+replan cost.
"""

import pytest

from repro.experiments import tuner as etune
from repro.experiments.sweep import METRIC_COLUMNS
from repro.pipeline.config import ServiceConfig
from repro.pipeline.registry import admission_policy, tuner_registry
from repro.runtime.control import NoPreemption, UrgentSloPreemption
from repro.tuner import (
    ArmStats,
    EpsilonGreedy,
    NoSwitch,
    PolicyArm,
    PolicySwitcher,
    Ucb1,
    default_arms,
)

ARMS = (
    PolicyArm("baseline", "fifo", "none"),
    PolicyArm("edf", "deadline-edf", "none"),
    PolicyArm("edf+preempt", "deadline-edf", "urgent-slo"),
)


class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakeScheduler:
    """The five-member surface the switcher actually touches."""

    def __init__(self):
        self.sim = FakeSim()
        self.queued = []
        self.max_concurrent = 2
        self.admissions = []
        self._stats = {"slo_attained": 0.0, "slo_missed": 0.0}

    def set_admission(self, spec):
        self.admissions.append(spec)

    def stats(self):
        return dict(self._stats)

    def decide(self, attained=0.0, missed=0.0):
        self._stats["slo_attained"] += attained
        self._stats["slo_missed"] += missed


class FakePlane:
    def __init__(self):
        self.policy = None


def make_switcher(tuner="ucb1", cooldown=100.0, seed=42, **kwargs):
    config = ServiceConfig(
        regions=("us-east-1", "us-west-1"),
        tuner=tuner,
        switch_cooldown_s=cooldown,
        seed=seed,
    )
    scheduler = FakeScheduler()
    plane = FakePlane()
    switcher = PolicySwitcher(scheduler, plane, config, arms=ARMS, **kwargs)
    return switcher, scheduler, plane


class TestDefaultArms:
    def test_baseline_is_always_arm_zero(self):
        config = ServiceConfig(regions=("us-east-1",), scheduler="priority")
        arms = default_arms(config)
        assert arms[0] == PolicyArm("baseline", "priority", "none")
        assert [arm.name for arm in arms] == ["baseline", "edf", "edf+preempt"]

    def test_edf_baseline_drops_the_redundant_edf_arm(self):
        config = ServiceConfig(regions=("us-east-1",), scheduler="deadline-edf")
        assert [a.name for a in default_arms(config)] == [
            "baseline",
            "edf+preempt",
        ]

    def test_preempting_baseline_drops_the_preempt_arm(self):
        config = ServiceConfig(
            regions=("us-east-1",),
            scheduler="deadline-edf",
            preemption="urgent-slo",
        )
        assert [a.name for a in default_arms(config)] == ["baseline"]


class TestBandits:
    def test_registry_knows_all_three(self):
        assert set(tuner_registry.names()) >= {
            "none",
            "epsilon-greedy",
            "ucb1",
        }

    def test_cold_arms_are_explored_in_order(self):
        stats = [ArmStats(), ArmStats(), ArmStats()]
        for bandit in (EpsilonGreedy(seed=1), Ucb1()):
            picks = []
            for _ in range(3):
                index = bandit.choose(ARMS, stats)
                picks.append(index)
                stats[index].pulls += 1
            assert picks == [0, 1, 2]
            stats = [ArmStats(), ArmStats(), ArmStats()]

    def test_epsilon_zero_exploits_the_best_mean(self):
        bandit = EpsilonGreedy(epsilon=0.0, seed=5)
        stats = [
            ArmStats(pulls=2, rewarded=2, total_reward=0.5),
            ArmStats(pulls=2, rewarded=2, total_reward=1.8),
            ArmStats(pulls=2, rewarded=2, total_reward=1.0),
        ]
        assert bandit.choose(ARMS, stats) == 1

    def test_epsilon_greedy_is_seed_deterministic(self):
        stats = [
            ArmStats(pulls=3, rewarded=3, total_reward=1.0),
            ArmStats(pulls=3, rewarded=3, total_reward=2.0),
            ArmStats(pulls=3, rewarded=3, total_reward=0.5),
        ]
        first_bandit = EpsilonGreedy(epsilon=0.5, seed=7)
        first = [first_bandit.choose(ARMS, stats) for _ in range(8)]
        second_bandit = EpsilonGreedy(epsilon=0.5, seed=7)
        second = [second_bandit.choose(ARMS, stats) for _ in range(8)]
        assert first == second

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ValueError, match="epsilon"):
            EpsilonGreedy(epsilon=1.5)

    def test_ucb1_ties_break_toward_the_baseline(self):
        stats = [
            ArmStats(pulls=2, rewarded=2, total_reward=1.0),
            ArmStats(pulls=2, rewarded=2, total_reward=1.0),
            ArmStats(pulls=2, rewarded=2, total_reward=1.0),
        ]
        assert Ucb1().choose(ARMS, stats) == 0

    def test_ucb1_bonus_revisits_undersampled_arms(self):
        stats = [
            ArmStats(pulls=50, rewarded=50, total_reward=45.0),
            ArmStats(pulls=1, rewarded=1, total_reward=0.8),
            ArmStats(pulls=50, rewarded=50, total_reward=40.0),
        ]
        assert Ucb1().choose(ARMS, stats) == 1


class TestSwitcherUnit:
    def test_tuner_none_is_observation_only(self):
        with pytest.raises(ValueError, match="observation-only"):
            make_switcher(tuner="none")

    def test_no_switch_sentinel_always_picks_baseline(self):
        assert NoSwitch().choose(ARMS, [ArmStats() for _ in ARMS]) == 0

    def test_exploration_applies_each_arm_once(self):
        switcher, scheduler, plane = make_switcher()
        for tick in range(3):
            switcher.tick(tick * 200.0)
        # Cold start explored arms 0→1→2; arm 0 was already live.
        assert switcher.switches == 2
        assert scheduler.admissions == ["deadline-edf", "deadline-edf"]
        assert isinstance(plane.policy, UrgentSloPreemption)
        assert switcher.active == ARMS[2]
        assert switcher.arms_explored == 3

    def test_cooldown_gates_decisions(self):
        switcher, _, _ = make_switcher(cooldown=100.0)
        switcher.tick(0.0)
        switcher.tick(50.0)  # inside the window: observe only
        assert sum(s.pulls for s in switcher.stats.values()) == 1
        switcher.tick(100.0)
        assert sum(s.pulls for s in switcher.stats.values()) == 2

    def test_observation_credits_the_live_arm(self):
        switcher, scheduler, _ = make_switcher()
        switcher.tick(0.0)
        scheduler.decide(attained=3.0, missed=1.0)
        switcher.tick(200.0)
        entry = switcher.stats[("calm-steady", "baseline")]
        assert entry.rewarded == 1
        assert entry.total_reward == pytest.approx(0.75)

    def test_empty_windows_teach_nothing(self):
        switcher, _, _ = make_switcher()
        switcher.tick(0.0)
        switcher.tick(200.0)
        assert all(s.rewarded == 0 for s in switcher.stats.values())

    def test_regime_tracks_queue_pressure(self):
        switcher, scheduler, _ = make_switcher()
        assert switcher.regime(0.0) == "calm-steady"
        scheduler.queued = ["a", "b", "c"]
        assert switcher.regime(0.0) == "calm-backlogged"

    def test_regime_reads_warehouse_utilization(self):
        class Row:
            bucket_start = 0.0
            p95_mbps = 90.0
            capacity_mbps = 100.0

        class Log:
            size = 1

            def rollup(self, granularity, by):
                return [Row()]

        switcher, _, _ = make_switcher(warehouse=lambda: Log())
        assert switcher.regime(60.0) == "hot-steady"

    def test_cross_regime_stats_seed_new_regimes(self):
        switcher, scheduler, _ = make_switcher()
        for tick in range(3):
            switcher.tick(tick * 200.0)
        # A fresh regime must not present every arm as cold (which
        # would restart exploration at arm 0 on every regime shift).
        scheduler.queued = ["a", "b", "c"]
        views = switcher._selection_stats(switcher.regime(600.0))
        assert any(view.pulls for view in views)

    def test_close_restores_the_baseline(self):
        switcher, scheduler, plane = make_switcher()
        for tick in range(3):
            switcher.tick(tick * 200.0)
        assert switcher.active != switcher.baseline
        switcher.close()
        assert switcher.active == switcher.baseline
        assert switcher.restores == 1
        assert scheduler.admissions[-1] == "fifo"
        assert isinstance(plane.policy, NoPreemption)
        assert switcher.events[-1].action == "restore"

    def test_close_is_idempotent_and_dead(self):
        switcher, scheduler, _ = make_switcher()
        for tick in range(3):
            switcher.tick(tick * 200.0)
        switcher.close()
        applied = list(scheduler.admissions)
        switcher.close()
        switcher.tick(10_000.0)
        assert scheduler.admissions == applied
        assert switcher.restores == 1

    def test_close_with_baseline_live_is_a_noop(self):
        switcher, scheduler, _ = make_switcher()
        switcher.tick(0.0)  # first pull is the (already live) baseline
        switcher.close()
        assert switcher.restores == 0
        assert scheduler.admissions == []

    def test_apply_gauger_callback_fires_for_gauger_arms(self):
        applied = []
        arms = (
            PolicyArm("baseline", "fifo", "none"),
            PolicyArm("passive", "fifo", "none", gauger="passive-telemetry"),
        )
        config = ServiceConfig(
            regions=("us-east-1",), tuner="ucb1", switch_cooldown_s=10.0
        )
        switcher = PolicySwitcher(
            FakeScheduler(),
            FakePlane(),
            config,
            arms=arms,
            apply_gauger=applied.append,
        )
        switcher.tick(0.0)
        switcher.tick(20.0)
        assert applied == ["passive-telemetry"]

    def test_arm_stats_aggregates_over_regimes(self):
        switcher, scheduler, _ = make_switcher()
        switcher.tick(0.0)
        scheduler.decide(attained=1.0)
        scheduler.queued = ["a", "b", "c"]  # regime shift
        switcher.tick(200.0)
        stats = switcher.arm_stats()
        assert stats["baseline"]["pulls"] >= 1.0
        assert stats["baseline"]["rewarded"] == 1.0
        assert stats["baseline"]["mean_reward"] == pytest.approx(1.0)


class TestServiceIntegration:
    @pytest.fixture(scope="class")
    def adaptive(self):
        """One full adaptive E-TUNE run (stopped, summary cached)."""
        service = etune.run_service("adaptive")
        return service

    def test_teardown_restores_the_baseline_policies(self, adaptive):
        # Satellite regression: however many swaps happened mid-run,
        # stop() leaves the *configured* bundle installed.
        switcher = adaptive.control.switcher
        assert switcher is not None
        assert switcher.switches > 0
        assert switcher.active == switcher.baseline
        assert type(adaptive.scheduler.admission) is type(
            admission_policy(etune.MODES["adaptive"][0])
        )
        # close() is idempotent through repeated stop().
        restores = switcher.restores
        adaptive.stop()
        assert switcher.restores == restores

    def test_summary_carries_the_tuner_ledger(self, adaptive):
        summary = adaptive.summary()
        assert summary.policy_switches == adaptive.control.switcher.switches
        assert summary.tuner_arm_stats
        for bucket in summary.tuner_arm_stats.values():
            assert {"pulls", "rewarded", "total_reward", "mean_reward"} <= set(
                bucket
            )
        row = summary.to_row()
        assert row["policy_switches"] == float(summary.policy_switches)
        assert row["tuner_arms_explored"] == float(
            len(summary.tuner_arm_stats)
        )
        assert set(METRIC_COLUMNS) <= set(row)

    def test_switches_are_traced_and_scraped(self, adaptive):
        events = adaptive.hub.trace.events("policy-switch")
        assert events
        assert events[0].detail["action"] in ("switch", "restore")
        assert events[0].detail["previous"] != events[0].subject
        text = adaptive.hub.render_prometheus()
        assert "wanify_policy_switches_total" in text
        assert "wanify_tuner_arm_pulls" in text

    def test_static_modes_build_no_switcher(self):
        config = etune.tuner_config("fifo")
        assert config.tuner == "none"
        from repro.runtime.service import PipelineService

        service = PipelineService.build(config)
        assert service.control is None
        summary_defaults = ServiceConfig(regions=("us-east-1",))
        assert summary_defaults.tuner == "none"


class TestETuneAcceptance:
    """The committed drifting-scenario comparison (experiment E-TUNE)."""

    @pytest.fixture(scope="class")
    def results(self):
        return etune.run(fast=True)

    def test_adaptive_meets_or_beats_the_best_static(self, results):
        best = results[etune.best_static(results)]
        adaptive = results["adaptive"]
        assert adaptive.slo_attainment >= best.slo_attainment
        assert etune.cost_usd(adaptive) <= etune.cost_usd(best) + 1e-9

    def test_the_switcher_actually_switched(self, results):
        adaptive = results["adaptive"]
        assert adaptive.policy_switches > 0
        assert len(adaptive.tuner_arm_stats) == 3

    def test_static_modes_never_switch(self, results):
        for mode in ("fifo", "edf", "edf+preempt"):
            assert results[mode].policy_switches == 0
            assert results[mode].tuner_arm_stats == {}

    def test_render_names_the_verdict(self, results):
        text = etune.render(results)
        assert "adaptive vs best static" in text
        assert "switches" in text
