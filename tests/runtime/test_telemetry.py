"""Tests for the shared telemetry store and its estimators."""

import pytest

from repro.net.monitor import WanMonitor
from repro.net.simulator import NetworkSimulator
from repro.runtime.telemetry import LinkEstimate, LinkSeries, TelemetryStore


class TestLinkSeries:
    def test_empty_window_percentile_is_zero(self):
        series = LinkSeries()
        assert series.percentile(50) == 0.0
        assert series.percentile(95) == 0.0
        assert series.ewma == 0.0

    def test_single_sample_is_every_percentile(self):
        series = LinkSeries()
        series.add(1.0, 250.0)
        for p in (0, 50, 95, 100):
            assert series.percentile(p) == pytest.approx(250.0)

    def test_all_equal_rates(self):
        series = LinkSeries()
        for t in range(10):
            series.add(float(t), 100.0)
        assert series.percentile(50) == pytest.approx(100.0)
        assert series.percentile(95) == pytest.approx(100.0)
        assert series.ewma == pytest.approx(100.0)

    def test_idle_samples_excluded_from_capacity(self):
        series = LinkSeries()
        for t in range(8):
            series.add(float(t), 0.0)
        series.add(8.0, 400.0)
        # Active-only percentile sees just the one busy sample.
        assert series.percentile(50) == pytest.approx(400.0)
        # But the raw view (active_only=False) includes the idle ticks.
        assert series.percentile(50, active_only=False) < 400.0

    def test_sliding_window_drops_old_samples(self):
        series = LinkSeries()
        series.add(0.0, 1000.0)
        for t in range(100, 110):
            series.add(float(t), 100.0)
        # A 20s window anchored at t=109 excludes the 1000 Mbps sample.
        assert series.percentile(100, window_s=20.0) == pytest.approx(100.0)
        # An unbounded window still sees it.
        assert series.percentile(100) == pytest.approx(1000.0)

    def test_bounded_history(self):
        series = LinkSeries(maxlen=16)
        for t in range(100):
            series.add(float(t), float(t))
        assert len(series.samples) == 16
        assert series.samples[0][0] == 84.0

    def test_ewma_tracks_recent_level(self):
        series = LinkSeries(ewma_alpha=0.5)
        series.add(0.0, 100.0)
        series.add(1.0, 200.0)
        assert series.ewma == pytest.approx(150.0)

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            LinkSeries().percentile(101.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LinkSeries(maxlen=0)
        with pytest.raises(ValueError):
            LinkSeries(ewma_alpha=0.0)


class TestTelemetryStore:
    def test_record_matches_monitor_signature(self):
        store = TelemetryStore()
        store.record("us-east-1", 5.0, {"us-west-1": 120.0, "eu-west-1": 0.0})
        assert store.total_samples == 1
        assert store.links() == [
            ("us-east-1", "eu-west-1"),
            ("us-east-1", "us-west-1"),
        ]
        assert store.capacity_mbps("us-east-1", "us-west-1") == pytest.approx(
            120.0
        )

    def test_estimate_bundle(self):
        store = TelemetryStore()
        for t in range(5):
            store.record("a", float(t), {"b": 100.0 + t})
        estimate = store.estimate("a", "b")
        assert estimate.samples == 5
        assert estimate.last_time == 4.0
        assert estimate.p50 == pytest.approx(102.0)
        assert estimate.p95 >= estimate.p50

    def test_estimate_matrix_leaves_unsampled_pairs_zero(self):
        store = TelemetryStore()
        store.record("a", 1.0, {"b": 300.0})
        matrix = store.estimate_matrix(("a", "b"))
        assert matrix.get("a", "b") == pytest.approx(300.0)
        assert matrix.get("b", "a") == 0.0

    def test_unknown_link_reads_empty_sentinel(self):
        """Peeking at a never-sampled link yields the sentinel…"""
        store = TelemetryStore()
        estimate = store.estimate("a", "b")
        assert LinkEstimate.empty().is_empty
        assert estimate.is_empty
        assert estimate.p50 == estimate.p95 == estimate.ewma == 0.0
        assert estimate.last_time != estimate.last_time  # nan

    def test_estimate_peek_is_read_only(self):
        """…and leaves no phantom series behind (links() stays clean)."""
        store = TelemetryStore()
        store.record("a", 1.0, {"b": 100.0})
        store.estimate("x", "y")
        store.capacity_mbps("p", "q")
        assert store.links() == [("a", "b")]

    def test_single_sample_estimate(self):
        """One active sample is its own p50 and p95."""
        store = TelemetryStore()
        store.record("a", 1.0, {"b": 250.0})
        estimate = store.estimate("a", "b")
        assert not estimate.is_empty
        assert estimate.samples == 1
        assert estimate.p50 == pytest.approx(250.0)
        assert estimate.p95 == pytest.approx(250.0)

    def test_idle_only_window_is_empty_estimate(self):
        """A sampled-but-always-idle link reads as empty: zero-rate
        ticks say nothing about capacity, so percentiles stay 0 and
        ``is_empty`` is true even though ``last_time`` is real."""
        store = TelemetryStore()
        for t in range(4):
            store.record("a", float(t), {"b": 0.0})
        estimate = store.estimate("a", "b")
        assert estimate.is_empty
        assert estimate.samples == 0
        assert estimate.p95 == 0.0
        assert estimate.last_time == 3.0

    def test_outage_zeros_count_toward_raw_percentile(self):
        """Full-outage regression: the zero ticks a dead link keeps
        publishing are *retained* and count toward the percentile
        window when asked for the raw (``active_only=False``) view.

        The active-only default deliberately ignores them (an idle
        link says nothing about capacity), which means it replays the
        stale pre-outage p95 for as long as any busy sample remains in
        the window — the trap outage-aware consumers avoid by reading
        ``active_only=False``.
        """
        store = TelemetryStore(window_s=1000.0)
        # 5 busy ticks, then the link dies: 145 outage zeros.
        for t in range(5):
            store.record("a", float(t), {"b": 800.0})
        for t in range(5, 150):
            store.record("a", float(t), {"b": 0.0})
        # Zeros were kept in the series, not dropped on ingest.
        assert len(store.series("a", "b").samples) == 150
        # Active-only view: stale 800 Mbps (the documented trap).
        assert store.capacity_mbps("a", "b", 95.0) == pytest.approx(800.0)
        # Raw view: the outage zeros dominate and p95 collapses.
        assert store.capacity_mbps(
            "a", "b", 95.0, active_only=False
        ) == pytest.approx(0.0)

    def test_window_override_narrows_the_view(self):
        """Estimators accept a per-call trailing window: a recalibrator
        asking over its own (shorter) window sees only the outage."""
        store = TelemetryStore(window_s=1000.0)
        for t in range(5):
            store.record("a", float(t), {"b": 800.0})
        for t in range(5, 50):
            store.record("a", float(t), {"b": 0.0})
        # A 30 s window anchored at t=49 holds only outage zeros.
        assert store.capacity_mbps(
            "a", "b", 95.0, window_s=30.0, active_only=False
        ) == pytest.approx(0.0)
        assert store.estimate("a", "b", window_s=30.0).is_empty
        # The store-default window still reaches the busy samples.
        assert not store.estimate("a", "b").is_empty

    def test_estimate_matrix_raw_view(self):
        """``estimate_matrix`` plumbs ``active_only``/``window_s``."""
        store = TelemetryStore(window_s=100.0)
        for t in range(10):
            store.record("a", float(t), {"b": 0.0})
        store.record("a", 10.0, {"b": 300.0})
        active = store.estimate_matrix(("a", "b"), percentile=50.0)
        raw = store.estimate_matrix(
            ("a", "b"), percentile=50.0, active_only=False
        )
        assert active.get("a", "b") == pytest.approx(300.0)
        assert raw.get("a", "b") == pytest.approx(0.0)

    def test_attached_sink_sees_every_record(self):
        """attach() forwards (dc, time, rates) verbatim to sinks."""
        store = TelemetryStore()
        seen = []
        store.record("a", 0.0, {"b": 10.0})  # before attach: not seen
        store.attach(lambda dc, t, rates: seen.append((dc, t, rates)))
        store.record("a", 1.0, {"b": 20.0})
        store.record("c", 2.0, {"d": 0.0})
        assert seen == [
            ("a", 1.0, {"b": 20.0}),
            ("c", 2.0, {"d": 0.0}),
        ]

    def test_fed_by_live_monitor(self, triad, calm):
        """A WanMonitor with the store as sink publishes every tick."""
        net = NetworkSimulator(triad, fluctuation=calm)
        store = TelemetryStore()
        monitor = WanMonitor(
            net, "us-east-1", interval_s=1.0, on_sample=store.record
        )
        net.start_transfer("us-east-1", "us-west-1", 1e5)
        net.sim.run(until=10.0)
        assert store.total_samples == len(monitor.samples) == 10
        assert store.capacity_mbps("us-east-1", "us-west-1") > 0
        # The store's latest matches the monitor's latest.
        assert store.series(
            "us-east-1", "us-west-1"
        ).samples[-1][1] == pytest.approx(monitor.latest_rate("us-west-1"))
