"""Tests for the shared telemetry store and its estimators."""

import pytest

from repro.net.monitor import WanMonitor
from repro.net.simulator import NetworkSimulator
from repro.runtime.telemetry import LinkSeries, TelemetryStore


class TestLinkSeries:
    def test_empty_window_percentile_is_zero(self):
        series = LinkSeries()
        assert series.percentile(50) == 0.0
        assert series.percentile(95) == 0.0
        assert series.ewma == 0.0

    def test_single_sample_is_every_percentile(self):
        series = LinkSeries()
        series.add(1.0, 250.0)
        for p in (0, 50, 95, 100):
            assert series.percentile(p) == pytest.approx(250.0)

    def test_all_equal_rates(self):
        series = LinkSeries()
        for t in range(10):
            series.add(float(t), 100.0)
        assert series.percentile(50) == pytest.approx(100.0)
        assert series.percentile(95) == pytest.approx(100.0)
        assert series.ewma == pytest.approx(100.0)

    def test_idle_samples_excluded_from_capacity(self):
        series = LinkSeries()
        for t in range(8):
            series.add(float(t), 0.0)
        series.add(8.0, 400.0)
        # Active-only percentile sees just the one busy sample.
        assert series.percentile(50) == pytest.approx(400.0)
        # But the raw view (active_only=False) includes the idle ticks.
        assert series.percentile(50, active_only=False) < 400.0

    def test_sliding_window_drops_old_samples(self):
        series = LinkSeries()
        series.add(0.0, 1000.0)
        for t in range(100, 110):
            series.add(float(t), 100.0)
        # A 20s window anchored at t=109 excludes the 1000 Mbps sample.
        assert series.percentile(100, window_s=20.0) == pytest.approx(100.0)
        # An unbounded window still sees it.
        assert series.percentile(100) == pytest.approx(1000.0)

    def test_bounded_history(self):
        series = LinkSeries(maxlen=16)
        for t in range(100):
            series.add(float(t), float(t))
        assert len(series.samples) == 16
        assert series.samples[0][0] == 84.0

    def test_ewma_tracks_recent_level(self):
        series = LinkSeries(ewma_alpha=0.5)
        series.add(0.0, 100.0)
        series.add(1.0, 200.0)
        assert series.ewma == pytest.approx(150.0)

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            LinkSeries().percentile(101.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LinkSeries(maxlen=0)
        with pytest.raises(ValueError):
            LinkSeries(ewma_alpha=0.0)


class TestTelemetryStore:
    def test_record_matches_monitor_signature(self):
        store = TelemetryStore()
        store.record("us-east-1", 5.0, {"us-west-1": 120.0, "eu-west-1": 0.0})
        assert store.total_samples == 1
        assert store.links() == [
            ("us-east-1", "eu-west-1"),
            ("us-east-1", "us-west-1"),
        ]
        assert store.capacity_mbps("us-east-1", "us-west-1") == pytest.approx(
            120.0
        )

    def test_estimate_bundle(self):
        store = TelemetryStore()
        for t in range(5):
            store.record("a", float(t), {"b": 100.0 + t})
        estimate = store.estimate("a", "b")
        assert estimate.samples == 5
        assert estimate.last_time == 4.0
        assert estimate.p50 == pytest.approx(102.0)
        assert estimate.p95 >= estimate.p50

    def test_estimate_matrix_leaves_unsampled_pairs_zero(self):
        store = TelemetryStore()
        store.record("a", 1.0, {"b": 300.0})
        matrix = store.estimate_matrix(("a", "b"))
        assert matrix.get("a", "b") == pytest.approx(300.0)
        assert matrix.get("b", "a") == 0.0

    def test_fed_by_live_monitor(self, triad, calm):
        """A WanMonitor with the store as sink publishes every tick."""
        net = NetworkSimulator(triad, fluctuation=calm)
        store = TelemetryStore()
        monitor = WanMonitor(
            net, "us-east-1", interval_s=1.0, on_sample=store.record
        )
        net.start_transfer("us-east-1", "us-west-1", 1e5)
        net.sim.run(until=10.0)
        assert store.total_samples == len(monitor.samples) == 10
        assert store.capacity_mbps("us-east-1", "us-west-1") > 0
        # The store's latest matches the monitor's latest.
        assert store.series(
            "us-east-1", "us-west-1"
        ).samples[-1][1] == pytest.approx(monitor.latest_rate("us-west-1"))
