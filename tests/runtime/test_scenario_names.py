"""Discoverability of scenario names, including ``+``-composed ones."""

import pytest

from repro.runtime.scenarios import (
    FEATURED_COMPOSITIONS,
    scenario,
    scenario_known,
    scenario_names,
)


class TestScenarioNames:
    def test_atomic_names_only_by_default(self):
        for name in scenario_names():
            assert "+" not in name

    def test_include_composed_appends_featured_spellings(self):
        names = scenario_names(include_composed=True)
        for composed in FEATURED_COMPOSITIONS:
            assert composed in names

    def test_every_advertised_name_resolves(self):
        # The contract entry points rely on: anything scenario_names()
        # prints — atomic or composed — must build.
        for name in scenario_names(include_composed=True):
            assert scenario_known(name), name
            model = scenario(name, seed=3)
            assert model.factor(0, 1, 0.0) > 0.0

    def test_composition_of_any_two_atomic_names_resolves(self):
        atomic = scenario_names()
        for left in atomic:
            for right in atomic:
                assert scenario_known(f"{left}+{right}")

    def test_unknown_part_makes_composition_unknown(self):
        assert not scenario_known("diurnal+quake")
        assert not scenario_known("")
        with pytest.raises(KeyError):
            scenario("diurnal+quake")
