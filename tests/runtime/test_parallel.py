"""Tests for the process-parallel shard executor.

The contract under test: partitioned shard execution is a pure
function of its tasks — the same mix drained with ``workers=0``
(serial, in-process) and ``workers=2`` (multiprocessing pool) produces
byte-identical per-job records and merged statistics, shard routing
matches the in-process sharded scheduler's tenant hash, and any pool
failure degrades to the serial path instead of crashing.
"""

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.runtime.scheduling import parallel as parallel_mod
from repro.runtime.scheduling.parallel import (
    ShardExecutor,
    ShardTask,
    build_tasks,
    merge_stats,
    partition_mix,
    run_shard,
)
from repro.runtime.scheduling.shards import ShardedScheduler
from repro.runtime.scheduling.slo import SLO, spread_slos
from repro.runtime.service import default_job_mix

KEYS = ("us-east-1", "us-west-1", "eu-west-1")


def _entries(count=12, seed=7, deadline_s=1800.0):
    mix = default_job_mix(KEYS, count=count, seed=seed)
    if deadline_s is None:
        return [(delay, job, None, None) for delay, job in mix]
    return [
        (delay, job, None, slo)
        for delay, job, slo in spread_slos(mix, deadline_s, seed=seed)
    ]


def _tasks(entries, shards=4, max_concurrent=8):
    return build_tasks(
        entries,
        shards,
        regions=KEYS,
        vm="t2.medium",
        profile="vpc-peering",
        scenario=None,
        seed=42,
        kernel="scalar",
        admission="deadline-edf",
        default_policy="tetrium",
        max_concurrent=max_concurrent,
        admit_batch=16,
    )


def _finish_times(results):
    return {
        record.name: record.finished_s
        for result in results
        for record in result.records
    }


class TestPartitioning:
    def test_routing_matches_in_process_sharded_scheduler(self):
        entries = _entries()
        cluster = GeoCluster.build(KEYS, "t2.medium")
        sharded = ShardedScheduler(cluster, shards=4)
        slices = partition_mix(entries, 4)
        for shard_index, chunk in enumerate(slices):
            for _, job, _, slo in chunk:
                assert sharded.shard_of(job, slo) == shard_index

    def test_every_entry_lands_exactly_once(self):
        entries = _entries()
        slices = partition_mix(entries, 4)
        names = sorted(
            job.name for chunk in slices for _, job, _, _ in chunk
        )
        assert names == sorted(job.name for _, job, _, _ in entries)

    def test_build_tasks_splits_concurrency_like_shards(self):
        tasks = _tasks(_entries(), shards=3, max_concurrent=8)
        assert [t.max_concurrent for t in tasks] == [3, 3, 2]

    def test_build_tasks_rejects_zero_shards(self):
        with pytest.raises(ValueError, match="shard count"):
            _tasks(_entries(), shards=0)


class TestDeterminism:
    def test_run_shard_is_deterministic(self):
        task = _tasks(_entries(count=6), shards=1)[0]
        first = run_shard(task)
        second = run_shard(task)
        assert first.records == second.records
        assert first.events_processed == second.events_processed
        assert first.sim_end_s == second.sim_end_s

    def test_pool_matches_serial_exactly(self):
        """workers=2 must reproduce workers=0 per-job completion times
        (the acceptance bound is ≤ 1e-6; the executor achieves 0)."""
        tasks = _tasks(_entries())
        serial = ShardExecutor(0)
        pooled = ShardExecutor(2)
        serial_results = serial.run(tasks)
        pooled_results = pooled.run(tasks)
        assert serial.workers_used == 0
        serial_times = _finish_times(serial_results)
        pooled_times = _finish_times(pooled_results)
        assert serial_times.keys() == pooled_times.keys()
        for name, finished in serial_times.items():
            assert abs(finished - pooled_times[name]) <= 1e-6
        if not pooled.fell_back:
            assert pooled.workers_used == 2
            assert merge_stats(pooled_results) == merge_stats(
                serial_results
            )

    def test_workers_one_takes_serial_path(self):
        executor = ShardExecutor(1)
        executor.run(_tasks(_entries(count=4), shards=2))
        assert executor.workers_used == 0
        assert not executor.fell_back


class TestMerge:
    def test_reconciliation(self):
        results = ShardExecutor(0).run(_tasks(_entries()))
        merged = merge_stats(results)
        assert merged["submitted"] == (
            merged["completed"] + merged["queued"] + merged["running"]
        )
        assert merged["completed"] == 12.0
        assert merged["shards"] == 4.0
        assert merged["events_processed"] > 0

    def test_makespan_spans_shards_globally(self):
        results = ShardExecutor(0).run(_tasks(_entries()))
        merged = merge_stats(results)
        records = [r for result in results for r in result.records]
        first = min(r.submitted_s for r in records)
        last = max(r.finished_s for r in records)
        assert merged["makespan_s"] == pytest.approx(last - first)

    def test_empty_results_report_zero_stats(self):
        merged = merge_stats([])
        assert merged["completed"] == 0.0
        assert merged["fairness"] == 1.0
        assert merged["slo_attainment"] == 1.0

    def test_attainment_counts_only_promised_deadlines(self):
        no_slo = _entries(deadline_s=None)
        results = ShardExecutor(0).run(_tasks(no_slo))
        merged = merge_stats(results)
        assert merged["slo_attained"] == 0.0
        assert merged["slo_missed"] == 0.0
        assert merged["slo_attainment"] == 1.0


class TestFallback:
    def test_pool_failure_degrades_to_serial(self, monkeypatch):
        def broken_context():
            raise OSError("no multiprocessing here")

        monkeypatch.setattr(
            ShardExecutor, "_context", staticmethod(broken_context)
        )
        tasks = _tasks(_entries(count=6), shards=2)
        executor = ShardExecutor(4)
        results = executor.run(tasks)
        assert executor.fell_back
        assert executor.workers_used == 0
        reference = ShardExecutor(0).run(tasks)
        assert _finish_times(results) == _finish_times(reference)

    def test_fallback_flag_resets_on_next_clean_run(self, monkeypatch):
        """``fell_back`` describes the *last* run, not executor history."""
        tasks = _tasks(_entries(count=4), shards=2)
        executor = ShardExecutor(2)
        original = ShardExecutor._context
        monkeypatch.setattr(
            ShardExecutor,
            "_context",
            staticmethod(lambda: (_ for _ in ()).throw(OSError("down"))),
        )
        executor.run(tasks)
        assert executor.fell_back
        monkeypatch.setattr(
            ShardExecutor, "_context", staticmethod(original)
        )
        executor.run(tasks)
        assert not executor.fell_back

    def test_single_task_skips_the_pool(self):
        """One shard never pays pool startup, whatever ``workers`` says."""
        executor = ShardExecutor(8)
        results = executor.run(_tasks(_entries(count=3), shards=1))
        assert executor.workers_used == 0
        assert not executor.fell_back
        assert len(results) == 1

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ShardExecutor(-1)


class TestCrashedWorkerDrain:
    """A worker that dies mid-drain must be loud, not a dropped shard."""

    @staticmethod
    def _poison(task):
        """A task whose worker crashes rebuilding its shard: the
        admission-policy name resolves in the *worker*, and this one
        is registered nowhere."""
        from dataclasses import replace

        return replace(task, admission="no-such-admission-policy")

    def test_serial_path_raises_the_real_error(self):
        tasks = _tasks(_entries(count=4), shards=2)
        poisoned = [tasks[0], self._poison(tasks[1])]
        with pytest.raises(KeyError, match="no-such-admission-policy"):
            ShardExecutor(0).run(poisoned)

    def test_pool_crash_falls_back_then_still_raises(self):
        """The pool dies on the poisoned task; the serial retry hits
        the same error — fall-back covers *pool* failures, it never
        swallows a genuinely broken task."""
        tasks = _tasks(_entries(count=4), shards=2)
        poisoned = [tasks[0], self._poison(tasks[1])]
        executor = ShardExecutor(2)
        with pytest.raises(KeyError, match="no-such-admission-policy"):
            executor.run(poisoned)
        assert executor.fell_back
        assert executor.workers_used == 0

    def test_executor_survives_a_crash(self):
        """After surfacing a crash the same executor drains healthy
        tasks normally — no wedged pool state left behind."""
        tasks = _tasks(_entries(count=4), shards=2)
        executor = ShardExecutor(2)
        with pytest.raises(KeyError):
            executor.run([self._poison(tasks[0]), tasks[1]])
        results = executor.run(tasks)
        assert len(results) == 2
        assert sum(len(r.records) for r in results) == 4
        assert not executor.fell_back


class TestTaskPickling:
    def test_shard_task_round_trips(self):
        import pickle

        task = _tasks(_entries(count=3), shards=1)[0]
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert isinstance(clone, ShardTask)

    def test_run_shard_pickles_by_reference(self):
        import pickle

        assert pickle.loads(pickle.dumps(run_shard)) is run_shard


class TestServiceIntegration:
    @pytest.fixture(scope="class")
    def service(self):
        from repro.pipeline.config import ServiceConfig
        from repro.runtime.service import PipelineService

        config = ServiceConfig(
            regions=KEYS,
            scheduler_shards=4,
            shard_workers=2,
            scheduler="deadline-edf",
            slo_deadline_s=1800.0,
            max_concurrent=8,
        )
        service = PipelineService.build(config)
        mix = default_job_mix(KEYS, count=8, seed=config.seed)
        service.drain_parallel(mix)
        service.stop()
        return service

    def test_summary_reports_merged_stats(self, service):
        summary = service.summary()
        assert summary.completed == 8
        assert summary.scheduler_shards == 4
        assert summary.parallel_wall_s > 0.0
        if not service.parallel_fell_back:
            assert summary.shard_worker_count == 2
        row = summary.to_row()
        assert row["shard_worker_count"] == float(
            summary.shard_worker_count
        )
        assert row["parallel_wall_s"] == summary.parallel_wall_s

    def test_records_survive_for_rendering(self, service):
        assert len(service.parallel_records) == 8
        names = {record.name for record in service.parallel_records}
        assert len(names) == 8

    def test_metrics_families_present(self, service):
        text = service.hub.render_prometheus()
        assert "wanify_shard_workers" in text
        assert "wanify_parallel_wall_seconds" in text

    def test_lazy_package_export(self):
        import repro.runtime.scheduling as scheduling

        assert scheduling.ShardExecutor is ShardExecutor

    def test_module_alias(self):
        assert parallel_mod.ShardExecutor is ShardExecutor
