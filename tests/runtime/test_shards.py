"""Unit and scale tests for :mod:`repro.runtime.scheduling.shards`."""

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.net.dynamics import StaticModel
from repro.runtime.scenarios import scenario
from repro.runtime.scheduler import JobScheduler
from repro.runtime.scheduling import SLO, ShardedScheduler as LazyExport
from repro.runtime.scheduling.shards import (
    ShardedScheduler,
    shard_for_tenant,
    split_concurrency,
)

PAIR = ("us-east-1", "us-west-1")


def _job(name, mb=60.0):
    return JobSpec(
        name=name,
        stages=[
            StageSpec(
                "map", cpu_s_per_mb=0.01, output_ratio=1.0, shuffle=False
            ),
            StageSpec(
                "reduce", cpu_s_per_mb=0.01, output_ratio=0.1, shuffle=True
            ),
        ],
        input_mb_by_dc={k: mb for k in PAIR},
    )


def _cluster(weather=None):
    return GeoCluster.build(
        PAIR,
        "t2.medium",
        fluctuation=weather if weather is not None else StaticModel(),
        kernel="vectorized",
    )


def _tenant_for_shard(index, shards):
    """A tenant name that hashes to ``index`` (deterministic search)."""
    for i in range(1000):
        name = f"tenant{i}"
        if shard_for_tenant(name, shards) == index:
            return name
    raise AssertionError("no tenant found")  # pragma: no cover


class TestHashing:
    def test_stable_across_calls(self):
        assert shard_for_tenant("acme", 4) == shard_for_tenant("acme", 4)

    def test_in_range(self):
        for tenant in ("a", "acme", "wordcount", "tpcds", "x" * 50):
            for shards in (1, 2, 3, 7):
                assert 0 <= shard_for_tenant(tenant, shards) < shards

    def test_known_value(self):
        # CRC-32 is standardized, so routing is stable across machines
        # and Python versions (unlike the salted builtin hash()).
        import zlib

        assert shard_for_tenant("acme", 4) == zlib.crc32(b"acme") % 4

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_for_tenant("acme", 0)


class TestSplitConcurrency:
    def test_even_split(self):
        assert split_concurrency(8, 4) == [2, 2, 2, 2]

    def test_remainder_goes_to_first_shards(self):
        assert split_concurrency(7, 4) == [2, 2, 2, 1]

    def test_every_shard_gets_a_slot(self):
        assert split_concurrency(2, 4) == [1, 1, 1, 1]

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            split_concurrency(4, 0)


class TestSurface:
    def test_lazy_package_export_is_the_class(self):
        assert LazyExport is ShardedScheduler

    def test_shard_count_and_budget(self):
        sched = ShardedScheduler(_cluster(), shards=3, max_concurrent=7)
        assert sched.shard_count == 3
        assert sched.max_concurrent == 7
        assert [s.max_concurrent for s in sched.shards] == [3, 2, 2]

    def test_set_max_concurrent_resplits(self):
        sched = ShardedScheduler(_cluster(), shards=3, max_concurrent=6)
        sched.set_max_concurrent(9)
        assert [s.max_concurrent for s in sched.shards] == [3, 3, 3]
        with pytest.raises(ValueError):
            sched.set_max_concurrent(0)

    def test_default_policy_propagates(self):
        sched = ShardedScheduler(_cluster(), shards=2)
        sched.default_policy = "kimchi"
        assert all(s.default_policy == "kimchi" for s in sched.shards)

    def test_set_admission_propagates(self):
        sched = ShardedScheduler(_cluster(), shards=2)
        sched.set_admission("deadline-edf")
        assert all(
            type(s.admission).__name__ == "DeadlineAdmission"
            for s in sched.shards
        )

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardedScheduler(_cluster(), shards=0)

    def test_stats_zero_state(self):
        sched = ShardedScheduler(_cluster(), shards=2)
        stats = sched.stats()
        assert stats["completed"] == 0.0
        assert stats["shards"] == 2.0
        assert stats["slo_attainment"] == 1.0


class TestRouting:
    def test_tenant_slo_routes_to_its_shard(self):
        sched = ShardedScheduler(_cluster(), shards=4, max_concurrent=4)
        job = _job("whatever-0")
        slo = SLO(deadline_s=600.0, tenant="acme")
        assert sched.shard_of(job, slo) == shard_for_tenant("acme", 4)

    def test_anonymous_jobs_route_by_name_prefix(self):
        sched = ShardedScheduler(_cluster(), shards=4, max_concurrent=4)
        assert sched.shard_of(_job("wordcount-3")) == shard_for_tenant(
            "wordcount", 4
        )

    def test_submit_lands_on_routed_shard_modulo_stealing(self):
        sched = ShardedScheduler(_cluster(), shards=2, max_concurrent=2)
        tenant = _tenant_for_shard(1, 2)
        ticket = sched.submit(
            _job("routed-0"), slo=SLO(deadline_s=600.0, tenant=tenant)
        )
        # First submission: its shard has a free slot, so no stealing
        # can have moved it — it runs where it was routed.
        assert any(t is ticket for t in sched.shards[1].running)


class TestStealing:
    def test_idle_shards_steal_queued_work(self):
        sched = ShardedScheduler(
            _cluster(), shards=4, max_concurrent=4, admission="deadline-edf"
        )
        for i in range(12):
            sched.submit(
                _job(f"burst-{i}"),
                slo=SLO(deadline_s=30000.0, tenant="acme"),
            )
        # One slot per shard, all submissions routed to one tenant's
        # shard: every other busy slot was filled by stealing.
        assert len(sched.running) == 4
        assert sched.steal_count >= 3
        sched.sim.run()
        stats = sched.stats()
        assert stats["completed"] == 12.0
        assert stats["steals"] == float(sched.steal_count)

    def test_steal_events_fire(self):
        events = []
        sched = ShardedScheduler(_cluster(), shards=2, max_concurrent=2)
        sched.on_event = lambda kind, ticket: events.append(kind)
        for i in range(6):
            sched.submit(
                _job(f"ev-{i}"), slo=SLO(deadline_s=30000.0, tenant="acme")
            )
        sched.sim.run()
        assert "steal" in events
        assert events.count("admit") == 6

    def test_no_steals_without_contention(self):
        sched = ShardedScheduler(_cluster(), shards=2, max_concurrent=4)
        sched.submit(_job("solo-0"), slo=SLO(deadline_s=600.0, tenant="a"))
        sched.sim.run()
        assert sched.steal_count == 0


class TestPreemption:
    def test_preempt_requeues_victim_on_its_shard(self):
        sched = ShardedScheduler(_cluster(), shards=2, max_concurrent=2)
        tenant = _tenant_for_shard(0, 2)
        victim = sched.submit(
            _job("victim-0"), slo=SLO(deadline_s=9000.0, tenant=tenant)
        )
        checkpoint = sched.preempt(victim)
        assert checkpoint is not None
        assert victim.preemptions == 1
        sched.sim.run()
        assert sched.stats()["completed"] == 1.0

    def test_cross_shard_beneficiary_is_stolen_first(self):
        sched = ShardedScheduler(_cluster(), shards=2, max_concurrent=2)
        t0 = _tenant_for_shard(0, 2)
        t1 = _tenant_for_shard(1, 2)
        victim = sched.submit(
            _job("vic-0"), slo=SLO(deadline_s=9000.0, tenant=t0)
        )
        sched.submit(_job("busy-0"), slo=SLO(deadline_s=9000.0, tenant=t1))
        beneficiary = sched.submit(
            _job("benef-0"), slo=SLO(deadline_s=300.0, tenant=t1)
        )
        assert any(t is beneficiary for t in sched.shards[1].queued)
        before = sched.steal_count
        sched.preempt(victim, beneficiary)
        assert sched.steal_count == before + 1
        # The beneficiary took the vacated slot on the victim's shard.
        assert any(t is beneficiary for t in sched.shards[0].running)
        sched.sim.run()
        assert sched.stats()["completed"] == 3.0

    def test_preempting_unknown_ticket_raises(self):
        sched = ShardedScheduler(_cluster(), shards=2)
        ghost = sched.submit(_job("ghost-0"))
        sched.sim.run()
        with pytest.raises(ValueError, match="not running"):
            sched.preempt(ghost)


N_SCALE = 2000


@pytest.mark.slow
class TestScale:
    """The 100× target: 2000 queued jobs across 4 shards."""

    def _drive(self, scheduler):
        for i in range(N_SCALE):
            slo = SLO(
                # Scrambled-but-generous deadlines: EDF has real work
                # to do, yet a drained queue attains them.
                deadline_s=3600.0 * 24 + ((i * 7919) % N_SCALE) * 60.0,
                tenant=f"tenant{i % 16}",
            )
            scheduler.submit(_job(f"crowd-{i}", mb=40.0), slo=slo)
        scheduler.sim.run()
        return scheduler.stats()

    @pytest.fixture(scope="class")
    def sharded(self):
        weather = scenario("flash-crowd", seed=7)
        sched = ShardedScheduler(
            _cluster(weather),
            shards=4,
            max_concurrent=4,
            admission="deadline-edf",
        )
        return self._drive(sched), sched

    @pytest.fixture(scope="class")
    def single(self):
        weather = scenario("flash-crowd", seed=7)
        sched = JobScheduler(
            _cluster(weather), max_concurrent=4, admission="deadline-edf"
        )
        return self._drive(sched), sched

    def test_all_jobs_complete(self, sharded):
        stats, sched = sharded
        assert stats["completed"] == float(N_SCALE)
        assert stats["queued"] == stats["running"] == 0.0
        assert stats["submitted"] == float(N_SCALE)

    def test_attainment_no_worse_than_single_shard(self, sharded, single):
        sharded_stats, _ = sharded
        single_stats, _ = single
        assert (
            sharded_stats["slo_attainment"]
            >= single_stats["slo_attainment"]
        )

    def test_sharding_actually_stole_work(self, sharded):
        stats, sched = sharded
        assert stats["steals"] > 0
        assert sched.peak_concurrency == 4
