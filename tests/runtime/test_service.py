"""End-to-end tests for the runtime service.

The acceptance scenario: ≥3 concurrent jobs on a drifting network, at
least one mid-job re-plan, online re-planning beating the frozen
submit-time plan on total completion time — all deterministic under a
fixed seed.
"""

import pytest

from repro.net.profiles import network_profile
from repro.runtime.scenarios import StepDrop
from repro.runtime.service import (
    ServiceConfig,
    ServiceSummary,
    WANifyService,
    default_job_mix,
)

REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")
SEED = 11

FAST = dict(n_training_datasets=10, n_estimators=8)


def _config(online: bool) -> ServiceConfig:
    return ServiceConfig(
        regions=REGIONS,
        seed=SEED,
        online=online,
        max_concurrent=3,
        check_interval_s=30.0,
        cooldown_s=180.0,
        **FAST,
    )


def _drifting_weather(config: ServiceConfig) -> StepDrop:
    """A 65% substrate capacity drop at t=240s — mid-mix."""
    base = network_profile(config.profile).fluctuation(seed=config.seed)
    return StepDrop(base, config.seed, at_s=240.0, level=0.35)


def _serve(online: bool) -> WANifyService:
    config = _config(online)
    service = WANifyService.build(config, weather=_drifting_weather(config))
    # Compress the mix's arrival gaps so ≥3 jobs overlap in flight.
    for delay, job in default_job_mix(
        REGIONS, count=6, seed=7, scale_mb=4000.0
    ):
        service.submit_at(delay * 0.3, job)
    service.run()
    service.stop()
    return service


@pytest.fixture(scope="module")
def online_service() -> WANifyService:
    return _serve(online=True)


@pytest.fixture(scope="module")
def static_service() -> WANifyService:
    return _serve(online=False)


class TestAcceptance:
    def test_all_jobs_complete(self, online_service):
        assert len(online_service.scheduler.completed) == 6
        assert all(
            t.result is not None
            for t in online_service.scheduler.completed
        )

    def test_at_least_three_jobs_ran_concurrently(self, online_service):
        assert online_service.scheduler.peak_concurrency >= 3

    def test_at_least_one_mid_job_replan(self, online_service):
        summary = online_service.summary()
        assert summary.replans >= 1
        # "Mid-job": some job was in flight when the event fired.
        tickets = online_service.scheduler.completed
        for event in summary.events:
            assert any(
                t.started_s <= event.time <= t.finished_s
                for t in tickets
            )

    def test_replan_reacts_to_the_drop(self, online_service):
        first = online_service.summary().events[0]
        assert first.time > 240.0  # after the step hit
        assert first.observed_mbps < first.predicted_mbps

    def test_online_beats_static_total_completion(
        self, online_service, static_service
    ):
        online = online_service.summary()
        static = static_service.summary()
        assert static.replans == 0
        assert online.total_jct_s < static.total_jct_s

    def test_telemetry_flowed_through_agents(self, online_service):
        summary = online_service.summary()
        assert summary.telemetry_samples > 100
        # Every DC's agent published.
        sources = {src for src, _dst in online_service.telemetry.links()}
        assert sources == set(REGIONS)

    def test_deterministic_under_fixed_seed(self, online_service):
        repeat = _serve(online=True)
        ours, theirs = online_service.summary(), repeat.summary()
        assert ours.total_jct_s == pytest.approx(theirs.total_jct_s)
        assert ours.replans == theirs.replans
        assert [e.time for e in ours.events] == [
            e.time for e in theirs.events
        ]

    def test_summary_row_shape(self, online_service):
        summary = online_service.summary()
        assert isinstance(summary, ServiceSummary)
        row = summary.to_row()
        assert row["completed"] == 6.0
        assert 0.0 < row["fairness"] <= 1.0


class TestServiceMechanics:
    def test_static_mode_keeps_initial_plan(self, static_service):
        assert static_service._drift_process is None
        assert static_service.summary().replans == 0

    def test_stop_tears_down_agents(self, online_service):
        # _serve() calls stop(): the roster is drained and throttles
        # cleared, but the retired telemetry remains inspectable.
        assert online_service.agents == []
        assert online_service.telemetry.total_samples > 0

    def test_manual_replan_redeploys(self):
        config = ServiceConfig(
            regions=REGIONS[:3], seed=5, online=False, **FAST
        )
        service = WANifyService.build(config)
        assert len(service.agents) == 3
        before = service.agents
        event_input = service.detector
        assert event_input is not None
        from repro.runtime.drift import ReplanEvent

        service.replan(
            ReplanEvent(0.0, REGIONS[0], REGIONS[1], 10.0, 100.0, 0.9)
        )
        assert len(service.agents) == 3
        assert service.agents is not before
        assert service.summary().replans == 1
        # Detector now references the refreshed prediction.
        assert service.detector.predicted is service.predicted

    def test_double_start_rejected(self, online_service):
        with pytest.raises(RuntimeError):
            online_service.start()

    def test_plan_and_prediction_installed(self, online_service):
        assert online_service.plan is not None
        assert online_service.predicted is not None
        assert online_service.predicted.min_bw() > 0


class TestSchedulingService:
    """Config-to-scheduler threading and re-plan cost charging."""

    def _tiny(self, **overrides) -> WANifyService:
        config = ServiceConfig(
            regions=REGIONS[:3], seed=5, online=False, **FAST, **overrides
        )
        return WANifyService.build(config)

    def test_scheduler_config_selects_admission_policy(self):
        service = self._tiny(scheduler="priority", admit_batch=4)
        assert service.scheduler.admission.name == "priority"
        assert service.scheduler.reallocator.batch == 4
        assert service.summary().scheduler == "priority"

    def test_default_config_stays_fifo(self):
        service = self._tiny()
        assert service.scheduler.admission.name == "fifo"
        assert service.scheduler.default_slo is None

    def test_slo_deadline_config_becomes_default_slo(self):
        service = self._tiny(slo_deadline_s=750.0)
        default = service.scheduler.default_slo
        assert default is not None
        assert default.deadline_s == 750.0
        from repro.gda.workloads.wordcount import wordcount_job

        ticket = service.submit(
            wordcount_job(
                {k: 50.0 for k in REGIONS[:3]}, intermediate_mb=40.0
            )
        )
        assert ticket.slo is default

    def test_replan_charges_snapshot_probe_cost(self):
        from repro.runtime.drift import ReplanEvent

        service = self._tiny()
        event = ReplanEvent(0.0, REGIONS[0], REGIONS[1], 10.0, 100.0, 0.9)
        service.replan(event)
        summary = service.summary()
        n = len(REGIONS[:3])
        assert summary.replans == 1
        assert summary.replan_probe_transfers == n * (n - 1)
        assert summary.replan_cost_usd > 0.0
        assert summary.events[0].probe_cost_usd == pytest.approx(
            summary.replan_cost_usd
        )
        # The charge is the ledger *delta*, so it is strictly less
        # than the gauger's lifetime total (which includes the initial
        # plan's gauge).
        assert summary.replan_cost_usd < summary.probe_cost_usd
        assert "re-gauge" in summary.events[0].describe()

    def test_replan_budget_gates_the_control_loop(self):
        class FiringDetector:
            def check(self, now):
                from repro.runtime.drift import ReplanEvent

                return ReplanEvent(
                    now, REGIONS[0], REGIONS[1], 10.0, 100.0, 0.9
                )

            def rebase(self, predicted, now):
                pass

        service = self._tiny(replan_budget_usd=0.0)
        service.detector = FiringDetector()
        service._check(1000.0)
        assert service.summary().replans == 0  # budget already spent

        unbudgeted = self._tiny()
        unbudgeted.detector = FiringDetector()
        unbudgeted._check(1000.0)
        assert unbudgeted.summary().replans == 1


class TestDefaultJobMix:
    def test_deterministic(self):
        a = default_job_mix(REGIONS, count=5, seed=3)
        b = default_job_mix(REGIONS, count=5, seed=3)
        assert [j.name for _, j in a] == [j.name for _, j in b]
        assert [d for d, _ in a] == [d for d, _ in b]

    def test_cycles_workloads(self):
        names = [j.name for _, j in default_job_mix(REGIONS, count=6)]
        assert any("wordcount" in n for n in names)
        assert any("terasort" in n for n in names)
        assert any("tpcds" in n for n in names)

    def test_inputs_cover_all_dcs(self):
        for _, job in default_job_mix(REGIONS, count=3):
            assert set(job.input_mb_by_dc) == set(REGIONS)
            assert all(mb > 0 for mb in job.input_mb_by_dc.values())

    def test_count_validated(self):
        with pytest.raises(ValueError):
            default_job_mix(REGIONS, count=0)
