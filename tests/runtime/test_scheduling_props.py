"""Property tests for the sharded scheduler's conservation invariants.

A sharded scheduler moves tickets between queues (tenant routing,
work-stealing, cross-shard preemption) — exactly the kind of plumbing
that silently drops or double-admits a job under an unlucky
interleaving.  These tests drive :class:`ShardedScheduler` with seeded
random action sequences (submissions, preemptions, concurrency
re-splits) and assert, mid-run and at the end:

* **conservation** — every submitted ticket lives in exactly one of
  queued / running / completed, on exactly one shard, and none appear
  that were never submitted;
* **reconciliation** — ``stats()`` always satisfies
  ``submitted == completed + queued + running``;
* **policy-respecting steals** — a steal always takes the ticket the
  donor's own deadline-EDF order would have admitted next, so stealing
  never inverts an SLO ordering within a shard.
"""

import random

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.net.dynamics import StaticModel
from repro.runtime.scenarios import scenario
from repro.runtime.scheduling import SLO
from repro.runtime.scheduling.shards import ShardedScheduler

PAIR = ("us-east-1", "us-west-1")

TENANTS = ("acme", "globex", "initech", "umbrella", "hooli", "stark")


def _job(name, mb=60.0):
    return JobSpec(
        name=name,
        stages=[
            StageSpec(
                "map", cpu_s_per_mb=0.01, output_ratio=1.0, shuffle=False
            ),
            StageSpec(
                "reduce", cpu_s_per_mb=0.01, output_ratio=0.1, shuffle=True
            ),
        ],
        input_mb_by_dc={k: mb for k in PAIR},
    )


def _scheduler(shards, weather=None, max_concurrent=4):
    cluster = GeoCluster.build(
        PAIR,
        "t2.medium",
        fluctuation=weather if weather is not None else StaticModel(),
    )
    return ShardedScheduler(
        cluster,
        shards=shards,
        max_concurrent=max_concurrent,
        admission="deadline-edf",
    )


def _assert_conserved(sched, tickets):
    """Each submitted ticket lives in exactly one place, none invented."""
    held = []
    for shard in sched.shards:
        held.extend(shard.queued)
        held.extend(shard.running)
        held.extend(shard.completed)
    held_ids = [id(t) for t in held]
    assert len(held_ids) == len(set(held_ids)), "ticket duplicated"
    assert set(held_ids) == {id(t) for t in tickets}, "ticket lost/invented"
    stats = sched.stats()
    assert stats["submitted"] == (
        stats["completed"] + stats["queued"] + stats["running"]
    )
    assert stats["submitted"] == float(len(tickets))


class TestConservation:
    """Random driver: no ticket is ever lost, duplicated, or invented."""

    @pytest.mark.parametrize("seed", [1, 23, 456])
    @pytest.mark.parametrize("shards", [2, 4])
    def test_random_sequences_conserve_tickets(self, seed, shards):
        rng = random.Random(seed)
        sched = _scheduler(shards, weather=scenario("flash-crowd", seed=seed))
        tickets = []

        def submit(i):
            tenant = rng.choice(TENANTS)
            deadline = rng.uniform(300.0, 7200.0)
            tickets.append(
                sched.submit(
                    _job(f"{tenant}-{i}", mb=rng.uniform(20.0, 120.0)),
                    slo=SLO(deadline_s=deadline, tenant=tenant),
                )
            )

        def preempt():
            running = sched.running
            if running:
                sched.preempt(rng.choice(running))

        def resize():
            sched.set_max_concurrent(rng.randint(2, 8))

        def probe():
            _assert_conserved(sched, tickets)

        for i in range(40):
            sched.sim.schedule(rng.uniform(0.0, 600.0), lambda i=i: submit(i))
        for _ in range(6):
            sched.sim.schedule(rng.uniform(50.0, 500.0), preempt)
        for _ in range(3):
            sched.sim.schedule(rng.uniform(50.0, 500.0), resize)
        for _ in range(10):
            sched.sim.schedule(rng.uniform(1.0, 900.0), probe)
        sched.sim.run()

        _assert_conserved(sched, tickets)
        stats = sched.stats()
        assert stats["completed"] == 40.0
        assert stats["queued"] == stats["running"] == 0.0
        assert all(t.result is not None for t in tickets)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_single_tenant_flood_drains_via_steals(self, shards):
        """One tenant's burst spills onto every shard and still drains."""
        sched = _scheduler(shards, max_concurrent=shards)
        tickets = [
            sched.submit(
                _job(f"flood-{i}"),
                slo=SLO(deadline_s=30000.0, tenant="acme"),
            )
            for i in range(5 * shards)
        ]
        # With one slot per shard and every submission routed to one
        # shard, progress beyond that shard's slot is all stealing.
        assert len(sched.running) == shards
        assert sched.steal_count >= shards - 1
        sched.sim.run()
        _assert_conserved(sched, tickets)
        assert sched.stats()["completed"] == float(len(tickets))


class TestStealOrdering:
    """Steals take the donor's EDF head, preserving per-shard ordering."""

    def test_steal_takes_donor_edf_head(self, monkeypatch):
        observed = []
        original = ShardedScheduler._steal

        def checked(self, thief):
            queues = [list(s.queued) for s in self.shards]
            before = self.steal_count
            result = original(self, thief)
            if self.steal_count > before:
                gone = [
                    t
                    for q, s in zip(queues, self.shards)
                    for t in q
                    if not any(t is u for u in s.queued)
                ]
                assert len(gone) == 1
                (stolen,) = gone
                donor_queue = next(q for q in queues if stolen in q)
                observed.append(
                    (
                        stolen.slo.deadline_s,
                        min(t.slo.deadline_s for t in donor_queue),
                    )
                )
            return result

        monkeypatch.setattr(ShardedScheduler, "_steal", checked)
        rng = random.Random(99)
        sched = _scheduler(3, max_concurrent=3)
        deadlines = [600.0 + ((i * 7919) % 40) * 60.0 for i in range(40)]
        for i, deadline in enumerate(deadlines):
            sched.submit(
                _job(f"edf-{i}", mb=rng.uniform(30.0, 90.0)),
                slo=SLO(deadline_s=deadline, tenant="acme"),
            )
        sched.sim.run()
        assert len(observed) >= 10
        for stolen_deadline, donor_min in observed:
            assert stolen_deadline == donor_min

    def test_remaining_queue_order_survives_steals(self):
        """After a steal, the donor's EDF order over survivors is intact
        (head removal cannot reorder the tail)."""
        sched = _scheduler(2, max_concurrent=2)
        # Fill both slots so later submissions stay queued.
        sched.submit(_job("warm-0"), slo=SLO(deadline_s=9e4, tenant="acme"))
        sched.submit(_job("warm-1"), slo=SLO(deadline_s=9e4, tenant="acme"))
        flood = [
            sched.submit(
                _job(f"q-{i}"),
                slo=SLO(deadline_s=1000.0 * (5 - i), tenant="acme"),
            )
            for i in range(4)
        ]
        donor = sched.shards[sched.shard_of(flood[0].job, flood[0].slo)]
        ordered_before = donor.admission.order(
            list(donor.queued), donor.view()
        )
        thief = next(s for s in sched.shards if s is not donor)
        assert sched._steal(thief)
        ordered_after = donor.admission.order(list(donor.queued), donor.view())
        assert [t.job.name for t in ordered_after] == [
            t.job.name for t in ordered_before[1:]
        ]
        sched.sim.run()
        assert sched.stats()["completed"] == 6.0
