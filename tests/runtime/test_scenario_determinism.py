"""Seeded-determinism sweep: every scenario replays byte-identically.

The registry's contract is that a scenario's shape is a pure function
of ``(seed, link, t)`` — no sequential state anywhere in the runtime
path.  The proof obligation: build a full service on each registered
scenario (the featured compositions included) **twice with the same
seed** and require the two :class:`ServiceSummary` rows to be equal
field for field.  Any hidden ``random`` / wall-clock / dict-order
dependence anywhere under the service breaks this loudly, on the
scenario that exposed it.

Each replay builds a fresh pipeline: sharing one trained pipeline
between the two runs would let run A's gauger ledger leak into run B,
which is exactly the class of state bleed this sweep exists to catch.
"""

import pytest

from repro.pipeline.config import ServiceConfig
from repro.runtime.scenarios import scenario_names
from repro.runtime.service import PipelineService, default_job_mix

REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")
SEED = 31

SCENARIOS = scenario_names(include_composed=True)


def _summary_row(name: str) -> dict:
    config = ServiceConfig(
        regions=REGIONS,
        seed=SEED,
        scenario=name,
        slo_deadline_s=2400.0,
        n_training_datasets=3,
        n_estimators=2,
    )
    service = PipelineService.build(config)
    service.submit_mix(
        default_job_mix(REGIONS, count=2, seed=SEED, scale_mb=1500.0)
    )
    service.run()
    row = service.summary().to_row()
    service.stop()
    return row


class TestScenarioReplayDeterminism:
    def test_sweep_covers_the_circuit_scenarios(self):
        """The new multi-path scenarios are registered and swept."""
        for name in ("circuit-failover", "circuit-flap", "path-policy"):
            assert name in SCENARIOS
        assert "circuit-failover+circuit-flap" in SCENARIOS

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_replay_with_same_seed_is_identical(self, name):
        first = _summary_row(name)
        second = _summary_row(name)
        assert first == second
        assert first["completed"] == 2.0
