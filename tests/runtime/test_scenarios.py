"""Tests for the bandwidth-dynamics scenario library."""

import pytest

from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.simulator import NetworkSimulator
from repro.runtime.scenarios import (
    FACTOR_FLOOR,
    SCENARIOS,
    DiurnalSwing,
    FlashCrowd,
    LinkDegradation,
    ScenarioModel,
    StepDrop,
    scenario,
    scenario_names,
)


class TestRegistry:
    def test_at_least_four_named_scenarios(self):
        assert len(SCENARIOS) >= 4

    def test_expected_names_present(self):
        names = scenario_names()
        for expected in (
            "diurnal",
            "flash-crowd",
            "link-degradation",
            "link-failure",
            "step-drop",
        ):
            assert expected in names

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="step-drop"):
            scenario("no-such-thing")

    def test_factories_are_deterministic(self):
        for name in scenario_names():
            a = scenario(name, seed=9)
            b = scenario(name, seed=9)
            for t in (0.0, 500.0, 2000.0):
                assert a.factor(0, 1, t) == b.factor(0, 1, t)

    def test_factors_positive_and_floored(self):
        for name in scenario_names():
            model = scenario(name, seed=3)
            for t in (0.0, 700.0, 5000.0, 90000.0):
                for i, j in ((0, 1), (1, 2), (2, 0)):
                    assert model.factor(i, j, t) >= FACTOR_FLOOR

    def test_diagonal_is_identity(self):
        for name in scenario_names():
            assert scenario(name, seed=3).factor(2, 2, 1234.0) == 1.0


class TestShapes:
    def test_step_drop_steps_once(self):
        model = StepDrop(StaticModel(), seed=1, at_s=100.0, level=0.5)
        assert model.factor(0, 1, 99.0) == pytest.approx(1.0)
        assert model.factor(0, 1, 101.0) == pytest.approx(0.5)
        assert model.factor(0, 1, 1e6) == pytest.approx(0.5)

    def test_degradation_ramps_to_residual_and_stays(self):
        model = LinkDegradation(
            StaticModel(),
            seed=1,
            start_s=100.0,
            ramp_s=100.0,
            residual=0.2,
            links=((0, 1),),
        )
        assert model.factor(0, 1, 50.0) == pytest.approx(1.0)
        assert model.factor(0, 1, 150.0) == pytest.approx(0.6)
        assert model.factor(0, 1, 500.0) == pytest.approx(0.2)
        # Untargeted links are untouched.
        assert model.factor(1, 0, 500.0) == pytest.approx(1.0)

    def test_flash_crowd_recovers(self):
        model = FlashCrowd(
            StaticModel(),
            seed=1,
            start_s=100.0,
            duration_s=200.0,
            ramp_s=50.0,
            depth=0.4,
            hit_fraction=1.0,
        )
        assert model.factor(0, 1, 0.0) == pytest.approx(1.0)
        assert model.factor(0, 1, 200.0) == pytest.approx(0.4)
        assert model.factor(0, 1, 1000.0) == pytest.approx(1.0)

    def test_diurnal_swings_within_amplitude(self):
        model = DiurnalSwing(StaticModel(), seed=1, amplitude=0.35)
        values = [model.factor(0, 1, t * 3600.0) for t in range(48)]
        assert min(values) >= 1.0 - 0.35 - 1e-9
        assert max(values) <= 1.0 + 1e-9
        assert max(values) - min(values) > 0.2  # actually swings

    def test_shape_composes_with_base_weather(self):
        base = FluctuationModel(seed=5)
        model = StepDrop(base, seed=5, at_s=0.0, level=0.5)
        t = 1000.0
        assert model.factor(0, 1, t) == pytest.approx(
            max(base.factor(0, 1, t) * 0.5, FACTOR_FLOOR)
        )

    def test_snapshot_jitter_delegates_to_base(self):
        base = FluctuationModel(seed=5)
        model = ScenarioModel(base, seed=5)
        assert model.snapshot_jitter(0, 1, 10.0, 1.0) == base.snapshot_jitter(
            0, 1, 10.0, 1.0
        )


class TestPluggableIntoSimulator:
    def test_simulator_consumes_scenario(self, triad):
        """Transfers run slower after a step drop than before it."""
        model = StepDrop(StaticModel(), seed=1, at_s=50.0, level=0.25)
        net = NetworkSimulator(triad, fluctuation=model)
        before = net.pair_capacity("us-east-1", "us-west-1", 1)
        net.sim.run(until=60.0)
        after = net.pair_capacity("us-east-1", "us-west-1", 1)
        assert after == pytest.approx(before * 0.25, rel=1e-6)
