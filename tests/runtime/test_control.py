"""Tests for the runtime control plane: preempt / govern / autoscale.

Covers the executor's pause/resume checkpointing, the scheduler's
preemption surface, the bandwidth governor's apply/release ledger (the
PR-2 deployment-teardown bug class, now for throttles), the
autoscaler, the registered preemption policies, and the committed
flash-crowd comparison from ``repro.experiments.control_plane``.
"""

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.systems.vanilla import LocalityPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.pipeline.registry import (
    preemption_policy,
    preemption_policy_registry,
)
from repro.runtime.control import (
    BandwidthGovernor,
    ConcurrencyAutoscaler,
    ControlView,
    CostAwarePreemption,
    NoPreemption,
    PreemptionDecision,
    UrgentSloPreemption,
)
from repro.runtime.executor import JobRun
from repro.runtime.scheduler import JobScheduler
from repro.runtime.scheduling import SLO

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


def _cluster(calm):
    return GeoCluster.build(TRIAD, "t2.medium", fluctuation=calm)


def _job(name="ts", mb=300.0):
    return terasort_job({k: mb for k in TRIAD}, name=name)


class _Ticket:
    """Stand-in ticket for governor/policy unit tests."""

    def __init__(self, name, slack=None, preemptions=0, preempted_at=None,
                 seq=0, policy_pinned=False):
        self.job = type("J", (), {"name": name})()
        self.slack = slack
        self.preemptions = preemptions
        self.preempted_at = preempted_at
        self.seq = seq
        self.policy = TetriumPolicy()
        self.policy_pinned = policy_pinned
        self.run = None


def _view(now=0.0, running=(), queued=(), calibrated=True,
          remaining=300.0, phase_cost=10.0):
    return ControlView(
        now=now,
        running=tuple(running),
        queued=tuple(queued),
        slack_s=lambda t: t.slack,
        remaining_s=lambda t: remaining,
        phase_cost_s=lambda t: phase_cost,
        default_policy_name="tetrium",
        calibrated=calibrated,
    )


class TestPauseResume:
    def test_pause_then_resume_completes_with_all_stages(self, calm):
        cluster = _cluster(calm)
        run = JobRun(cluster, _job(), LocalityPolicy()).start()
        sim = cluster.network.sim
        # Run partway into the job, then pause mid-flight.
        while sim.now < 20.0 and sim.step():
            pass
        assert not run.done
        checkpoint = run.pause()
        sim.run()  # drains: the paused run schedules nothing further
        assert not run.done
        resumed = JobRun(
            cluster, _job(), LocalityPolicy(), resume_from=checkpoint
        ).start()
        sim.run()
        assert resumed.done
        # Completed-stage metrics carried over + the redone remainder.
        baseline = JobRun(_cluster(calm), _job(), LocalityPolicy()).start()
        baseline.cluster.network.sim.run()
        assert len(resumed.result.stages) == len(baseline.result.stages)

    def test_pause_discards_interrupted_phase_progress(self, calm):
        cluster = _cluster(calm)
        run = JobRun(cluster, _job(), LocalityPolicy()).start()
        sim = cluster.network.sim
        while sim.now < 20.0 and sim.step():
            pass
        wan_before = run.wan_mbits
        checkpoint = run.pause()
        # The checkpoint credits only *completed* transfers.
        assert checkpoint.wan_mbits == wan_before
        assert not cluster.network.active_transfers()

    def test_pause_lifecycle_guards(self, calm):
        cluster = _cluster(calm)
        run = JobRun(cluster, _job(), LocalityPolicy())
        with pytest.raises(RuntimeError):
            run.pause()  # never started
        run.start()
        sim = cluster.network.sim
        while sim.now < 10.0 and sim.step():
            pass
        run.pause()
        with pytest.raises(RuntimeError):
            run.pause()  # already paused
        finished = JobRun(_cluster(calm), _job(), LocalityPolicy()).start()
        finished.cluster.network.sim.run()
        with pytest.raises(RuntimeError):
            finished.pause()  # already finished

    def test_remaining_wan_mb_matches_whole_job_estimate_at_start(
        self, calm
    ):
        from repro.runtime.control import job_wan_mb

        cluster = _cluster(calm)
        job = _job()
        run = JobRun(cluster, job, LocalityPolicy()).start()
        # A fresh run's remaining volume is the whole-job projection the
        # slack estimator uses for queued tickets — the two estimator
        # paths must agree at the starting line.
        assert run.remaining_wan_mb() == pytest.approx(
            job_wan_mb(job, run.shuffle_overhead)
        )


class TestSchedulerPreemption:
    def test_preempt_swaps_victim_for_beneficiary(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        victim = scheduler.submit(_job("victim"), TetriumPolicy())
        beneficiary = scheduler.submit(_job("urgent"), TetriumPolicy())
        sim = cluster.network.sim
        while sim.now < 20.0 and sim.step():
            pass
        scheduler.preempt(victim, beneficiary)
        assert victim.state == "queued"
        assert victim.preemptions == 1
        assert victim.checkpoint is not None
        assert beneficiary.state == "running"
        sim.run()
        # Both complete; the beneficiary finished first (it held the
        # slot while the victim waited at the queue front).
        assert victim.state == "done" and beneficiary.state == "done"
        assert beneficiary.finished_s < victim.finished_s
        assert len(scheduler.completed) == 2

    def test_preempted_victim_resumes_at_queue_front(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        victim = scheduler.submit(_job("victim"), TetriumPolicy())
        beneficiary = scheduler.submit(_job("urgent"), TetriumPolicy())
        later = scheduler.submit(_job("later"), TetriumPolicy())
        sim = cluster.network.sim
        while sim.now < 20.0 and sim.step():
            pass
        scheduler.preempt(victim, beneficiary)
        assert scheduler.queued[0] is victim
        sim.run()
        # FIFO after the swap: urgent, then the resumed victim, then
        # the later arrival.
        assert victim.finished_s < later.finished_s

    def test_wait_excludes_preempted_execution_time(self, calm):
        """wait_s sums queue stints only — never the discarded slice."""
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        victim = scheduler.submit(_job("victim"), TetriumPolicy())
        beneficiary = scheduler.submit(_job("urgent"), TetriumPolicy())
        sim = cluster.network.sim
        while sim.now < 20.0 and sim.step():
            pass
        scheduler.preempt(victim, beneficiary)
        sim.run()
        # Admitted at 0 (no initial wait), so the only queueing is the
        # preempt → resume gap; the 20 s executed slice must not count.
        assert victim.wait_s == pytest.approx(
            victim.started_s - victim.preempted_at
        )
        assert victim.wait_s < victim.jct_s - 20.0

    def test_preempt_with_migrate_reresolves_policy(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(
            cluster, max_concurrent=1, default_policy="kimchi"
        )
        victim = scheduler.submit(_job("victim"), TetriumPolicy())
        beneficiary = scheduler.submit(_job("urgent"), TetriumPolicy())
        sim = cluster.network.sim
        while sim.now < 20.0 and sim.step():
            pass
        assert victim.policy.name == "tetrium"
        scheduler.preempt(victim, beneficiary, migrate=True)
        assert victim.policy.name == "kimchi"
        sim.run()
        assert victim.state == "done"

    def test_preempt_rejects_bad_tickets(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=2)
        running = scheduler.submit(_job("a"), TetriumPolicy())
        also_running = scheduler.submit(_job("b"), TetriumPolicy())
        with pytest.raises(ValueError):
            scheduler.preempt(running, also_running)  # not queued
        queued = scheduler.submit(_job("c"), TetriumPolicy())
        with pytest.raises(ValueError):
            scheduler.preempt(queued, None)  # not running

    def test_set_max_concurrent_admits_immediately(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        for i in range(3):
            scheduler.submit(_job(f"ts-{i}"), TetriumPolicy())
        assert len(scheduler.running) == 1
        scheduler.set_max_concurrent(3)
        assert len(scheduler.running) == 3
        with pytest.raises(ValueError):
            scheduler.set_max_concurrent(0)


class TestBandwidthGovernor:
    def _network(self, calm):
        return _cluster(calm).network

    def test_caps_rich_exclusive_pairs_and_releases_on_finish(self, calm):
        network = self._network(calm)
        network.start_transfer(
            "us-east-1", "us-west-1", 8000.0, tag="rich:shuffle"
        )
        network.start_transfer(
            "us-east-1", "ap-southeast-1", 8000.0, tag="poor:shuffle"
        )
        governor = BandwidthGovernor(network)
        rich = _Ticket("rich", slack=500.0)
        poor = _Ticket("poor", slack=-50.0)
        applied = governor.rebalance(
            0.0, [rich, poor], lambda t: t.slack
        )
        assert applied == 1
        pair = ("us-east-1", "us-west-1")
        assert pair in governor.held
        assert network.tc.limit(*pair) < float("inf")
        governor.release_job("rich")
        assert not governor.held
        assert network.tc.limit(*pair) == float("inf")
        assert governor.throttle_moves == governor.throttle_releases == 1

    def test_release_restores_previous_limit(self, calm):
        network = self._network(calm)
        pair = ("us-east-1", "us-west-1")
        network.tc.set_limit(*pair, 900.0)
        network.start_transfer(*pair, 8000.0, tag="rich:shuffle")
        network.start_transfer(
            "us-east-1", "ap-southeast-1", 8000.0, tag="poor:shuffle"
        )
        governor = BandwidthGovernor(network)
        governor.rebalance(
            0.0,
            [_Ticket("rich", slack=500.0), _Ticket("poor", slack=-50.0)],
            lambda t: t.slack,
        )
        if pair in governor.held:
            assert network.tc.limit(*pair) < 900.0
            governor.release_all()
            assert network.tc.limit(*pair) == 900.0

    def test_never_caps_shared_or_poor_pairs(self, calm):
        network = self._network(calm)
        pair = ("us-east-1", "us-west-1")
        network.start_transfer(*pair, 8000.0, tag="rich:shuffle")
        network.start_transfer(*pair, 8000.0, tag="poor:shuffle")
        governor = BandwidthGovernor(network)
        applied = governor.rebalance(
            0.0,
            [_Ticket("rich", slack=500.0), _Ticket("poor", slack=-50.0)],
            lambda t: t.slack,
        )
        assert applied == 0 and not governor.held

    def test_idle_without_poor_jobs_and_releases_when_poor_drains(
        self, calm
    ):
        network = self._network(calm)
        network.start_transfer(
            "us-east-1", "us-west-1", 8000.0, tag="rich:shuffle"
        )
        network.start_transfer(
            "us-east-1", "ap-southeast-1", 8000.0, tag="poor:shuffle"
        )
        governor = BandwidthGovernor(network)
        rich = _Ticket("rich", slack=500.0)
        poor = _Ticket("poor", slack=-50.0)
        assert governor.rebalance(0.0, [rich], lambda t: t.slack) == 0
        governor.rebalance(0.0, [rich, poor], lambda t: t.slack)
        assert governor.held
        # Poor job recovers → caps lift on the next tick.
        poor.slack = 200.0
        governor.rebalance(30.0, [rich, poor], lambda t: t.slack)
        assert not governor.held
        assert governor.throttle_moves == governor.throttle_releases

    def test_forget_retires_records_without_touching_tc(self, calm):
        network = self._network(calm)
        pair = ("us-east-1", "us-west-1")
        network.start_transfer(*pair, 8000.0, tag="rich:shuffle")
        network.start_transfer(
            "us-east-1", "ap-southeast-1", 8000.0, tag="poor:shuffle"
        )
        governor = BandwidthGovernor(network)
        governor.rebalance(
            0.0,
            [_Ticket("rich", slack=500.0), _Ticket("poor", slack=-50.0)],
            lambda t: t.slack,
        )
        assert governor.held
        # A deployment teardown cleared the table behind our back...
        network.tc.clear_all()
        network.tc.set_limit(*pair, 1234.0)  # the *new* plan's cap
        governor.forget()
        assert not governor.held
        # ...and forget() must not clobber the new deployment's limit.
        assert network.tc.limit(*pair) == 1234.0
        assert governor.throttle_moves == governor.throttle_releases

    def test_throttle_factor_validated(self, calm):
        with pytest.raises(ValueError):
            BandwidthGovernor(self._network(calm), throttle_factor=1.5)


class TestAutoscaler:
    def test_scales_up_under_pressure_down_when_idle(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        autoscaler = ConcurrencyAutoscaler(scheduler, ceiling=3)
        for i in range(4):
            scheduler.submit(_job(f"ts-{i}"), TetriumPolicy())
        autoscaler.tick(0.0, urgent_queued=False)
        assert scheduler.max_concurrent == 2
        assert len(scheduler.running) == 2
        autoscaler.tick(45.0, urgent_queued=False)
        assert scheduler.max_concurrent == 3
        autoscaler.tick(90.0, urgent_queued=False)  # at ceiling
        assert scheduler.max_concurrent == 3
        cluster.network.sim.run()
        autoscaler.tick(135.0, urgent_queued=False)  # queue empty
        assert scheduler.max_concurrent == 2
        assert autoscaler.high_water == 3
        assert autoscaler.scale_ups == 2 and autoscaler.scale_downs == 1

    def test_never_scales_below_floor(self, calm):
        scheduler = JobScheduler(_cluster(calm), max_concurrent=2)
        autoscaler = ConcurrencyAutoscaler(scheduler, ceiling=4)
        for _ in range(5):
            autoscaler.tick(0.0, urgent_queued=False)
        assert scheduler.max_concurrent == 2

    def test_urgency_triggers_scale_up_below_depth(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        autoscaler = ConcurrencyAutoscaler(
            scheduler, ceiling=3, scale_up_depth=5
        )
        scheduler.submit(_job("a"), TetriumPolicy())
        scheduler.submit(_job("b"), TetriumPolicy())
        autoscaler.tick(0.0, urgent_queued=False)  # depth 1 < 5
        assert scheduler.max_concurrent == 1
        autoscaler.tick(45.0, urgent_queued=True)
        assert scheduler.max_concurrent == 2

    def test_ceiling_below_floor_rejected(self, calm):
        scheduler = JobScheduler(_cluster(calm), max_concurrent=4)
        with pytest.raises(ValueError):
            ConcurrencyAutoscaler(scheduler, ceiling=2)


class TestPreemptionPolicies:
    def test_registry_resolves_all_builtins(self):
        assert set(preemption_policy_registry.names()) >= {
            "none", "urgent-slo", "cost-aware"
        }
        assert isinstance(preemption_policy("none"), NoPreemption)
        assert isinstance(
            preemption_policy("urgent-slo"), UrgentSloPreemption
        )
        assert isinstance(
            preemption_policy("cost-aware"), CostAwarePreemption
        )

    def test_none_never_fires(self):
        view = _view(
            running=[_Ticket("rich", slack=1000.0)],
            queued=[_Ticket("urgent", slack=-100.0)],
        )
        assert NoPreemption().select(view) is None

    def test_urgent_slo_swaps_richest_for_most_urgent(self):
        rich = _Ticket("rich", slack=1000.0)
        mid = _Ticket("mid", slack=200.0)
        urgent = _Ticket("urgent", slack=-100.0)
        decision = UrgentSloPreemption().select(
            _view(running=[mid, rich], queued=[urgent])
        )
        assert decision is not None
        assert decision.victim is rich
        assert decision.beneficiary is urgent

    def test_urgent_slo_requires_calibration(self):
        view = _view(
            running=[_Ticket("rich", slack=1000.0)],
            queued=[_Ticket("urgent", slack=-100.0)],
            calibrated=False,
        )
        assert UrgentSloPreemption().select(view) is None

    def test_urgent_slo_skips_hopeless_and_poor_victims(self):
        policy = UrgentSloPreemption(rescue_floor_s=-180.0)
        hopeless = _Ticket("hopeless", slack=-500.0)
        view = _view(
            running=[_Ticket("rich", slack=1000.0)], queued=[hopeless]
        )
        assert policy.select(view) is None
        # Victim below the floor: preempting it just moves the miss.
        poor_victim = _Ticket("squeezed", slack=10.0)
        view = _view(
            running=[poor_victim], queued=[_Ticket("urgent", slack=-100.0)]
        )
        assert UrgentSloPreemption().select(view) is None

    def test_urgent_slo_global_fire_interval(self):
        policy = UrgentSloPreemption(fire_interval_s=120.0)
        running = [_Ticket("r1", slack=1000.0), _Ticket("r2", slack=900.0)]
        first = policy.select(
            _view(now=100.0, running=running, queued=[
                _Ticket("u1", slack=-100.0)
            ])
        )
        assert first is not None
        again = policy.select(
            _view(now=150.0, running=running, queued=[
                _Ticket("u2", slack=-100.0)
            ])
        )
        assert again is None  # inside the fire interval
        later = policy.select(
            _view(now=260.0, running=running, queued=[
                _Ticket("u2", slack=-100.0)
            ])
        )
        assert later is not None

    def test_victim_cooldown_and_preemption_cap(self):
        policy = UrgentSloPreemption(cooldown_s=240.0, max_preemptions=2)
        urgent = [_Ticket("u", slack=-100.0)]
        recent = _Ticket("recent", slack=1000.0, preempted_at=900.0)
        assert policy.select(
            _view(now=1000.0, running=[recent], queued=urgent)
        ) is None
        worn = _Ticket("worn", slack=1000.0, preemptions=2)
        assert policy.select(
            _view(now=1000.0, running=[worn], queued=urgent)
        ) is None

    def test_migrate_only_for_unpinned_default_policy_tickets(self):
        """An explicitly-submitted policy is never migration bait."""
        urgent = [_Ticket("urgent", slack=-100.0)]
        # Stub policy is tetrium; view default is "kimchi" (re-pointed).
        pinned = _Ticket("pinned", slack=1000.0, policy_pinned=True)
        view = _view(running=[pinned], queued=urgent)
        view = ControlView(**{**view.__dict__, "default_policy_name": "kimchi"})
        decision = UrgentSloPreemption().select(view)
        assert decision is not None and decision.migrate is False
        floating = _Ticket("floating", slack=1000.0, policy_pinned=False)
        view = _view(running=[floating], queued=urgent)
        view = ControlView(**{**view.__dict__, "default_policy_name": "kimchi"})
        decision = UrgentSloPreemption().select(view)
        assert decision is not None and decision.migrate is True

    def test_cost_aware_rejection_does_not_burn_fire_interval(self):
        """A cost-gated rejection must not delay the next evaluation."""
        policy = CostAwarePreemption(fire_interval_s=120.0)
        running = [_Ticket("rich", slack=1000.0)]
        queued = [_Ticket("urgent", slack=-100.0)]
        expensive = _view(
            now=100.0, running=running, queued=queued,
            remaining=100.0, phase_cost=200.0,
        )
        assert policy.select(expensive) is None
        # 10 s later the swap became affordable — it must fire now,
        # not after a full fire interval from the rejected evaluation.
        cheap = _view(
            now=110.0, running=running, queued=queued,
            remaining=600.0, phase_cost=20.0,
        )
        assert policy.select(cheap) is not None

    def test_cost_aware_falls_through_to_affordable_victim(self):
        """An expensive top victim must not block a cheap runner-up."""
        expensive_rich = _Ticket("top", slack=1000.0)
        cheap_mid = _Ticket("mid", slack=800.0)
        urgent = _Ticket("urgent", slack=-100.0)
        costs = {"top": 500.0, "mid": 5.0}
        view = ControlView(
            now=0.0,
            running=(expensive_rich, cheap_mid),
            queued=(urgent,),
            slack_s=lambda t: t.slack,
            remaining_s=lambda t: 600.0,
            phase_cost_s=lambda t: costs[t.job.name],
            default_policy_name="tetrium",
            calibrated=True,
        )
        decision = CostAwarePreemption().select(view)
        assert decision is not None
        assert decision.victim is cheap_mid

    def test_cost_aware_gates_on_benefit_vs_cost(self):
        running = [_Ticket("rich", slack=1000.0)]
        queued = [_Ticket("urgent", slack=-100.0)]
        cheap = _view(
            running=running, queued=queued,
            remaining=600.0, phase_cost=20.0,
        )
        assert CostAwarePreemption().select(cheap) is not None
        expensive = _view(
            running=running, queued=queued,
            remaining=100.0, phase_cost=200.0,
        )
        assert CostAwarePreemption().select(expensive) is None


class TestFlashCrowdComparison:
    """The committed controlled-vs-uncontrolled acceptance scenario."""

    @pytest.fixture(scope="class")
    def comparison(self):
        from repro.experiments.control_plane import run_service

        return {
            "uncontrolled": run_service(controlled=False),
            "controlled": run_service(controlled=True),
        }

    def test_controlled_strictly_beats_uncontrolled_attainment(
        self, comparison
    ):
        base = comparison["uncontrolled"].summary()
        ctrl = comparison["controlled"].summary()
        assert ctrl.slo_attainment > base.slo_attainment
        assert ctrl.preemptions > 0
        assert ctrl.throttle_moves > 0

    def test_uncontrolled_counters_all_zero(self, comparison):
        base = comparison["uncontrolled"].summary()
        assert base.preemptions == 0
        assert base.migrations == 0
        assert base.throttle_moves == 0
        assert comparison["uncontrolled"].control is None

    def test_governor_releases_every_throttle_it_applied(self, comparison):
        """Regression: the PR-2 teardown bug class, for throttles.

        Every cap the governor applied over the whole run — across job
        completions, preemptions, and re-plan teardowns — must have
        been released by the time the service stopped.
        """
        service = comparison["controlled"]
        governor = service.control.governor
        assert governor is not None
        assert governor.throttle_moves > 0
        assert governor.throttle_moves == governor.throttle_releases
        assert governor.held == {}

    def test_autoscaler_high_water_reported(self, comparison):
        ctrl = comparison["controlled"].summary()
        assert ctrl.concurrency_high_water == 3

    def test_summary_row_carries_control_counters(self, comparison):
        row = comparison["controlled"].summary().to_row()
        for key in (
            "preemptions",
            "migrations",
            "throttle_moves",
            "throttle_releases",
            "concurrency_high_water",
        ):
            assert key in row


class TestServiceDefaultsUnchanged:
    def test_default_config_builds_no_control_plane(self, calm):
        from repro.pipeline.config import ServiceConfig

        config = ServiceConfig()
        assert config.preemption == "none"
        assert config.governor is False
        assert config.autoscale is False

    def test_governor_releases_on_preemption_via_plane(self, calm):
        """A preempted victim's caps are released with its transfers."""
        from repro.pipeline.config import ServiceConfig
        from repro.runtime.control import ControlPlane

        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        config = ServiceConfig(
            preemption="urgent-slo", governor=True
        )
        plane = ControlPlane(
            scheduler, config, predicted_bw=lambda: None
        )
        victim = scheduler.submit(
            _job("victim"), TetriumPolicy(), slo=SLO(deadline_s=10000.0)
        )
        beneficiary = scheduler.submit(
            _job("urgent"), TetriumPolicy(), slo=SLO(deadline_s=10000.0)
        )
        sim = cluster.network.sim
        while sim.now < 20.0 and sim.step():
            pass
        # Seed a cap attributed to the victim, then preempt it.
        governor = plane.governor
        governor.held[("us-east-1", "us-west-1")] = None
        governor._owners[("us-east-1", "us-west-1")] = frozenset(
            {"victim"}
        )
        governor.throttle_moves += 1
        cluster.network.tc.set_limit("us-east-1", "us-west-1", 100.0)
        plane._execute(
            PreemptionDecision(victim=victim, beneficiary=beneficiary)
        )
        assert governor.held == {}
        assert (
            cluster.network.tc.limit("us-east-1", "us-west-1")
            == float("inf")
        )
        assert victim.state == "queued"
        plane.close()
