"""Tests for the drift detector."""

import pytest

from repro.net.matrix import BandwidthMatrix
from repro.runtime.drift import DriftDetector, ReplanEvent
from repro.runtime.telemetry import TelemetryStore


def _store_with(dc, dst, times_rates):
    store = TelemetryStore()
    for t, rate in times_rates:
        store.record(dc, t, {dst: rate})
    return store


def _matrix(keys, value):
    matrix = BandwidthMatrix.zeros(keys)
    for src, dst in matrix.pairs():
        matrix.set(src, dst, value)
    return matrix


class TestDriftDetector:
    def test_fires_on_sustained_degradation(self):
        store = _store_with(
            "a", "b", [(t, 100.0) for t in range(100, 110)]
        )
        detector = DriftDetector(
            store, _matrix(("a", "b"), 400.0), threshold=0.45
        )
        event = detector.check(now=110.0)
        assert isinstance(event, ReplanEvent)
        assert (event.src, event.dst) == ("a", "b")
        assert event.rel_error == pytest.approx(0.75)
        assert detector.events == [event]
        assert "a→b" in event.describe()

    def test_quiet_when_prediction_accurate(self):
        store = _store_with(
            "a", "b", [(t, 380.0) for t in range(100, 110)]
        )
        detector = DriftDetector(
            store, _matrix(("a", "b"), 400.0), threshold=0.45
        )
        assert detector.check(now=110.0) is None

    def test_needs_min_samples(self):
        store = _store_with("a", "b", [(100.0, 10.0)])
        detector = DriftDetector(
            store, _matrix(("a", "b"), 400.0), min_samples=3
        )
        assert detector.check(now=101.0) is None

    def test_stale_telemetry_ignored(self):
        store = _store_with(
            "a", "b", [(t, 10.0) for t in range(10)]
        )
        detector = DriftDetector(
            store, _matrix(("a", "b"), 400.0), freshness_s=60.0
        )
        assert detector.check(now=1000.0) is None

    def test_idle_links_ignored(self):
        store = _store_with(
            "a", "b", [(t, 0.0) for t in range(100, 110)]
        )
        detector = DriftDetector(store, _matrix(("a", "b"), 400.0))
        assert detector.check(now=110.0) is None

    def test_weak_predictions_ignored(self):
        store = _store_with(
            "a", "b", [(t, 5.0) for t in range(100, 110)]
        )
        detector = DriftDetector(
            store, _matrix(("a", "b"), 30.0), min_predicted_mbps=50.0
        )
        assert detector.check(now=110.0) is None

    def test_cooldown_suppresses_event_storm(self):
        store = _store_with(
            "a", "b", [(t, 100.0) for t in range(100, 110)]
        )
        detector = DriftDetector(
            store, _matrix(("a", "b"), 400.0), cooldown_s=100.0
        )
        assert detector.check(now=110.0) is not None
        # Drift persists, but the cooldown holds.
        store.record("a", 150.0, {"b": 100.0})
        assert detector.check(now=150.0) is None
        store.record("a", 211.0, {"b": 100.0})
        assert detector.check(now=211.0) is not None

    def test_rebase_installs_reference_and_rearms_cooldown(self):
        store = _store_with(
            "a", "b", [(t, 100.0) for t in range(100, 110)]
        )
        detector = DriftDetector(
            store, _matrix(("a", "b"), 400.0), cooldown_s=50.0
        )
        assert detector.check(now=110.0) is not None
        # Re-gauge says 100 Mbps is the new normal → no further events
        # even after the cooldown expires.
        detector.rebase(_matrix(("a", "b"), 105.0), now=110.0)
        store.record("a", 170.0, {"b": 100.0})
        assert detector.check(now=170.0) is None

    def test_picks_worst_link(self):
        store = TelemetryStore()
        for t in range(100, 110):
            store.record("a", t, {"b": 200.0, "c": 40.0})
        detector = DriftDetector(
            store, _matrix(("a", "b", "c"), 400.0), threshold=0.4
        )
        event = detector.check(now=110.0)
        assert event is not None
        assert (event.src, event.dst) == ("a", "c")
