"""Tests for the multi-job scheduler and the event-driven executor."""

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.systems.vanilla import LocalityPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.gda.workloads.wordcount import wordcount_job
from repro.runtime.executor import JobRun
from repro.runtime.scheduler import JobScheduler, jain_index

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


def _cluster(calm):
    return GeoCluster.build(TRIAD, "t2.medium", fluctuation=calm)


def _job(name="ts", mb=300.0):
    return terasort_job({k: mb for k in TRIAD}, name=name)


class TestJainIndex:
    def test_even_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_one_hog_approaches_reciprocal(self):
        assert jain_index([30.0, 1e-9, 1e-9]) == pytest.approx(
            1.0 / 3.0, rel=0.01
        )

    def test_empty_is_one(self):
        assert jain_index([]) == 1.0


class TestJobRun:
    def test_matches_blocking_engine_for_single_job(self, calm):
        """The event-driven executor reproduces GdaEngine's result."""
        job = _job()
        blocking = GdaEngine(_cluster(calm)).run(
            job, LocalityPolicy()
        )
        cluster = _cluster(calm)
        run = JobRun(cluster, job, LocalityPolicy()).start()
        cluster.network.sim.run()
        assert run.done
        assert run.result.jct_s == pytest.approx(blocking.jct_s, rel=1e-6)
        assert run.result.wan_gb == pytest.approx(blocking.wan_gb, rel=1e-3)
        assert len(run.result.stages) == len(blocking.stages)
        for ours, theirs in zip(run.result.stages, blocking.stages):
            assert ours.network_s == pytest.approx(
                theirs.network_s, rel=1e-6
            )
            assert ours.compute_s == pytest.approx(
                theirs.compute_s, rel=1e-6
            )

    def test_decision_bw_callable_reread_per_stage(self, calm):
        cluster = _cluster(calm)
        reads = []

        def provider():
            reads.append(cluster.network.sim.now)
            return None

        job = wordcount_job(
            {k: 200.0 for k in TRIAD}, intermediate_mb=300.0
        )
        JobRun(cluster, job, LocalityPolicy(), decision_bw=provider).start()
        cluster.network.sim.run()
        # Once for migration planning, once for the shuffle stage.
        assert len(reads) == 2
        assert reads[-1] > 0.0

    def test_double_start_rejected(self, calm):
        cluster = _cluster(calm)
        run = JobRun(cluster, _job(), LocalityPolicy()).start()
        with pytest.raises(RuntimeError):
            run.start()

    def test_shuffle_overhead_validated(self, calm):
        with pytest.raises(ValueError):
            JobRun(
                _cluster(calm), _job(), LocalityPolicy(),
                shuffle_overhead=0.5,
            )


class TestJobScheduler:
    def test_admission_respects_concurrency_cap(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=2)
        for i in range(5):
            scheduler.submit(_job(f"ts-{i}"), TetriumPolicy())
        assert len(scheduler.running) == 2
        assert len(scheduler.queued) == 3
        cluster.network.sim.run()
        assert len(scheduler.completed) == 5
        assert scheduler.peak_concurrency == 2

    def test_fifo_order_and_waits(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        tickets = [
            scheduler.submit(_job(f"ts-{i}"), TetriumPolicy())
            for i in range(3)
        ]
        cluster.network.sim.run()
        finishes = [t.finished_s for t in tickets]
        assert finishes == sorted(finishes)
        assert tickets[0].wait_s == 0.0
        assert tickets[1].wait_s > 0.0
        assert tickets[2].wait_s > tickets[1].wait_s

    def test_concurrent_jobs_contend_on_shared_wan(self, calm):
        """Two concurrent shuffles are slower than one alone."""
        alone = _cluster(calm)
        solo = JobScheduler(alone, max_concurrent=2)
        ticket = solo.submit(_job("solo"), TetriumPolicy())
        alone.network.sim.run()
        solo_jct = ticket.result.jct_s

        shared = _cluster(calm)
        both = JobScheduler(shared, max_concurrent=2)
        tickets = [
            both.submit(_job(f"ts-{i}"), TetriumPolicy())
            for i in range(2)
        ]
        shared.network.sim.run()
        assert all(t.result is not None for t in tickets)
        assert max(t.result.jct_s for t in tickets) > solo_jct * 1.2

    def test_submit_at_defers_submission(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=2)
        scheduler.submit_at(100.0, _job("late"), TetriumPolicy())
        assert not scheduler.running and not scheduler.queued
        cluster.network.sim.run()
        assert len(scheduler.completed) == 1
        assert scheduler.completed[0].started_s == pytest.approx(100.0)

    def test_stats_shapes(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=3)
        empty = scheduler.stats()
        assert empty["completed"] == 0.0
        for i in range(3):
            scheduler.submit(_job(f"ts-{i}"), TetriumPolicy())
        cluster.network.sim.run()
        stats = scheduler.stats()
        assert stats["completed"] == 3.0
        assert stats["mean_jct_s"] > 0
        assert stats["jobs_per_hour"] > 0
        assert 0.0 < stats["fairness"] <= 1.0

    def test_on_job_finished_hook(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        seen = []
        scheduler.on_job_finished = lambda t: seen.append(t.job.name)
        scheduler.submit(_job("hooked"), TetriumPolicy())
        cluster.network.sim.run()
        assert seen == ["hooked"]

    def test_max_concurrent_validated(self, calm):
        with pytest.raises(ValueError):
            JobScheduler(_cluster(calm), max_concurrent=0)
