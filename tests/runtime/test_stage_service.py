"""Service-level behavior of the alternate stages: telemetry handoff,
probe accounting, and multi-backend policy steering."""

import pytest

from repro.pipeline.alternates import MultiBackendPlanner
from repro.pipeline.config import ServiceConfig
from repro.runtime.service import PipelineService, default_job_mix

REGIONS = ("us-east-1", "us-west-1")

FAST = dict(
    regions=REGIONS,
    n_training_datasets=3,
    n_estimators=2,
    seed=5,
    scenario="step-drop",
)


class TestPassiveServiceRun:
    @pytest.fixture(scope="class")
    def service(self):
        svc = PipelineService.build(
            ServiceConfig(**FAST, gauger="passive-telemetry")
        )
        for delay, job in default_job_mix(
            REGIONS, count=2, seed=5, scale_mb=300.0
        ):
            svc.submit_at(delay, job)
        svc.run()
        svc.stop()
        return svc

    def test_telemetry_handoff_binds_the_shared_store(self, service):
        assert service.pipeline.gauger.store is service.telemetry

    def test_summary_reports_zero_probe_cost(self, service):
        summary = service.summary()
        assert summary.completed == 2
        assert summary.probe_transfers == 0
        assert summary.probe_gb == 0.0
        assert summary.probe_cost_usd == 0.0

    def test_probe_columns_in_row(self, service):
        row = service.summary().to_row()
        assert row["probe_transfers"] == 0.0
        assert "probe_cost_usd" in row


class TestSnapshotServiceRun:
    def test_summary_prices_the_initial_gauge(self):
        svc = PipelineService.build(ServiceConfig(**FAST))
        svc.stop()
        summary = svc.summary()
        n = len(REGIONS)
        assert summary.probe_transfers == n * (n - 1)
        assert summary.probe_gb > 0.0


class TestMultiBackendSteering:
    def test_scheduler_follows_the_planner_choice(self):
        svc = PipelineService.build(
            ServiceConfig(**FAST, planner="multi-backend")
        )
        svc.stop()
        planner = svc.pipeline.planner
        assert planner.chosen_policy in MultiBackendPlanner.DEFAULT_BACKENDS
        assert svc.scheduler.default_policy == planner.chosen_policy

    def test_submitted_job_runs_under_the_chosen_backend(self):
        svc = PipelineService.build(
            ServiceConfig(**FAST, planner="multi-backend")
        )
        job = default_job_mix(REGIONS, count=1, seed=5, scale_mb=200.0)[0][1]
        ticket = svc.submit(job)
        assert ticket.policy.name == svc.pipeline.planner.chosen_policy
        svc.run()
        svc.stop()
        assert ticket.state == "done"
