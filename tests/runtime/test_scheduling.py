"""Tests for the pluggable scheduling subsystem
(:mod:`repro.runtime.scheduling`)."""

import pytest

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.gda.systems.vanilla import LocalityPolicy
from repro.pipeline.registry import (
    admission_policy,
    admission_policy_registry,
    register_admission_policy,
)
from repro.runtime.scenarios import scenario
from repro.runtime.scheduler import JobScheduler, JobTicket
from repro.runtime.scheduling import (
    SLO,
    BatchedReallocator,
    DeadlineAdmission,
    FairShareAdmission,
    FifoAdmission,
    PriorityAdmission,
    SchedulerView,
    attainment,
    jain_index,
    spread_slos,
    tenant_of,
)

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")
PAIR = ("us-east-1", "us-west-1")


def _job(name="job-0", mb=100.0, keys=TRIAD):
    return JobSpec(
        name=name,
        stages=[
            StageSpec(
                "map", cpu_s_per_mb=0.01, output_ratio=1.0, shuffle=False
            ),
            StageSpec(
                "reduce", cpu_s_per_mb=0.01, output_ratio=0.1, shuffle=True
            ),
        ],
        input_mb_by_dc={k: mb for k in keys},
    )


def _ticket(name="job-0", submitted=0.0, seq=0, slo=None, mb=100.0):
    return JobTicket(
        _job(name, mb=mb),
        LocalityPolicy(),
        submitted_s=submitted,
        seq=seq,
        slo=slo,
    )


def _view(now=0.0, running=(), completed=()):
    return SchedulerView(now=now, running=tuple(running), completed=tuple(completed))


class TestSLO:
    def test_deadline_at_is_relative_to_submission(self):
        assert SLO(deadline_s=300.0).deadline_at(100.0) == 400.0
        assert SLO().deadline_at(100.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO(deadline_s=0.0)
        with pytest.raises(ValueError):
            SLO(weight=0.0)

    def test_tenant_defaults_to_job_name_prefix(self):
        assert tenant_of(_ticket("wordcount-3")) == "wordcount"
        assert tenant_of(_ticket("solo")) == "solo"
        explicit = _ticket("wordcount-3", slo=SLO(tenant="team-a"))
        assert tenant_of(explicit) == "team-a"

    def test_attainment_counts_only_deadline_jobs(self):
        met = _ticket("a-0", slo=SLO(deadline_s=100.0))
        met.finished_s = 50.0
        missed = _ticket("a-1", slo=SLO(deadline_s=100.0))
        missed.finished_s = 500.0
        free = _ticket("a-2")
        free.finished_s = 9999.0
        unfinished = _ticket("a-3", slo=SLO(deadline_s=100.0))
        assert attainment([met, missed, free, unfinished]) == (1, 1)

    def test_spread_slos_is_deterministic_and_heterogeneous(self):
        mix = [(0.0, _job(f"j-{i}")) for i in range(6)]
        a = spread_slos(mix, 600.0, seed=3)
        b = spread_slos(mix, 600.0, seed=3)
        assert [slo for _, _, slo in a] == [slo for _, _, slo in b]
        deadlines = {slo.deadline_s for _, _, slo in a}
        assert len(deadlines) == 6  # spread, not uniform
        assert all(240.0 <= d <= 1080.0 for d in deadlines)
        with pytest.raises(ValueError):
            spread_slos(mix, 0.0)


class TestPolicyOrdering:
    def test_fifo_preserves_submission_order(self):
        tickets = [_ticket(f"j-{i}", submitted=float(i), seq=i) for i in range(5)]
        assert FifoAdmission().order(tickets, _view()) == tickets

    def test_priority_orders_descending_then_fifo(self):
        low = _ticket("low-0", submitted=0.0, seq=0, slo=SLO(priority=0))
        high = _ticket("high-1", submitted=1.0, seq=1, slo=SLO(priority=5))
        mid_a = _ticket("mid-2", submitted=2.0, seq=2, slo=SLO(priority=2))
        mid_b = _ticket("mid-3", submitted=3.0, seq=3, slo=SLO(priority=2))
        ordered = PriorityAdmission().order([low, high, mid_a, mid_b], _view())
        assert ordered == [high, mid_a, mid_b, low]

    def test_no_slo_means_neutral_priority(self):
        neutral = _ticket("n-0", submitted=0.0, seq=0)
        boosted = _ticket("b-1", submitted=1.0, seq=1, slo=SLO(priority=1))
        demoted = _ticket("d-2", submitted=2.0, seq=2, slo=SLO(priority=-1))
        ordered = PriorityAdmission().order([neutral, boosted, demoted], _view())
        assert ordered == [boosted, neutral, demoted]

    def test_deadline_edf_orders_by_absolute_deadline(self):
        # Submitted later but tighter: absolute deadline 150 < 300.
        tight = _ticket("t-1", submitted=100.0, seq=1, slo=SLO(deadline_s=50.0))
        loose = _ticket("l-0", submitted=0.0, seq=0, slo=SLO(deadline_s=300.0))
        ordered = DeadlineAdmission().order([loose, tight], _view())
        assert ordered == [tight, loose]

    def test_deadline_free_tickets_sort_last_fifo(self):
        free_a = _ticket("f-0", submitted=0.0, seq=0)
        free_b = _ticket("f-1", submitted=1.0, seq=1)
        dated = _ticket("d-2", submitted=2.0, seq=2, slo=SLO(deadline_s=10.0))
        ordered = DeadlineAdmission().order([free_a, free_b, dated], _view())
        assert ordered == [dated, free_a, free_b]

    def test_fair_share_prefers_the_starved_tenant(self):
        # Tenant "hog" already received lots of service; "starved" none.
        served = _ticket("hog-0", mb=5000.0)
        served.finished_s = 10.0
        hog_next = _ticket("hog-1", seq=1, mb=100.0)
        starved_next = _ticket("starved-2", submitted=5.0, seq=2, mb=100.0)
        view = _view(completed=[served])
        ordered = FairShareAdmission().order([hog_next, starved_next], view)
        assert ordered[0] is starved_next

    def test_fair_share_weight_scales_entitlement(self):
        served = _ticket("a-0", mb=1000.0)
        served.finished_s = 10.0
        # Same attained service, but tenant "a" has weight 10 — its
        # normalized service is small, so it stays ahead of "b".
        heavy = _ticket("a-1", seq=1, mb=100.0, slo=SLO(weight=10.0))
        other = _ticket("b-2", submitted=5.0, seq=2, mb=100.0)
        served_b = _ticket("b-0", mb=1000.0)
        served_b.finished_s = 11.0
        view = _view(completed=[served, served_b])
        ordered = FairShareAdmission().order([heavy, other], view)
        assert ordered[0] is heavy

    def test_fair_share_reduces_to_fifo_for_one_tenant(self):
        tickets = [
            _ticket(f"same-{i}", submitted=float(i), seq=i) for i in range(4)
        ]
        assert FairShareAdmission().order(tickets, _view()) == tickets

    def test_policies_are_registered(self):
        for name in ("fifo", "priority", "deadline-edf", "fair-share"):
            assert name in admission_policy_registry
            assert admission_policy(name).name == name

    def test_custom_policy_registers_and_resolves(self):
        @register_admission_policy("largest-first")
        class LargestFirst:
            name = "largest-first"
            dynamic = False

            def order(self, queued, view):
                return sorted(
                    queued, key=lambda t: -t.job.total_input_mb
                )

        try:
            assert admission_policy("largest-first").name == "largest-first"
        finally:
            admission_policy_registry.unregister("largest-first")


class TestBatchedReallocator:
    def test_batch_validated(self):
        with pytest.raises(ValueError):
            BatchedReallocator(FifoAdmission(), batch=0)

    def test_pop_empty_queue_returns_none(self):
        realloc = BatchedReallocator(FifoAdmission())
        assert realloc.pop([], _view()) is None

    def test_batch_one_reorders_every_admission(self):
        realloc = BatchedReallocator(DeadlineAdmission(), batch=1)
        tickets = [
            _ticket(f"j-{i}", seq=i, slo=SLO(deadline_s=100.0 * (3 - i)))
            for i in range(3)
        ]
        queue = list(tickets)
        popped = []
        for _ in range(3):
            realloc.note_submit()
        while queue:
            ticket = realloc.pop(queue, _view())
            queue.remove(ticket)
            ticket.started_s = 0.0  # leaves the "queued" state
            popped.append(ticket)
        # Exact EDF: tightest absolute deadline first.
        assert popped == [tickets[2], tickets[1], tickets[0]]
        assert realloc.reorders >= 1

    def test_batching_amortizes_reorders(self):
        realloc = BatchedReallocator(FifoAdmission(), batch=50)
        queue = []
        for i in range(100):
            queue.append(_ticket(f"j-{i}", submitted=float(i), seq=i))
            realloc.note_submit()
        popped = []
        while queue:
            ticket = realloc.pop(queue, _view())
            queue.remove(ticket)
            ticket.started_s = 0.0
            popped.append(ticket)
        assert [t.seq for t in popped] == list(range(100))
        assert realloc.pops == 100
        # 100 pops cost ~100/50 orderings, not 100.
        assert realloc.reorders <= 4

    def test_dynamic_policy_reorders_after_finish(self):
        realloc = BatchedReallocator(FairShareAdmission(), batch=50)
        queue = [_ticket(f"t{i}-0", seq=i) for i in range(4)]
        for _ in queue:
            realloc.note_submit()
        realloc.pop(queue, _view())
        before = realloc.reorders
        realloc.note_finish()  # fair-share is dynamic
        realloc.pop(queue, _view())
        assert realloc.reorders == before + 1

    def test_static_policy_ignores_finishes(self):
        realloc = BatchedReallocator(FifoAdmission(), batch=50)
        queue = [_ticket(f"j-{i}", seq=i) for i in range(4)]
        for _ in queue:
            realloc.note_submit()
        realloc.pop(queue, _view())
        before = realloc.reorders
        realloc.note_finish()
        realloc.pop(queue, _view())
        assert realloc.reorders == before


def _cluster(weather, keys=TRIAD):
    return GeoCluster.build(keys, "t2.medium", fluctuation=weather)


def _small_job(name, mb=150.0, keys=TRIAD):
    return _job(name, mb=mb, keys=keys)


class TestSchedulerIntegration:
    def test_default_scheduler_is_fifo(self, calm):
        scheduler = JobScheduler(_cluster(calm))
        assert scheduler.admission.name == "fifo"

    def test_edf_admits_tight_deadlines_first(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(
            cluster,
            max_concurrent=1,
            admission="deadline-edf",
            admit_batch=1,
        )
        loose = scheduler.submit(
            _small_job("loose-0"), slo=SLO(deadline_s=9000.0)
        )
        tight = scheduler.submit(
            _small_job("tight-1"), slo=SLO(deadline_s=500.0)
        )
        tighter = scheduler.submit(
            _small_job("tighter-2"), slo=SLO(deadline_s=100.0)
        )
        cluster.network.sim.run()
        # loose-0 was already running when the others arrived; among
        # the queued two, EDF admits the tighter deadline first.
        assert loose.started_s == 0.0
        assert tighter.started_s < tight.started_s

    def test_default_slo_applies_to_every_submission(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(
            cluster, default_slo=SLO(deadline_s=123.0)
        )
        ticket = scheduler.submit(_small_job("dflt-0"))
        assert ticket.slo is not None
        assert ticket.slo.deadline_s == 123.0
        explicit = scheduler.submit(
            _small_job("own-1"), slo=SLO(deadline_s=9.0)
        )
        assert explicit.slo.deadline_s == 9.0

    def test_stats_report_slo_attainment(self, calm):
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=1)
        # Generous deadline met; impossible deadline missed; no-SLO job
        # excluded from the denominator.
        scheduler.submit(_small_job("met-0"), slo=SLO(deadline_s=86400.0))
        scheduler.submit(_small_job("miss-1"), slo=SLO(deadline_s=0.001))
        scheduler.submit(_small_job("free-2"))
        cluster.network.sim.run()
        stats = scheduler.stats()
        assert stats["slo_attained"] == 1.0
        assert stats["slo_missed"] == 1.0
        assert stats["slo_attainment"] == pytest.approx(0.5)

    def test_stats_before_any_finish_are_zeroed(self, calm):
        """Regression: stats() mid-run must not divide by zero."""
        cluster = _cluster(calm)
        scheduler = JobScheduler(cluster, max_concurrent=2)
        # Nothing submitted at all.
        assert scheduler.stats() == JobScheduler.ZERO_STATS
        # Jobs queued and running, none finished yet.
        for i in range(4):
            scheduler.submit(_small_job(f"j-{i}"))
        assert len(scheduler.running) == 2
        stats = scheduler.stats()
        assert stats["completed"] == 0.0
        assert stats["jobs_per_hour"] == 0.0
        assert stats["slo_attainment"] == 1.0
        assert stats["fairness"] == 1.0
        cluster.network.sim.run()
        assert scheduler.stats()["completed"] == 4.0

    def test_zero_stats_is_a_fresh_copy(self, calm):
        scheduler = JobScheduler(_cluster(calm))
        stats = scheduler.stats()
        stats["completed"] = 99.0
        assert scheduler.stats()["completed"] == 0.0


class TestBatchedScale:
    """The ROADMAP target: hundreds of queued jobs without churn.

    Parametrized over the queue depth: the 200-job case runs in
    tier-1; the 2000-job case carries ``@pytest.mark.slow`` and runs
    in CI's dedicated slow-tests job (``-m slow``).
    """

    @pytest.fixture(
        scope="class",
        params=[200, pytest.param(2000, marks=pytest.mark.slow)],
    )
    def crowded(self, request):
        """N jobs queued at once under a flash crowd, EDF admission."""
        n_jobs = request.param
        weather = scenario("flash-crowd", seed=7)
        cluster = _cluster(weather, keys=PAIR)
        scheduler = JobScheduler(
            cluster,
            max_concurrent=4,
            admission="deadline-edf",
        )
        tickets = []
        for i in range(n_jobs):
            # Deadlines deliberately scrambled vs. arrival order.
            slo = SLO(deadline_s=600.0 + ((i * 7919) % n_jobs) * 60.0)
            tickets.append(
                scheduler.submit(
                    _small_job(f"crowd-{i}", mb=40.0, keys=PAIR), slo=slo
                )
            )
        cluster.network.sim.run()
        return scheduler, tickets, n_jobs

    def test_all_jobs_complete(self, crowded):
        scheduler, tickets, n_jobs = crowded
        assert len(scheduler.completed) == n_jobs
        assert all(t.result is not None for t in tickets)

    def test_reordering_is_amortized_not_quadratic(self, crowded):
        scheduler, _, n_jobs = crowded
        realloc = scheduler.reallocator
        assert realloc.pops == n_jobs
        # With the default batch, orderings stay a small fraction of
        # admissions (a per-admission re-sort would be n_jobs of them).
        assert realloc.reorders <= n_jobs // 4

    def test_admission_follows_deadlines(self, crowded):
        scheduler, tickets, n_jobs = crowded
        # All jobs were queued simultaneously, so EDF admission should
        # start earlier-deadline jobs earlier on average.  Compare the
        # tightest and loosest quartiles.
        by_deadline = sorted(tickets, key=lambda t: t.slo.deadline_s)
        quarter = n_jobs // 4
        tight_start = sum(t.started_s for t in by_deadline[:quarter]) / quarter
        loose_start = sum(t.started_s for t in by_deadline[-quarter:]) / quarter
        assert tight_start < loose_start

    def test_fairness_index_still_computes(self, crowded):
        scheduler, _, n_jobs = crowded
        stats = scheduler.stats()
        assert 0.0 < stats["fairness"] <= 1.0
        assert stats["completed"] == float(n_jobs)


class TestJainReuse:
    def test_scheduler_and_scheduling_share_one_jain(self):
        from repro.runtime import scheduler as scheduler_module

        assert scheduler_module.jain_index is jain_index
