"""Tests for the telemetry warehouse, trace, KPIs, and /metrics."""

import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.net.dynamics import StaticModel
from repro.net.monitor import WanMonitor
from repro.net.simulator import NetworkSimulator
from repro.runtime.drift import ReplanEvent
from repro.runtime.observability import (
    REQUIRED_METRIC_FAMILIES,
    EventTrace,
    KpiReport,
    MetricsEndpoint,
    MetricsLog,
    MetricsRegistry,
    RecordedRun,
    RollupRow,
    TraceEvent,
    load_run,
    merge_link_rollups,
    parse_prometheus_text,
    render_timeline,
    snapshot_run,
    write_kpi_report,
    write_run,
)
from repro.runtime.scenarios import FlashCrowd, LinkDegradation
from repro.runtime.service import PipelineService, ServiceConfig, default_job_mix
from repro.runtime.telemetry import TelemetryStore

CAP = 100.0


def capped_log() -> MetricsLog:
    """A log whose every link has nominal capacity ``CAP`` Mbps."""
    return MetricsLog(lambda src, dst: CAP)


class TestRollupMath:
    def test_rate_statistics(self):
        log = capped_log()
        for t, rate in enumerate((10.0, 20.0, 30.0, 40.0)):
            log.observe(float(t), "a", "b", rate)
        (row,) = log.rollup("1m")
        assert row.group == "a→b"
        assert row.samples == 4
        assert row.min_mbps == pytest.approx(10.0)
        assert row.mean_mbps == pytest.approx(25.0)
        assert row.p50_mbps == pytest.approx(25.0)
        assert row.max_mbps == pytest.approx(40.0)
        assert row.capacity_mbps == pytest.approx(CAP)

    def test_time_above_cumulative_vs_continuous(self):
        """A mid-window dip splits the continuous run but not the sum."""
        log = capped_log()
        # Ticks every 10 s; 90 Mbps = 90% of capacity, 50 Mbps breaks
        # the run.  The first sample bounds no interval.
        for t, rate in zip(
            (0.0, 10.0, 20.0, 30.0, 40.0, 50.0),
            (90.0, 90.0, 50.0, 90.0, 90.0, 90.0),
        ):
            log.observe(t, "a", "b", rate)
        (row,) = log.rollup("1m")
        for pct in (70, 80, 90):
            assert row.above_s[pct] == pytest.approx(40.0)
            assert row.continuous_s[pct] == pytest.approx(30.0)

    def test_below_threshold_time_not_charged(self):
        log = capped_log()
        for t in (0.0, 10.0, 20.0):
            log.observe(t, "a", "b", 60.0)  # 60% of capacity
        (row,) = log.rollup("1m")
        assert row.above_s == {70: 0.0, 80: 0.0, 90: 0.0}
        assert row.continuous_s == {70: 0.0, 80: 0.0, 90: 0.0}

    def test_bucket_boundary_clips_interval(self):
        """A sample straddling a bucket edge only charges its own side."""
        log = capped_log()
        log.observe(50.0, "a", "b", 100.0)
        log.observe(55.0, "a", "b", 100.0)
        log.observe(65.0, "a", "b", 100.0)
        first, second = log.rollup("1m")
        assert first.bucket_start == 0.0
        assert first.above_s[80] == pytest.approx(5.0)
        assert second.bucket_start == 60.0
        # The 55→65 interval spans the edge; only 60→65 lands here.
        assert second.above_s[80] == pytest.approx(5.0)

    def test_flaps_count_active_to_idle_transitions(self):
        log = capped_log()
        rates = (50.0, 0.0, 0.0, 50.0, 0.0, 50.0)  # two drops to idle
        for t, rate in enumerate(rates):
            log.observe(float(t), "a", "b", rate)
        (row,) = log.rollup("1m")
        assert row.flaps == 2
        assert row.availability_pct == pytest.approx(50.0)

    def test_without_capacity_oracle_thresholds_stay_zero(self):
        log = MetricsLog()
        for t in (0.0, 10.0, 20.0):
            log.observe(t, "a", "b", 500.0)
        (row,) = log.rollup("1m")
        assert row.capacity_mbps == 0.0
        assert row.above_s == {70: 0.0, 80: 0.0, 90: 0.0}
        assert row.max_mbps == pytest.approx(500.0)

    def test_region_rollup_pools_links(self):
        """Region rows pool samples, sum flaps, and max the runs."""
        log = capped_log()
        for t, rate in zip((0.0, 10.0, 20.0), (90.0, 90.0, 0.0)):
            log.observe(t, "a", "b", rate)
        for t in (0.0, 10.0, 20.0):
            log.observe(t, "a", "c", 90.0)
        (row,) = log.rollup("1m", by="region")
        assert row.group == "a"
        assert row.samples == 6
        assert row.flaps == 1  # only a→b dropped
        # Cumulative time sums across member links: 10 + 20.
        assert row.above_s[80] == pytest.approx(30.0)
        # Continuous is the max over members (a→c's unbroken 20 s).
        assert row.continuous_s[80] == pytest.approx(20.0)
        # Capacity sums once per destination.
        assert row.capacity_mbps == pytest.approx(2 * CAP)

    def test_rollup_validates_grain_and_level(self):
        log = capped_log()
        with pytest.raises(ValueError):
            log.rollup("2m")
        with pytest.raises(ValueError):
            log.rollup("1m", by="galaxy")

    def test_rollup_memoized_until_log_grows(self):
        log = capped_log()
        log.observe(0.0, "a", "b", 10.0)
        first = log.rollup("1m")
        assert log.rollup("1m") is first
        log.observe(1.0, "a", "b", 20.0)
        assert log.rollup("1m") is not first

    def test_record_matches_sample_sink_signature(self):
        store = TelemetryStore()
        log = capped_log()
        store.attach(log.record)
        store.record("a", 5.0, {"b": 100.0, "c": 0.0})
        assert log.size == 2
        assert log.links() == [("a", "b"), ("a", "c")]

    def test_rollup_rows_spans_every_grain(self):
        log = capped_log()
        log.observe(30.0, "a", "b", 10.0)
        log.observe(90.0, "a", "b", 10.0)  # 2nd 1m/10m bucket? no: 10m same
        # 1m: buckets 0 and 60 → 2 rows; 10m: 1 row; 1h: 1 row.
        assert log.rollup_rows() == 4

    def test_merge_link_rollups_totals(self):
        log = capped_log()
        rates = (90.0, 90.0, 0.0)
        for t, rate in zip((0.0, 30.0, 70.0), rates):
            log.observe(t, "a", "b", rate)
        merged = merge_link_rollups(log.rollup("1m"))
        totals = merged["a→b"]
        assert totals["samples"] == 3
        assert totals["p95_mbps"] == pytest.approx(90.0)
        assert totals["flaps"] == 1
        assert totals["above_80_s"] == pytest.approx(30.0)
        assert totals["above_80_continuous_s"] == pytest.approx(30.0)

    def test_row_json_round_trip(self):
        log = capped_log()
        for t, rate in enumerate((90.0, 90.0, 0.0)):
            log.observe(10.0 * t, "a", "b", rate)
        (row,) = log.rollup("1m")
        assert RollupRow.from_json(row.to_json()) == row


class TestScenarioFlaps:
    """Flap counting against real scenario-driven monitor feeds."""

    TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")

    def _instrumented(self, net):
        store = TelemetryStore()
        log = MetricsLog(lambda src, dst: self.baseline)
        store.attach(log.record)
        monitor = WanMonitor(
            net, "us-east-1", interval_s=5.0, on_sample=store.record
        )
        return log, monitor

    @property
    def baseline(self) -> float:
        """The calm single-transfer rate on the probe triad (Mbps)."""
        return 1706.6474976150294

    def test_link_failure_flaps_and_congestion(self, triad):
        """Two transfers around a link failure: two flaps, and only
        the pre-failure one shows up as time-above-threshold."""
        failure = LinkDegradation(
            base=StaticModel(),
            residual=0.05,
            start_s=40.0,
            ramp_s=0.0,
            links=((0, 1),),
        )
        net = NetworkSimulator(triad, fluctuation=failure)
        log, _ = self._instrumented(net)
        # ~17 s at the calm rate: ticks 5/10/15 active, idle by 20.
        net.start_transfer("us-east-1", "us-west-1", self.baseline * 17.0)
        net.sim.run(until=42.0)
        # Post-failure the same link runs at 5% — a second transfer
        # sized for ~20 s at that collapsed rate.
        net.start_transfer("us-east-1", "us-west-1", self.baseline * 1.0)
        net.sim.run(until=90.0)
        rows = [r for r in log.rollup("1m") if r.group == "us-east-1→us-west-1"]
        assert sum(r.flaps for r in rows) == 2
        # Only the calm transfer ran near capacity.
        assert sum(r.above_s[70] for r in rows) == pytest.approx(10.0)
        post = [r.max_mbps for r in rows if r.bucket_start == 60.0]
        assert post and post[0] == pytest.approx(0.05 * self.baseline)

    def test_flash_crowd_dips_without_flapping(self, triad):
        """A crunch throttles an active link but never idles it: the
        rollup shows the dip, not a flap."""
        crowd = FlashCrowd(
            base=StaticModel(),
            start_s=30.0,
            duration_s=60.0,
            ramp_s=0.0,
            depth=0.3,
            hit_fraction=1.0,
        )
        net = NetworkSimulator(triad, fluctuation=crowd)
        log, _ = self._instrumented(net)
        # Large enough to stay active through the whole 30–90 s crunch.
        net.start_transfer("us-east-1", "us-west-1", self.baseline * 80.0)
        net.sim.run(until=85.0)
        rows = [r for r in log.rollup("1m") if r.group == "us-east-1→us-west-1"]
        assert sum(r.flaps for r in rows) == 0
        assert all(r.availability_pct == 100.0 for r in rows)
        calm, crunch = rows[0], rows[1]
        assert crunch.max_mbps == pytest.approx(0.3 * calm.max_mbps)
        # The calm minute saturated; the crunch minute did not.
        assert calm.above_s[90] > 0.0
        assert crunch.above_s[70] == 0.0


class TestEventTrace:
    def test_ring_evicts_but_keeps_counting(self):
        trace = EventTrace(capacity=4)
        for t in range(6):
            trace.record(float(t), "submit", f"job-{t}")
        assert trace.recorded == 6
        assert trace.dropped == 2
        events = trace.events()
        assert len(events) == 4
        assert events[0].subject == "job-2"

    def test_kind_filter_and_timeline(self):
        trace = EventTrace()
        trace.record(1.0, "submit", "job-a")
        trace.record(2.0, "drift", "a→b", rel_error=0.5)
        assert [e.subject for e in trace.events("drift")] == ["a→b"]
        lines = trace.timeline()
        assert len(lines) == 2
        assert "drift" in lines[1] and "rel_error=0.5" in lines[1]

    def test_render_timeline_empty(self):
        assert render_timeline([]) == "(no events traced)\n"

    def test_event_json_round_trip(self):
        event = TraceEvent(3.5, "replan", "a→b", {"probe_cost_usd": 0.01})
        assert TraceEvent.from_json(event.to_json()) == event

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)


class TestPrometheus:
    def test_counter_gauge_render_and_parse(self):
        registry = MetricsRegistry()
        jobs = registry.counter("jobs_total", "Jobs.")
        jobs.inc()
        jobs.inc(2.0)
        registry.gauge("depth", "Queue depth.").set(3.0)
        registry.gauge("rate", "Per-link.").set(10.0, src="a", dst="b")
        families = parse_prometheus_text(registry.render())
        assert families["jobs_total"]["type"] == "counter"
        assert families["jobs_total"]["samples"] == [
            ("jobs_total", {}, 3.0)
        ]
        assert families["rate"]["samples"] == [
            ("rate", {"src": "a", "dst": "b"}, 10.0)
        ]

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "Latency.", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        samples = parse_prometheus_text(registry.render())["lat"]["samples"]
        by_le = {
            labels["le"]: value
            for name, labels, value in samples
            if name == "lat_bucket"
        }
        assert by_le == {"1": 1.0, "10": 2.0, "+Inf": 3.0}
        assert ("lat_count", {}, 3.0) in samples
        assert ("lat_sum", {}, 55.5) in samples

    def test_duplicate_family_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "X.")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "X again.")

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not prometheus\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_name not_a_number\n")

    def test_endpoint_scrapes_and_404s(self):
        scrapes = []
        endpoint = MetricsEndpoint(
            lambda: "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n",
            on_scrape=lambda: scrapes.append(1),
        )
        try:
            with urllib.request.urlopen(endpoint.url) as response:
                assert response.status == 200
                assert "version=0.0.4" in response.headers["Content-Type"]
                body = response.read().decode()
            assert parse_prometheus_text(body)["a_total"]["samples"] == [
                ("a_total", {}, 1.0)
            ]
            assert scrapes == [1]
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    endpoint.url.replace("/metrics", "/other")
                )
        finally:
            endpoint.close()


@pytest.fixture(scope="module")
def observed_service():
    """One instrumented service run shared by the integration tests."""
    config = ServiceConfig(
        regions=("us-east-1", "us-west-1", "ap-southeast-1", "eu-west-1"),
        n_training_datasets=6,
        n_estimators=6,
        scenario="link-failure",
    )
    service = PipelineService.build(config)
    mix = default_job_mix(
        config.regions, count=4, seed=42, scale_mb=3000.0
    )
    service.submit_mix(mix)
    service.run(until=None)
    service.stop()
    yield service
    if service.hub is not None:
        service.hub.close()


class TestServiceIntegration:
    def test_hub_wired_by_default(self, observed_service):
        hub = observed_service.hub
        assert hub is not None
        assert hub.log.size > 0
        assert hub.counters["submitted"] == 4
        assert hub.counters["completed"] == 4
        kinds = {e.kind for e in hub.trace.events()}
        assert {"submit", "admit", "finish"} <= kinds
        assert len(hub.jct_samples) == 4

    def test_summary_exposes_observability_columns(self, observed_service):
        summary = observed_service.summary()
        assert summary.rollup_rows > 0
        assert summary.events_traced > 0
        assert summary.metrics_scrapes == 0
        row = summary.to_row()
        for column in ("rollup_rows", "events_traced", "metrics_scrapes"):
            assert column in row

    def test_observability_can_be_disabled(self):
        config = ServiceConfig(
            regions=("us-east-1", "us-west-1"),
            n_training_datasets=4,
            n_estimators=4,
            observability=False,
        )
        service = PipelineService.build(config)
        service.stop()
        assert service.hub is None
        assert service.summary().rollup_rows == 0
        with pytest.raises(ValueError):
            snapshot_run(service)

    def test_prometheus_surface_complete(self, observed_service):
        families = parse_prometheus_text(
            observed_service.hub.render_prometheus()
        )
        for family in REQUIRED_METRIC_FAMILIES:
            assert family in families, family
        samples = families["wanify_jobs_completed_total"]["samples"]
        assert samples == [("wanify_jobs_completed_total", {}, 4.0)]
        link_stats = {
            labels["stat"]
            for _, labels, _ in families["wanify_link_estimate_mbps"][
                "samples"
            ]
        }
        assert link_stats == {"p50", "p95", "ewma"}

    def test_metrics_endpoint_live_scrape(self, observed_service):
        hub = observed_service.hub
        endpoint = hub.serve_metrics(port=0)
        try:
            with pytest.raises(RuntimeError):
                hub.serve_metrics(port=0)
            with urllib.request.urlopen(endpoint.url) as response:
                body = response.read().decode()
            families = parse_prometheus_text(body)
            assert hub.metrics_scrapes == 1
            # A scrape reports the scrapes served *before* it…
            assert families["wanify_metrics_scrapes_total"]["samples"] == [
                ("wanify_metrics_scrapes_total", {}, 0.0)
            ]
            # …so the next one sees this one counted.
            with urllib.request.urlopen(endpoint.url) as response:
                second = parse_prometheus_text(response.read().decode())
            assert second["wanify_metrics_scrapes_total"]["samples"] == [
                ("wanify_metrics_scrapes_total", {}, 1.0)
            ]
            assert observed_service.summary().metrics_scrapes == 2
        finally:
            hub.close()
        assert hub.endpoint is None

    def test_drift_and_replan_handlers(self, observed_service):
        """The drift/replan hooks record counters + trace events."""
        hub = observed_service.hub
        before = hub.counters["drift"]
        event = ReplanEvent(
            time=100.0,
            src="us-east-1",
            dst="eu-west-1",
            observed_mbps=50.0,
            predicted_mbps=200.0,
            rel_error=0.75,
            probe_transfers=12,
            probe_cost_usd=0.01,
        )
        hub._drift_fired(event)
        hub.replan_recorded(event)
        assert hub.counters["drift"] == before + 1
        assert hub.trace.events("drift")[-1].subject == "us-east-1→eu-west-1"
        replan = hub.trace.events("replan")[-1]
        assert replan.detail["probe_cost_usd"] == pytest.approx(0.01)

    def test_recorded_run_round_trip(self, observed_service, tmp_path):
        path = write_run(observed_service, tmp_path / "run.json")
        run = load_run(path)
        assert run.meta["scenario"] == "link-failure"
        assert len(run.jobs) == 4
        assert run.link_rollups and run.region_rollups
        assert run.link_rollups_at("1m")
        snapshot = snapshot_run(observed_service)
        assert run.summary == snapshot["summary"]
        assert len(run.events) == len(snapshot["events"])

    def test_load_run_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError):
            load_run(path)

    def test_kpi_report_from_run(self, observed_service, tmp_path):
        run = load_run(write_run(observed_service, tmp_path / "run.json"))
        report = KpiReport.from_run(run)
        # Hot-spots only list links that carried traffic.
        assert report.congestion
        assert all(row["max_mbps"] > 0 for row in report.congestion)
        assert sum(t["jobs"] for t in report.tenants) == 4
        assert report.probe_cost["probe_transfers"] > 0
        markdown = report.render_markdown()
        for heading in (
            "## Congestion hot-spots",
            "## SLO attainment by tenant",
            "## Failover quality",
            "## Probe cost per re-plan",
        ):
            assert heading in markdown
        json_path, md_path = write_kpi_report(
            report, tmp_path / "kpi", timeline=run.timeline()
        )
        assert json.loads(json_path.read_text())["tenants"]
        assert "## Event timeline" in md_path.read_text()


class TestTenantAggregation:
    """KPI tenant math on a hand-built recorded run."""

    @staticmethod
    def _job(name, tenant, met, jct=100.0, wait=5.0, preemptions=0):
        return {
            "name": name,
            "tenant": tenant,
            "submitted_s": 0.0,
            "wait_s": wait,
            "jct_s": jct,
            "deadline_s": None,
            "met": met,
            "preemptions": preemptions,
        }

    def test_attainment_and_means(self):
        run = RecordedRun(
            meta={},
            summary={},
            jobs=[
                self._job("a-1", "alpha", True, jct=100.0),
                self._job("a-2", "alpha", False, jct=300.0, preemptions=2),
                self._job("b-1", "beta", None, jct=50.0, wait=10.0),
            ],
            link_rollups=[],
            region_rollups=[],
            events=[],
        )
        report = KpiReport.from_run(run)
        alpha, beta = report.tenants
        assert alpha["tenant"] == "alpha"
        assert alpha["slo_attained"] == 1
        assert alpha["slo_missed"] == 1
        assert alpha["slo_attainment"] == pytest.approx(0.5)
        assert alpha["mean_jct_s"] == pytest.approx(200.0)
        assert alpha["preemptions"] == 2
        # No promise (met=None) → perfect attainment by convention.
        assert beta["slo_attainment"] == pytest.approx(1.0)
        # No rollups → no congestion rows, availability defaults high.
        assert report.congestion == []
        assert report.failover["min_link_availability_pct"] == 100.0


class TestReportCli:
    def test_report_run_writes_kpi_tables(self, observed_service, tmp_path):
        run_path = write_run(observed_service, tmp_path / "run.json")
        out_dir = tmp_path / "kpi-out"
        stream = _Stream()
        code = main(
            [
                "report",
                "--run",
                str(run_path),
                "--trace",
                "-o",
                str(out_dir),
            ],
            stream,
        )
        assert code == 0
        text = stream.text()
        assert "KPI report" in text
        assert "## Event timeline" in text
        assert (out_dir / "kpi.json").exists()
        assert (out_dir / "kpi.md").exists()

    def test_report_run_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("{}")
        stream = _Stream()
        assert main(["report", "--run", str(bad)], stream) == 2
        assert "bad recorded run" in stream.text()

    def test_trace_without_run_is_an_error(self):
        stream = _Stream()
        assert main(["report", "--trace"], stream) == 2
        assert "--trace needs --run" in stream.text()


class _Stream:
    """Minimal write-capture stream for CLI tests."""

    def __init__(self):
        self.chunks = []

    def write(self, chunk):
        self.chunks.append(chunk)

    def text(self):
        return "".join(self.chunks)
