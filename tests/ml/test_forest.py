"""Tests for the Random Forest regressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForestRegressor, _resolve_max_features


def noisy_linear(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-5, 5, size=(n, 4))
    y = 3 * X[:, 0] - 2 * X[:, 1] + rng.normal(0, 0.5, size=n)
    return X, y


class TestFit:
    def test_fits_and_scores_well(self):
        X, y = noisy_linear()
        forest = RandomForestRegressor(
            n_estimators=30, random_state=1
        ).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_deterministic_given_seed(self):
        X, y = noisy_linear()
        a = RandomForestRegressor(n_estimators=10, random_state=7).fit(X, y)
        b = RandomForestRegressor(n_estimators=10, random_state=7).fit(X, y)
        assert a.predict(X) == pytest.approx(b.predict(X))

    def test_different_seeds_differ(self):
        X, y = noisy_linear()
        a = RandomForestRegressor(n_estimators=10, random_state=7).fit(X, y)
        b = RandomForestRegressor(n_estimators=10, random_state=8).fit(X, y)
        assert not np.allclose(a.predict(X), b.predict(X))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 4)))

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().fit(np.empty((0, 3)), np.empty(0))


class TestWarmStart:
    def test_warm_start_extends_forest(self):
        X, y = noisy_linear()
        forest = RandomForestRegressor(
            n_estimators=10, warm_start=True, random_state=3
        ).fit(X, y)
        assert len(forest.trees) == 10
        forest.n_estimators = 25
        forest.fit(X, y)
        assert len(forest.trees) == 25

    def test_warm_start_keeps_existing_trees(self):
        X, y = noisy_linear()
        forest = RandomForestRegressor(
            n_estimators=5, warm_start=True, random_state=3
        ).fit(X, y)
        first_tree = forest.trees[0]
        forest.n_estimators = 8
        forest.fit(X, y)
        assert forest.trees[0] is first_tree

    def test_warm_start_feature_mismatch_rejected(self):
        X, y = noisy_linear()
        forest = RandomForestRegressor(
            n_estimators=5, warm_start=True, random_state=3
        ).fit(X, y)
        with pytest.raises(ValueError, match="warm start"):
            forest.fit(X[:, :2], y)

    def test_cold_start_replaces_trees(self):
        X, y = noisy_linear()
        forest = RandomForestRegressor(
            n_estimators=5, warm_start=False, random_state=3
        ).fit(X, y)
        first_tree = forest.trees[0]
        forest.fit(X, y)
        assert forest.trees[0] is not first_tree


class TestFeatureImportances:
    def test_importances_sum_to_one(self):
        X, y = noisy_linear()
        forest = RandomForestRegressor(
            n_estimators=15, random_state=2
        ).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_informative_features_rank_first(self):
        X, y = noisy_linear()
        forest = RandomForestRegressor(
            n_estimators=20, random_state=2, max_features=None
        ).fit(X, y)
        importances = forest.feature_importances_
        assert importances[0] > importances[2]
        assert importances[1] > importances[3]


class TestMaxFeaturesSpec:
    @pytest.mark.parametrize(
        "spec,n,expected",
        [
            (None, 9, None),
            ("sqrt", 9, 3),
            ("log2", 8, 3),
            (0.5, 8, 4),
            (3, 9, 3),
            (100, 9, 9),
        ],
    )
    def test_resolution(self, spec, n, expected):
        assert _resolve_max_features(spec, n) == expected

    @pytest.mark.parametrize("spec", [0, -1, 1.5, "cube"])
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            _resolve_max_features(spec, 5)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=50))
def test_forest_predictions_within_target_hull(seed):
    """Averaging trees keeps predictions inside the target range."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(60, 3))
    y = rng.uniform(-50, 50, size=60)
    forest = RandomForestRegressor(
        n_estimators=8, random_state=seed
    ).fit(X, y)
    preds = forest.predict(rng.normal(size=(40, 3)) * 5)
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9
