"""Tests for regression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    fraction_within,
    mae,
    mape,
    r2_score,
    rmse,
    training_accuracy,
)

Y = np.array([100.0, 200.0, 300.0])


class TestPointMetrics:
    def test_perfect_predictions(self):
        assert mae(Y, Y) == 0.0
        assert rmse(Y, Y) == 0.0
        assert mape(Y, Y) == 0.0
        assert r2_score(Y, Y) == 1.0
        assert training_accuracy(Y, Y) == 100.0
        assert fraction_within(Y, Y, 0.0) == 1.0

    def test_mae_known_value(self):
        assert mae(Y, Y + 10) == pytest.approx(10.0)

    def test_rmse_ge_mae(self):
        pred = Y + np.array([0.0, 0.0, 30.0])
        assert rmse(Y, pred) >= mae(Y, pred)

    def test_mape_relative(self):
        assert mape(Y, Y * 1.1) == pytest.approx(0.1)

    def test_mape_ignores_zero_targets(self):
        y = np.array([0.0, 100.0])
        assert mape(y, np.array([5.0, 110.0])) == pytest.approx(0.1)

    def test_mape_all_zero_rejected(self):
        with pytest.raises(ValueError):
            mape(np.zeros(3), np.ones(3))

    def test_r2_of_mean_predictor_is_zero(self):
        pred = np.full_like(Y, Y.mean())
        assert r2_score(Y, pred) == pytest.approx(0.0)

    def test_fraction_within_threshold(self):
        pred = Y + np.array([50.0, 150.0, 99.0])
        assert fraction_within(Y, pred, 100.0) == pytest.approx(2 / 3)

    def test_training_accuracy_clipped(self):
        assert training_accuracy(Y, Y * 10) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mae(Y, Y[:2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mae(np.array([]), np.array([]))


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_r2_at_most_one(seed):
    rng = np.random.default_rng(seed)
    y = rng.normal(size=20)
    pred = rng.normal(size=20)
    assert r2_score(y, pred) <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1000.0),
    st.integers(min_value=0, max_value=100),
)
def test_fraction_within_monotone_in_threshold(threshold, seed):
    rng = np.random.default_rng(seed)
    y = rng.normal(size=20) * 100
    pred = y + rng.normal(size=20) * 100
    assert fraction_within(y, pred, threshold) <= fraction_within(
        y, pred, threshold + 100.0
    )
