"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import RegressionTree


def step_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 10, size=(n, 2))
    y = np.where(X[:, 0] > 5, 100.0, 10.0)
    return X, y


class TestFit:
    def test_learns_a_step_function(self):
        X, y = step_data()
        tree = RegressionTree().fit(X, y)
        preds = tree.predict(X)
        assert np.abs(preds - y).max() < 1e-9

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 3.0)
        tree = RegressionTree().fit(X, y)
        assert tree.n_nodes == 1
        assert tree.predict(X) == pytest.approx(np.full(10, 3.0))

    def test_max_depth_respected(self):
        X, y = step_data()
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        X, y = step_data(n=50)
        tree = RegressionTree(min_samples_leaf=10).fit(X, y)
        # Every leaf must hold ≥ 10 samples.
        for node in tree._nodes:
            if node.feature == -1:
                assert node.n_samples >= 10

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.empty((0, 2)), np.empty(0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_1d_x_rejected(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros(5), np.zeros(5))

    def test_adjacent_float_thresholds_do_not_crash(self):
        # Regression test: midpoints of adjacent floats used to create
        # empty children (NaN leaves).
        x = np.nextafter(1.0, 2.0)
        X = np.array([[1.0], [x], [1.0], [x]])
        y = np.array([0.0, 1.0, 0.0, 1.0])
        tree = RegressionTree().fit(X, y)
        assert not np.isnan(tree.predict(X)).any()


class TestPredict:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_wrong_width_rejected(self):
        X, y = step_data()
        tree = RegressionTree().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((3, 5)))

    def test_predictions_within_target_hull(self):
        X, y = step_data()
        tree = RegressionTree(max_depth=3).fit(X, y)
        preds = tree.predict(X)
        assert preds.min() >= y.min() - 1e-9
        assert preds.max() <= y.max() + 1e-9


class TestImportances:
    def test_informative_feature_dominates(self):
        X, y = step_data()
        tree = RegressionTree().fit(X, y)
        importances = tree.feature_importances()
        assert importances[0] > importances[1]


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=5, max_value=60),
    st.integers(min_value=0, max_value=1000),
)
def test_deep_tree_memorizes_unique_rows(n, seed):
    """With unique inputs and no depth limit, training error is ~0."""
    rng = np.random.default_rng(seed)
    X = rng.permutation(n).astype(float).reshape(-1, 1)
    y = rng.uniform(-100, 100, size=n)
    tree = RegressionTree().fit(X, y)
    assert np.abs(tree.predict(X) - y).max() < 1e-9


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=100))
def test_predictions_bounded_by_targets(seed):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(50, 3))
    y = rng.normal(size=50)
    tree = RegressionTree(max_depth=4).fit(X, y)
    grid = rng.normal(size=(100, 3)) * 10
    preds = tree.predict(grid)
    assert preds.min() >= y.min() - 1e-9
    assert preds.max() <= y.max() + 1e-9
