"""Tests for the MLP regressor (the §3.1 comparison baseline)."""

import numpy as np
import pytest

from repro.ml.mlp import MLPRegressor


def linear_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 3))
    y = 4 * X[:, 0] - 3 * X[:, 1] + 0.5 * X[:, 2]
    return X, y


class TestFit:
    def test_learns_linear_function(self):
        X, y = linear_data()
        mlp = MLPRegressor(epochs=150, random_state=1).fit(X, y)
        assert mlp.score(X, y) > 0.95

    def test_deterministic_given_seed(self):
        X, y = linear_data(n=100)
        a = MLPRegressor(epochs=30, random_state=3).fit(X, y)
        b = MLPRegressor(epochs=30, random_state=3).fit(X, y)
        assert a.predict(X) == pytest.approx(b.predict(X))

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            MLPRegressor().predict(np.zeros((1, 3)))

    def test_wrong_width_rejected(self):
        X, y = linear_data(n=50)
        mlp = MLPRegressor(epochs=10).fit(X, y)
        with pytest.raises(ValueError):
            mlp.predict(np.zeros((2, 7)))

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            MLPRegressor().fit(np.empty((0, 3)), np.empty(0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MLPRegressor().fit(np.zeros((5, 3)), np.zeros(4))

    def test_constant_features_handled(self):
        X = np.ones((50, 2))
        X[:, 1] = np.arange(50)
        y = X[:, 1] * 2.0
        mlp = MLPRegressor(epochs=100, random_state=2).fit(X, y)
        assert mlp.score(X, y) > 0.9


class TestVersusForest:
    def test_forest_beats_mlp_on_small_tabular_data(self):
        """The §3.1 claim: on paper-scale BW datasets the RF wins."""
        from repro.ml.forest import RandomForestRegressor

        rng = np.random.default_rng(7)
        # Small, jagged tabular target (like BW levels): RF's home turf.
        X = rng.uniform(0, 1, size=(150, 6))
        y = np.where(X[:, 1] > 0.5, 800.0, 120.0) + np.where(
            X[:, 5] > 0.7, 300.0, 0.0
        ) + rng.normal(0, 20, size=150)
        forest = RandomForestRegressor(
            n_estimators=30, random_state=1
        ).fit(X, y)
        mlp = MLPRegressor(epochs=120, random_state=1).fit(X, y)
        assert forest.score(X, y) > mlp.score(X, y)
