"""Tests for the stage-level registries and ``build_stage``."""

import pytest

from repro.net.dynamics import FluctuationModel
from repro.net.topology import Topology
from repro.pipeline import Pipeline, PipelineConfig
from repro.pipeline.registry import (
    build_stage,
    gauger_registry,
    planner_registry,
    predictor_registry,
    register_gauger,
)
from repro.pipeline.stages import ForestPredictor, SnapshotGauger, WindowPlanner


def small_topology():
    return Topology.build(("us-east-1", "us-west-1"), "t2.medium")


class TestBuiltinEntries:
    def test_default_stage_names_registered(self):
        assert "snapshot" in gauger_registry
        assert "forest" in predictor_registry
        assert "window" in planner_registry

    def test_alternate_stage_names_registered(self):
        assert "passive-telemetry" in gauger_registry
        assert "passive" in gauger_registry  # alias
        assert "cached" in predictor_registry
        assert "multi-backend" in planner_registry

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="snapshot"):
            gauger_registry.get("sonar")


class TestBuildStage:
    def test_zero_arg_class_ignores_context(self):
        topology = small_topology()
        stage = build_stage(
            gauger_registry,
            "snapshot",
            topology=topology,
            weather=None,
            config=PipelineConfig(),
        )
        assert isinstance(stage, SnapshotGauger)

    def test_context_consuming_class_receives_it(self):
        topology = small_topology()
        config = PipelineConfig(n_training_datasets=3, n_estimators=2)
        stage = build_stage(
            predictor_registry,
            "forest",
            topology=topology,
            weather=FluctuationModel(seed=1),
            config=config,
        )
        assert isinstance(stage, ForestPredictor)
        assert not stage.is_trained

    def test_factory_function_entries_work(self):
        @register_gauger("probe-twice")
        def build_probe_twice(config):
            return ("factory-made", config.seed)

        try:
            made = build_stage(
                gauger_registry,
                "probe-twice",
                topology=None,
                weather=None,
                config=PipelineConfig(seed=99),
            )
            assert made == ("factory-made", 99)
        finally:
            gauger_registry.unregister("probe-twice")

    def test_non_callable_entry_returned_as_is(self):
        sentinel = object()
        gauger_registry.add("prebuilt", sentinel)
        try:
            assert build_stage(gauger_registry, "prebuilt") is sentinel
        finally:
            gauger_registry.unregister("prebuilt")


class TestPipelineResolution:
    def test_config_names_resolve_stages(self):
        config = PipelineConfig(
            n_training_datasets=3,
            n_estimators=2,
            gauger="snapshot",
            predictor="forest",
            planner="window",
        )
        pipe = Pipeline(small_topology(), FluctuationModel(seed=2), config)
        assert isinstance(pipe.gauger, SnapshotGauger)
        assert isinstance(pipe.predictor, ForestPredictor)
        assert isinstance(pipe.planner, WindowPlanner)

    def test_explicit_stage_object_wins_over_config_name(self):
        class FakePlanner:
            def plan(self, bw, config, skew_weights=None, rvec=None):
                raise NotImplementedError

        config = PipelineConfig(
            n_training_datasets=3, n_estimators=2, planner="multi-backend"
        )
        pipe = Pipeline(
            small_topology(),
            FluctuationModel(seed=2),
            config,
            planner=FakePlanner(),
        )
        assert isinstance(pipe.planner, FakePlanner)

    def test_custom_registered_gauger_reachable_by_config_name(self):
        from repro.net.measurement import snapshot

        @register_gauger("loud-snapshot")
        class LoudSnapshot:
            def __init__(self):
                self.calls = 0

            def gauge(self, topology, weather, at_time):
                self.calls += 1
                return snapshot(topology, weather, at_time)

        try:
            config = PipelineConfig(
                n_training_datasets=3, n_estimators=2, gauger="loud-snapshot"
            )
            pipe = Pipeline(small_topology(), FluctuationModel(seed=3), config)
            assert isinstance(pipe.gauger, LoudSnapshot)
            pipe.gauge(at_time=10.0)
            assert pipe.gauger.calls == 1
        finally:
            gauger_registry.unregister("loud-snapshot")

    def test_unknown_stage_name_raises_with_known_names(self):
        config = PipelineConfig(gauger="definitely-not-registered")
        with pytest.raises(KeyError, match="passive-telemetry"):
            Pipeline(small_topology(), FluctuationModel(seed=4), config)
