"""Tests for the alternate stage implementations
(:mod:`repro.pipeline.alternates`)."""

import numpy as np
import pytest

from repro.net.dynamics import FluctuationModel
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import MeasurementCost, MeasurementReport
from repro.net.topology import Topology
from repro.pipeline import Pipeline, PipelineConfig
from repro.pipeline.alternates import (
    CachedPredictor,
    MultiBackendPlanner,
    PassiveTelemetryGauger,
)
from repro.pipeline.stages import SnapshotGauger, WindowPlanner
from repro.runtime.telemetry import TelemetryStore

REGIONS = ("us-east-1", "us-west-1", "eu-west-1")


def topology():
    return Topology.build(REGIONS, "t2.medium")


def warm_store(keys, rate=300.0, samples=6):
    """A store with fresh active samples on every ordered pair."""
    store = TelemetryStore(window_s=120.0)
    for tick in range(samples):
        for src in keys:
            store.record(
                src,
                time=10.0 * tick,
                rates_mbps={dst: rate for dst in keys if dst != src},
            )
    return store


class TestPassiveTelemetryGauger:
    def test_cold_static_gauge_is_free(self):
        gauger = PassiveTelemetryGauger()
        topo = topology()
        report = gauger.gauge(topo, FluctuationModel(seed=1), 0.0)
        assert report.mode == "passive-static"
        assert report.cost.dollars == 0.0
        assert gauger.probe_transfers == 0
        assert gauger.probe_gb == 0.0
        assert gauger.cold_gauges == 1
        # The static estimate is the modelled uncontended cap.
        src, dst = REGIONS[0], REGIONS[1]
        assert report.matrix.get(src, dst) == pytest.approx(
            topo.single_connection_cap(src, dst)
        )

    def test_warm_store_serves_the_percentile(self):
        topo = topology()
        gauger = PassiveTelemetryGauger()
        gauger.bind_telemetry(warm_store(topo.keys, rate=250.0))
        report = gauger.gauge(topo, FluctuationModel(seed=1), 60.0)
        assert report.mode == "passive-telemetry"
        assert gauger.passive_gauges == 1
        assert report.matrix.get(REGIONS[0], REGIONS[2]) == pytest.approx(250.0)
        assert gauger.probe_transfers == 0

    def test_partial_coverage_fills_from_known_mean(self):
        topo = topology()
        store = TelemetryStore(window_s=120.0)
        # Samples only from us-east-1 (2 of 6 ordered pairs).  Below
        # the default 50% coverage this would fall back; lower the bar.
        for tick in range(5):
            store.record(
                REGIONS[0],
                time=10.0 * tick,
                rates_mbps={REGIONS[1]: 200.0, REGIONS[2]: 400.0},
            )
        gauger = PassiveTelemetryGauger(store=store, min_coverage=0.25)
        report = gauger.gauge(topo, FluctuationModel(seed=1), 50.0)
        assert report.mode == "passive-telemetry"
        # Unsampled pair gets the mean of the known estimates.
        assert report.matrix.get(REGIONS[1], REGIONS[2]) == pytest.approx(300.0)

    def test_cold_probe_mode_pays_for_a_snapshot(self):
        gauger = PassiveTelemetryGauger(cold_start="probe")
        report = gauger.gauge(topology(), FluctuationModel(seed=1), 0.0)
        assert report.mode == "snapshot"
        n = len(REGIONS)
        assert gauger.probe_transfers == n * (n - 1)
        assert gauger.probe_gb > 0

    def test_cold_probe_mirrors_the_fallback_ledger(self):
        # A custom fallback that probes fewer pairs must not be billed
        # for a full n·(n−1) mesh.
        from repro.net.measurement import snapshot
        from repro.pipeline.stages import GaugeLedger

        class HalfMesh(GaugeLedger):
            def gauge(self, topology, weather, at_time):
                report = snapshot(topology, weather, at_time)
                return self.log_gauge(report, transfers=2)

        gauger = PassiveTelemetryGauger(cold_start="probe", fallback=HalfMesh())
        gauger.gauge(topology(), FluctuationModel(seed=1), 0.0)
        assert gauger.probe_transfers == 2

    def test_rejects_unknown_cold_start(self):
        with pytest.raises(ValueError, match="cold_start"):
            PassiveTelemetryGauger(cold_start="guess")


class FixedPredictor:
    """Counts inferences; returns a constant matrix."""

    def __init__(self, keys, value=500.0):
        self.keys = keys
        self.value = value
        self.calls = 0

    @property
    def is_trained(self):
        return True

    def train(self, topology, weather, config):
        return {}

    def predict(self, report, topology):
        self.calls += 1
        out = BandwidthMatrix.zeros(topology.keys)
        for src, dst in out.pairs():
            out.set(src, dst, self.value)
        return out


def report_at(keys, time, rate=300.0):
    matrix = BandwidthMatrix.zeros(keys)
    for src, dst in matrix.pairs():
        matrix.set(src, dst, rate)
    return MeasurementReport(
        "snapshot", matrix, window_s=1.0, time=time, cost=MeasurementCost()
    )


class TestCachedPredictor:
    def test_second_similar_snapshot_hits(self):
        topo = topology()
        inner = FixedPredictor(topo.keys)
        cached = CachedPredictor(inner=inner, ttl_s=600.0, drift_tolerance=0.15)
        first = cached.predict(report_at(topo.keys, 0.0, rate=300.0), topo)
        second = cached.predict(report_at(topo.keys, 30.0, rate=305.0), topo)
        assert inner.calls == 1
        assert cached.hits == 1 and cached.misses == 1
        assert np.allclose(first.off_diagonal(), second.off_diagonal())

    def test_ttl_expiry_recomputes(self):
        topo = topology()
        inner = FixedPredictor(topo.keys)
        cached = CachedPredictor(inner=inner, ttl_s=100.0)
        cached.predict(report_at(topo.keys, 0.0), topo)
        cached.predict(report_at(topo.keys, 500.0), topo)
        assert inner.calls == 2
        assert cached.misses == 2

    def test_snapshot_drift_invalidates(self):
        topo = topology()
        inner = FixedPredictor(topo.keys)
        cached = CachedPredictor(inner=inner, ttl_s=600.0, drift_tolerance=0.15)
        cached.predict(report_at(topo.keys, 0.0, rate=300.0), topo)
        # 50% drop — far past the 15% tolerance.
        cached.predict(report_at(topo.keys, 30.0, rate=150.0), topo)
        assert inner.calls == 2

    def test_train_invalidates_cache(self):
        topo = topology()
        inner = FixedPredictor(topo.keys)
        cached = CachedPredictor(inner=inner, ttl_s=600.0)
        cached.predict(report_at(topo.keys, 0.0), topo)
        cached.train(topo, None, PipelineConfig())
        cached.predict(report_at(topo.keys, 10.0), topo)
        assert inner.calls == 2

    def test_delegates_unknown_attributes_to_inner(self):
        topo = topology()
        inner = FixedPredictor(topo.keys)
        cached = CachedPredictor(inner=inner)
        assert cached.value == 500.0  # inner attribute through __getattr__

    def test_requires_inner_or_context(self):
        with pytest.raises(ValueError, match="inner predictor"):
            CachedPredictor()

    def test_config_supplies_cache_knobs(self):
        topo = topology()
        config = PipelineConfig(cache_ttl_s=42.0, cache_drift_tolerance=0.5)
        cached = CachedPredictor(
            inner=FixedPredictor(topo.keys), config=config
        )
        assert cached.ttl_s == 42.0
        assert cached.drift_tolerance == 0.5


class TestMultiBackendPlanner:
    def bw(self, keys, value=400.0):
        out = BandwidthMatrix.zeros(keys)
        for src, dst in out.pairs():
            out.set(src, dst, value)
        return out

    def test_scores_all_backends_and_picks_one(self):
        topo = topology()
        planner = MultiBackendPlanner(topology=topo)
        plan = planner.plan(self.bw(topo.keys), PipelineConfig())
        assert plan is not None
        assert set(planner.last_scores) == set(planner.DEFAULT_BACKENDS)
        assert planner.chosen_policy in planner.DEFAULT_BACKENDS
        assert all(score > 0 for score in planner.last_scores.values())

    def test_choice_history_accumulates(self):
        topo = topology()
        planner = MultiBackendPlanner(topology=topo)
        planner.plan(self.bw(topo.keys), PipelineConfig())
        planner.plan(self.bw(topo.keys, value=200.0), PipelineConfig())
        assert len(planner.choices) == 2

    def test_without_topology_skips_scoring_but_still_plans(self):
        topo = topology()
        planner = MultiBackendPlanner()
        plan = planner.plan(self.bw(topo.keys), PipelineConfig())
        assert plan is not None
        assert planner.chosen_policy is None

    def test_delegates_to_inner_window_planner(self):
        topo = topology()
        planner = MultiBackendPlanner(topology=topo)
        bw = self.bw(topo.keys)
        config = PipelineConfig()
        expected = WindowPlanner().plan(bw, config)
        got = planner.plan(bw, config)
        assert got.max_bw.min_bw() == pytest.approx(expected.max_bw.min_bw())

    def test_custom_backend_subset(self):
        topo = topology()
        planner = MultiBackendPlanner(
            topology=topo, backends=("tetrium", "kimchi")
        )
        planner.plan(self.bw(topo.keys), PipelineConfig())
        assert planner.chosen_policy in ("tetrium", "kimchi")


class TestPipelineWithAlternates:
    def test_end_to_end_passive_cached_multibackend(self):
        config = PipelineConfig(
            n_training_datasets=3,
            n_estimators=2,
            gauger="passive-telemetry",
            predictor="cached",
            planner="multi-backend",
        )
        pipe = Pipeline(topology(), FluctuationModel(seed=7), config)
        pipe.train()
        bw = pipe.predict(at_time=100.0)
        pipe.predict(at_time=110.0)
        plan = pipe.plan(bw)
        assert plan is not None
        assert pipe.gauger.probe_transfers == 0
        assert pipe.predictor.hits >= 1
        assert pipe.planner.chosen_policy in MultiBackendPlanner.DEFAULT_BACKENDS
