"""Tests for the string-keyed extension registries."""

import pytest

from repro.gda.systems.base import PlacementPolicy
from repro.pipeline.registry import (
    Registry,
    placement_policy,
    policy_registry,
    register_policy,
    register_scenario,
    scenario_registry,
    variant_registry,
)


class TestRegistryMechanics:
    def test_register_and_get(self):
        reg = Registry("thing")
        reg.add("a", 1)
        assert reg.get("a") == 1
        assert "a" in reg
        assert reg.names() == ("a",)
        assert len(reg) == 1

    def test_decorator_uses_name_attribute(self):
        reg = Registry("thing")

        @reg.register()
        class Widget:
            name = "widget"

        assert reg.get("widget") is Widget

    def test_bare_decoration_works(self):
        # ``@reg.register`` without parentheses must register the
        # class, not silently replace it with the inner closure.
        reg = Registry("thing")

        @reg.register
        class Widget:
            name = "widget"

        assert isinstance(Widget, type)
        assert reg.get("widget") is Widget

    def test_bare_decoration_without_name_rejected(self):
        reg = Registry("thing")
        with pytest.raises(ValueError, match="string name"):

            @reg.register
            class Nameless:
                pass

    def test_decorator_explicit_name_wins(self):
        reg = Registry("thing")

        @reg.register("alias")
        class Widget:
            name = "widget"

        assert "alias" in reg
        assert "widget" not in reg

    def test_missing_name_rejected(self):
        reg = Registry("thing")
        with pytest.raises(ValueError, match="needs a string name"):
            reg.register()(object())

    def test_unknown_get_lists_known(self):
        reg = Registry("thing")
        reg.add("known-entry", 1)
        with pytest.raises(KeyError, match="known-entry"):
            reg.get("nope")

    def test_shadow_before_bootstrap_survives(self, monkeypatch):
        # Registering over a built-in before the registry's first
        # lookup must survive the lazy bootstrap import (last-wins).
        import importlib as importlib_mod

        reg = Registry("thing", bootstrap="fake.builtins")

        def fake_import(module):
            assert module == "fake.builtins"
            reg._entries["calm"] = "builtin"
            return None

        monkeypatch.setattr(importlib_mod, "import_module", fake_import)
        reg.add("calm", "mine")  # triggers bootstrap first, then stores
        assert reg.get("calm") == "mine"

    def test_last_registration_wins_and_unregister(self):
        reg = Registry("thing")
        reg.add("x", 1)
        reg.add("x", 2)
        assert reg.get("x") == 2
        reg.unregister("x")
        assert "x" not in reg
        reg.unregister("x")  # no-op

    def test_mapping_is_live_and_readonly(self):
        reg = Registry("thing")
        view = reg.mapping
        reg.add("x", 1)
        assert view["x"] == 1
        with pytest.raises(TypeError):
            view["y"] = 2


class TestBuiltinRegistries:
    def test_builtin_variants_present(self):
        for name in (
            "single",
            "wanify-p",
            "wanify-dynamic",
            "wanify-tc",
            "global-only",
            "local-only",
        ):
            assert name in variant_registry

    def test_builtin_policies_present(self):
        for name in ("tetrium", "kimchi", "iridium", "vanilla-spark"):
            assert name in policy_registry
        # Friendly alias for the CLI.
        assert "locality" in policy_registry

    def test_builtin_scenarios_present(self):
        for name in ("calm", "diurnal", "flash-crowd", "step-drop"):
            assert name in scenario_registry


class TestPlacementPolicyResolution:
    def test_resolves_name_to_instance(self):
        policy = placement_policy("kimchi")
        assert isinstance(policy, PlacementPolicy)
        assert policy.name == "kimchi"

    def test_resolves_class_and_instance(self):
        cls = placement_policy("tetrium").__class__
        assert isinstance(placement_policy(cls), cls)
        instance = cls()
        assert placement_policy(instance) is instance

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="tetrium"):
            placement_policy("no-such-system")

    def test_custom_policy_registered_from_test_code(self):
        @register_policy()
        class EastOnly(PlacementPolicy):
            name = "east-only"

            def place_stage(self, stage, data_mb_by_dc, bw, cluster):
                first = sorted(cluster.keys)[0]
                return {
                    dc: 1.0 if dc == first else 0.0
                    for dc in cluster.keys
                }

        try:
            resolved = placement_policy("east-only")
            assert isinstance(resolved, EastOnly)
        finally:
            policy_registry.unregister("east-only")
        with pytest.raises(KeyError):
            policy_registry.get("east-only")


class TestScenarioRegistration:
    def test_custom_scenario_factory(self):
        from repro.net.dynamics import StaticModel
        from repro.runtime.scenarios import ScenarioModel, scenario

        @register_scenario("test-flatline")
        def _flatline(base, seed):
            return ScenarioModel(
                base if base is not None else StaticModel(), seed
            )

        try:
            model = scenario("test-flatline", seed=3)
            assert model.factor(0, 1, 100.0) > 0
        finally:
            scenario_registry.unregister("test-flatline")
