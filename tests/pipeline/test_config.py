"""Tests for the layered config system and generated CLI arguments."""

import argparse
import json

import pytest

from repro.pipeline.config import (
    ConfigArguments,
    PipelineConfig,
    ServiceConfig,
    env_overrides,
    layered_config,
    load_config_file,
)


class TestDefaults:
    def test_pipeline_defaults_follow_paper(self):
        config = PipelineConfig()
        assert config.max_connections == 8
        assert config.n_training_datasets == 120
        assert config.n_estimators == 100
        assert config.variant == "wanify-tc"
        assert config.policy == "tetrium"

    def test_service_extends_pipeline(self):
        config = ServiceConfig()
        assert isinstance(config, PipelineConfig)
        assert config.seed == 42  # service override of the base default
        assert config.n_training_datasets == 24
        assert config.max_concurrent == 3

    def test_service_mirrors_drift_defaults(self):
        # The config layer duplicates these to stay import-light; keep
        # them honest against the source of truth.
        from repro.runtime import drift

        config = ServiceConfig()
        assert config.drift_threshold == drift.DEFAULT_THRESHOLD
        assert config.cooldown_s == drift.DEFAULT_COOLDOWN_S

    def test_frozen(self):
        with pytest.raises(Exception):
            PipelineConfig().seed = 99


class TestFileLayer:
    def test_toml_file(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text('seed = 7\nvariant = "wanify-p"\n')
        config = layered_config(PipelineConfig, path=path, environ={})
        assert config.seed == 7
        assert config.variant == "wanify-p"

    def test_json_file(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps({"n_estimators": 5}))
        config = layered_config(PipelineConfig, path=path, environ={})
        assert config.n_estimators == 5

    def test_unknown_keys_ignored(self, tmp_path):
        # One file can feed entry points with different config classes.
        path = tmp_path / "run.toml"
        path.write_text('seed = 7\nmax_concurrent = 9\n')
        config = layered_config(PipelineConfig, path=path, environ={})
        assert config.seed == 7
        assert not hasattr(config, "max_concurrent")
        service = layered_config(ServiceConfig, path=path, environ={})
        assert service.max_concurrent == 9

    def test_non_table_rejected(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="table"):
            load_config_file(path)


class TestEnvLayer:
    def test_env_coercion(self):
        env = {
            "WANIFY_SEED": "5",
            "WANIFY_THROTTLING": "off",
            "WANIFY_MAX_REPLANS": "3",
            "WANIFY_SCENARIO": "diurnal",
            "WANIFY_UNRELATED": "ignored",
        }
        found = env_overrides(ServiceConfig, env)
        assert found == {
            "seed": 5,
            "throttling": False,
            "max_replans": 3,
            "scenario": "diurnal",
        }

    def test_cli_alias_spelling_accepted(self):
        # --datasets is the flag, so WANIFY_DATASETS must work too.
        found = env_overrides(ServiceConfig, {"WANIFY_DATASETS": "99"})
        assert found == {"n_training_datasets": 99}

    def test_field_name_wins_over_alias(self):
        found = env_overrides(
            ServiceConfig,
            {"WANIFY_DATASETS": "99", "WANIFY_N_TRAINING_DATASETS": "7"},
        )
        assert found == {"n_training_datasets": 7}

    def test_optional_none_spelling(self):
        found = env_overrides(
            ServiceConfig, {"WANIFY_MAX_REPLANS": "none"}
        )
        assert found == {"max_replans": None}

    def test_bad_bool_rejected(self):
        with pytest.raises(ValueError, match="boolean"):
            env_overrides(ServiceConfig, {"WANIFY_THROTTLING": "maybe"})


class TestPrecedence:
    def test_file_env_override_order(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text("seed = 1\nn_estimators = 11\n")
        config = layered_config(
            PipelineConfig,
            path=path,
            environ={"WANIFY_SEED": "2"},
            overrides={},
            defaults={"seed": 0, "n_training_datasets": 33},
        )
        # file beats defaults; env beats file; untouched = defaults.
        assert config.seed == 2
        assert config.n_estimators == 11
        assert config.n_training_datasets == 33

    def test_explicit_overrides_win(self, tmp_path):
        path = tmp_path / "run.toml"
        path.write_text("seed = 1\n")
        config = layered_config(
            PipelineConfig,
            path=path,
            environ={"WANIFY_SEED": "2"},
            overrides={"seed": 3},
        )
        assert config.seed == 3


class TestConfigArguments:
    def _parser(self, config_args):
        parser = argparse.ArgumentParser()
        config_args.install(parser)
        return parser

    def test_flags_generated_from_fields(self):
        config_args = ConfigArguments(ServiceConfig)
        parser = self._parser(config_args)
        args = parser.parse_args([])
        # flag-derived namespace attributes, dataclass defaults.
        assert args.datasets == 24
        assert args.max_concurrent == 3
        assert args.vm == "t2.medium"
        assert args.policy == "tetrium"
        assert args.variant == "wanify-tc"
        assert args.config_file is None

    def test_cli_false_fields_have_no_flags(self):
        config_args = ConfigArguments(ServiceConfig)
        parser = self._parser(config_args)
        with pytest.raises(SystemExit):
            parser.parse_args(["--regions", "x"])
        with pytest.raises(SystemExit):
            parser.parse_args(["--online"])

    def test_bool_fields_get_no_variant(self):
        config_args = ConfigArguments(ServiceConfig)
        parser = self._parser(config_args)
        assert parser.parse_args(["--no-throttling"]).throttling is False
        assert parser.parse_args(["--throttling"]).throttling is True

    def test_explicit_detects_only_typed_flags(self):
        config_args = ConfigArguments(
            ServiceConfig, defaults={"scenario": "step-drop"}
        )
        explicit = config_args.explicit(
            ["serve", "us-east-1", "--seed", "9", "--no-throttling"]
        )
        assert explicit == {"seed": 9, "throttling": False}

    def test_resolve_layers_file_env_cli(self, tmp_path):
        path = tmp_path / "svc.toml"
        path.write_text(
            'seed = 1\nvm = "t3.large"\nmax_concurrent = 7\n'
        )
        config_args = ConfigArguments(ServiceConfig)
        parser = self._parser(config_args)
        argv = ["--config", str(path), "--seed", "9"]
        args = parser.parse_args(argv)
        args._argv = argv
        config = config_args.resolve(
            args,
            environ={"WANIFY_VM": "t2.nano"},
            regions=("a", "b"),
        )
        assert config.seed == 9  # explicit CLI beats file
        assert config.vm == "t2.nano"  # env beats file
        assert config.max_concurrent == 7  # file beats defaults
        assert config.regions == ("a", "b")  # extra override

    def test_resolve_without_argv_uses_changed_values(self):
        config_args = ConfigArguments(
            PipelineConfig, defaults={"seed": 42}
        )
        parser = self._parser(config_args)
        args = parser.parse_args(["--estimators", "9"])
        config = config_args.resolve(args, environ={})
        assert config.n_estimators == 9
        assert config.seed == 42
