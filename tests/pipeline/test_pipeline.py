"""Tests for the composed Pipeline, its shims, and registry extensions."""

import io

import pytest

from repro.core.globalopt import uniform_plan
from repro.net.dynamics import FluctuationModel
from repro.net.simulator import NetworkSimulator
from repro.pipeline import (
    Deployment,
    Pipeline,
    PipelineConfig,
    register_variant,
    variant_registry,
)
from repro.pipeline.variants import VariantStrategy

REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")


@pytest.fixture(scope="module")
def trained():
    from repro.net.topology import Topology

    topology = Topology.build(REGIONS, "t2.medium")
    pipeline = Pipeline(
        topology,
        FluctuationModel(seed=9),
        PipelineConfig(n_training_datasets=12, n_estimators=8),
    )
    pipeline.train()
    return topology, pipeline


class TestPipeline:
    def test_train_predict_plan(self, trained):
        topology, pipeline = trained
        assert pipeline.is_trained
        bw = pipeline.predict(at_time=500.0)
        assert bw.keys == topology.keys
        plan = pipeline.plan(bw)
        assert plan.max_bw.min_bw() > 0

    def test_predict_before_training_raises(self, triad):
        pipeline = Pipeline(triad)
        with pytest.raises(RuntimeError, match="train"):
            pipeline.predict()

    def test_deployment_defaults_to_config_variant(self, trained):
        _, pipeline = trained
        deployment = pipeline.deployment(at_time=500.0)
        assert deployment.variant == pipeline.config.variant == "wanify-tc"
        assert deployment.agents and deployment.throttling

    def test_unknown_variant_rejected(self, trained):
        _, pipeline = trained
        with pytest.raises(ValueError, match="unknown variant"):
            pipeline.deployment("wanify-max")

    def test_agent_knobs_forwarded_through_build(self, trained):
        # The service's epoch_s/telemetry reach the strategy at build
        # time (not patched on afterwards), so custom variants see
        # them too.
        _, pipeline = trained

        def sink(sample):
            pass

        deployment = pipeline.deployment(
            "wanify-tc", at_time=500.0, epoch_s=2.5, telemetry=sink
        )
        assert deployment.epoch_s == 2.5
        assert deployment.telemetry is sink

    def test_fresh_config_per_instance(self, triad):
        # The old facade shared one default WANifyConfig() across all
        # constructions; a mutable field would have aliased state.
        a, b = Pipeline(triad), Pipeline(triad)
        assert a.config == b.config
        assert a.config is not b.config


class TestCustomStages:
    def test_custom_planner_plugs_in(self, trained):
        topology, pipeline = trained

        class UniformPlanner:
            def plan(self, bw, config, skew_weights=None, rvec=None):
                return uniform_plan(bw, config.max_connections)

        custom = Pipeline(
            topology,
            pipeline.weather,
            pipeline.config,
            predictor=pipeline.predictor,  # reuse trained stage
            planner=UniformPlanner(),
        )
        bw = custom.predict(at_time=500.0)
        plan = custom.plan(bw)
        counts = {
            plan.max_connections.get(a, b)
            for a in topology.keys
            for b in topology.keys
            if a != b
        }
        assert counts == {float(custom.config.max_connections)}

    def test_custom_gauger_plugs_in(self, trained):
        topology, pipeline = trained
        calls = []

        class RecordingGauger:
            def gauge(self, topo, weather, at_time):
                calls.append(at_time)
                from repro.net.measurement import snapshot

                return snapshot(topo, weather, at_time)

        custom = Pipeline(
            topology,
            pipeline.weather,
            pipeline.config,
            gauger=RecordingGauger(),
            predictor=pipeline.predictor,
        )
        custom.predict(at_time=321.0)
        assert calls == [321.0]


class TestCustomVariant:
    def test_variant_registered_from_test_code(self, trained):
        topology, pipeline = trained

        @register_variant()
        class HalfUniform(VariantStrategy):
            name = "half-uniform"

            def deployment(self, pipeline, bw, skew_weights, rvec):
                plan = uniform_plan(
                    bw, max(1, pipeline.config.max_connections // 2)
                )
                return Deployment(
                    self.name, plan, agents=False, throttling=False
                )

        try:
            deployment = pipeline.deployment("half-uniform", at_time=500.0)
            net = NetworkSimulator(topology)
            deployment.install(net)
            half = max(1, pipeline.config.max_connections // 2)
            assert net.connections(REGIONS[0], REGIONS[1]) == half
            deployment.teardown(net)
        finally:
            variant_registry.unregister("half-uniform")
        with pytest.raises(ValueError, match="unknown variant"):
            pipeline.deployment("half-uniform")


class TestTeardownScoping:
    def test_teardown_clears_only_own_pairs(self, trained):
        topology, pipeline = trained
        net = NetworkSimulator(topology)
        # A different deployment's throttle on the shared substrate.
        net.tc.set_limit("other-job-src", "other-job-dst", 123.0)
        deployment = pipeline.deployment("wanify-tc", at_time=500.0)
        deployment.install(net)
        deployment.teardown(net)
        remaining = net.tc.limits()
        assert remaining == {("other-job-src", "other-job-dst"): 123.0}

    def test_planless_teardown_touches_nothing(self, trained):
        _, pipeline = trained
        from repro.net.topology import Topology

        net = NetworkSimulator(Topology.build(REGIONS, "t2.medium"))
        net.tc.set_limit("a", "b", 50.0)
        deployment = pipeline.deployment("single")
        deployment.install(net)
        deployment.teardown(net)
        assert net.tc.limits() == {("a", "b"): 50.0}


class TestDeprecatedShims:
    def test_wanify_warns_and_delegates(self, trained):
        topology, pipeline = trained
        from repro.core.interface import WANify, WANifyConfig

        with pytest.warns(DeprecationWarning, match="Pipeline"):
            legacy = WANify(
                topology,
                FluctuationModel(seed=9),
                WANifyConfig(n_training_datasets=6, n_estimators=5),
            )
        assert isinstance(legacy, Pipeline)
        legacy.train()
        bw = legacy.predict_runtime_bw(at_time=100.0)
        assert legacy.make_plan(bw).max_bw.min_bw() > 0
        assert legacy.snapshot_report(at_time=0.0).matrix.keys
        assert legacy.fluctuation is legacy.weather

    def test_wanify_service_warns(self):
        from repro.gda.engine.cluster import GeoCluster
        from repro.runtime.service import PipelineService, WANifyService

        cluster = GeoCluster.build(REGIONS, "t2.medium")
        pipeline = Pipeline(cluster.topology)
        with pytest.warns(DeprecationWarning, match="PipelineService"):
            service = WANifyService(cluster, pipeline)
        assert isinstance(service, PipelineService)
        assert service.wanify is service.pipeline is pipeline

    def test_variants_tuple_matches_registry(self):
        from repro.core.interface import VARIANTS

        assert set(VARIANTS) >= {
            "single",
            "wanify-p",
            "wanify-dynamic",
            "wanify-tc",
            "global-only",
            "local-only",
        }


class TestComposedScenarioServe:
    SMALL = (
        "serve",
        "us-east-1",
        "us-west-1",
        "ap-southeast-1",
        "--jobs",
        "2",
        "--scale-mb",
        "600",
        "--datasets",
        "6",
        "--estimators",
        "5",
    )

    def run_cli(self, *argv):
        from repro.cli import main

        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_composed_scenario_end_to_end(self):
        code, text = self.run_cli(
            *self.SMALL, "--scenario", "diurnal+flash-crowd"
        )
        assert code == 0
        assert "scenario 'diurnal+flash-crowd'" in text
        assert "completed 2 jobs" in text

    def test_composed_scenario_unknown_part_fails_cleanly(self):
        code, text = self.run_cli(
            *self.SMALL, "--scenario", "diurnal+meteor-strike"
        )
        assert code == 2
        assert "unknown scenario" in text

    def test_policy_and_variant_flags(self):
        code, text = self.run_cli(
            *self.SMALL,
            "--scenario",
            "calm",
            "--policy",
            "kimchi",
            "--variant",
            "wanify-dynamic",
        )
        assert code == 0
        assert "kimchi" in text

    def test_unknown_policy_fails_cleanly(self):
        code, text = self.run_cli(*self.SMALL, "--policy", "chaos")
        assert code == 2
        assert "unknown placement policy" in text

    def test_config_file_reaches_serve(self, tmp_path):
        path = tmp_path / "svc.toml"
        path.write_text('scenario = "meteor-strike"\n')
        code, text = self.run_cli(*self.SMALL, "--config", str(path))
        assert code == 2
        assert "meteor-strike" in text

    def test_env_var_reaches_serve(self, monkeypatch):
        monkeypatch.setenv("WANIFY_SCENARIO", "asteroid")
        code, text = self.run_cli(*self.SMALL)
        assert code == 2
        assert "asteroid" in text

    def test_online_knob_from_env_honored(self, monkeypatch):
        # WANIFY_ONLINE=false freezes the plan unless --static/-less
        # CLI explicitly decides; the header proves the layer won.
        monkeypatch.setenv("WANIFY_ONLINE", "false")
        code, text = self.run_cli(*self.SMALL, "--scenario", "calm")
        assert code == 0
        assert "static plan" in text
        assert "re-plans 0" in text

    def test_regions_from_config_file_honored(self, tmp_path):
        # No positional regions typed → the file layer decides; the
        # unknown region proves the value reached validation.
        path = tmp_path / "svc.toml"
        path.write_text('regions = ["mars-north-1", "us-east-1"]\n')
        code, text = self.run_cli("serve", "--config", str(path))
        assert code == 2
        assert "mars-north-1" in text

    def test_missing_config_file_fails_cleanly(self):
        code, text = self.run_cli(
            "serve", "--config", "/no/such/file.toml"
        )
        assert code == 2
        assert "bad configuration" in text

    def test_bad_env_value_fails_cleanly(self, monkeypatch):
        monkeypatch.setenv("WANIFY_THROTTLING", "maybe")
        code, text = self.run_cli(*self.SMALL)
        assert code == 2
        assert "bad configuration" in text

    def test_predict_rejects_dead_flags(self):
        # predict stops at the plan; --variant/--policy would be
        # accepted-but-ignored, so they are not generated for it.
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            from repro.cli import build_parser

            build_parser().parse_args(["predict", "--variant", "x"])


class TestComposedScenarioModel:
    def test_shapes_multiply_over_one_base(self):
        from repro.net.dynamics import StaticModel
        from repro.runtime.scenarios import (
            ComposedScenario,
            scenario,
        )

        model = scenario("step-drop+step-drop", seed=4, base=StaticModel())
        assert isinstance(model, ComposedScenario)
        assert model.name == "step-drop+step-drop"
        # Before the step: no effect; after: level² (shapes multiply,
        # the static base contributes exactly once).
        assert model.factor(0, 1, 0.0) == pytest.approx(1.0)
        assert model.factor(0, 1, 10_000.0) == pytest.approx(0.55**2)

    def test_custom_scenario_model_registered_from_test_code(self):
        from dataclasses import dataclass as dc

        from repro.pipeline.registry import scenario_registry
        from repro.runtime.scenarios import (
            ScenarioModel,
            register_scenario_model,
            scenario,
        )

        @dc(frozen=True)
        class MeteorStrike(ScenarioModel):
            name: str = "meteor-strike"

            def shape(self, i, j, t):
                return 0.5 if t >= 100.0 else 1.0

        register_scenario_model(MeteorStrike)
        try:
            model = scenario("meteor-strike+step-drop", seed=2)
            base = model.base
            expected = base.factor(0, 1, 50_000.0) * 0.5 * 0.55
            assert model.factor(0, 1, 50_000.0) == pytest.approx(
                max(expected, 0.02)
            )
        finally:
            scenario_registry.unregister("meteor-strike")
