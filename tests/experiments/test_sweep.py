"""Tests for the registry-driven sweep runner
(:mod:`repro.experiments.sweep`)."""

import json

import pytest

from repro.experiments.sweep import (
    SweepError,
    load_sweep,
    render_markdown,
    run_sweep,
    write_report,
)

#: Two tiny regions + miniature training keep a real run in seconds.
FAST_BASE = """
regions = ["us-east-1", "us-west-1"]
n_training_datasets = 3
n_estimators = 2
seed = 11
"""


def write_toml(tmp_path, body, name="sweep.toml"):
    path = tmp_path / name
    path.write_text(body)
    return path


class TestLoadSweep:
    def test_expands_the_full_matrix(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE
            + """
[sweep]
variants = ["wanify-tc", "single"]
scenarios = ["step-drop", "calm"]
gaugers = ["snapshot", "passive-telemetry"]
""",
        )
        spec = load_sweep(path)
        assert spec.shape == "2×2×2"
        assert len(spec.cells) == 8
        assert spec.swept == ("variant", "scenario", "gauger")
        labels = {spec.label(cell) for cell in spec.cells}
        assert "variant=single scenario=calm gauger=passive-telemetry" in labels

    def test_unswept_axes_take_the_base_value(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE + "\n[sweep]\ngaugers = [\"snapshot\", \"passive\"]\n",
        )
        spec = load_sweep(path)
        assert len(spec.cells) == 2
        assert all(cell["variant"] == "wanify-tc" for cell in spec.cells)
        assert all(cell["predictor"] == "forest" for cell in spec.cells)

    def test_composed_scenarios_are_legal_axis_values(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE
            + "\n[sweep]\nscenarios = [\"diurnal+flash-crowd\"]\n",
        )
        assert load_sweep(path).cells[0]["scenario"] == "diurnal+flash-crowd"

    def test_unknown_axis_value_fails_with_known_names(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + "\n[sweep]\ngaugers = [\"sonar\"]\n"
        )
        with pytest.raises(SweepError, match="passive-telemetry"):
            load_sweep(path)

    def test_unknown_scenario_fails_with_composition_hint(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + "\n[sweep]\nscenarios = [\"quake\"]\n"
        )
        with pytest.raises(SweepError, match=r"join with \+"):
            load_sweep(path)

    def test_bad_base_config_name_fails_at_load_time(self, tmp_path):
        # A bad registry name pinned in the *top-level* table (an
        # unswept axis) must fail validation, not traceback mid-run.
        path = write_toml(
            tmp_path,
            FAST_BASE + 'gauger = "sonar"\n\n[sweep]\njobs = 1\n',
        )
        with pytest.raises(SweepError, match="sonar"):
            load_sweep(path)

    def test_non_list_axis_value_fails_cleanly(self, tmp_path):
        path = write_toml(tmp_path, FAST_BASE + "\n[sweep]\ngaugers = 5\n")
        with pytest.raises(SweepError, match="list of"):
            load_sweep(path)

    def test_unknown_sweep_key_fails(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + "\n[sweep]\nvariations = [\"wanify-tc\"]\n"
        )
        with pytest.raises(SweepError, match="variations"):
            load_sweep(path)

    def test_bad_jobs_fails(self, tmp_path):
        path = write_toml(tmp_path, FAST_BASE + "\n[sweep]\njobs = 0\n")
        with pytest.raises(SweepError, match="jobs"):
            load_sweep(path)

    def test_example_sweep_file_is_valid(self):
        spec = load_sweep("examples/sweep.toml")
        assert spec.shape == "2×2×2"
        assert len(spec.cells) == 8

    def test_schedulers_axis_expands_and_validates(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE
            + '\n[sweep]\nschedulers = ["fifo", "deadline-edf", "fair-share"]\n',
        )
        spec = load_sweep(path)
        assert len(spec.cells) == 3
        assert spec.swept == ("scheduler",)
        assert {c["scheduler"] for c in spec.cells} == {
            "fifo",
            "deadline-edf",
            "fair-share",
        }

    def test_unknown_scheduler_fails_with_known_names(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + '\n[sweep]\nschedulers = ["lifo"]\n'
        )
        with pytest.raises(SweepError, match="deadline-edf"):
            load_sweep(path)

    def test_bad_base_scheduler_fails_at_load_time(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE + 'scheduler = "lifo"\n\n[sweep]\njobs = 1\n',
        )
        with pytest.raises(SweepError, match="lifo"):
            load_sweep(path)

    def test_repeats_and_seed_parse(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE + "\n[sweep]\njobs = 1\nrepeats = 3\nseed = 50\n",
        )
        spec = load_sweep(path)
        assert spec.repeats == 3
        assert [spec.seed_for(r) for r in range(3)] == [50, 51, 52]

    def test_repeats_default_to_base_seed(self, tmp_path):
        path = write_toml(tmp_path, FAST_BASE + "\n[sweep]\nrepeats = 2\n")
        spec = load_sweep(path)
        assert spec.seed_for(0) == spec.base.seed

    def test_bad_repeats_fails(self, tmp_path):
        path = write_toml(tmp_path, FAST_BASE + "\n[sweep]\nrepeats = 0\n")
        with pytest.raises(SweepError, match="repeats"):
            load_sweep(path)

    def test_bad_arrival_scale_fails(self, tmp_path):
        path = write_toml(
            tmp_path, FAST_BASE + "\n[sweep]\narrival_scale = 0.0\n"
        )
        with pytest.raises(SweepError, match="arrival_scale"):
            load_sweep(path)

    def test_example_slo_sweep_file_is_valid(self):
        spec = load_sweep("examples/slo_sweep.toml")
        # Axes expand in AXES order: gaugers before schedulers.
        assert spec.shape == "2×3"
        assert spec.swept == ("gauger", "scheduler")
        assert spec.base.slo_deadline_s == 500.0
        assert spec.arrival_scale == pytest.approx(0.2)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        """One real 1×2 run shared by the assertions below."""
        path = write_toml(
            tmp_path_factory.mktemp("sweep"),
            FAST_BASE
            + """
[sweep]
gaugers = ["snapshot", "passive-telemetry"]
jobs = 1
scale_mb = 300.0
""",
        )
        return run_sweep(load_sweep(path))

    def test_every_cell_completed_its_jobs(self, result):
        assert len(result.rows) == 2
        for row in result.rows:
            assert row.metrics["completed"] == 1.0

    def test_passive_cell_has_zero_probe_transfers(self, result):
        by_gauger = {row.cell["gauger"]: row for row in result.rows}
        passive = by_gauger["passive-telemetry"]
        active = by_gauger["snapshot"]
        assert passive.metrics["probe_transfers"] == 0.0
        assert passive.metrics["probe_gb"] == 0.0
        assert passive.metrics["probe_cost_usd"] == 0.0
        assert active.metrics["probe_transfers"] > 0

    def test_reports_written(self, result, tmp_path):
        json_path, md_path = write_report(result, tmp_path / "report")
        data = json.loads(json_path.read_text())
        assert data["shape"] == "2"
        assert len(data["cells"]) == 2
        assert {c["gauger"] for c in data["cells"]} == {
            "snapshot",
            "passive-telemetry",
        }
        markdown = md_path.read_text()
        assert "probe_transfers" in markdown
        assert "passive-telemetry" in markdown

    def test_markdown_has_one_row_per_cell(self, result):
        lines = render_markdown(result).splitlines()
        table_rows = [
            line
            for line in lines
            if line.startswith("|") and "---" not in line
        ]
        # Header + 2 cells.
        assert len(table_rows) == 3


class TestRepeats:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        """A single cell repeated over three seeds."""
        path = write_toml(
            tmp_path_factory.mktemp("repeats"),
            FAST_BASE
            + """
[sweep]
jobs = 1
scale_mb = 300.0
repeats = 3
""",
        )
        return run_sweep(load_sweep(path))

    def test_metrics_are_means_with_stdev(self, result):
        row = result.rows[0]
        assert row.seeds == (11, 12, 13)
        assert set(row.metrics_std) == set(row.metrics)
        # Weather differs per seed, so JCT must actually vary.
        assert row.metrics_std["mean_jct_s"] > 0.0

    def test_markdown_carries_plus_minus(self, result):
        markdown = render_markdown(result)
        assert "±" in markdown
        assert "3 repeats per cell" in markdown

    def test_json_carries_std_and_seeds(self, result, tmp_path):
        json_path, _ = write_report(result, tmp_path / "rep")
        data = json.loads(json_path.read_text())
        assert data["repeats"] == 3
        cell = data["cells"][0]
        assert cell["seeds"] == [11, 12, 13]
        assert "mean_jct_s_std" in cell


class TestParallelWorkers:
    def test_parallel_run_matches_sequential(self, tmp_path):
        path = write_toml(
            tmp_path,
            FAST_BASE
            + """
[sweep]
gaugers = ["snapshot", "passive-telemetry"]
schedulers = ["fifo", "deadline-edf"]
jobs = 1
scale_mb = 300.0
""",
        )
        spec = load_sweep(path)
        sequential = run_sweep(spec)
        parallel = run_sweep(spec, workers=2)
        assert [r.to_json() for r in parallel.rows] == [
            r.to_json() for r in sequential.rows
        ]

    def test_bad_worker_count_rejected(self, tmp_path):
        path = write_toml(tmp_path, FAST_BASE + "\n[sweep]\njobs = 1\n")
        with pytest.raises(SweepError, match="workers"):
            run_sweep(load_sweep(path), workers=0)


class TestSchedulerAcceptance:
    """The PR's acceptance sweep: policies diverge under pressure."""

    @pytest.fixture(scope="class")
    def rows(self):
        """The committed example matrix, keyed by (gauger, scheduler)."""
        result = run_sweep(load_sweep("examples/slo_sweep.toml"))
        return {
            (row.cell["gauger"], row.cell["scheduler"]): row.metrics
            for row in result.rows
        }

    def test_deadline_edf_beats_fifo_on_attainment(self, rows):
        edf = rows[("snapshot", "deadline-edf")]["slo_attainment"]
        fifo = rows[("snapshot", "fifo")]["slo_attainment"]
        assert edf > fifo

    def test_replan_probe_cost_nonzero_for_snapshot_cells(self, rows):
        for scheduler in ("fifo", "deadline-edf", "fair-share"):
            metrics = rows[("snapshot", scheduler)]
            assert metrics["replans"] >= 1.0
            assert metrics["replan_cost_usd"] > 0.0

    def test_passive_replans_stay_free(self, rows):
        for scheduler in ("fifo", "deadline-edf", "fair-share"):
            metrics = rows[("passive-telemetry", scheduler)]
            assert metrics["replans"] >= 1.0
            assert metrics["replan_cost_usd"] == 0.0
            assert metrics["probe_cost_usd"] == 0.0

    def test_every_cell_completed_under_pressure(self, rows):
        assert all(m["completed"] == 12.0 for m in rows.values())
