"""Smoke tests for the experiment harness.

Full experiment regeneration is the benchmark suite's job; these tests
cover the cheap experiments end-to-end and the shared helpers, so a
broken harness fails fast in the unit suite.
"""

import pytest

from repro.experiments import common, fig2, table1, table2


class TestCommonHelpers:
    def test_improvement_pct(self):
        assert common.improvement_pct(100.0, 80.0) == pytest.approx(20.0)
        assert common.improvement_pct(100.0, 120.0) == pytest.approx(-20.0)

    def test_improvement_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            common.improvement_pct(0.0, 1.0)

    def test_ratio_zero_guard(self):
        assert common.ratio(5.0, 0.0) == float("inf")
        assert common.ratio(0.0, 0.0) == 1.0

    def test_topologies(self):
        assert common.worker_topology().n == 8
        assert common.probe_topology().n == 8
        assert common.probe_topology(("us-east-1", "eu-west-1")).n == 2


class TestTable2:
    def test_run_and_render(self):
        results = table2.run()
        assert set(results["monitoring_usd"]) == {4, 6, 8}
        assert results["savings_pct"] > 80.0
        text = table2.render(results)
        assert "Table 2" in text

    def test_monitoring_close_to_paper(self):
        results = table2.run()
        for n, paper in results["paper_monitoring_usd"].items():
            assert abs(results["monitoring_usd"][n] - paper) / paper < 0.10


class TestTable1:
    def test_run_produces_counts(self):
        results = table1.run()
        assert len(results["counts"]) == 3
        assert results["n_links"] == 56
        assert results["total_significant"] >= 0
        assert "Table 1" in table1.render(results)


class TestFig2:
    def test_manual_plan_budget(self):
        plan = fig2.manual_hetero_plan()
        assert int(plan.off_diagonal().sum()) == fig2.TOTAL_CONNECTIONS

    def test_run_shape(self):
        results = fig2.run()
        assert results["min_single"] == pytest.approx(121, rel=0.25)
        assert results["min_hetero"] > results["min_uniform"]
        assert "Fig. 2" in fig2.render(results)


class TestRenderContracts:
    """Render functions must format canned results without running the
    (expensive) experiments — catches drift between run() return keys
    and render() expectations."""

    def test_profiles_ablation_render(self):
        from repro.experiments import profiles_ablation

        canned = {
            "rows": [
                {
                    "profile": "vpc-peering",
                    "train_accuracy_pct": 98.0,
                    "single_min_bw": 90.0,
                    "wanify_min_bw": 700.0,
                    "uplift": 7.8,
                },
            ]
        }
        text = profiles_ablation.render(canned)
        assert "vpc-peering" in text
        assert "7.8x" in text

    def test_iridium_render(self):
        from repro.experiments import iridium_baseline

        row = {
            "base_jct_min": 28.0,
            "base_migration_mb": 17000.0,
            "pred_migration_mb": 13000.0,
            "pred_perf": 3.7,
            "pred_cost": 2.4,
            "full_perf": 4.0,
            "full_cost": 2.4,
            "min_bw_ratio": 5.0,
        }
        canned = {"rows": {95: dict(row), 78: dict(row)}}
        text = iridium_baseline.render(canned)
        assert "Iridium" in text
        assert "Kimchi" in text  # the comparative finding line

    def test_fig5_render_includes_every_variant(self):
        from repro.experiments import fig5

        variants = {
            key: {
                "label": fig5.VARIANT_LABELS[key],
                "jct_min": 30.0,
                "network_min": 5.0,
                "cost_usd": 7.0,
                "min_bw_mbps": 100.0,
            }
            for key in fig5.VARIANT_LABELS
        }
        canned = {
            "variants": variants,
            "tc_latency_gain_pct": 15.0,
            "tc_min_bw_ratio": 1.8,
            "p_gain_pct": 1.0,
            "dynamic_gain_pct": 15.0,
            "p_is_marginal": True,
            "paper_tc_minutes": 61.0,
            "paper_tc_min_bw": 790.0,
        }
        text = fig5.render(canned)
        for label in fig5.VARIANT_LABELS.values():
            assert label in text


class TestIridiumSkewedInput:
    def test_skew_sums_to_input(self):
        from repro.experiments import iridium_baseline

        data = iridium_baseline.skewed_input()
        assert sum(data.values()) == pytest.approx(
            iridium_baseline.INPUT_MB
        )
        assert (
            data[iridium_baseline.HEAVY_DC]
            == pytest.approx(
                iridium_baseline.INPUT_MB * iridium_baseline.SKEW_FRACTION
            )
        )
