"""Fault-injection (chaos) tests for the WANify runtime.

Everything here carries ``@pytest.mark.chaos`` and is excluded from
the default tier-1 run (see ``pytest.ini``); CI drains the tier with
``pytest -m chaos``.  The harness lives in :mod:`tests.chaos.injector`;
the invariants it must not be able to break are pinned in
``test_faults.py``.
"""
