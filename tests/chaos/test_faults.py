"""Invariants the runtime must hold under injected faults.

Four fault families (circuit kills, telemetry corruption, recalibrator
stalls, crashed shard workers) against four invariants:

1. **Recalibration bounds** — the published capacity stays inside
   ``[floor, ceiling]`` and never exceeds the weather-free topology
   ceiling, even when the telemetry feeding it is absurd garbage.
2. **Byte conservation** — a circuit failing over mid-transfer loses
   no payload: every in-flight transfer still delivers exactly its
   size, completing exactly once.
3. **Governor ledger** — every bandwidth cap the governor applies is
   released; ``throttle_moves == throttle_releases`` at drain no
   matter what the circuits did.
4. **Ticket termination** — every submitted job ticket reaches
   ``done`` exactly once: no lost jobs, no double completions.

All timelines are seeded; a failure here is replayable byte for byte.
"""

from collections import Counter

import pytest

from chaos.injector import (
    ABSURD_RATE_MBPS,
    POISON_ADMISSION,
    FaultInjector,
    KilledCircuits,
)
from repro.net.dynamics import FluctuationModel
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology
from repro.pipeline.config import ServiceConfig
from repro.runtime.scheduling.parallel import ShardExecutor, build_tasks
from repro.runtime.scheduling.slo import spread_slos
from repro.runtime.service import PipelineService, default_job_mix

pytestmark = pytest.mark.chaos

REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")
SEED = 23
JOBS = 4

#: Tiny-but-real predictor: chaos tests exercise the runtime, not the
#: model, so training is kept to seconds.
FAST = dict(n_training_datasets=3, n_estimators=2)


def _service(**overrides) -> PipelineService:
    settings = dict(
        regions=REGIONS,
        seed=SEED,
        scenario="circuit-flap",
        recalibrate=True,
        slo_deadline_s=2400.0,
        max_concurrent=4,
        **FAST,
    )
    settings.update(overrides)
    service = PipelineService.build(ServiceConfig(**settings))
    service.submit_mix(
        default_job_mix(REGIONS, count=JOBS, seed=SEED, scale_mb=2000.0)
    )
    return service


class TestRecalibrationBounds:
    """Invariant 1, under faults: telemetry corruption + recal stall."""

    def test_capacity_within_bounds_under_corruption_and_stall(self):
        service = _service()
        injector = FaultInjector(service, seed=SEED)
        for delay in (120.0, 360.0, 600.0):
            injector.at(delay, injector.corrupt_telemetry, 12)
        injector.at(180.0, injector.stall_recalibrator, 2)
        service.run()
        recalibrator = service.recalibrator
        assert recalibrator is not None
        # The faults landed: absurd samples sit in the store, and the
        # stall swallowed exactly the requested ticks.
        corrupted = [e for e in injector.log if e[1] == "corrupt_telemetry"]
        assert len(corrupted) == 36
        src, dst, _ = corrupted[0][2]
        peak = max(
            rate for _, rate in service.telemetry.series(src, dst).samples
        )
        assert peak >= ABSURD_RATE_MBPS * 0.5
        assert recalibrator.stalled_ticks == 2
        assert recalibrator.ticks > 0
        # The invariant: every published capacity inside [floor,
        # ceiling], and never above the weather-free topology ceiling.
        assert recalibrator.within_bounds() == []
        for src, dst in recalibrator.current.pairs():
            value = recalibrator.current.get(src, dst)
            assert value <= service._topology_ceiling(src, dst) + 1e-6
        service.stop()


class TestFailoverByteConservation:
    """Invariant 2: kill + restore a circuit under live transfers."""

    def test_inflight_bytes_survive_kill_and_restore(self):
        topology = Topology.build(REGIONS, "t2.medium")
        network = NetworkSimulator(
            topology, fluctuation=FluctuationModel(seed=SEED)
        )
        wrapper = KilledCircuits(network.fluctuation)
        network.fluctuation = wrapper
        completed: list = []
        plan = [
            ("us-east-1", "us-west-1", 20000.0),
            ("us-east-1", "us-west-1", 15000.0),
            ("us-west-1", "ap-southeast-1", 12000.0),
        ]
        transfers = [
            network.start_transfer(
                src, dst, size, on_complete=completed.append,
                tag=f"job{i}:shuffle",
            )
            for i, (src, dst, size) in enumerate(plan)
        ]
        pair = (topology.index("us-east-1"), topology.index("us-west-1"))

        def kill() -> None:
            wrapper.killed.update({pair, pair[::-1]})
            network._reallocate()

        def restore() -> None:
            wrapper.killed.clear()
            network._reallocate()

        mid_kill: dict[str, list[float]] = {}

        def probe() -> None:
            network.active_transfers()  # advances progress to now
            mid_kill["delivered"] = [
                t.transferred_mbits for t in transfers
            ]

        network.sim.schedule(2.0, kill)
        network.sim.schedule(30.0, probe)
        network.sim.schedule(60.0, restore)
        network.sim.run()
        # Every transfer was genuinely in flight through the outage…
        assert all(0.0 < d for d in mid_kill["delivered"])
        assert any(
            d < size for d, (_, _, size) in zip(mid_kill["delivered"], plan)
        )
        # …and every one completed exactly once with full payload.
        assert len(completed) == len(transfers)
        assert len({id(t) for t in completed}) == len(transfers)
        for transfer in transfers:
            assert transfer.finish_time is not None
            assert transfer.finish_time > 2.0
            assert transfer.transferred_mbits == pytest.approx(
                transfer.size_mbits
            )
        total = sum(size for _, _, size in plan)
        assert network.total_wan_mbits() == pytest.approx(total, rel=1e-3)


class TestGovernorLedger:
    """Invariant 3: apply/release stays balanced through circuit chaos."""

    def test_throttle_ledger_balances_under_circuit_chaos(self):
        service = _service(governor=True)
        injector = FaultInjector(service, seed=SEED)
        injector.at(
            120.0, injector.kill_circuit, "us-east-1", "ap-southeast-1"
        )
        injector.at(
            480.0, injector.restore_circuit, "us-east-1", "ap-southeast-1"
        )
        injector.at(240.0, injector.stall_recalibrator, 1)
        service.run()
        service.stop()
        control = service.control
        assert control is not None
        assert control.throttle_moves == control.throttle_releases
        # The run actually drained — a wedged queue would also "balance".
        assert len(service.scheduler.completed) == JOBS
        assert not service.scheduler.queued
        assert not service.scheduler.running


class TestTicketTermination:
    """Invariant 4: every ticket reaches ``done`` exactly once."""

    def test_every_ticket_terminates_exactly_once(self):
        service = _service()
        injector = FaultInjector(service, seed=SEED)
        injector.at(90.0, injector.kill_circuit, "us-east-1", "us-west-1")
        injector.at(
            300.0, injector.restore_circuit, "us-east-1", "us-west-1"
        )
        finishes: Counter = Counter()
        chained = service.scheduler.on_event

        def counting(kind: str, ticket) -> None:
            if kind == "finish":
                finishes[id(ticket)] += 1
            if chained is not None:
                chained(kind, ticket)

        service.scheduler.on_event = counting
        service.run()
        tickets = service.scheduler.completed
        assert len(tickets) == JOBS
        assert len({id(t) for t in tickets}) == JOBS  # no double entries
        assert all(t.state == "done" for t in tickets)
        assert all(finishes[id(t)] == 1 for t in tickets)
        assert sum(finishes.values()) == JOBS  # no phantom finishes
        assert not service.scheduler.queued
        assert not service.scheduler.running
        service.stop()


class TestCrashedShardWorker:
    """Fault 4: a worker process dies mid-drain (poisoned task)."""

    @staticmethod
    def _tasks():
        mix = default_job_mix(REGIONS, count=6, seed=SEED)
        entries = [
            (delay, job, None, slo)
            for delay, job, slo in spread_slos(mix, 1800.0, seed=SEED)
        ]
        return build_tasks(
            entries,
            2,
            regions=REGIONS,
            vm="t2.medium",
            profile="vpc-peering",
            scenario=None,
            seed=SEED,
            kernel="scalar",
            admission="deadline-edf",
            default_policy="tetrium",
            max_concurrent=4,
            admit_batch=16,
        )

    def test_crash_surfaces_cleanly_from_pool_and_serial(self):
        tasks = self._tasks()
        poisoned = [tasks[0], FaultInjector.poison_shard_task(tasks[1])]
        pooled = ShardExecutor(2)
        # The pool dies, the serial retry re-raises the real error —
        # a crashed worker is loud, never a silently dropped shard.
        with pytest.raises(KeyError, match=POISON_ADMISSION):
            pooled.run(poisoned)
        assert pooled.fell_back
        serial = ShardExecutor(0)
        with pytest.raises(KeyError, match=POISON_ADMISSION):
            serial.run(poisoned)
        # The executor survives its crash: healthy tasks still drain.
        results = pooled.run(tasks)
        assert len(results) == 2
        assert sum(len(r.records) for r in results) == 6
