"""Fault injection against a live :class:`PipelineService`.

The chaos tier's contract is *invariants under faults*: whatever the
injector does mid-run, the service must come out the other side with
its books balanced.  Four fault families cover the subsystems this
repo's runtime grew — circuits (network), telemetry (estimation),
recalibration (control), and shard workers (scale-out):

``kill_circuit``
    Pin a directed pair's weather factor to the scenario floor by
    wrapping the network's fluctuation model — the same mechanism the
    circuit scenarios use, but imperative and mid-run.  ``restore``
    undoes it (failover-and-recover chaos).
``corrupt_telemetry``
    Feed absurd throughput samples for seeded-random pairs straight
    into the shared :class:`~repro.runtime.telemetry.TelemetryStore`,
    as a buggy or compromised monitor would.
``stall_recalibrator``
    Swallow the next N recalibration ticks
    (:meth:`~repro.runtime.recalibrator.CapacityRecalibrator.stall`) —
    the gauger process wedging while the world keeps moving.
``poison_shard_task``
    A :class:`~repro.runtime.scheduling.parallel.ShardTask` clone whose
    worker process crashes on arrival (its admission-policy name does
    not resolve), for killing workers mid-drain.

Faults are scheduled onto the service's own simulator clock via
:meth:`FaultInjector.at`, so a chaos test reads as a timeline.  Every
injection is appended to :attr:`FaultInjector.log` for assertions
("the corruption actually landed").
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Optional

from repro.runtime.scenarios import FACTOR_FLOOR
from repro.runtime.scheduling.parallel import ShardTask

#: A corrupt sample's order of magnitude (Mbps) — far above any real
#: link, so a recalibrator that trusted it would blow through its
#: ceiling guard, which is exactly what the bounds invariant checks.
ABSURD_RATE_MBPS = 1.0e7

#: The admission-policy name no registry resolves; a worker handed a
#: task carrying it dies with ``KeyError`` while rebuilding its shard.
POISON_ADMISSION = "chaos-crashed-worker"


class KilledCircuits:
    """A fluctuation-model proxy pinning killed pairs to the floor.

    Wraps any ``factor``/``snapshot_jitter`` model; pairs in
    :attr:`killed` (topology indices, directed) read
    :data:`~repro.runtime.scenarios.FACTOR_FLOOR` — a dead-but-not-
    disconnected circuit, matching the scenario layer's convention.
    """

    def __init__(self, inner, floor: float = FACTOR_FLOOR) -> None:
        self.inner = inner
        self.floor = floor
        self.killed: set[tuple[int, int]] = set()

    def factor(self, i: int, j: int, t: float) -> float:
        if (i, j) in self.killed:
            return self.floor
        return self.inner.factor(i, j, t)

    def snapshot_jitter(
        self, i: int, j: int, t: float, window_s: float
    ) -> float:
        return self.inner.snapshot_jitter(i, j, t, window_s)


class FaultInjector:
    """Seeded fault scheduler for one service under test."""

    def __init__(self, service, seed: int = 0) -> None:
        self.service = service
        self.rng = random.Random(seed)
        #: ``(sim_time, fault_kind, detail)`` per injection, in order.
        self.log: list[tuple[float, str, tuple]] = []
        self._wrapper: Optional[KilledCircuits] = None

    def at(self, delay_s: float, fault, *args) -> None:
        """Schedule ``fault(*args)`` ``delay_s`` sim-seconds from now.

        Daemon events: pending faults never keep the run alive after
        the workload drains.
        """
        self.service.sim.schedule(
            delay_s, lambda: fault(*args), daemon=True
        )

    def _note(self, kind: str, *detail) -> None:
        self.log.append((self.service.sim.now, kind, detail))

    # -- circuits --------------------------------------------------------

    def _circuits(self) -> KilledCircuits:
        network = self.service.network
        if (
            self._wrapper is None
            or network.fluctuation is not self._wrapper
        ):
            self._wrapper = KilledCircuits(network.fluctuation)
            network.fluctuation = self._wrapper
        return self._wrapper

    def kill_circuit(
        self, src: str, dst: str, both_ways: bool = True
    ) -> None:
        """Drop a circuit to the factor floor, effective immediately."""
        wrapper = self._circuits()
        index = self.service.network.topology.index
        wrapper.killed.add((index(src), index(dst)))
        if both_ways:
            wrapper.killed.add((index(dst), index(src)))
        # Re-solve allocations now rather than waiting out the 5 s
        # weather-refresh tick — a chaos kill is an instant, not a drift.
        self.service.network._reallocate()
        self._note("kill_circuit", src, dst)

    def restore_circuit(
        self, src: str, dst: str, both_ways: bool = True
    ) -> None:
        """Bring a killed circuit back (failover-and-recover)."""
        wrapper = self._circuits()
        index = self.service.network.topology.index
        wrapper.killed.discard((index(src), index(dst)))
        if both_ways:
            wrapper.killed.discard((index(dst), index(src)))
        self.service.network._reallocate()
        self._note("restore_circuit", src, dst)

    # -- telemetry -------------------------------------------------------

    def corrupt_telemetry(
        self, samples: int = 8, rate_mbps: float = ABSURD_RATE_MBPS
    ) -> None:
        """Record ``samples`` absurd throughput readings for random pairs."""
        keys = list(self.service.network.topology.keys)
        now = self.service.sim.now
        for _ in range(samples):
            src, dst = self.rng.sample(keys, 2)
            rate = rate_mbps * self.rng.uniform(0.5, 1.0)
            self.service.telemetry.record(src, now, {dst: rate})
            self._note("corrupt_telemetry", src, dst, rate)

    # -- recalibration ---------------------------------------------------

    def stall_recalibrator(self, ticks: int = 1) -> None:
        """Wedge the capacity recalibrator for its next ``ticks`` fires."""
        recalibrator = self.service.recalibrator
        if recalibrator is None:
            raise RuntimeError(
                "service has no recalibrator (recalibrate=False)"
            )
        recalibrator.stall(ticks)
        self._note("stall_recalibrator", ticks)

    # -- shard workers ---------------------------------------------------

    @staticmethod
    def poison_shard_task(task: ShardTask) -> ShardTask:
        """A clone of ``task`` whose worker crashes on arrival."""
        return replace(task, admission=POISON_ADMISSION)
