"""Tests for the AIMD local optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.localopt import AimdState, LocalOptimizer


def make_state(**overrides) -> AimdState:
    defaults = dict(
        min_connections=1,
        max_connections=8,
        min_bw=100.0,
        max_bw=800.0,
        per_connection_bw=100.0,
    )
    defaults.update(overrides)
    return AimdState(**defaults)


class TestAimdState:
    def test_initializes_at_maximum(self):
        # §3.2.2: "first sets the target connections and BWs to maximum".
        state = make_state()
        assert state.connections == 8
        assert state.target_bw == 800.0

    def test_decrease_halves_with_floor(self):
        state = make_state()
        state.decrease()
        assert state.connections == 4
        assert state.target_bw == 400.0
        state.decrease()
        state.decrease()
        state.decrease()
        assert state.connections == 1
        assert state.target_bw == 100.0  # floored at min

    def test_increase_is_additive_and_linear(self):
        state = make_state()
        state.decrease()  # 4 conns, 400
        state.increase()
        assert state.connections == 5
        # Linear: per-connection BW × connections.
        assert state.target_bw == 500.0

    def test_increase_capped_at_window_max(self):
        state = make_state()
        state.increase()
        assert state.connections == 8
        assert state.target_bw == 800.0

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            make_state(min_connections=5, max_connections=2)


class TestOptimizerEpochs:
    def make_optimizer(self) -> LocalOptimizer:
        return LocalOptimizer(
            "src", {"d1": make_state(), "d2": make_state()}
        )

    def test_congestion_triggers_decrease(self):
        opt = self.make_optimizer()
        # Monitored far below target (800 − 100 > 100).
        decisions = opt.epoch(5.0, {"d1": 100.0, "d2": 100.0})
        assert decisions == {"d1": 4, "d2": 4}
        assert all(s.mode == "decrease" for s in opt.states.values())

    def test_similar_monitored_triggers_increase(self):
        opt = self.make_optimizer()
        opt.epoch(5.0, {"d1": 100.0, "d2": 100.0})  # decrease to 4/400
        decisions = opt.epoch(10.0, {"d1": 390.0, "d2": 395.0})
        assert decisions == {"d1": 5, "d2": 5}
        assert all(s.mode == "increase" for s in opt.states.values())

    def test_intermediate_monitored_holds(self):
        opt = self.make_optimizer()
        opt.epoch(5.0, {"d1": 100.0, "d2": 100.0})  # 4 conns / 400
        # 250: not within 100 of 400, but 400−250=150>100 → decrease...
        # choose 320: 400−320=80 ≤ 100 → "similar" → increase per paper.
        # A value in neither regime requires delta in (100, 100] — with
        # equal bands the hold case arises only via the volume rule.
        decisions = opt.epoch(
            10.0, {"d1": 250.0, "d2": 250.0},
            window_volume_mb={"d1": 0.2, "d2": 0.2},
        )
        assert decisions == {"d1": 4, "d2": 4}
        assert all(s.mode == "steady" for s in opt.states.values())

    def test_small_transfer_skips_toggle(self):
        # §3.2.2: pairs moving < 1 MB skip the mode toggle.
        opt = self.make_optimizer()
        decisions = opt.epoch(
            5.0, {"d1": 0.0, "d2": 0.0},
            window_volume_mb={"d1": 0.5, "d2": 0.5},
        )
        assert decisions == {"d1": 8, "d2": 8}

    def test_paper_example_thresholds(self):
        # §3.2.2 example: ranges {1000,800,240}-{1000,1600,600} Mbps and
        # {1,2,2}-{1,4,5} connections; decrease fires when monitored
        # < 1500 (DC0-DC1) and < 500 (DC0-DC2).
        d1 = AimdState(2, 4, 800.0, 1600.0, per_connection_bw=400.0)
        d2 = AimdState(2, 5, 240.0, 600.0, per_connection_bw=120.0)
        opt = LocalOptimizer("dc0", {"d1": d1, "d2": d2})
        opt.epoch(5.0, {"d1": 1499.0, "d2": 499.0})
        assert d1.mode == "decrease"
        assert d2.mode == "decrease"
        d1b = AimdState(2, 4, 800.0, 1600.0, per_connection_bw=400.0)
        d2b = AimdState(2, 5, 240.0, 600.0, per_connection_bw=120.0)
        opt2 = LocalOptimizer("dc0", {"d1": d1b, "d2": d2b})
        opt2.epoch(5.0, {"d1": 1501.0, "d2": 501.0})
        assert d1b.mode == "increase"
        assert d2b.mode == "increase"

    def test_history_records_every_destination(self):
        opt = self.make_optimizer()
        opt.epoch(5.0, {"d1": 100.0, "d2": 700.0})
        opt.epoch(10.0, {"d1": 100.0, "d2": 700.0})
        assert len(opt.history) == 4
        assert {r.dst for r in opt.history} == {"d1", "d2"}

    def test_from_plan_builds_states(self):
        from repro.core.globalopt import optimize_connections
        from repro.net.matrix import BandwidthMatrix
        import numpy as np

        bw = BandwidthMatrix(
            ("a", "b", "c"),
            np.array([[0, 500, 120], [500, 0, 130], [120, 130, 0]], float),
        )
        plan = optimize_connections(bw, min_difference=30)
        opt = LocalOptimizer.from_plan("a", plan)
        assert set(opt.states) == {"b", "c"}
        assert opt.states["c"].connections == plan.connection_window(
            "a", "c"
        )[1]


# -- Property: targets always stay inside the window -------------------------

@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.0, max_value=2000.0),
        min_size=1,
        max_size=40,
    )
)
def test_aimd_stays_within_window(monitored_sequence):
    state = make_state()
    opt = LocalOptimizer("src", {"d": state})
    for i, monitored in enumerate(monitored_sequence):
        opt.epoch(float(i * 5), {"d": monitored})
        assert (
            state.min_connections
            <= state.connections
            <= state.max_connections
        )
        assert state.min_bw <= state.target_bw <= state.max_bw


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=30))
def test_sustained_congestion_converges_to_minimum(n_epochs):
    state = make_state()
    opt = LocalOptimizer("src", {"d": state})
    for i in range(n_epochs):
        opt.epoch(float(i * 5), {"d": 0.0})
    if n_epochs >= 3:
        assert state.connections == state.min_connections
        assert state.target_bw == state.min_bw
