"""Tests for throttling, connection manager, and the local agent."""

import numpy as np
import pytest

from repro.core.agent import LocalAgent, deploy_agents
from repro.core.connections import ConnectionsManager
from repro.core.globalopt import optimize_connections
from repro.core.throttle import apply_throttles, throttle_threshold
from repro.net.matrix import BandwidthMatrix
from repro.net.simulator import NetworkSimulator


@pytest.fixture
def plan(triad):
    bw = BandwidthMatrix(
        triad.keys,
        np.array(
            [[0, 900, 120], [900, 0, 130], [120, 130, 0]], dtype=float
        ),
    )
    return optimize_connections(bw, min_difference=30)


class TestThrottle:
    def test_threshold_is_row_mean_of_min_bw(self, plan):
        t = throttle_threshold(plan, "us-east-1")
        expected = np.mean(
            [
                plan.min_bw.get("us-east-1", "us-west-1"),
                plan.min_bw.get("us-east-1", "ap-southeast-1"),
            ]
        )
        assert t == pytest.approx(expected)

    def test_only_rich_pairs_capped(self, triad, plan):
        net = NetworkSimulator(triad)
        applied = apply_throttles(plan, net.tc, "us-east-1")
        assert "us-west-1" in applied  # the strong pair
        assert "ap-southeast-1" not in applied

    def test_invalid_headroom_rejected(self, triad, plan):
        net = NetworkSimulator(triad)
        with pytest.raises(ValueError):
            apply_throttles(plan, net.tc, "us-east-1", headroom=0.5)


class TestConnectionsManager:
    def test_apply_sets_counts_and_tracks_churn(self, triad):
        net = NetworkSimulator(triad)
        manager = ConnectionsManager(net, "us-east-1")
        delta = manager.apply({"us-west-1": 3, "ap-southeast-1": 8})
        assert delta.added == 2 + 7
        assert net.connections("us-east-1", "us-west-1") == 3
        delta2 = manager.apply({"us-west-1": 1})
        assert delta2.removed == 2
        assert manager.total_added == 9
        assert manager.total_removed == 2

    def test_noop_apply_produces_no_churn(self, triad):
        net = NetworkSimulator(triad)
        manager = ConnectionsManager(net, "us-east-1")
        manager.apply({"us-west-1": 4})
        delta = manager.apply({"us-west-1": 4})
        assert delta.added == 0 and delta.removed == 0

    def test_invalid_count_rejected(self, triad):
        net = NetworkSimulator(triad)
        manager = ConnectionsManager(net, "us-east-1")
        with pytest.raises(ValueError):
            manager.apply({"us-west-1": 0})


class TestLocalAgent:
    def test_agent_starts_at_plan_maximum(self, triad, plan, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        agent = LocalAgent(net, "us-east-1", plan)
        lo, hi = plan.connection_window("us-east-1", "ap-southeast-1")
        assert net.connections("us-east-1", "ap-southeast-1") == hi
        agent.stop()

    def test_agent_backs_off_under_congestion(self, triad, plan, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        agent = LocalAgent(net, "us-east-1", plan, throttling=False)
        # A persistent transfer whose achieved rate sits far below the
        # plan's optimistic max triggers multiplicative decrease.
        net.start_transfer("us-east-1", "ap-southeast-1", 1e9)
        net.start_transfer("us-east-1", "us-west-1", 1e9)
        hi = plan.connection_window("us-east-1", "ap-southeast-1")[1]
        net.sim.run(until=60.0)
        assert len(agent.optimizer.history) > 0
        final = net.connections("us-east-1", "ap-southeast-1")
        assert final <= hi
        agent.stop()

    def test_deploy_agents_one_per_dc(self, triad, plan, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        agents = deploy_agents(net, plan)
        assert [a.dc for a in agents] == list(triad.keys)
        for agent in agents:
            agent.stop()

    def test_stopped_agent_goes_quiet(self, triad, plan, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        agent = LocalAgent(net, "us-east-1", plan)
        net.sim.run(until=11.0)
        history_len = len(agent.optimizer.history)
        agent.stop()
        net.start_transfer("us-east-1", "us-west-1", 1e6)
        net.sim.run(until=60.0)
        assert len(agent.optimizer.history) == history_len
