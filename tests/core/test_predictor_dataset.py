"""Tests for features, dataset construction, analyzer, and predictor."""

import numpy as np
import pytest

from repro.core.analyzer import BandwidthAnalyzer
from repro.core.dataset import TrainingSet, build_training_set
from repro.core.features import (
    FEATURE_NAMES,
    pair_feature_vector,
    report_feature_rows,
)
from repro.core.predictor import WanPredictionModel
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import snapshot, stable_runtime


@pytest.fixture(scope="module")
def small_training(request):
    from repro.net.topology import Topology
    from repro.cloud.regions import PAPER_REGIONS

    topo = Topology.build(PAPER_REGIONS[:5], "t2.medium")
    weather = FluctuationModel(seed=31)
    training = build_training_set(topo, weather, n_datasets=25, seed=31)
    return topo, weather, training


class TestFeatures:
    def test_feature_vector_matches_table3(self, triad, weather):
        report = snapshot(triad, weather, at_time=50.0)
        vec = pair_feature_vector(report, triad, "us-east-1", "us-west-1")
        assert len(vec) == len(FEATURE_NAMES) == 6
        assert vec[0] == 3.0  # N
        assert vec[1] == report.matrix.get("us-east-1", "us-west-1")
        assert vec[5] == pytest.approx(
            triad.distance_miles("us-east-1", "us-west-1")
        )

    def test_rows_cover_all_pairs(self, triad, weather):
        report = snapshot(triad, weather, at_time=50.0)
        pairs, rows = report_feature_rows(report, triad)
        assert len(pairs) == 6
        assert rows.shape == (6, 6)


class TestTrainingSet:
    def test_build_has_consistent_rows(self, small_training):
        _, _, training = small_training
        assert len(training) == len(training.pair_labels)
        assert training.X.shape == (len(training), 6)
        assert not np.isnan(training.X).any()
        assert (training.y >= 0).all()

    def test_cluster_sizes_within_range(self, small_training):
        _, _, training = small_training
        assert set(training.cluster_sizes) <= {2, 3, 4, 5}

    def test_merge_concatenates(self, small_training):
        _, _, training = small_training
        merged = training.merge(training)
        assert len(merged) == 2 * len(training)

    def test_save_load_roundtrip(self, small_training, tmp_path):
        _, _, training = small_training
        path = tmp_path / "train.npz"
        training.save(path)
        loaded = TrainingSet.load(path)
        assert np.allclose(loaded.X, training.X)
        assert np.allclose(loaded.y, training.y)
        assert loaded.pair_labels == training.pair_labels

    def test_invalid_cluster_sizes_rejected(self, triad, weather):
        with pytest.raises(ValueError, match="outside"):
            build_training_set(
                triad, weather, n_datasets=2, cluster_sizes=(9,)
            )

    def test_invalid_dataset_count_rejected(self, triad, weather):
        with pytest.raises(ValueError):
            build_training_set(triad, weather, n_datasets=0)


class TestAnalyzer:
    def test_collect_tracks_cost(self, triad, weather):
        analyzer = BandwidthAnalyzer(
            triad, weather, n_datasets=5, seed=4
        )
        training = analyzer.collect()
        assert len(training) > 0
        assert analyzer.last_cost.dollars > 0
        assert analyzer.last_cost.instance_seconds > 0


class TestPredictor:
    def test_training_accuracy_high(self, small_training):
        _, _, training = small_training
        model = WanPredictionModel(n_estimators=20)
        model.fit(training)
        # Paper reports 98.51%; our fast config should clear 90%.
        assert model.train_accuracy > 90.0

    def test_unfitted_accuracy_raises(self):
        with pytest.raises(RuntimeError):
            WanPredictionModel().train_accuracy

    def test_all_features_significant(self, small_training):
        # §5.1: "all features in Table 3 were significant during model
        # training".
        _, _, training = small_training
        model = WanPredictionModel(n_estimators=30)
        model.fit(training)
        assert (model.feature_importances > 0).all()

    def test_predicted_matrix_close_to_actual(self, small_training):
        topo, weather, training = small_training
        model = WanPredictionModel(n_estimators=30).fit(training)
        at = 4.2e5
        report = snapshot(topo, weather, at_time=at)
        predicted = model.predict_matrix(report, topo)
        actual = stable_runtime(topo, weather, at_time=at).matrix
        sig = predicted.significant_differences(actual)
        # Far fewer significant misses than links.
        assert len(sig) <= 4

    def test_predictions_nonnegative(self, small_training):
        topo, weather, training = small_training
        model = WanPredictionModel(n_estimators=10).fit(training)
        preds = model.predict_rows(training.X)
        assert (preds >= 0).all()

    def test_staleness_flag_latches(self, small_training):
        topo, weather, training = small_training
        model = WanPredictionModel(
            n_estimators=10, error_threshold_mbps=1.0, error_window=2
        ).fit(training)
        from repro.net.matrix import BandwidthMatrix

        a = BandwidthMatrix.full(topo.keys, 100.0)
        b = BandwidthMatrix.full(topo.keys, 500.0)
        model.track_error(a, b)
        assert model.needs_retraining

    def test_retrain_warm_start_extends_forest(self, small_training):
        _, _, training = small_training
        model = WanPredictionModel(n_estimators=10).fit(training)
        before = len(model.forest.trees)
        model.retrain(training, extra_estimators=5)
        assert len(model.forest.trees) == before + 5
        assert not model.needs_retraining
