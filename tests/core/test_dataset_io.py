"""Serialization tests for :class:`repro.core.dataset.TrainingSet` —
the interchange formats for the paper's open-sourced datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import TrainingSet, build_training_set
from repro.core.features import FEATURE_NAMES
from repro.net.dynamics import FluctuationModel
from repro.net.topology import Topology

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


@pytest.fixture(scope="module")
def small_set() -> TrainingSet:
    topology = Topology.build(TRIAD, "t2.medium")
    return build_training_set(
        topology, FluctuationModel(seed=3), n_datasets=4, seed=9
    )


class TestNpzRoundTrip:
    def test_round_trip_preserves_everything(self, small_set, tmp_path):
        target = tmp_path / "train.npz"
        small_set.save(target)
        loaded = TrainingSet.load(target)
        np.testing.assert_allclose(loaded.X, small_set.X)
        np.testing.assert_allclose(loaded.y, small_set.y)
        assert loaded.pair_labels == small_set.pair_labels
        assert loaded.sample_times == pytest.approx(small_set.sample_times)
        assert loaded.cluster_sizes == small_set.cluster_sizes

    def test_load_without_sidecar_drops_labels_only(self, small_set, tmp_path):
        target = tmp_path / "train.npz"
        small_set.save(target)
        (tmp_path / "train.labels.json").unlink()
        loaded = TrainingSet.load(target)
        assert loaded.pair_labels == []
        np.testing.assert_allclose(loaded.y, small_set.y)


class TestCsvRoundTrip:
    def test_round_trip_preserves_everything(self, small_set, tmp_path):
        target = tmp_path / "train.csv"
        small_set.to_csv(target)
        loaded = TrainingSet.from_csv(target)
        np.testing.assert_allclose(loaded.X, small_set.X)
        np.testing.assert_allclose(loaded.y, small_set.y)
        assert loaded.pair_labels == small_set.pair_labels
        assert loaded.sample_times == pytest.approx(small_set.sample_times)
        # Cluster sizes are recovered from the N feature column.
        assert loaded.cluster_sizes == small_set.cluster_sizes

    def test_header_matches_table3_order(self, small_set, tmp_path):
        target = tmp_path / "train.csv"
        small_set.to_csv(target)
        header = target.read_text().splitlines()[0].split(",")
        assert header[3:-1] == list(FEATURE_NAMES)

    def test_rejects_empty_file(self, tmp_path):
        target = tmp_path / "empty.csv"
        target.write_text("")
        with pytest.raises(ValueError, match="empty"):
            TrainingSet.from_csv(target)

    def test_rejects_wrong_header(self, tmp_path):
        target = tmp_path / "bad.csv"
        target.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            TrainingSet.from_csv(target)

    def test_rejects_short_row(self, small_set, tmp_path):
        target = tmp_path / "trunc.csv"
        small_set.to_csv(target)
        lines = target.read_text().splitlines()
        lines.append("us-east-1,us-west-1,0.0,1.0")
        target.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="cells"):
            TrainingSet.from_csv(target)


@st.composite
def training_sets(draw) -> TrainingSet:
    n = draw(st.integers(min_value=1, max_value=12))
    cluster_n = draw(st.integers(min_value=2, max_value=8))
    finite = st.floats(
        min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    X = np.array(
        [
            [float(cluster_n)]
            + [draw(finite) for _ in range(len(FEATURE_NAMES) - 1)]
            for _ in range(n)
        ]
    )
    y = np.array([draw(finite) for _ in range(n)])
    labels = [(f"dc{i}", f"dc{i + 1}") for i in range(n)]
    times = [float(i) * 17.0 for i in range(n)]
    sizes = [cluster_n] * n
    return TrainingSet(X, y, labels, times, sizes)


class TestCsvProperty:
    @settings(max_examples=25, deadline=None)
    @given(ts=training_sets())
    def test_csv_round_trip_is_lossless(self, ts, tmp_path_factory):
        target = tmp_path_factory.mktemp("csv") / "ts.csv"
        ts.to_csv(target)
        loaded = TrainingSet.from_csv(target)
        np.testing.assert_array_equal(loaded.X, ts.X)
        np.testing.assert_array_equal(loaded.y, ts.y)
        assert loaded.pair_labels == ts.pair_labels
        assert loaded.cluster_sizes == ts.cluster_sizes


class TestMerge:
    def test_merge_concatenates(self, small_set):
        merged = small_set.merge(small_set)
        assert len(merged) == 2 * len(small_set)
        assert merged.pair_labels[: len(small_set)] == small_set.pair_labels

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            TrainingSet(np.zeros((3, 6)), np.zeros(2))
