"""Tests for the Eq. 2/3 global optimizer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.globalopt import (
    ABSOLUTE_MAX_CONNECTIONS,
    PER_VM_STREAM_BUDGET,
    optimize_connections,
    static_range_plan,
    uniform_plan,
)
from repro.net.matrix import BandwidthMatrix

PAPER_BW = BandwidthMatrix(
    ("d1", "d2", "d3"),
    np.array([[1000, 400, 120], [380, 1000, 130], [110, 120, 1000]], float),
)


class TestPaperExample:
    def test_min_cons_all_ones(self):
        plan = optimize_connections(
            PAPER_BW, max_connections=8, min_difference=30, intra_bw=1000
        )
        off = ~np.eye(3, dtype=bool)
        assert (plan.min_connections.values[off] == 1).all()

    def test_max_cons_matches_paper_off_diagonal(self):
        # Paper: maxCons = {_, 6, 8; 6, _, 8; 8, 8, _}.
        plan = optimize_connections(
            PAPER_BW, max_connections=8, min_difference=30, intra_bw=1000
        )
        values = plan.max_connections.values
        assert values[0, 1] == 6 and values[1, 0] == 6
        assert values[0, 2] == 8 and values[1, 2] == 8
        assert values[2, 0] == 8 and values[2, 1] == 8

    def test_diagonal_is_one(self):
        plan = optimize_connections(
            PAPER_BW, max_connections=8, min_difference=30, intra_bw=1000
        )
        assert (np.diag(plan.max_connections.values) == 1).all()
        assert (np.diag(plan.min_connections.values) == 1).all()

    def test_achievable_bw_is_product(self):
        plan = optimize_connections(
            PAPER_BW, max_connections=8, min_difference=30, intra_bw=1000
        )
        assert plan.max_bw.get("d1", "d3") == pytest.approx(120 * 8)
        assert plan.min_bw.get("d1", "d3") == pytest.approx(120 * 1)


class TestStructure:
    def test_weak_pairs_get_more_connections(self):
        plan = optimize_connections(PAPER_BW, min_difference=30)
        strong = plan.max_connections.get("d1", "d2")
        weak = plan.max_connections.get("d1", "d3")
        assert weak > strong

    def test_window_well_ordered(self):
        plan = optimize_connections(PAPER_BW, min_difference=30)
        assert (
            plan.min_connections.values <= plan.max_connections.values
        ).all()

    def test_row_budget_respected(self):
        keys = tuple(f"dc{i}" for i in range(8))
        # All-weak mesh: every pair would want M connections.
        bw = BandwidthMatrix.full(keys, 100.0)
        plan = optimize_connections(bw)
        off = ~np.eye(8, dtype=bool)
        for i in range(8):
            assert (
                plan.max_connections.values[i][off[i]].sum()
                <= PER_VM_STREAM_BUDGET
            )

    def test_absolute_cap(self):
        plan = optimize_connections(
            PAPER_BW,
            max_connections=10,
            min_difference=30,
            skew_weights={"d1": 5.0, "d2": 0.1, "d3": 0.1},
        )
        assert plan.max_connections.values.max() <= ABSOLUTE_MAX_CONNECTIONS

    def test_invalid_max_connections(self):
        with pytest.raises(ValueError):
            optimize_connections(PAPER_BW, max_connections=0)


class TestSkewWeights:
    def test_heavy_pairs_gain_light_pairs_never_lose(self):
        """§3.3.1: ws boosts data-intensive DCs' pairs; pairs between
        data-light DCs keep their skew-unaware allocation (the pair
        factor is floored at 1) — starving light senders would drag the
        cluster minimum BW down, the opposite of Fig. 10."""
        ws = {"d1": 2.4, "d2": 0.3, "d3": 0.3}
        plain = optimize_connections(PAPER_BW, min_difference=30)
        skewed = optimize_connections(
            PAPER_BW, min_difference=30, skew_weights=ws
        )
        # Pairs touching the data-heavy DC gain (or saturate the cap).
        for src, dst in (("d1", "d2"), ("d1", "d3")):
            assert skewed.max_connections.get(src, dst) >= (
                plain.max_connections.get(src, dst)
            )
        # The light-light pair keeps its allocation exactly.
        for src, dst in (("d2", "d3"), ("d3", "d2")):
            assert skewed.max_connections.get(src, dst) == (
                plain.max_connections.get(src, dst)
            )

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            optimize_connections(
                PAPER_BW, skew_weights={"d1": 0.0, "d2": 1, "d3": 1}
            )


class TestRvec:
    def test_rvec_scales_achievable_bw(self):
        rvec = {"d1": 0.81, "d2": 1.0, "d3": 1.0}
        plain = optimize_connections(PAPER_BW, min_difference=30)
        scaled = optimize_connections(
            PAPER_BW, min_difference=30, rvec=rvec
        )
        # Geometric mean of (0.81, 1.0) = 0.9.
        assert scaled.max_bw.get("d1", "d2") == pytest.approx(
            plain.max_bw.get("d1", "d2") * 0.9, rel=1e-6
        )

    def test_invalid_rvec_rejected(self):
        with pytest.raises(ValueError):
            optimize_connections(PAPER_BW, rvec={"d1": -1.0})


class TestBaselinePlans:
    def test_uniform_plan_counts(self):
        plan = uniform_plan(PAPER_BW, connections=8)
        off = ~np.eye(3, dtype=bool)
        assert (plan.max_connections.values[off] == 8).all()
        assert (plan.min_connections.values[off] == 8).all()

    def test_static_range_plan_window(self):
        plan = static_range_plan(PAPER_BW, 1, 8)
        assert plan.connection_window("d1", "d3") == (1, 8)
        lo, hi = plan.bw_window("d1", "d3")
        assert lo == pytest.approx(120.0)
        assert hi == pytest.approx(960.0)


# -- Properties --------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=6).flatmap(
        lambda n: st.lists(
            st.floats(min_value=10.0, max_value=3000.0),
            min_size=n * n,
            max_size=n * n,
        ).map(lambda vals: np.array(vals).reshape(n, n))
    ),
    st.integers(min_value=2, max_value=10),
)
def test_plan_invariants(values, m):
    keys = tuple(f"dc{i}" for i in range(values.shape[0]))
    plan = optimize_connections(BandwidthMatrix(keys, values), m)
    n = len(keys)
    min_c = plan.min_connections.values
    max_c = plan.max_connections.values
    assert (min_c >= 1).all() and (max_c >= 1).all()
    assert (min_c <= max_c).all()
    assert (max_c <= ABSOLUTE_MAX_CONNECTIONS).all()
    assert (np.diag(max_c) == 1).all()
    off = ~np.eye(n, dtype=bool)
    assert (plan.min_bw.values[off] <= plan.max_bw.values[off] + 1e-9).all()
    assert (np.diag(plan.max_bw.values) == 0).all()
