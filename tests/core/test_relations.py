"""Tests for Algorithm 1 (INFER_DC_RELATIONS)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relations import (
    filter_levels,
    infer_dc_relations,
)

PAPER_BW = np.array(
    [[1000, 400, 120], [380, 1000, 130], [110, 120, 1000]], dtype=float
)


class TestPaperExample:
    def test_level_filtering_matches_paper(self):
        # §3.2.1: {110, 120, 130, 380, 400, 1000} with D=30 → {110, 380, 1000}.
        levels = filter_levels(
            np.array([110, 120, 130, 380, 400, 1000]), 30
        )
        assert levels == [110.0, 380.0, 1000.0]

    def test_closeness_indices_match_paper(self):
        rel = infer_dc_relations(PAPER_BW, 30)
        assert rel.tolist() == [[1, 2, 3], [2, 1, 3], [3, 3, 1]]

    def test_exact_match_and_interval_cases(self):
        rel = infer_dc_relations(PAPER_BW, 30)
        # 400 is not a surviving level; nearest is 380 → same closeness.
        assert rel[0, 1] == rel[1, 0]


class TestFilterLevels:
    def test_no_filtering_when_gaps_large(self):
        assert filter_levels(np.array([10, 200, 500]), 50) == [
            10.0,
            200.0,
            500.0,
        ]

    def test_keeps_lowest_of_a_cluster(self):
        assert filter_levels(np.array([100, 110, 120, 130]), 15) == [100.0]

    def test_duplicates_collapse(self):
        assert filter_levels(np.array([5, 5, 5]), 1) == [5.0]

    def test_negative_min_difference_rejected(self):
        with pytest.raises(ValueError):
            filter_levels(np.array([1.0]), -1)

    def test_zero_difference_keeps_all_unique(self):
        assert filter_levels(np.array([1, 2, 3]), 0) == [1.0, 2.0, 3.0]


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            infer_dc_relations(np.zeros((2, 3)))

    def test_uniform_matrix_single_level(self):
        rel = infer_dc_relations(np.full((3, 3), 500.0), 100)
        assert (rel == 1).all()


# -- Properties --------------------------------------------------------------

bw_matrix_strategy = st.integers(min_value=2, max_value=6).flatmap(
    lambda n: st.lists(
        st.floats(min_value=1.0, max_value=5000.0),
        min_size=n * n,
        max_size=n * n,
    ).map(lambda vals: np.array(vals).reshape(n, n))
)


@settings(max_examples=80, deadline=None)
@given(bw_matrix_strategy, st.floats(min_value=0, max_value=500))
def test_indices_in_range(bw, min_difference):
    rel = infer_dc_relations(bw, min_difference)
    levels = filter_levels(bw, min_difference)
    assert rel.min() >= 1
    assert rel.max() <= len(levels)


@settings(max_examples=80, deadline=None)
@given(bw_matrix_strategy, st.floats(min_value=0, max_value=500))
def test_higher_bw_never_farther(bw, min_difference):
    """Monotonicity: a higher BW cell never gets a larger (farther)
    closeness index than a lower one."""
    rel = infer_dc_relations(bw, min_difference)
    flat_bw = bw.ravel()
    flat_rel = rel.ravel()
    order = np.argsort(flat_bw)
    sorted_rel = flat_rel[order]
    # As BW increases the closeness index must be non-increasing.
    assert (np.diff(sorted_rel) <= 0).all() or (
        # allow equal-BW ties in any order
        all(
            sorted_rel[i + 1] <= sorted_rel[i]
            or flat_bw[order[i + 1]] == flat_bw[order[i]]
            for i in range(len(sorted_rel) - 1)
        )
    )


@settings(max_examples=50, deadline=None)
@given(bw_matrix_strategy)
def test_deterministic(bw):
    a = infer_dc_relations(bw, 100)
    b = infer_dc_relations(bw, 100)
    assert (a == b).all()
