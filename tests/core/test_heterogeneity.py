"""Tests for skew weights, rvec, and association."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.globalopt import optimize_connections
from repro.core.heterogeneity import (
    _proportional_chunks,
    associated_bw,
    chunk_plan_for_workers,
    refactoring_vector,
    skew_weights_from_sizes,
)
from repro.net.matrix import BandwidthMatrix


class TestSkewWeights:
    def test_normalized_to_mean_one(self):
        w = skew_weights_from_sizes({"a": 100.0, "b": 200.0, "c": 300.0})
        assert np.mean(list(w.values())) == pytest.approx(1.0, rel=0.05)

    def test_heavy_dc_gets_heavier_weight(self):
        w = skew_weights_from_sizes({"a": 500.0, "b": 100.0})
        assert w["a"] > w["b"]

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            skew_weights_from_sizes({"a": 0.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            skew_weights_from_sizes({})

    def test_floor_for_empty_dcs(self):
        w = skew_weights_from_sizes({"a": 1000.0, "b": 0.0})
        assert w["b"] > 0


class TestRefactoringVector:
    def test_default_factors(self):
        rvec = refactoring_vector({"a": "aws", "b": "gcp"})
        assert rvec["a"] == 1.0
        assert rvec["b"] == 0.9

    def test_custom_factors(self):
        rvec = refactoring_vector(
            {"a": "aws"}, provider_factors={"aws": 1.2}
        )
        assert rvec["a"] == 1.2

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            refactoring_vector({"a": "aws"}, provider_factors={"aws": 0.0})


class TestAssociation:
    def test_bw_scales_with_smaller_fleet(self):
        bw = BandwidthMatrix.full(("a", "b", "c"), 100.0)
        scaled = associated_bw(bw, {"a": 3, "b": 2, "c": 1})
        assert scaled.get("a", "b") == pytest.approx(200.0)
        assert scaled.get("a", "c") == pytest.approx(100.0)

    def test_invalid_vm_count_rejected(self):
        bw = BandwidthMatrix.full(("a", "b"), 100.0)
        with pytest.raises(ValueError):
            associated_bw(bw, {"a": 0, "b": 1})


class TestChunking:
    def test_chunks_cover_dc_window(self):
        bw = BandwidthMatrix(
            ("a", "b", "c"),
            np.array([[0, 800, 120], [800, 0, 130], [120, 130, 0]], float),
        )
        plan = optimize_connections(bw, min_difference=30)
        workers = chunk_plan_for_workers(plan, "a", 2)
        assert len(workers) == 2
        lo, hi = plan.connection_window("a", "c")
        total_hi = sum(w["c"][1] for w in workers)
        # Sum across workers ≈ the DC window (within the ≥1 floor).
        assert total_hi >= hi

    def test_single_worker_identity(self):
        bw = BandwidthMatrix.full(("a", "b"), 500.0)
        plan = optimize_connections(bw)
        workers = chunk_plan_for_workers(plan, "a", 1)
        assert workers[0]["b"] == plan.connection_window("a", "b")

    def test_invalid_worker_count(self):
        bw = BandwidthMatrix.full(("a", "b"), 500.0)
        plan = optimize_connections(bw)
        with pytest.raises(ValueError):
            chunk_plan_for_workers(plan, "a", 0)


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=1, max_value=10),
)
def test_proportional_chunks_sum_and_balance(total, parts):
    chunks = _proportional_chunks(total, parts)
    assert sum(chunks) == total
    assert len(chunks) == parts
    assert max(chunks) - min(chunks) <= 1
