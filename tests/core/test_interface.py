"""Tests for the WANify facade and deployments."""

import pytest

from repro.core.interface import VARIANTS, WANify, WANifyConfig
from repro.net.dynamics import FluctuationModel
from repro.net.simulator import NetworkSimulator


@pytest.fixture(scope="module")
def trained():
    from repro.net.topology import Topology
    from repro.cloud.regions import PAPER_REGIONS

    topo = Topology.build(PAPER_REGIONS[:4], "t2.medium")
    wanify = WANify(
        topo,
        FluctuationModel(seed=9),
        WANifyConfig(n_training_datasets=15, n_estimators=10),
    )
    summary = wanify.train()
    return topo, wanify, summary


class TestTraining:
    def test_summary_fields(self, trained):
        _, wanify, summary = trained
        assert wanify.is_trained
        assert summary["rows"] > 0
        assert summary["train_accuracy_pct"] > 80.0
        assert summary["collection_cost_usd"] > 0

    def test_predict_before_training_raises(self, triad):
        wanify = WANify(triad)
        with pytest.raises(RuntimeError, match="train"):
            wanify.predict_runtime_bw()


class TestPrediction:
    def test_predict_full_topology(self, trained):
        topo, wanify, _ = trained
        bw = wanify.predict_runtime_bw(at_time=1000.0)
        assert bw.keys == topo.keys
        assert bw.min_bw() >= 0

    def test_predict_on_subset(self, trained):
        topo, wanify, _ = trained
        sub = topo.subset(topo.keys[:2])
        bw = wanify.predict_runtime_bw(at_time=1000.0, topology=sub)
        assert bw.keys == sub.keys


class TestDeployments:
    def test_unknown_variant_rejected(self, trained):
        _, wanify, _ = trained
        with pytest.raises(ValueError, match="unknown variant"):
            wanify.deployment("wanify-max")

    def test_single_variant_is_noop(self, trained):
        topo, wanify, _ = trained
        deployment = wanify.deployment("single")
        net = NetworkSimulator(topo)
        deployment.install(net)
        assert net.connections(topo.keys[0], topo.keys[1]) == 1
        assert net.tc.limits() == {}

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_all_variants_install_and_teardown(self, trained, variant):
        topo, wanify, _ = trained
        net = NetworkSimulator(topo)
        deployment = wanify.deployment(variant, at_time=500.0)
        deployment.install(net)
        if deployment.agents:
            assert deployment.agents_running
        deployment.teardown(net)
        assert deployment.agents_running == []
        assert net.tc.limits() == {}

    def test_wanify_p_sets_uniform_counts(self, trained):
        topo, wanify, _ = trained
        net = NetworkSimulator(topo)
        deployment = wanify.deployment("wanify-p", at_time=500.0)
        deployment.install(net)
        counts = {
            net.connections(a, b)
            for a in topo.keys
            for b in topo.keys
            if a != b
        }
        assert counts == {wanify.config.max_connections}

    def test_tc_variant_installs_throttles(self, trained):
        topo, wanify, _ = trained
        net = NetworkSimulator(topo)
        deployment = wanify.deployment("wanify-tc", at_time=500.0)
        deployment.install(net)
        assert len(net.tc.limits()) > 0
        deployment.teardown(net)

    def test_dynamic_variant_no_throttles(self, trained):
        topo, wanify, _ = trained
        net = NetworkSimulator(topo)
        deployment = wanify.deployment("wanify-dynamic", at_time=500.0)
        deployment.install(net)
        assert net.tc.limits() == {}
        deployment.teardown(net)

    def test_global_only_uses_midpoint(self, trained):
        topo, wanify, _ = trained
        bw = wanify.predict_runtime_bw(at_time=500.0)
        plan = wanify.make_plan(bw)
        net = NetworkSimulator(topo)
        deployment = wanify.deployment("global-only", bw=bw)
        deployment.install(net)
        for a in topo.keys:
            for b in topo.keys:
                if a == b:
                    continue
                lo, hi = plan.connection_window(a, b)
                assert lo <= net.connections(a, b) <= hi

    def test_retired_agents_inspectable(self, trained):
        topo, wanify, _ = trained
        net = NetworkSimulator(topo)
        deployment = wanify.deployment("wanify-tc", at_time=500.0)
        deployment.install(net)
        deployment.teardown(net)
        assert len(deployment.retired_agents) == topo.n
