"""Tests for regions, VM types, and pricing."""

import pytest

from repro.cloud.pricing import (
    PriceBook,
    SECONDS_PER_YEAR,
    monitoring_annual_cost,
)
from repro.cloud.regions import (
    PAPER_REGIONS,
    all_regions,
    haversine_miles,
    region,
)
from repro.cloud.vm import vm_type


class TestRegions:
    def test_paper_regions_all_catalogued(self):
        for key in PAPER_REGIONS:
            assert region(key).provider == "aws"

    def test_eight_paper_regions(self):
        assert len(PAPER_REGIONS) == 8

    def test_unknown_region_raises(self):
        with pytest.raises(KeyError, match="unknown region"):
            region("mars-north-1")

    def test_haversine_known_distance(self):
        # New York to London ≈ 3,461 miles.
        d = haversine_miles(40.71, -74.01, 51.51, -0.13)
        assert 3400 < d < 3520

    def test_haversine_zero_for_same_point(self):
        assert haversine_miles(10.0, 20.0, 10.0, 20.0) == 0.0

    def test_distance_symmetry(self):
        a, b = region("us-east-1"), region("ap-southeast-1")
        assert a.distance_miles(b) == pytest.approx(b.distance_miles(a))

    def test_us_coasts_closer_than_transpacific(self):
        use = region("us-east-1")
        usw = region("us-west-1")
        apse = region("ap-southeast-1")
        assert use.distance_miles(usw) < use.distance_miles(apse)

    def test_gcp_regions_present(self):
        providers = {r.provider for r in all_regions()}
        assert providers == {"aws", "gcp"}


class TestVMTypes:
    def test_wan_cap_halves_nic(self):
        vm = vm_type("m5.large")
        assert vm.wan_cap_mbps == pytest.approx(
            vm.nic_gbps * 1000 * 0.5
        )

    def test_unknown_vm_raises(self):
        with pytest.raises(KeyError, match="unknown VM type"):
            vm_type("z9.mega")

    def test_probe_vm_sustains_more_wan_than_workers(self):
        # The motivation experiments need unlimited-burst t3.nano to
        # reach the Fig. 1 single-connection rates.
        assert (
            vm_type("t3.nano").wan_cap_mbps
            > vm_type("t2.medium").wan_cap_mbps
        )


class TestPricing:
    def test_compute_cost_scales_with_time(self):
        prices = PriceBook()
        one_hour = prices.compute_cost("t2.medium", 3600)
        assert one_hour == pytest.approx(0.0464)
        assert prices.compute_cost("t2.medium", 7200) == pytest.approx(
            2 * one_hour
        )

    def test_burst_surcharge(self):
        prices = PriceBook()
        plain = prices.compute_cost("t2.medium", 3600)
        burst = prices.compute_cost("t2.medium", 3600, vcpus=2, burst=True)
        assert burst == pytest.approx(plain + 0.05 * 2)

    def test_network_cost_per_gb(self):
        assert PriceBook().network_cost(50.0) == pytest.approx(1.0)

    def test_storage_cost_monthly_rate(self):
        prices = PriceBook()
        month = 30 * 24 * 3600.0
        assert prices.storage_cost(100.0, month) == pytest.approx(2.3)

    def test_monitoring_cost_matches_paper_band(self):
        # Table 2: $703 / $1055 / $1406 for N = 4 / 6 / 8.
        for n, paper in [(4, 703.0), (6, 1055.0), (8, 1406.0)]:
            measured = monitoring_annual_cost(n, 20.0, 200.0)
            assert abs(measured - paper) / paper < 0.10

    def test_monitoring_cost_linear_in_nodes(self):
        c4 = monitoring_annual_cost(4, 20.0, 200.0)
        c8 = monitoring_annual_cost(8, 20.0, 200.0)
        assert c8 == pytest.approx(2 * c4)

    def test_occurrences_follow_cadence(self):
        hourly = monitoring_annual_cost(4, 20.0, 200.0, cadence_s=3600.0)
        half_hourly = monitoring_annual_cost(4, 20.0, 200.0, cadence_s=1800.0)
        assert half_hourly == pytest.approx(2 * hourly)
        assert SECONDS_PER_YEAR / 1800.0 == pytest.approx(17520.0)
