"""Failure injection: brownouts, degenerate matrices, dead links.

The production question behind each test: does the pipeline degrade
gracefully when the network (or the caller) misbehaves, or does it
crash / wedge / emit garbage?
"""

import numpy as np
import pytest

from repro.core.interface import WANify, WANifyConfig
from repro.core.globalopt import optimize_connections
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.gda.engine.engine import GdaEngine
from repro.gda.systems.base import PlacementPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.gda.workloads.wordcount import wordcount_job
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.topology import Topology

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


class TestBrownout:
    """Violent network weather: capacity repeatedly collapses to the
    fluctuation floor."""

    @pytest.fixture
    def stormy(self):
        return FluctuationModel(seed=66, sigma=0.9, floor=0.05, ceiling=1.2)

    def test_full_deployment_completes_under_storm(self, stormy):
        topology = Topology.build(TRIAD, "t2.medium")
        wanify = WANify(
            topology,
            stormy,
            WANifyConfig(n_training_datasets=8, n_estimators=6),
        )
        wanify.train()
        cluster = GeoCluster.from_topology(topology, fluctuation=stormy)
        job = terasort_job({dc: 300.0 for dc in TRIAD})
        predicted = wanify.predict_runtime_bw(at_time=3600.0)
        deployment = wanify.deployment("wanify-tc", predicted)
        result = GdaEngine(cluster).run(
            job, TetriumPolicy(), predicted, deployment
        )
        assert result.jct_s > 0
        assert not deployment.agents_running  # torn down

    def test_agents_back_off_when_capacity_collapses(self, stormy):
        """Under a storm the AIMD agents must spend epochs in decrease
        mode rather than pinning the optimistic maximum."""
        topology = Topology.build(TRIAD, "t2.medium")
        wanify = WANify(
            topology,
            stormy,
            WANifyConfig(n_training_datasets=8, n_estimators=6),
        )
        wanify.train()
        cluster = GeoCluster.from_topology(topology, fluctuation=stormy)
        job = terasort_job({dc: 1500.0 for dc in TRIAD})
        predicted = wanify.predict_runtime_bw(at_time=0.0)
        deployment = wanify.deployment("wanify-dynamic", predicted)
        GdaEngine(cluster).run(job, TetriumPolicy(), predicted, deployment)
        modes = [
            rec.mode
            for agent in deployment.retired_agents
            for rec in agent.optimizer.history
        ]
        assert "decrease" in modes


class TestDegenerateMatrices:
    def test_all_equal_bw_plan_is_well_formed(self):
        bw = BandwidthMatrix.full(TRIAD, 500.0)
        plan = optimize_connections(bw)
        lo = plan.min_connections.values
        hi = plan.max_connections.values
        assert (lo <= hi).all()
        assert (np.diag(lo) == 1).all()
        assert (np.diag(hi) == 1).all()
        assert (plan.min_connections.off_diagonal() >= 1).all()

    def test_zero_bw_matrix_does_not_crash_the_optimizer(self):
        bw = BandwidthMatrix.zeros(TRIAD)
        plan = optimize_connections(bw)
        assert (plan.max_connections.off_diagonal() >= 1).all()
        assert plan.max_bw.min_bw() == 0.0

    def test_dead_link_lp_placement_still_sums_to_one(self):
        cluster = GeoCluster.build(
            TRIAD, "t2.medium", fluctuation=StaticModel()
        )
        bw = BandwidthMatrix(
            TRIAD,
            np.array([[0, 900, 0], [900, 0, 0], [0, 0, 0]], float),
        )
        stage = StageSpec("r", 0.1, 1.0, shuffle=True)
        placement = TetriumPolicy().place_stage(
            stage, {dc: 500.0 for dc in TRIAD}, bw, cluster
        )
        assert sum(placement.values()) == pytest.approx(1.0)
        assert all(f >= -1e-9 for f in placement.values())


class TestDegenerateClusters:
    def test_single_dc_job_never_touches_the_wan(self):
        cluster = GeoCluster.build(
            ("us-east-1",), "t2.medium", fluctuation=StaticModel()
        )
        job = terasort_job({"us-east-1": 2000.0})
        result = GdaEngine(cluster).run(job, TetriumPolicy(), None)
        assert result.wan_gb == 0.0
        assert result.jct_s > 0  # compute still takes time

    def test_zero_intermediate_wordcount_completes(self):
        cluster = GeoCluster.build(
            TRIAD, "t2.medium", fluctuation=StaticModel()
        )
        job = wordcount_job(
            {dc: 100.0 for dc in TRIAD}, intermediate_mb=0.0
        )
        result = GdaEngine(cluster).run(job, TetriumPolicy(), None)
        assert result.jct_s > 0
        assert result.wan_gb == pytest.approx(0.0, abs=1e-6)

    def test_input_at_one_dc_only(self):
        cluster = GeoCluster.build(
            TRIAD, "t2.medium", fluctuation=StaticModel()
        )
        bw = BandwidthMatrix.full(TRIAD, 400.0)
        job = terasort_job({"us-east-1": 900.0})
        result = GdaEngine(cluster).run(job, TetriumPolicy(), bw)
        assert result.jct_s > 0


class TestMalformedPolicies:
    class BrokenPolicy(PlacementPolicy):
        name = "broken"

        def place_stage(self, stage, data, bw, cluster):
            return {dc: 0.6 for dc in cluster.keys}  # sums to 1.8

    class UnknownDcPolicy(PlacementPolicy):
        name = "unknown-dc"

        def place_stage(self, stage, data, bw, cluster):
            return {"narnia-1": 1.0}

    def _run(self, policy):
        cluster = GeoCluster.build(
            TRIAD, "t2.medium", fluctuation=StaticModel()
        )
        job = terasort_job({dc: 100.0 for dc in TRIAD})
        return GdaEngine(cluster).run(job, policy, None)

    def test_fractions_not_summing_to_one_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            self._run(self.BrokenPolicy())

    def test_unknown_dc_rejected(self):
        with pytest.raises(ValueError, match="unknown DCs"):
            self._run(self.UnknownDcPolicy())


class TestPredictionClamping:
    def test_predictions_never_negative_even_off_hull(self):
        topology = Topology.build(TRIAD, "t2.medium")
        weather = FluctuationModel(seed=4)
        wanify = WANify(
            topology,
            weather,
            WANifyConfig(n_training_datasets=6, n_estimators=5),
        )
        wanify.train()
        X = np.array(
            [
                [3.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                [3.0, 1e9, 1.0, 1.0, 1e9, 1e5],
                [8.0, -500.0, 0.5, 0.5, 10.0, 5000.0],
            ]
        )
        preds = wanify.predictor.predict_rows(X)
        assert (preds >= 0.0).all()
        assert np.isfinite(preds).all()

    def test_untrained_model_raises_cleanly(self):
        topology = Topology.build(TRIAD, "t2.medium")
        wanify = WANify(topology, FluctuationModel(seed=4))
        with pytest.raises(RuntimeError, match="train"):
            wanify.predict_runtime_bw()
