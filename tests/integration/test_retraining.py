"""Integration test for model-staleness handling (§3.3.4).

Simulates model drift by evaluating a predictor trained on one
infrastructure (t2.medium workers) against an upgraded one (m5.large,
with a 10 Gbps NIC and hence a very different snapshot→runtime mapping):
the error tracker must latch the retraining flag, and a warm-start
retrain on freshly collected data must restore accuracy.

Note that merely *noisier weather* is not drift for this model — the RF
predicts from real-time snapshots, so it generalizes across fluctuation
regimes (that is the paper's central claim, verified in
``tests/core/test_predictor_dataset.py``).  Drift requires the mapping
itself to change, e.g. a provider/VM-class change.
"""

import pytest

from repro.core.dataset import build_training_set
from repro.core.predictor import WanPredictionModel
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import snapshot, stable_runtime
from repro.net.topology import Topology

REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")


@pytest.fixture(scope="module")
def drift_setup():
    old_topology = Topology.build(REGIONS, "t2.medium")
    # The "new" infrastructure swaps every worker for an m5.large whose
    # usable WAN capacity is ~4x the t2.medium's; nearby-pair runtime
    # BWs move far outside the training hull.
    new_topology = Topology.build(REGIONS, "m5.large")
    weather = FluctuationModel(seed=1, sigma=0.08)
    training = build_training_set(
        old_topology, weather, n_datasets=15, seed=2
    )
    model = WanPredictionModel(
        n_estimators=12, error_window=4, error_threshold_mbps=100.0
    ).fit(training)
    return old_topology, new_topology, weather, model


class TestDriftDetection:
    def test_flag_latches_under_drift(self, drift_setup):
        _, new_topology, weather, model = drift_setup
        for i in range(6):
            at = 1e5 + i * 900.0
            snap = snapshot(new_topology, weather, at_time=at)
            predicted = model.predict_matrix(snap, new_topology)
            actual = stable_runtime(
                new_topology, weather, at_time=at
            ).matrix
            model.track_error(predicted, actual)
        assert model.needs_retraining

    def test_no_false_alarm_without_drift(self, drift_setup):
        """On the training infrastructure the flag must stay clear, even
        under a different (unseen) fluctuation seed."""
        old_topology, _, _, model = drift_setup
        probe = WanPredictionModel(
            n_estimators=12, error_window=4, error_threshold_mbps=100.0
        )
        probe.forest = model.forest
        probe._train_accuracy = model._train_accuracy
        unseen = FluctuationModel(seed=777, sigma=0.08)
        for i in range(6):
            at = 3e5 + i * 900.0
            snap = snapshot(old_topology, unseen, at_time=at)
            predicted = probe.predict_matrix(snap, old_topology)
            actual = stable_runtime(
                old_topology, unseen, at_time=at
            ).matrix
            probe.track_error(predicted, actual)
        assert not probe.needs_retraining

    def test_warm_start_retrain_restores_accuracy(self, drift_setup):
        _, new_topology, weather, model = drift_setup
        # Collect fresh data under the new regime and retrain.
        fresh = build_training_set(
            new_topology, weather, n_datasets=15, seed=5
        )
        trees_before = len(model.forest.trees)
        model.retrain(fresh, extra_estimators=12)
        assert len(model.forest.trees) == trees_before + 12
        assert not model.needs_retraining

        # Post-retrain predictions are usable under the new regime.
        at = 2e5
        snap = snapshot(new_topology, weather, at_time=at)
        predicted = model.predict_matrix(snap, new_topology)
        actual = stable_runtime(new_topology, weather, at_time=at).matrix
        err = model.track_error(predicted, actual)
        assert err < 200.0
