"""Integration tests: full WANify pipeline on live GDA queries.

These exercise the whole stack — training, snapshot prediction, global
optimization, agents with AIMD + throttling, the execution engine with
Tetrium/Kimchi placement — on a reduced topology so they stay fast.
"""

import pytest

from repro.core.interface import WANify, WANifyConfig
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.systems.vanilla import LocalityPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.gda.workloads.tpcds import tpcds_job
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import measure_independent
from repro.net.topology import Topology

REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")


@pytest.fixture(scope="module")
def stack():
    weather = FluctuationModel(seed=77)
    topology = Topology.build(REGIONS, "t2.medium")
    wanify = WANify(
        topology,
        weather,
        WANifyConfig(n_training_datasets=15, n_estimators=10),
    )
    wanify.train()
    return topology, weather, wanify


def run_job(weather, job, policy, bw=None, deployment=None):
    cluster = GeoCluster.build(
        REGIONS, "t2.medium", fluctuation=weather, time_offset=1000.0
    )
    return GdaEngine(cluster).run(
        job, policy, decision_bw=bw, deployment=deployment
    )


class TestWanifyOnTerasort:
    def test_wanify_tc_beats_vanilla(self, stack):
        _, weather, wanify = stack
        store = HdfsStore.uniform(REGIONS, 20 * 1024.0)
        job = terasort_job(store.data_by_dc())
        predicted = wanify.predict_runtime_bw(at_time=1000.0)

        vanilla = run_job(weather, job, LocalityPolicy())
        enabled = run_job(
            weather, job, LocalityPolicy(),
            deployment=wanify.deployment("wanify-tc", bw=predicted),
        )
        assert enabled.jct_s < vanilla.jct_s
        assert enabled.min_bw_mbps > vanilla.min_bw_mbps

    def test_uniform_parallelism_does_not_lift_min_bw(self, stack):
        _, weather, wanify = stack
        store = HdfsStore.uniform(REGIONS, 20 * 1024.0)
        job = terasort_job(store.data_by_dc())
        predicted = wanify.predict_runtime_bw(at_time=1000.0)

        vanilla = run_job(weather, job, LocalityPolicy())
        uniform = run_job(
            weather, job, LocalityPolicy(),
            deployment=wanify.deployment("wanify-p", bw=predicted),
        )
        assert uniform.min_bw_mbps <= vanilla.min_bw_mbps * 1.3


class TestGdaSystems:
    @pytest.mark.parametrize("policy_cls", [TetriumPolicy, KimchiPolicy])
    def test_systems_run_tpcds_with_any_bw_source(self, stack, policy_cls):
        topology, weather, wanify = stack
        store = HdfsStore.uniform(REGIONS, 10 * 1024.0)
        job = tpcds_job(78, store.data_by_dc())
        static = measure_independent(topology, weather, at_time=0.0).matrix
        predicted = wanify.predict_runtime_bw(at_time=1000.0)

        with_static = run_job(weather, job, policy_cls(), bw=static)
        with_predicted = run_job(weather, job, policy_cls(), bw=predicted)
        assert with_static.jct_s > 0
        assert with_predicted.jct_s > 0
        # Both runs complete the same logical work.
        assert with_predicted.stages[-1].name == with_static.stages[-1].name

    def test_deployment_reusable_across_runs(self, stack):
        _, weather, wanify = stack
        store = HdfsStore.uniform(REGIONS, 5 * 1024.0)
        job = tpcds_job(95, store.data_by_dc())
        predicted = wanify.predict_runtime_bw(at_time=1000.0)
        for _ in range(2):
            deployment = wanify.deployment("wanify-tc", bw=predicted)
            result = run_job(
                weather, job, TetriumPolicy(), bw=predicted,
                deployment=deployment,
            )
            assert result.jct_s > 0
            assert deployment.agents_running == []


class TestPredictionQuality:
    def test_predicted_beats_static_against_runtime(self, stack):
        topology, weather, wanify = stack
        from repro.net.measurement import stable_runtime

        at = 3000.0
        static = measure_independent(topology, weather, at_time=0.0).matrix
        predicted = wanify.predict_runtime_bw(at_time=at)
        actual = stable_runtime(topology, weather, at_time=at).matrix
        static_misses = len(static.significant_differences(actual))
        predicted_misses = len(predicted.significant_differences(actual))
        assert predicted_misses <= static_misses
