"""Multi-cloud (AWS + GCP) heterogeneity integration (§3.3.3, §5.8.3).

The paper validated WANify across AWS and GCP with similar VM types and
handles provider heterogeneity via the refactoring vector.  These tests
exercise mixed-provider topologies end to end.
"""

import pytest

from repro.core.heterogeneity import refactoring_vector
from repro.core.interface import WANify, WANifyConfig
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.systems.vanilla import LocalityPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.net.dynamics import FluctuationModel
from repro.net.topology import Topology

MIXED = ("us-east-1", "eu-west-1", "gcp-us-east1", "gcp-europe-west1")


class TestMixedProviderTopology:
    def test_builds_with_gcp_regions(self):
        topo = Topology.build(MIXED, "t2.medium")
        assert topo.n == 4
        providers = {dc.region.provider for dc in topo.dcs}
        assert providers == {"aws", "gcp"}

    def test_cross_cloud_rtt_reasonable(self):
        topo = Topology.build(MIXED)
        # AWS US East ↔ GCP US East (S. Carolina) are a few hundred
        # miles apart — RTT should be small.
        assert topo.rtt_ms("us-east-1", "gcp-us-east1") < 20.0

    def test_rvec_from_providers(self):
        topo = Topology.build(MIXED)
        providers = {dc.key: dc.region.provider for dc in topo.dcs}
        rvec = refactoring_vector(providers)
        assert rvec["us-east-1"] == 1.0
        assert rvec["gcp-us-east1"] == 0.9


class TestMixedProviderPipeline:
    def test_wanify_with_rvec_end_to_end(self):
        weather = FluctuationModel(seed=21)
        topo = Topology.build(MIXED, "t2.medium")
        wanify = WANify(
            topo,
            weather,
            WANifyConfig(n_training_datasets=10, n_estimators=8),
        )
        wanify.train()
        bw = wanify.predict_runtime_bw(at_time=500.0)
        providers = {dc.key: dc.region.provider for dc in topo.dcs}
        rvec = refactoring_vector(providers)
        plan = wanify.make_plan(bw, rvec=rvec)
        plain = wanify.make_plan(bw)
        # rvec only rescales achievable BWs, never connection counts.
        assert (
            plan.max_connections.values == plain.max_connections.values
        ).all()
        gcp_pair = ("gcp-us-east1", "gcp-europe-west1")
        assert plan.max_bw.get(*gcp_pair) == pytest.approx(
            plain.max_bw.get(*gcp_pair) * 0.9, rel=1e-6
        )

    def test_job_runs_on_mixed_cluster(self):
        weather = FluctuationModel(seed=21)
        cluster = GeoCluster.build(MIXED, "t2.medium", fluctuation=weather)
        store_mb = {dc: 512.0 for dc in MIXED}
        result = GdaEngine(cluster).run(
            terasort_job(store_mb), LocalityPolicy()
        )
        assert result.jct_s > 0
        assert result.wan_gb > 0
