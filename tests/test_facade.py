"""Tests for the lazy top-level facade (:mod:`repro.__init__`)."""

import importlib

import pytest

import repro


class TestLazyExports:
    def test_unknown_attribute_raises_attribute_error(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_thing

    def test_every_lazy_name_resolves(self):
        for name, module_path in repro._LAZY_EXPORTS.items():
            resolved = getattr(repro, name)
            assert resolved is getattr(
                importlib.import_module(module_path), name
            ), name

    def test_dir_lists_lazy_and_eager_names(self):
        listed = dir(repro)
        for name in repro._LAZY_EXPORTS:
            assert name in listed
        for name in ("Pipeline", "PipelineConfig", "Topology", "WANify"):
            assert name in listed

    def test_all_names_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_import_repro_stays_light(self):
        # The lazy layer exists so `import repro` does not pay for the
        # GDA engine; scipy arriving eagerly would defeat it.  Checked
        # in a subprocess because this test session imports everything.
        import subprocess
        import sys

        code = (
            "import sys; import repro; "
            "sys.exit(1 if 'scipy' in sys.modules else 0)"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True
        )
        assert result.returncode == 0, result.stderr.decode()
