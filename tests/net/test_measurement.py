"""Tests for the iPerf-like measurement layer."""

import pytest

from repro.net.measurement import (
    MeasurementReport,
    measure_independent,
    measure_simultaneous,
    snapshot,
    stable_runtime,
)


class TestIndependent:
    def test_matches_single_connection_caps(self, triad, calm):
        report = measure_independent(triad, calm)
        for src, dst in report.matrix.pairs():
            cap = triad.single_connection_cap(src, dst)
            assert report.matrix.get(src, dst) == pytest.approx(
                cap, rel=0.05
            )

    def test_cost_accounts_probe_pairs(self, triad, calm):
        report = measure_independent(triad, calm)
        # 6 ordered pairs × 2 VMs × 20 s.
        assert report.cost.instance_seconds == pytest.approx(240.0)
        assert report.cost.dollars > 0


class TestSimultaneous:
    def test_contention_lowers_all_rates(self, triad, calm):
        independent = measure_independent(triad, calm).matrix
        simultaneous = measure_simultaneous(triad, calm).matrix
        for src, dst in independent.pairs():
            assert (
                simultaneous.get(src, dst)
                <= independent.get(src, dst) * 1.05
            )

    def test_mesh_cheaper_than_sequential_probing(self, triad, calm):
        ind = measure_independent(triad, calm)
        sim = measure_simultaneous(triad, calm)
        assert sim.cost.instance_seconds < ind.cost.instance_seconds

    def test_aux_features_populated(self, triad, calm):
        report = measure_simultaneous(triad, calm)
        assert set(report.memory_util) == set(triad.keys)
        assert set(report.cpu_load) == set(triad.keys)
        assert len(report.retransmissions) == 6
        assert all(0 <= v <= 1 for v in report.memory_util.values())

    def test_connection_matrix_accepted(self, triad, calm):
        from repro.net.matrix import BandwidthMatrix

        counts = BandwidthMatrix.full(triad.keys, 1.0)
        counts.set("us-east-1", "ap-southeast-1", 8)
        report = measure_simultaneous(triad, calm, connections=counts)
        single = measure_simultaneous(triad, calm, connections=1)
        assert report.matrix.get(
            "us-east-1", "ap-southeast-1"
        ) > single.matrix.get("us-east-1", "ap-southeast-1")


class TestSnapshot:
    def test_snapshot_is_one_second(self, triad, weather):
        report = snapshot(triad, weather, at_time=100.0)
        assert report.window_s == 1.0
        assert report.mode == "snapshot"

    def test_snapshot_correlates_with_stable(self, full_topology, weather):
        import numpy as np

        snap = snapshot(full_topology, weather, at_time=500.0)
        stable = stable_runtime(full_topology, weather, at_time=500.0)
        corr = np.corrcoef(
            snap.matrix.off_diagonal(), stable.matrix.off_diagonal()
        )[0, 1]
        # §2.2: positive Pearson correlation between snapshots and
        # stable runtime BWs.
        assert corr > 0.7

    def test_snapshot_noisier_than_stable(self, triad, weather):
        # Snapshots at nearby instants vary more than stable windows.
        snaps = [
            snapshot(triad, weather, at_time=t).matrix.get(
                "us-east-1", "us-west-1"
            )
            for t in (100.0, 101.0, 102.0)
        ]
        stables = [
            stable_runtime(triad, weather, at_time=t).matrix.get(
                "us-east-1", "us-west-1"
            )
            for t in (100.0, 101.0, 102.0)
        ]
        import numpy as np

        assert np.std(snaps) >= np.std(stables)

    def test_snapshot_cheaper_than_stable(self, triad, calm):
        snap = snapshot(triad, calm)
        stable = stable_runtime(triad, calm)
        assert snap.cost.dollars < stable.cost.dollars / 5


class TestStableRuntime:
    def test_mode_label(self, triad, calm):
        assert stable_runtime(triad, calm).mode == "stable_runtime"

    def test_deterministic_given_seed_and_time(self, triad, weather):
        a = stable_runtime(triad, weather, at_time=777.0)
        b = stable_runtime(triad, weather, at_time=777.0)
        assert (a.matrix.values == b.matrix.values).all()

    def test_report_type(self, triad, calm):
        assert isinstance(stable_runtime(triad, calm), MeasurementReport)
