"""Tests for BandwidthMatrix."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.matrix import BandwidthMatrix

KEYS = ("a", "b", "c")


def matrix_from(values) -> BandwidthMatrix:
    return BandwidthMatrix(KEYS, np.array(values, dtype=float))


class TestBasics:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="does not match"):
            BandwidthMatrix(KEYS, np.zeros((2, 2)))

    def test_get_set_roundtrip(self):
        m = BandwidthMatrix.zeros(KEYS)
        m.set("a", "b", 42.0)
        assert m.get("a", "b") == 42.0
        assert m.get("b", "a") == 0.0

    def test_unknown_key_raises(self):
        m = BandwidthMatrix.zeros(KEYS)
        with pytest.raises(KeyError, match="unknown DC"):
            m.get("a", "zz")

    def test_min_max_exclude_diagonal(self):
        m = matrix_from([[999, 10, 20], [30, 999, 40], [50, 60, 999]])
        assert m.min_bw() == 10
        assert m.max_bw() == 60

    def test_mean_excludes_diagonal(self):
        m = matrix_from([[999, 2, 2], [2, 999, 2], [2, 2, 999]])
        assert m.mean_bw() == 2.0

    def test_pairs_are_all_ordered_offdiagonal(self):
        m = BandwidthMatrix.zeros(KEYS)
        pairs = list(m.pairs())
        assert len(pairs) == 6
        assert ("a", "a") not in pairs

    def test_subset_preserves_values(self):
        m = matrix_from([[0, 1, 2], [3, 0, 4], [5, 6, 0]])
        s = m.subset(("c", "a"))
        assert s.keys == ("c", "a")
        assert s.get("c", "a") == 5
        assert s.get("a", "c") == 2

    def test_copy_is_deep(self):
        m = BandwidthMatrix.zeros(KEYS)
        c = m.copy()
        c.set("a", "b", 7.0)
        assert m.get("a", "b") == 0.0

    def test_full_constructor(self):
        m = BandwidthMatrix.full(KEYS, 5.0)
        assert m.min_bw() == 5.0
        assert m.max_bw() == 5.0

    def test_to_table_contains_keys(self):
        table = BandwidthMatrix.full(KEYS, 1.0).to_table()
        for key in KEYS:
            assert key in table


class TestSignificantDifferences:
    def test_counts_threshold_exceeders(self):
        a = BandwidthMatrix.full(KEYS, 200.0)
        b = BandwidthMatrix.full(KEYS, 200.0)
        b.set("a", "b", 350.0)  # delta 150 > 100
        b.set("b", "c", 280.0)  # delta 80 < 100
        diffs = a.significant_differences(b)
        assert len(diffs) == 1
        assert diffs[0][:2] == ("a", "b")

    def test_reorders_other_keys(self):
        a = BandwidthMatrix.full(KEYS, 100.0)
        b = BandwidthMatrix.full(("c", "b", "a"), 100.0)
        assert a.significant_differences(b) == []

    @given(st.floats(min_value=0, max_value=1e4))
    def test_self_comparison_never_significant(self, value):
        m = BandwidthMatrix.full(KEYS, value)
        assert m.significant_differences(m) == []


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e5),
        min_size=9,
        max_size=9,
    )
)
def test_min_le_mean_le_max(values):
    m = matrix_from(np.array(values).reshape(3, 3))
    assert m.min_bw() <= m.mean_bw() <= m.max_bw()
