"""Tests for the fluctuation models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.dynamics import FluctuationModel, StaticModel


class TestDeterminism:
    def test_same_seed_same_factors(self):
        a = FluctuationModel(seed=5)
        b = FluctuationModel(seed=5)
        for t in (0.0, 100.0, 12345.6):
            assert a.factor(0, 1, t) == b.factor(0, 1, t)

    def test_different_seeds_differ(self):
        a = FluctuationModel(seed=5)
        b = FluctuationModel(seed=6)
        samples_a = [a.factor(0, 1, t) for t in range(0, 10000, 500)]
        samples_b = [b.factor(0, 1, t) for t in range(0, 10000, 500)]
        assert samples_a != samples_b

    def test_links_are_independent(self):
        m = FluctuationModel(seed=5)
        samples_01 = [m.factor(0, 1, t) for t in range(0, 10000, 500)]
        samples_12 = [m.factor(1, 2, t) for t in range(0, 10000, 500)]
        assert samples_01 != samples_12


class TestShape:
    def test_mean_near_one(self):
        m = FluctuationModel(seed=7)
        samples = [
            m.factor(0, 1, t) for t in np.linspace(0, 7 * 86400, 2000)
        ]
        assert 0.9 < np.mean(samples) < 1.1

    def test_bounded_by_floor_and_ceiling(self):
        m = FluctuationModel(seed=7, sigma=1.0)  # violent weather
        for t in np.linspace(0, 86400, 500):
            f = m.factor(0, 1, t)
            assert m.floor <= f <= m.ceiling

    def test_intra_dc_unaffected(self):
        m = FluctuationModel(seed=7)
        assert m.factor(2, 2, 1234.0) == 1.0

    def test_continuity_within_grid_cell(self):
        # Linear interpolation: nearby times give nearby factors.
        m = FluctuationModel(seed=7)
        f1 = m.factor(0, 1, 1000.0)
        f2 = m.factor(0, 1, 1001.0)
        assert abs(f1 - f2) < 0.05

    def test_weather_persists_within_noise_period(self):
        # [38]: predictable on the scale of minutes.
        m = FluctuationModel(seed=7)
        f0 = m.factor(0, 1, 600.0)
        f1 = m.factor(0, 1, 600.0 + m.noise_period_s / 10)
        assert abs(f0 - f1) < 0.15


class TestSnapshotJitter:
    def test_long_windows_have_no_jitter(self):
        m = FluctuationModel(seed=7)
        assert m.snapshot_jitter(0, 1, 50.0, 20.0) == 1.0

    def test_short_windows_jitter(self):
        m = FluctuationModel(seed=7)
        jitters = {
            m.snapshot_jitter(0, 1, t, 1.0) for t in np.linspace(0, 100, 50)
        }
        assert len(jitters) > 10  # actually varies
        assert all(0.5 <= j <= 1.5 for j in jitters)


class TestStaticModel:
    @given(
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=1e6),
    )
    def test_always_one(self, i, j, t):
        m = StaticModel()
        assert m.factor(i, j, t) == 1.0
        assert m.snapshot_jitter(i, j, t, 1.0) == 1.0
