"""Tests for the TCP throughput model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import tcp


class TestPerConnection:
    def test_fig1_calibration_endpoints(self):
        # US East–US West (~56.6 ms) ≈ 1700 Mbps; US East–AP SE
        # (~221.7 ms) ≈ 121 Mbps.
        assert tcp.per_connection_mbps(56.6) == pytest.approx(1700, rel=0.05)
        assert tcp.per_connection_mbps(221.7) == pytest.approx(121, rel=0.05)

    def test_monotone_decreasing_in_rtt(self):
        rates = [tcp.per_connection_mbps(r) for r in (10, 50, 100, 200, 400)]
        assert rates == sorted(rates, reverse=True)

    def test_capped_at_line_rate(self):
        assert (
            tcp.per_connection_mbps(0.5)
            == tcp.MAX_SINGLE_CONNECTION_MBPS
        )

    def test_nonpositive_rtt_rejected(self):
        with pytest.raises(ValueError):
            tcp.per_connection_mbps(0.0)

    def test_nine_connections_reach_a_gigabit_on_weak_link(self):
        # §1: "the weakest link ... increased up to 1 Gbps using 9
        # connections" (knee at 8 makes 9 slightly sub-linear).
        agg = tcp.aggregate_cap_mbps(221.7, 9)
        assert 850 < agg < 1150


class TestParallelEfficiency:
    def test_linear_up_to_knee(self):
        for k in range(1, 9):
            assert tcp.parallel_efficiency(k) == float(k)

    def test_flat_or_declining_beyond_knee(self):
        assert tcp.parallel_efficiency(9) <= 8.0
        assert tcp.parallel_efficiency(16) < tcp.parallel_efficiency(9)

    def test_never_below_one_connection(self):
        assert tcp.parallel_efficiency(1000) >= 1.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            tcp.parallel_efficiency(-1)

    @given(st.integers(min_value=1, max_value=64))
    def test_efficiency_never_exceeds_count_or_knee(self, k):
        eff = tcp.parallel_efficiency(k)
        assert 1.0 <= eff <= min(k, tcp.DEFAULT_KNEE)


class TestWeights:
    def test_uniform_parallelism_preserves_share_ratios(self):
        # The Fig. 2(b) mechanism: multiplying both pairs' connection
        # counts by 8 leaves their weight ratio unchanged.
        near, far = 30.0, 200.0
        single_ratio = tcp.rtt_weight(near, 1) / tcp.rtt_weight(far, 1)
        uniform_ratio = tcp.rtt_weight(near, 8) / tcp.rtt_weight(far, 8)
        assert single_ratio == pytest.approx(uniform_ratio)

    def test_heterogeneous_counts_rebalance(self):
        near, far = 30.0, 200.0
        before = tcp.rtt_weight(far, 1) / tcp.rtt_weight(near, 8)
        after = tcp.rtt_weight(far, 8) / tcp.rtt_weight(near, 1)
        assert after > before


class TestVmEfficiency:
    def test_no_penalty_below_knee(self):
        assert tcp.vm_efficiency(tcp.DEFAULT_VM_KNEE) == 1.0

    def test_penalty_grows_with_streams(self):
        e = [tcp.vm_efficiency(k) for k in (24, 32, 48, 64)]
        assert e == sorted(e, reverse=True)
        assert e[-1] >= tcp.VM_EFFICIENCY_FLOOR

    def test_floor_holds(self):
        assert tcp.vm_efficiency(10_000) == tcp.VM_EFFICIENCY_FLOOR


class TestRttModel:
    def test_transcontinental_rtt_realistic(self):
        # ~2,400 mi US coast-to-coast → 50–70 ms.
        rtt = tcp.rtt_ms_for_distance(2400)
        assert 45 < rtt < 75

    def test_base_latency_at_zero_distance(self):
        assert tcp.rtt_ms_for_distance(0) == pytest.approx(2.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            tcp.rtt_ms_for_distance(-1)


class TestHelpers:
    def test_loss_rate_grows_with_rtt(self):
        assert tcp.loss_rate_estimate(200) > tcp.loss_rate_estimate(50)

    def test_connections_for_target(self):
        rtt = 221.7  # weak link, ~121 Mbps per connection
        assert tcp.connections_for_target(rtt, 1000.0) == 8  # capped at knee
        assert tcp.connections_for_target(rtt, 240.0) == 2
        assert tcp.connections_for_target(rtt, 1.0) == 1
