"""Tests for network profiles (:mod:`repro.net.profiles`) and the
profile-parameterized TCP model."""

import pytest

from repro.net.dynamics import StaticModel
from repro.net.profiles import (
    EDGE_CLOUD,
    PUBLIC_INTERNET,
    VPC_PEERING,
    all_profiles,
    network_profile,
)
from repro.net.simulator import NetworkSimulator
from repro.net.tcp import DEFAULT_MODEL, TcpModel
from repro.net.topology import Topology

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


class TestRegistry:
    def test_lookup_by_key(self):
        assert network_profile("public-internet") is PUBLIC_INTERNET
        assert network_profile("edge-cloud") is EDGE_CLOUD

    def test_unknown_key_lists_known(self):
        with pytest.raises(KeyError, match="vpc-peering"):
            network_profile("carrier-pigeon")

    def test_all_profiles_vpc_first(self):
        profiles = all_profiles()
        assert profiles[0] is VPC_PEERING
        assert len({p.key for p in profiles}) == len(profiles)


class TestTcpModel:
    def test_default_model_matches_module_constants(self):
        assert VPC_PEERING.tcp == DEFAULT_MODEL

    def test_fig1_calibration_endpoints(self):
        # US East–US West ≈ 1700 Mbps, US East–AP SE ≈ 121 Mbps (Fig. 1).
        tcp = VPC_PEERING.tcp
        assert tcp.per_connection_mbps(56.6) == pytest.approx(1700, rel=0.03)
        assert tcp.per_connection_mbps(221.7) == pytest.approx(121, rel=0.05)

    def test_public_internet_slower_at_every_rtt(self):
        for rtt in (20.0, 60.0, 120.0, 250.0):
            assert (
                PUBLIC_INTERNET.tcp.per_connection_mbps(rtt)
                < VPC_PEERING.tcp.per_connection_mbps(rtt)
            )

    def test_edge_cloud_slowest(self):
        for rtt in (20.0, 120.0):
            assert (
                EDGE_CLOUD.tcp.per_connection_mbps(rtt)
                < PUBLIC_INTERNET.tcp.per_connection_mbps(rtt)
            )

    def test_rtt_grows_with_stretch_and_base(self):
        d = 3000.0
        assert (
            PUBLIC_INTERNET.tcp.rtt_ms_for_distance(d)
            > VPC_PEERING.tcp.rtt_ms_for_distance(d)
        )

    def test_loss_scale_raises_retransmissions(self):
        rtt = 150.0
        assert (
            PUBLIC_INTERNET.tcp.loss_rate_estimate(rtt)
            > VPC_PEERING.tcp.loss_rate_estimate(rtt)
        )

    def test_loss_estimate_capped(self):
        assert EDGE_CLOUD.tcp.loss_rate_estimate(500.0) <= 0.05

    def test_custom_model_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            TcpModel().per_connection_mbps(0.0)
        with pytest.raises(ValueError):
            TcpModel().rtt_ms_for_distance(-1.0)


class TestFluctuationScaling:
    def test_noisier_profiles_scale_sigma(self):
        vpc = VPC_PEERING.fluctuation(seed=3)
        pub = PUBLIC_INTERNET.fluctuation(seed=3)
        edge = EDGE_CLOUD.fluctuation(seed=3)
        assert pub.sigma > vpc.sigma
        assert edge.sigma > pub.sigma

    def test_seed_passes_through(self):
        assert PUBLIC_INTERNET.fluctuation(seed=99).seed == 99


class TestTopologyIntegration:
    def test_default_topology_is_vpc(self):
        topology = Topology.build(TRIAD, "t3.nano")
        assert topology.profile is VPC_PEERING
        assert topology.tcp is VPC_PEERING.tcp

    def test_profile_propagates_through_subset(self):
        topology = Topology.build(TRIAD, "t3.nano", profile=PUBLIC_INTERNET)
        sub = topology.subset(TRIAD[:2])
        assert sub.profile is PUBLIC_INTERNET

    def test_profile_propagates_through_extra_vms(self):
        topology = Topology.build(TRIAD, "t2.medium", profile=EDGE_CLOUD)
        grown = topology.with_extra_vms({"us-east-1": 2})
        assert grown.profile is EDGE_CLOUD
        assert grown.dc("us-east-1").num_vms == 3

    def test_public_internet_has_higher_rtts(self):
        vpc = Topology.build(TRIAD, "t3.nano")
        pub = Topology.build(TRIAD, "t3.nano", profile=PUBLIC_INTERNET)
        for src, dst in (("us-east-1", "us-west-1"),
                         ("us-east-1", "ap-southeast-1")):
            assert pub.rtt_ms(src, dst) > vpc.rtt_ms(src, dst)

    def test_public_internet_has_lower_caps(self):
        vpc = Topology.build(TRIAD, "t3.nano")
        pub = Topology.build(TRIAD, "t3.nano", profile=PUBLIC_INTERNET)
        assert (
            pub.single_connection_cap("us-east-1", "ap-southeast-1")
            < vpc.single_connection_cap("us-east-1", "ap-southeast-1")
        )

    def test_simulator_respects_profile(self):
        """A lone transfer on the public Internet runs measurably slower
        than the same transfer on VPC peering."""

        def completion_time(profile) -> float:
            topology = Topology.build(TRIAD, "t3.nano", profile=profile)
            net = NetworkSimulator(topology, fluctuation=StaticModel())
            net.start_transfer("us-east-1", "ap-southeast-1", 1000.0)
            net.sim.run()
            return net.sim.now

        assert completion_time(PUBLIC_INTERNET) > completion_time(
            VPC_PEERING
        ) * 1.5

    def test_wanify_pipeline_runs_on_any_profile(self):
        """The full predict→optimize pipeline is profile-agnostic."""
        from repro.core.interface import WANify, WANifyConfig

        for profile in all_profiles():
            topology = Topology.build(TRIAD, "t2.medium", profile=profile)
            weather = profile.fluctuation(seed=5)
            wanify = WANify(
                topology,
                weather,
                WANifyConfig(n_training_datasets=6, n_estimators=5),
            )
            wanify.train()
            bw = wanify.predict_runtime_bw(at_time=3600.0)
            plan = wanify.make_plan(bw)
            assert plan.max_bw.min_bw() >= bw.min_bw() * 0.99
