"""Differential tests: vectorized transfer kernel vs the scalar one.

The vectorized kernel (:mod:`repro.net.batch`) must be a pure
performance substitution — same transfers, same completion times, same
service-level outcomes.  These tests run identical seeded workloads
under ``kernel="scalar"`` and ``kernel="vectorized"`` across the six
named weather scenarios and compare:

* per-transfer completion times (≤ 1e-6 s apart — in practice they are
  bit-identical, because the batched arithmetic mirrors the scalar
  update expression exactly);
* full :class:`~repro.runtime.service.ServiceSummary` job outcomes for
  end-to-end service runs.

A separate class covers the numpy-free fallback: requesting the
vectorized kernel without numpy importable must warn once, flip
``kernel_fallback``, and keep running on the scalar path.
"""

import random
import sys

import pytest

from repro.net.topology import Topology
from repro.runtime.scenarios import scenario
from repro.runtime.service import ServiceConfig, PipelineService, default_job_mix

TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")

#: Every named weather scenario plus calm; each gets its own seed so
#: the workloads differ across scenarios too.
SCENARIOS = (
    ("calm", 3),
    ("diurnal", 5),
    ("flash-crowd", 7),
    ("link-degradation", 11),
    ("link-failure", 13),
    ("step-drop", 17),
)

PARITY_S = 1e-6


def _sim(name: str, seed: int, kernel: str):
    from repro.net.simulator import NetworkSimulator

    topology = Topology.build(TRIAD, "t2.medium")
    return NetworkSimulator(
        topology, fluctuation=scenario(name, seed=seed), kernel=kernel
    )


def _run_workload(name: str, seed: int, kernel: str):
    """Run a seeded transfer mix; return transfers in submission order.

    The mix deliberately piles many concurrent transfers onto shared
    pairs (that is the vectorized bucket's hot path) while also
    sprinkling LAN traffic and stragglers submitted mid-run.
    """
    net = _sim(name, seed, kernel)
    rng = random.Random(seed * 1009)
    transfers = []

    def start(src, dst, mbits):
        transfers.append(net.start_transfer(src, dst, mbits))

    for i in range(40):
        src, dst = rng.sample(TRIAD, 2)
        delay = rng.uniform(0.0, 300.0)
        mbits = rng.uniform(50.0, 4000.0)
        net.sim.schedule(delay, lambda s=src, d=dst, m=mbits: start(s, d, m))
    # LAN traffic shares the batched bucket keyed by VectorKernel.LAN.
    for i in range(6):
        delay = rng.uniform(0.0, 200.0)
        dc = rng.choice(TRIAD)
        mbits = rng.uniform(100.0, 2000.0)
        net.sim.schedule(delay, lambda d=dc, m=mbits: start(d, d, m))
    net.sim.run()
    return net, transfers


class TestTransferParity:
    """Per-transfer completion-time parity, scenario by scenario."""

    @pytest.mark.parametrize(("name", "seed"), SCENARIOS)
    def test_completion_times_match(self, name, seed):
        _, scalar = _run_workload(name, seed, "scalar")
        _, vector = _run_workload(name, seed, "vectorized")
        assert len(scalar) == len(vector) == 46
        for s, v in zip(scalar, vector):
            assert (s.src, s.dst, s.size_mbits) == (v.src, v.dst, v.size_mbits)
            assert s.finish_time is not None and v.finish_time is not None
            assert abs(s.finish_time - v.finish_time) <= PARITY_S

    @pytest.mark.parametrize(("name", "seed"), SCENARIOS)
    def test_transferred_payloads_match(self, name, seed):
        _, scalar = _run_workload(name, seed, "scalar")
        _, vector = _run_workload(name, seed, "vectorized")
        for s, v in zip(scalar, vector):
            assert s.transferred_mbits == pytest.approx(
                v.transferred_mbits, abs=1e-6
            )

    def test_event_counts_match(self):
        """Both kernels walk the same event sequence, not just end state."""
        scalar_net, _ = _run_workload("flash-crowd", 7, "scalar")
        vector_net, _ = _run_workload("flash-crowd", 7, "vectorized")
        assert (
            scalar_net.sim.events_processed
            == vector_net.sim.events_processed
        )
        assert scalar_net.sim.now == pytest.approx(
            vector_net.sim.now, abs=PARITY_S
        )

    def test_mid_run_observations_match(self):
        """rate/matrix queries mid-run agree (they hit different code)."""
        scalar = _sim("diurnal", 5, "scalar")
        vector = _sim("diurnal", 5, "vectorized")
        for net in (scalar, vector):
            for _ in range(5):
                net.start_transfer("us-east-1", "us-west-1", 5000.0)
            for _ in range(4):
                net.start_transfer("us-west-1", "ap-southeast-1", 3000.0)
            net.sim.run(until=10.0)
        pair = ("us-east-1", "us-west-1")
        assert scalar.current_rate(*pair) == pytest.approx(
            vector.current_rate(*pair), rel=1e-9
        )
        srates = [t.rate_mbps for t in scalar.active_transfers()]
        vrates = [t.rate_mbps for t in vector.active_transfers()]
        assert srates == pytest.approx(vrates, rel=1e-9)


def _service_config(kernel: str, **overrides) -> ServiceConfig:
    return ServiceConfig(
        regions=TRIAD,
        seed=29,
        online=True,
        max_concurrent=3,
        kernel=kernel,
        n_training_datasets=4,
        n_estimators=4,
        **overrides,
    )


def _serve(name: str, seed: int, kernel: str) -> PipelineService:
    config = _service_config(kernel)
    service = PipelineService.build(
        config, weather=scenario(name, seed=seed)
    )
    for delay, job in default_job_mix(TRIAD, count=4, seed=7, scale_mb=800.0):
        service.submit_at(delay * 0.3, job)
    service.run()
    service.stop()
    return service


class TestServiceParity:
    """End-to-end service outcomes under both kernels."""

    @pytest.mark.parametrize(("name", "seed"), SCENARIOS)
    def test_summary_outcomes_identical(self, name, seed):
        scalar = _serve(name, seed, "scalar")
        vector = _serve(name, seed, "vectorized")
        s, v = scalar.summary(), vector.summary()
        assert s.completed == v.completed == 4
        assert s.slo_attained == v.slo_attained
        assert s.slo_missed == v.slo_missed
        assert s.replans == v.replans
        assert s.makespan_s == pytest.approx(v.makespan_s, abs=PARITY_S)
        assert s.total_jct_s == pytest.approx(v.total_jct_s, abs=1e-5)
        for st, vt in zip(
            scalar.scheduler.completed, vector.scheduler.completed
        ):
            assert st.job.name == vt.job.name
            assert st.finished_s == pytest.approx(vt.finished_s, abs=PARITY_S)

    def test_summary_reports_kernel(self):
        vector = _serve("calm", 3, "vectorized")
        summary = vector.summary()
        assert summary.kernel == "vectorized"
        assert summary.kernel_fallback is False
        assert summary.to_row()["kernel_fallback"] == 0.0


class TestFallback:
    """kernel="vectorized" without numpy degrades to scalar, loudly once."""

    def test_hidden_numpy_warns_and_falls_back(self, triad, monkeypatch):
        from repro.net.simulator import NetworkSimulator

        monkeypatch.setitem(sys.modules, "numpy", None)
        with pytest.warns(RuntimeWarning, match="falling back") as warned:
            net = NetworkSimulator(triad, kernel="vectorized")
        assert len(warned) == 1
        assert net.kernel == "scalar"
        assert net.kernel_fallback is True
        # The degraded simulator still works.
        done = []
        net.start_transfer(
            "us-east-1", "us-west-1", 100.0, on_complete=done.append
        )
        net.sim.run()
        assert len(done) == 1

    def test_fallback_reaches_service_summary(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        config = _service_config("vectorized")
        with pytest.warns(RuntimeWarning, match="falling back"):
            service = PipelineService.build(config)
        summary = service.summary()
        assert summary.kernel == "scalar"
        assert summary.kernel_fallback is True
        assert summary.to_row()["kernel_fallback"] == 1.0

    def test_scalar_kernel_never_touches_numpy(self, triad, monkeypatch):
        from repro.net.simulator import NetworkSimulator

        monkeypatch.setitem(sys.modules, "numpy", None)
        net = NetworkSimulator(triad, kernel="scalar")
        assert net.kernel_fallback is False

    def test_unknown_kernel_rejected(self, triad):
        from repro.net.simulator import NetworkSimulator

        with pytest.raises(ValueError, match="vectorized"):
            NetworkSimulator(triad, kernel="turbo")


class TestDefaultsUnchanged:
    """Default config keeps today's exact scheduler and kernel."""

    def test_default_config_is_scalar_single_queue(self):
        from repro.runtime.scheduler import JobScheduler

        config = ServiceConfig(
            regions=TRIAD, seed=29, n_training_datasets=4, n_estimators=4
        )
        assert config.scheduler_shards == 1
        assert config.kernel == "scalar"
        service = PipelineService.build(config)
        assert type(service.scheduler) is JobScheduler
        assert service.network.kernel == "scalar"
        assert service.network._vec is None
