"""Tests for the weighted max-min allocator, including hypothesis
properties on feasibility and bottleneck tightness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.sharing import PairFlow, allocate

EPS = 1e-6


class TestBasics:
    def test_single_flow_hits_its_cap(self):
        flows = [PairFlow(0, 1, weight=1.0, cap=100.0)]
        assert allocate(flows, [1000, 1000], [1000, 1000]) == [100.0]

    def test_single_flow_limited_by_egress(self):
        flows = [PairFlow(0, 1, weight=1.0, cap=1e9)]
        assert allocate(flows, [50, 1000], [1000, 1000]) == [50.0]

    def test_single_flow_limited_by_ingress(self):
        flows = [PairFlow(0, 1, weight=1.0, cap=1e9)]
        assert allocate(flows, [1000, 1000], [1000, 30]) == [30.0]

    def test_equal_weights_share_equally(self):
        flows = [
            PairFlow(0, 1, weight=1.0, cap=1e9),
            PairFlow(0, 2, weight=1.0, cap=1e9),
        ]
        rates = allocate(flows, [100, 0, 0], [0, 1000, 1000])
        assert rates[0] == pytest.approx(50.0)
        assert rates[1] == pytest.approx(50.0)

    def test_weighted_shares_proportional(self):
        flows = [
            PairFlow(0, 1, weight=3.0, cap=1e9),
            PairFlow(0, 2, weight=1.0, cap=1e9),
        ]
        rates = allocate(flows, [100, 0, 0], [0, 1000, 1000])
        assert rates[0] == pytest.approx(75.0)
        assert rates[1] == pytest.approx(25.0)

    def test_capped_flow_releases_capacity(self):
        flows = [
            PairFlow(0, 1, weight=3.0, cap=10.0),
            PairFlow(0, 2, weight=1.0, cap=1e9),
        ]
        rates = allocate(flows, [100, 0, 0], [0, 1000, 1000])
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_zero_cap_flow_gets_zero(self):
        flows = [PairFlow(0, 1, weight=1.0, cap=0.0)]
        assert allocate(flows, [100, 100], [100, 100]) == [0.0]

    def test_empty_input(self):
        assert allocate([], [100], [100]) == []

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            PairFlow(0, 1, weight=0.0, cap=1.0)

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            PairFlow(0, 1, weight=1.0, cap=-1.0)

    def test_cross_traffic_uses_distinct_resources(self):
        flows = [
            PairFlow(0, 1, weight=1.0, cap=1e9),
            PairFlow(2, 3, weight=1.0, cap=1e9),
        ]
        rates = allocate(
            flows, [100, 0, 200, 0], [0, 100, 0, 200]
        )
        assert rates[0] == pytest.approx(100.0)
        assert rates[1] == pytest.approx(200.0)


# -- Hypothesis properties --------------------------------------------------

N_DCS = 4

flow_strategy = st.builds(
    PairFlow,
    src=st.integers(min_value=0, max_value=N_DCS - 1),
    dst=st.integers(min_value=0, max_value=N_DCS - 1),
    weight=st.floats(min_value=0.01, max_value=100.0),
    cap=st.floats(min_value=0.0, max_value=5000.0),
)

caps_strategy = st.lists(
    st.floats(min_value=1.0, max_value=5000.0),
    min_size=N_DCS,
    max_size=N_DCS,
)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(flow_strategy, min_size=1, max_size=12),
    caps_strategy,
    caps_strategy,
)
def test_allocation_is_feasible(flows, egress, ingress):
    """No flow exceeds its cap; no resource is oversubscribed."""
    rates = allocate(flows, egress, ingress)
    assert len(rates) == len(flows)
    used_egress = [0.0] * N_DCS
    used_ingress = [0.0] * N_DCS
    for flow, rate in zip(flows, rates):
        assert -EPS <= rate <= flow.cap + EPS
        used_egress[flow.src] += rate
        used_ingress[flow.dst] += rate
    for i in range(N_DCS):
        assert used_egress[i] <= egress[i] * (1 + 1e-6) + EPS
        assert used_ingress[i] <= ingress[i] * (1 + 1e-6) + EPS


@settings(max_examples=80, deadline=None)
@given(
    st.lists(flow_strategy, min_size=1, max_size=12),
    caps_strategy,
    caps_strategy,
)
def test_every_flow_is_bottlenecked(flows, egress, ingress):
    """Pareto efficiency: each flow is stopped by its cap or by a
    saturated resource (no free capacity left on its path)."""
    rates = allocate(flows, egress, ingress)
    used_egress = [0.0] * N_DCS
    used_ingress = [0.0] * N_DCS
    for flow, rate in zip(flows, rates):
        used_egress[flow.src] += rate
        used_ingress[flow.dst] += rate
    tol = 1e-3
    for flow, rate in zip(flows, rates):
        at_cap = rate >= flow.cap - tol
        egress_full = used_egress[flow.src] >= egress[flow.src] - tol
        ingress_full = used_ingress[flow.dst] >= ingress[flow.dst] - tol
        assert at_cap or egress_full or ingress_full


@settings(max_examples=60, deadline=None)
@given(
    st.lists(flow_strategy, min_size=2, max_size=10),
    caps_strategy,
    caps_strategy,
)
def test_allocation_deterministic(flows, egress, ingress):
    assert allocate(flows, egress, ingress) == allocate(
        flows, egress, ingress
    )


@st.composite
def flow_sets(draw, max_dcs=4, max_flows=8):
    n_dcs = draw(st.integers(min_value=2, max_value=max_dcs))
    n_flows = draw(st.integers(min_value=1, max_value=max_flows))
    caps = st.floats(min_value=10.0, max_value=5000.0)
    weights = st.floats(min_value=0.01, max_value=100.0)
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(min_value=0, max_value=n_dcs - 1))
        dst = draw(
            st.integers(min_value=0, max_value=n_dcs - 1).filter(
                lambda d, s=src: d != s
            )
        )
        flows.append(
            PairFlow(src, dst, weight=draw(weights), cap=draw(caps))
        )
    egress = [draw(caps) for _ in range(n_dcs)]
    ingress = [draw(caps) for _ in range(n_dcs)]
    return flows, egress, ingress


@st.composite
def single_egress_flows(draw, max_flows=8):
    """Flows all leaving DC 0 toward ample-ingress destinations — one
    shared bottleneck."""
    n_flows = draw(st.integers(min_value=2, max_value=max_flows))
    caps = st.floats(min_value=10.0, max_value=5000.0)
    weights = st.floats(min_value=0.01, max_value=100.0)
    flows = [
        PairFlow(
            0,
            draw(st.integers(min_value=1, max_value=4)),
            weight=draw(weights),
            cap=draw(caps),
        )
        for _ in range(n_flows)
    ]
    egress = [draw(caps)] + [1e9] * 4
    ingress = [1e9] * 5
    return flows, egress, ingress


@settings(max_examples=60, deadline=None)
@given(data=single_egress_flows())
def test_new_flow_on_shared_nic_never_raises_existing_rates(data):
    """On a single shared bottleneck, contention only takes, never
    gives — the §2.2 'race condition' in property form.

    Deliberately single-resource: across *multiple* resources max-min
    is famously non-monotone (a new flow can freeze a competitor early
    and free capacity the competitor was holding elsewhere); hypothesis
    finds such counterexamples within seconds if this property is
    stated globally.
    """
    flows, egress, ingress = data
    before = allocate(flows[:-1], egress, ingress)
    after = allocate(flows, egress, ingress)
    for old, new in zip(before, after):
        assert new <= old + 1e-6


@settings(max_examples=60, deadline=None)
@given(data=flow_sets())
def test_allocation_is_deterministic(data):
    flows, egress, ingress = data
    first = allocate(flows, egress, ingress)
    second = allocate(flows, egress, ingress)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(data=flow_sets(), scale=st.floats(min_value=0.1, max_value=10.0))
def test_weights_are_scale_invariant(data, scale):
    """Multiplying every weight by a constant leaves the allocation
    unchanged — only relative weights matter."""
    flows, egress, ingress = data
    scaled = [
        PairFlow(f.src, f.dst, weight=f.weight * scale, cap=f.cap)
        for f in flows
    ]
    base = allocate(flows, egress, ingress)
    rescaled = allocate(scaled, egress, ingress)
    for a, b in zip(base, rescaled):
        assert a == pytest.approx(b, rel=1e-6, abs=1e-6)
