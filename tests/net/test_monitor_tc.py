"""Tests for WanMonitor and TrafficController."""

import pytest

from repro.net.monitor import WanMonitor
from repro.net.simulator import NetworkSimulator
from repro.net.traffic_control import TrafficController


class TestWanMonitor:
    def test_samples_outgoing_rates(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.start_transfer("us-east-1", "us-west-1", 1e6)
        net.sim.run(until=3.5)
        assert len(monitor.samples) == 3
        assert monitor.latest_rate("us-west-1") > 0
        assert monitor.latest_rate("ap-southeast-1") == 0.0

    def test_latest_empty_before_first_tick(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=5.0)
        assert monitor.latest() == {}
        assert monitor.latest_rate("us-west-1") == 0.0

    def test_window_volume_tracks_increments(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.start_transfer("us-east-1", "us-west-1", 800.0)  # 100 MB
        net.sim.run()
        first = monitor.window_volume_mb("us-west-1")
        assert first == pytest.approx(100.0, rel=0.02)
        # Second read with no new traffic → ~0.
        assert monitor.window_volume_mb("us-west-1") == pytest.approx(
            0.0, abs=1e-6
        )

    def test_history_bounded(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0, history=5)
        net.sim.run(until=20.0)
        assert len(monitor.samples) == 5

    def test_stop_ends_sampling(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.sim.run(until=2.5)
        monitor.stop()
        net.sim.run(until=10.0)
        assert len(monitor.samples) == 2

    def test_history_ring_buffer_bounds_at_default_512(self, triad, calm):
        """The default history=512 holds exactly the last 512 samples."""
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        assert monitor.history_limit == 512
        net.sim.run(until=600.0)
        assert len(monitor.samples) == 512
        # Oldest retained tick is 600 - 512 + 1 = 89.
        assert monitor.samples[0].time == pytest.approx(89.0)
        assert monitor.samples[-1].time == pytest.approx(600.0)

    def test_window_volume_accumulates_and_resets_per_destination(
        self, triad, calm
    ):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.start_transfer("us-east-1", "us-west-1", 800.0)  # 100 MB
        net.start_transfer("us-east-1", "ap-southeast-1", 80.0)  # 10 MB
        net.sim.run()
        # Each destination accumulates independently…
        assert monitor.window_volume_mb("us-west-1") == pytest.approx(
            100.0, rel=0.02
        )
        assert monitor.window_volume_mb("ap-southeast-1") == pytest.approx(
            10.0, rel=0.02
        )
        # …and each read resets only its own anchor.
        net.start_transfer("us-east-1", "us-west-1", 80.0)
        net.sim.run()
        assert monitor.window_volume_mb("us-west-1") == pytest.approx(
            10.0, rel=0.02
        )
        assert monitor.window_volume_mb("ap-southeast-1") == pytest.approx(
            0.0, abs=1e-6
        )

    def test_rate_percentile_empty_history(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        assert monitor.rate_percentile("us-west-1", 95.0) == 0.0

    def test_rate_percentile_single_sample(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.start_transfer("us-east-1", "us-west-1", 1e6)
        net.sim.run(until=1.0)
        only = monitor.latest_rate("us-west-1")
        assert only > 0
        for p in (0.0, 50.0, 100.0):
            assert monitor.rate_percentile("us-west-1", p) == pytest.approx(
                only
            )

    def test_rate_percentile_all_equal_rates(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.start_transfer("us-east-1", "us-west-1", 1e6)
        net.sim.run(until=20.0)
        rates = {
            s.rates_mbps["us-west-1"]
            for s in monitor.samples
        }
        assert len(rates) == 1  # calm weather → constant rate
        assert monitor.rate_percentile("us-west-1", 50.0) == pytest.approx(
            rates.pop()
        )

    def test_rate_percentile_ignores_idle_samples(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.sim.run(until=10.0)  # idle ticks only
        net.start_transfer("us-east-1", "us-west-1", 1e5)
        net.sim.run(until=12.0)
        busy = monitor.latest_rate("us-west-1")
        # Median over *active* samples is the busy rate, not ~0.
        assert monitor.rate_percentile("us-west-1", 50.0) == pytest.approx(
            busy
        )

    def test_rate_percentile_validates_range(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        with pytest.raises(ValueError):
            monitor.rate_percentile("us-west-1", -1.0)

    def test_on_sample_publishes_every_tick(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        published = []
        monitor = WanMonitor(
            net,
            "us-east-1",
            interval_s=1.0,
            on_sample=lambda dc, t, rates: published.append((dc, t, rates)),
        )
        net.start_transfer("us-east-1", "us-west-1", 1e5)
        net.sim.run(until=3.0)
        assert len(published) == len(monitor.samples) == 3
        dc, t, rates = published[-1]
        assert dc == "us-east-1"
        assert t == pytest.approx(3.0)
        assert rates["us-west-1"] == monitor.latest_rate("us-west-1")


class TestTrafficController:
    def test_limit_roundtrip(self):
        tc = TrafficController()
        tc.set_limit("a", "b", 100.0)
        assert tc.limit("a", "b") == 100.0
        assert tc.limit("b", "a") == float("inf")

    def test_clear_limit(self):
        tc = TrafficController()
        tc.set_limit("a", "b", 100.0)
        tc.clear_limit("a", "b")
        assert tc.limit("a", "b") == float("inf")

    def test_clear_all(self):
        tc = TrafficController()
        tc.set_limit("a", "b", 100.0)
        tc.set_limit("b", "c", 50.0)
        tc.clear_all()
        assert tc.limits() == {}

    def test_invalid_limit_rejected(self):
        tc = TrafficController()
        with pytest.raises(ValueError):
            tc.set_limit("a", "b", 0.0)

    def test_change_notification(self):
        tc = TrafficController()
        calls = []
        tc.bind(lambda: calls.append(1))
        tc.set_limit("a", "b", 10.0)
        tc.clear_limit("a", "b")
        tc.clear_limit("a", "b")  # absent → no notify
        assert len(calls) == 2
