"""Tests for WanMonitor and TrafficController."""

import pytest

from repro.net.monitor import WanMonitor
from repro.net.simulator import NetworkSimulator
from repro.net.traffic_control import TrafficController


class TestWanMonitor:
    def test_samples_outgoing_rates(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.start_transfer("us-east-1", "us-west-1", 1e6)
        net.sim.run(until=3.5)
        assert len(monitor.samples) == 3
        assert monitor.latest_rate("us-west-1") > 0
        assert monitor.latest_rate("ap-southeast-1") == 0.0

    def test_latest_empty_before_first_tick(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=5.0)
        assert monitor.latest() == {}
        assert monitor.latest_rate("us-west-1") == 0.0

    def test_window_volume_tracks_increments(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.start_transfer("us-east-1", "us-west-1", 800.0)  # 100 MB
        net.sim.run()
        first = monitor.window_volume_mb("us-west-1")
        assert first == pytest.approx(100.0, rel=0.02)
        # Second read with no new traffic → ~0.
        assert monitor.window_volume_mb("us-west-1") == pytest.approx(
            0.0, abs=1e-6
        )

    def test_history_bounded(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0, history=5)
        net.sim.run(until=20.0)
        assert len(monitor.samples) == 5

    def test_stop_ends_sampling(self, triad, calm):
        net = NetworkSimulator(triad, fluctuation=calm)
        monitor = WanMonitor(net, "us-east-1", interval_s=1.0)
        net.sim.run(until=2.5)
        monitor.stop()
        net.sim.run(until=10.0)
        assert len(monitor.samples) == 2


class TestTrafficController:
    def test_limit_roundtrip(self):
        tc = TrafficController()
        tc.set_limit("a", "b", 100.0)
        assert tc.limit("a", "b") == 100.0
        assert tc.limit("b", "a") == float("inf")

    def test_clear_limit(self):
        tc = TrafficController()
        tc.set_limit("a", "b", 100.0)
        tc.clear_limit("a", "b")
        assert tc.limit("a", "b") == float("inf")

    def test_clear_all(self):
        tc = TrafficController()
        tc.set_limit("a", "b", 100.0)
        tc.set_limit("b", "c", 50.0)
        tc.clear_all()
        assert tc.limits() == {}

    def test_invalid_limit_rejected(self):
        tc = TrafficController()
        with pytest.raises(ValueError):
            tc.set_limit("a", "b", 0.0)

    def test_change_notification(self):
        tc = TrafficController()
        calls = []
        tc.bind(lambda: calls.append(1))
        tc.set_limit("a", "b", 10.0)
        tc.clear_limit("a", "b")
        tc.clear_limit("a", "b")  # absent → no notify
        assert len(calls) == 2
