"""Tests for the flow-level network simulator."""

import pytest

from repro.net.simulator import LAN_MBPS, NetworkSimulator, Transfer


def make_sim(topology, fluctuation=None) -> NetworkSimulator:
    return NetworkSimulator(topology, fluctuation=fluctuation)


class TestTransfers:
    def test_lone_transfer_runs_at_single_connection_cap(self, triad, calm):
        net = make_sim(triad, calm)
        done = []
        cap = triad.single_connection_cap("us-east-1", "ap-southeast-1")
        net.start_transfer(
            "us-east-1", "ap-southeast-1", size_mbits=cap * 10,
            on_complete=done.append,
        )
        net.sim.run()
        assert len(done) == 1
        assert net.sim.now == pytest.approx(10.0, rel=0.01)

    def test_zero_size_transfer_completes_immediately(self, triad, calm):
        net = make_sim(triad, calm)
        done = []
        net.start_transfer(
            "us-east-1", "us-west-1", 0.0, on_complete=done.append
        )
        net.sim.run()
        assert len(done) == 1

    def test_intra_dc_transfer_uses_lan(self, triad, calm):
        net = make_sim(triad, calm)
        net.start_transfer("us-east-1", "us-east-1", LAN_MBPS * 5)
        net.sim.run()
        assert net.sim.now == pytest.approx(5.0, rel=0.01)
        # LAN traffic is not WAN traffic.
        assert net.total_wan_mbits() == 0.0

    def test_cancel_prevents_completion(self, triad, calm):
        net = make_sim(triad, calm)
        done = []
        t = net.start_transfer(
            "us-east-1", "us-west-1", 1e9, on_complete=done.append
        )
        net.sim.run(until=1.0)
        net.cancel_transfer(t)
        net.sim.run(until=1e4)
        assert done == []
        assert t.cancelled

    def test_unknown_dc_rejected(self, triad):
        net = make_sim(triad)
        with pytest.raises(KeyError):
            net.start_transfer("us-east-1", "nowhere-1", 100.0)

    def test_negative_size_rejected(self, triad):
        net = make_sim(triad)
        with pytest.raises(ValueError):
            net.start_transfer("us-east-1", "us-west-1", -1.0)

    def test_transfers_share_pair_rate_equally(self, triad, calm):
        net = make_sim(triad, calm)
        a = net.start_transfer("us-east-1", "ap-southeast-1", 1e6)
        b = net.start_transfer("us-east-1", "ap-southeast-1", 1e6)
        net.sim.run(until=1.0)
        assert a.rate_mbps == pytest.approx(b.rate_mbps)

    def test_contention_slows_completion(self, triad_workers, calm):
        # A strong flow sharing the egress delays the weak flow versus
        # running alone.  Worker VMs (1200 Mbps egress) are needed here:
        # the pair demands sum to ~1820 Mbps, which saturates a t2.medium
        # NIC but not a burst t3.nano probe's.
        def weak_completion(with_contention: bool) -> float:
            net = make_sim(triad_workers, calm)
            done = {}
            net.start_transfer(
                "us-east-1", "ap-southeast-1", 2000.0,
                on_complete=lambda t: done.setdefault("weak", net.sim.now),
            )
            if with_contention:
                net.start_transfer("us-east-1", "us-west-1", 1e5)
            net.sim.run(until=1e4)
            return done["weak"]

        assert weak_completion(True) > weak_completion(False)


class TestConnections:
    def test_more_connections_raise_weak_pair_rate(self, triad, calm):
        def rate(k: int) -> float:
            net = make_sim(triad, calm)
            net.set_connections("us-east-1", "ap-southeast-1", k)
            net.start_transfer("us-east-1", "ap-southeast-1", 1e9)
            net.start_transfer("us-east-1", "us-west-1", 1e9)
            net.sim.run(until=1.0)
            return net.current_rate("us-east-1", "ap-southeast-1")

        assert rate(8) > rate(1) * 2

    def test_connection_count_validation(self, triad):
        net = make_sim(triad)
        with pytest.raises(ValueError):
            net.set_connections("us-east-1", "us-west-1", 0)

    def test_plan_roundtrip(self, triad):
        net = make_sim(triad)
        plan = net.connection_plan()
        plan.set("us-east-1", "ap-southeast-1", 6)
        net.set_connection_plan(plan)
        assert net.connections("us-east-1", "ap-southeast-1") == 6
        assert net.connections("us-east-1", "us-west-1") == 1


class TestThrottling:
    def test_tc_limit_caps_rate(self, triad, calm):
        net = make_sim(triad, calm)
        net.tc.set_limit("us-east-1", "us-west-1", 100.0)
        net.start_transfer("us-east-1", "us-west-1", 1e6)
        net.sim.run(until=1.0)
        assert net.current_rate("us-east-1", "us-west-1") <= 100.0 + 1e-6

    def test_clearing_limit_restores_rate(self, triad, calm):
        net = make_sim(triad, calm)
        net.tc.set_limit("us-east-1", "us-west-1", 100.0)
        net.start_transfer("us-east-1", "us-west-1", 1e7)
        net.sim.run(until=1.0)
        capped = net.current_rate("us-east-1", "us-west-1")
        net.tc.clear_limit("us-east-1", "us-west-1")
        net.sim.run(until=2.0)
        assert net.current_rate("us-east-1", "us-west-1") > capped * 2


class TestObservation:
    def test_pair_statistics_accumulate(self, triad, calm):
        net = make_sim(triad, calm)
        net.start_transfer("us-east-1", "us-west-1", 1700.0)
        net.sim.run()
        stats = net.pair_statistics()[("us-east-1", "us-west-1")]
        assert stats.mbits == pytest.approx(1700.0, rel=0.01)
        assert stats.avg_rate_mbps > 0

    def test_reset_statistics(self, triad, calm):
        net = make_sim(triad, calm)
        net.start_transfer("us-east-1", "us-west-1", 1700.0)
        net.sim.run()
        net.reset_statistics()
        assert net.total_wan_mbits() == 0.0

    def test_egress_accounting_by_source(self, triad, calm):
        net = make_sim(triad, calm)
        net.start_transfer("us-east-1", "us-west-1", 800.0)
        net.start_transfer("us-west-1", "us-east-1", 400.0)
        net.sim.run()
        egress = net.egress_mbits_by_dc()
        assert egress["us-east-1"] == pytest.approx(800.0, rel=0.01)
        assert egress["us-west-1"] == pytest.approx(400.0, rel=0.01)

    def test_min_observed_ignores_trickles(self, triad, calm):
        net = make_sim(triad, calm)
        net.start_transfer("us-east-1", "us-west-1", 1e5)
        net.start_transfer("us-east-1", "ap-southeast-1", 1.0)  # trickle
        net.sim.run()
        min_bw = net.min_observed_bw()
        stats = net.pair_statistics()
        trickle = stats[("us-east-1", "ap-southeast-1")].avg_rate_mbps
        assert min_bw > trickle

    def test_fluctuation_changes_rates_over_time(self, triad, weather):
        net = make_sim(triad, weather)
        net.start_transfer("us-east-1", "ap-southeast-1", 1e9)
        rates = []
        for t in (1.0, 400.0, 800.0, 1200.0):
            net.sim.run(until=t)
            rates.append(net.current_rate("us-east-1", "ap-southeast-1"))
        assert len(set(round(r, 1) for r in rates)) > 1
