"""Tests for Topology and DataCenter."""

import pytest

from repro.cloud.regions import PAPER_REGIONS
from repro.net.topology import Topology


class TestBuild:
    def test_build_with_uniform_vms(self, full_topology):
        assert full_topology.n == 8
        assert all(dc.num_vms == 1 for dc in full_topology.dcs)

    def test_build_with_per_dc_vms(self):
        topo = Topology.build(
            ("us-east-1", "eu-west-1"), "t2.medium", {"us-east-1": 3}
        )
        assert topo.dc("us-east-1").num_vms == 3
        assert topo.dc("eu-west-1").num_vms == 1

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Topology.build(("us-east-1", "us-east-1"))

    def test_unknown_key_raises(self, triad):
        with pytest.raises(KeyError):
            triad.index("nowhere-1")


class TestDerivedMatrices:
    def test_rtt_symmetric(self, triad):
        assert triad.rtt_ms("us-east-1", "ap-southeast-1") == pytest.approx(
            triad.rtt_ms("ap-southeast-1", "us-east-1")
        )

    def test_rtt_ordering_follows_distance(self, triad):
        assert triad.rtt_ms("us-east-1", "us-west-1") < triad.rtt_ms(
            "us-east-1", "ap-southeast-1"
        )

    def test_intra_dc_rtt_sub_millisecond(self, triad):
        assert triad.rtt_ms("us-east-1", "us-east-1") < 1.0

    def test_distance_matches_regions(self, triad):
        d = triad.distance_miles("us-east-1", "us-west-1")
        assert 2300 < d < 2500

    def test_single_connection_cap_fig1(self, triad):
        # t3.nano probes reproduce the Fig. 1 endpoints.
        strong = triad.single_connection_cap("us-east-1", "us-west-1")
        weak = triad.single_connection_cap("us-east-1", "ap-southeast-1")
        assert strong == pytest.approx(1700, rel=0.05)
        assert weak == pytest.approx(121, rel=0.05)


class TestCapacities:
    def test_association_sums_vm_caps(self):
        one = Topology.build(("us-east-1", "eu-west-1"), "t2.medium")
        three = Topology.build(
            ("us-east-1", "eu-west-1"), "t2.medium", {"us-east-1": 3}
        )
        assert three.dc("us-east-1").egress_cap_mbps == pytest.approx(
            3 * one.dc("us-east-1").egress_cap_mbps
        )

    def test_with_extra_vms(self, full_topology):
        grown = full_topology.with_extra_vms({"us-east-1": 1})
        assert grown.dc("us-east-1").num_vms == 2
        assert grown.dc("eu-west-1").num_vms == 1
        # Original untouched.
        assert full_topology.dc("us-east-1").num_vms == 1

    def test_total_vcpus(self, full_topology):
        assert full_topology.dc("us-east-1").total_vcpus == 2


class TestSubset:
    def test_subset_order_preserved(self, full_topology):
        sub = full_topology.subset(("sa-east-1", "us-east-1"))
        assert sub.keys == ("sa-east-1", "us-east-1")

    def test_subset_preserves_rtt(self, full_topology):
        sub = full_topology.subset(("us-east-1", "ap-southeast-1"))
        assert sub.rtt_ms("us-east-1", "ap-southeast-1") == pytest.approx(
            full_topology.rtt_ms("us-east-1", "ap-southeast-1")
        )

    def test_all_paper_regions_buildable(self):
        topo = Topology.build(PAPER_REGIONS)
        assert topo.keys == PAPER_REGIONS
