"""The deprecated spellings must warn and delegate to the new API.

Covers the PR-2 migration contract: ``WANify`` / ``WANifyService`` and
the legacy method names (``predict_runtime_bw``, ``make_plan``,
``snapshot_report``) stay working as thin shims over
:class:`repro.pipeline.Pipeline` / ``PipelineService`` while emitting
``DeprecationWarning`` — the migration table lives in docs/API.md.
"""

import warnings

import numpy as np
import pytest

from repro.core.interface import WANify, WANifyConfig
from repro.net.dynamics import FluctuationModel
from repro.net.topology import Topology
from repro.pipeline import Pipeline, PipelineConfig, ServiceConfig
from repro.runtime.service import PipelineService, WANifyService

REGIONS = ("us-east-1", "us-west-1")
FAST = PipelineConfig(n_training_datasets=3, n_estimators=2, seed=6)


def topology():
    return Topology.build(REGIONS, "t2.medium")


@pytest.fixture(scope="module")
def legacy():
    """One trained legacy facade (construction warning swallowed)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        facade = WANify(topology(), FluctuationModel(seed=6), FAST)
    facade.train()
    return facade


class TestWANifyShim:
    def test_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="WANify is deprecated"):
            WANify(topology(), FluctuationModel(seed=6), FAST)

    def test_is_a_pipeline(self, legacy):
        assert isinstance(legacy, Pipeline)

    def test_wanify_config_is_a_pipeline_config(self):
        assert issubclass(WANifyConfig, PipelineConfig)

    def test_snapshot_report_delegates_to_gauge(self, legacy):
        report = legacy.snapshot_report(at_time=100.0)
        assert report.mode == "snapshot"
        assert report.time == 100.0

    def test_predict_runtime_bw_delegates_to_predict(self, legacy):
        report = legacy.snapshot_report(at_time=100.0)
        via_legacy = legacy.predict_runtime_bw(report=report)
        via_new = legacy.predict(report=report)
        assert np.allclose(
            via_legacy.off_diagonal(), via_new.off_diagonal()
        )

    def test_make_plan_delegates_to_plan(self, legacy):
        bw = legacy.predict_runtime_bw(at_time=100.0)
        legacy_plan = legacy.make_plan(bw)
        new_plan = legacy.plan(bw)
        assert legacy_plan.max_bw.min_bw() == pytest.approx(
            new_plan.max_bw.min_bw()
        )

    def test_legacy_fluctuation_and_analyzer_names(self, legacy):
        assert legacy.fluctuation is legacy.weather
        assert legacy.analyzer is legacy.predictor.analyzer


class TestWANifyServiceShim:
    def test_construction_warns_and_delegates(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            reference = PipelineService.build(
                ServiceConfig(
                    regions=REGIONS,
                    n_training_datasets=3,
                    n_estimators=2,
                    seed=6,
                )
            )
        reference.stop()
        with pytest.warns(
            DeprecationWarning, match="WANifyService is deprecated"
        ):
            shim = WANifyService(
                reference.cluster, reference.pipeline, reference.config
            )
        assert isinstance(shim, PipelineService)
        # The legacy accessors still read through to the pipeline.
        assert shim.wanify is reference.pipeline

    def test_lazy_top_level_export_is_the_shim(self):
        import repro

        assert repro.WANifyService is WANifyService
