#!/usr/bin/env python3
"""Run WANify across WAN environments: VPC peering vs public Internet
vs edge-cloud.

The paper's testbed uses VPC peering because it outperforms the public
Internet (§5.1); §2.1 claims the framework handles "diverse private and
public networks, including edge-cloud and VPC".  This example runs the
same TeraSort job on the same 3-DC cluster under each profile, first
with vanilla single-connection Spark and then with the full WANify-TC
deployment, and prints the latency/min-BW comparison.

The shape to expect: job latency grows as the network degrades from VPC
to edge, while WANify's *relative* gain grows — the weaker the
single-connection floor, the more headroom parallel connections recover.

Run:  python examples/network_profiles.py
"""

from repro.pipeline import Pipeline, PipelineConfig
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.systems.vanilla import LocalityPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.net.profiles import all_profiles
from repro.net.topology import Topology

REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")
INPUT_GB = 8.0


def run_profile(profile) -> dict:
    topology = Topology.build(REGIONS, "t2.medium", profile=profile)
    weather = profile.fluctuation(seed=42)
    pipeline = Pipeline(
        topology, weather, PipelineConfig(n_training_datasets=25, n_estimators=20)
    )
    pipeline.train()

    per_dc_mb = INPUT_GB * 1024.0 / len(REGIONS)
    job = terasort_job({dc: per_dc_mb for dc in topology.keys})
    policy = LocalityPolicy()

    results = {}
    for variant in ("single", "wanify-tc"):
        cluster = GeoCluster.from_topology(topology, fluctuation=weather)
        engine = GdaEngine(cluster)
        predicted = pipeline.predict(at_time=2 * 24 * 3600.0)
        deployment = pipeline.deployment(variant, predicted)
        outcome = engine.run(job, policy, predicted, deployment)
        results[variant] = outcome
    return results


def main() -> None:
    print(f"TeraSort {INPUT_GB:.0f} GB on {len(REGIONS)} DCs, per profile\n")
    header = (
        f"{'profile':<17}{'vanilla (min)':>14}{'wanify-tc (min)':>16}"
        f"{'gain':>7}{'min BW x':>10}"
    )
    print(header)
    for profile in all_profiles():
        results = run_profile(profile)
        vanilla = results["single"]
        wanify_tc = results["wanify-tc"]
        gain = 100.0 * (1.0 - wanify_tc.jct_s / vanilla.jct_s)
        bw_boost = wanify_tc.min_bw_mbps / max(vanilla.min_bw_mbps, 1e-9)
        print(
            f"{profile.key:<17}"
            f"{vanilla.jct_minutes:>13.1f} "
            f"{wanify_tc.jct_minutes:>15.1f} "
            f"{gain:>5.0f}% "
            f"{bw_boost:>8.1f}x"
        )
    print(
        "\nWANify's latency gain grows as the single-connection floor"
        " weakens\n(VPC → public Internet → edge-cloud)."
    )


if __name__ == "__main__":
    main()
