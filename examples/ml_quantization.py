#!/usr/bin/env python3
"""Geo-distributed ML with gradient quantization (the Fig. 4 scenario).

Trains an MNIST-scale model for 10 epochs on the 8-DC cluster under
five variants — NoQ, SAGQ (static BWs), SimQ (simultaneous BWs), PredQ
(WANify-predicted BWs), and WQ (predicted BWs + WANify-TC transfers) —
and prints training time, cost, and the cluster's minimum BW.

Run:  python examples/ml_quantization.py
"""

from repro.cloud.regions import PAPER_REGIONS
from repro.pipeline import Pipeline, PipelineConfig
from repro.gda.engine.cluster import GeoCluster
from repro.gda.systems.sagq import MLModelSpec, SagqTrainer
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import measure_independent, stable_runtime
from repro.net.topology import Topology

QUERY_TIME = 2 * 24 * 3600.0


def make_trainer(weather) -> SagqTrainer:
    cluster = GeoCluster.build(
        PAPER_REGIONS, "t2.medium",
        fluctuation=weather, time_offset=QUERY_TIME,
    )
    return SagqTrainer(cluster, MLModelSpec(), epochs=10)


def main() -> None:
    weather = FluctuationModel(seed=42)
    topology = Topology.build(PAPER_REGIONS, "t2.medium")
    pipeline = Pipeline(
        topology,
        weather,
        PipelineConfig(n_training_datasets=40, n_estimators=30),
    )
    print("training WANify...")
    pipeline.train()

    static = measure_independent(topology, weather, at_time=0.0).matrix
    simultaneous = stable_runtime(
        topology, weather, at_time=QUERY_TIME
    ).matrix
    predicted = pipeline.predict(at_time=QUERY_TIME)

    runs = [
        ("NoQ", None, None),
        ("SAGQ", static, None),
        ("SimQ", simultaneous, None),
        ("PredQ", predicted, None),
        ("WQ", predicted, pipeline.deployment("wanify-tc", bw=predicted)),
    ]
    print(
        f"\n{'variant':>7} {'train (min)':>12} {'network (min)':>14} "
        f"{'cost ($)':>9} {'min BW':>8} {'accuracy':>9}"
    )
    for name, bw, deployment in runs:
        result = make_trainer(weather).run(
            name, decision_bw=bw, deployment=deployment
        )
        print(
            f"{name:>7} {result.total_minutes:>12.1f} "
            f"{result.network_s / 60:>14.1f} "
            f"{result.cost.total_usd:>9.2f} {result.min_bw_mbps:>8.1f} "
            f"{result.test_accuracy:>8.0%}"
        )

    print(
        "\nExpected shape (paper Fig. 4): quantization helps (SAGQ), "
        "runtime-accurate quantization helps more (SimQ/PredQ), and "
        "WANify's transfers boost the minimum BW (WQ) — all at the same "
        "~97% test accuracy."
    )


if __name__ == "__main__":
    main()
