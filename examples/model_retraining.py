#!/usr/bin/env python3
"""Model staleness and warm-start retraining (§3.3.4).

WANify "tracks prediction error by intermittently comparing the
predicted BWs with actual runtime values"; when errors exceed a
threshold, a flag signals retraining, and the model is extended with
the additionally collected datasets using warm start.

This example stages the lifecycle:

1. train the prediction model on a t2.medium fleet,
2. show it stays accurate under network weather it has never seen
   (snapshots generalize across fluctuation — no false alarms),
3. upgrade the fleet to m5.large (a 4× NIC jump: the snapshot→runtime
   mapping itself changes), watch the error tracker latch the flag,
4. warm-start retrain on freshly collected data and verify the error
   falls back under the threshold — note the sizing lesson: the stale
   trees stay in the ensemble, so the fresh ones must outnumber them
   before the flag clears,
5. compare with a cold retrain on the merged dataset, which the severe
   drift actually deserves.

Run:  python examples/model_retraining.py
"""

from repro.core.dataset import build_training_set
from repro.core.predictor import WanPredictionModel
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import snapshot, stable_runtime
from repro.net.topology import Topology

REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")


def track(model, topology, weather, times, label) -> None:
    for at in times:
        snap = snapshot(topology, weather, at_time=at)
        predicted = model.predict_matrix(snap, topology)
        actual = stable_runtime(topology, weather, at_time=at).matrix
        err = model.track_error(predicted, actual)
        print(
            f"   [{label}] t={at / 3600.0:5.1f}h  mean |err| "
            f"{err:6.1f} Mbps  retrain={model.needs_retraining}"
        )


def main() -> None:
    weather = FluctuationModel(seed=11)
    old_fleet = Topology.build(REGIONS, "t2.medium")

    print("== 1. Train on the t2.medium fleet")
    training = build_training_set(old_fleet, weather, n_datasets=40, seed=2)
    model = WanPredictionModel(n_estimators=40, error_window=4).fit(training)
    print(
        f"   {len(training)} rows, accuracy {model.train_accuracy:.2f}%, "
        f"{len(model.forest.trees)} trees"
    )

    print("== 2. Unseen weather on the same fleet: no false alarms")
    unseen = FluctuationModel(seed=777)
    track(model, old_fleet, unseen, [i * 7200.0 for i in range(1, 5)], "ok")

    print("== 3. Fleet upgrade to m5.large: the mapping drifts")
    new_fleet = Topology.build(REGIONS, "m5.large")
    track(
        model, new_fleet, weather, [i * 7200.0 for i in range(1, 7)], "drift"
    )
    assert model.needs_retraining, "drift should have latched the flag"

    print("== 4. Warm-start retrain on freshly collected data")
    fresh = build_training_set(new_fleet, weather, n_datasets=40, seed=5)
    trees_before = len(model.forest.trees)
    # The stale trees stay in the ensemble and keep voting for t2-era
    # BWs; the fresh trees must outnumber them before predictions track
    # the new fleet.
    model.retrain(fresh, extra_estimators=60)
    print(
        f"   forest {trees_before} → {len(model.forest.trees)} trees "
        "(fresh must outnumber stale under severe drift)"
    )
    track(
        model, new_fleet, weather,
        [50_000.0 + i * 7200.0 for i in range(1, 4)], "warm",
    )
    print(f"   retrain flag now: {model.needs_retraining}")

    print("== 5. Cold retrain on the merged dataset (severe-drift path)")
    cold = WanPredictionModel(n_estimators=60, error_window=4).fit(
        training.merge(fresh)
    )
    track(
        cold, new_fleet, weather,
        [50_000.0 + i * 7200.0 for i in range(1, 4)], "cold",
    )
    print(
        "   warm start suits gradual drift (§3.3.4); a fleet swap is "
        "worth a cold fit."
    )


if __name__ == "__main__":
    main()
