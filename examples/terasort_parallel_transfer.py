#!/usr/bin/env python3
"""TeraSort with WANify's parallel data transfer (the Fig. 5 scenario).

Runs 100 GB TeraSort on the 8-region cluster under four network setups —
vanilla single-connection Spark, uniform parallel connections, WANify's
heterogeneous connections with AIMD agents, and the full WANify-TC with
throttling — and prints the latency / cost / minimum-BW comparison.

Run:  python examples/terasort_parallel_transfer.py
"""

from repro.cloud.regions import PAPER_REGIONS
from repro.pipeline import Pipeline, PipelineConfig
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.vanilla import LocalityPolicy
from repro.gda.workloads.terasort import terasort_job
from repro.net.dynamics import FluctuationModel
from repro.net.topology import Topology

INPUT_GB = 100
QUERY_TIME = 2 * 24 * 3600.0


def main() -> None:
    weather = FluctuationModel(seed=42)
    topology = Topology.build(PAPER_REGIONS, "t2.medium")

    pipeline = Pipeline(
        topology,
        weather,
        PipelineConfig(n_training_datasets=40, n_estimators=30),
    )
    print("training WANify...")
    pipeline.train()
    predicted = pipeline.predict(at_time=QUERY_TIME)

    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_GB * 1024.0)
    job = terasort_job(store.data_by_dc())

    print(f"\nTeraSort {INPUT_GB} GB on {len(PAPER_REGIONS)} DCs:")
    header = (
        f"{'setup':>16} {'JCT (min)':>10} {'network (min)':>14} "
        f"{'cost ($)':>9} {'min BW (Mbps)':>14}"
    )
    print(header)
    for variant in ("single", "wanify-p", "wanify-dynamic", "wanify-tc"):
        cluster = GeoCluster.build(
            PAPER_REGIONS,
            "t2.medium",
            fluctuation=weather,
            time_offset=QUERY_TIME,
        )
        deployment = pipeline.deployment(variant, bw=predicted)
        result = GdaEngine(cluster).run(
            job, LocalityPolicy(), deployment=deployment
        )
        print(
            f"{variant:>16} {result.jct_minutes:>10.1f} "
            f"{result.network_s / 60:>14.1f} "
            f"{result.cost.total_usd:>9.2f} {result.min_bw_mbps:>14.1f}"
        )

    print(
        "\nExpected shape (paper Fig. 5): uniform parallelism buys "
        "nothing, heterogeneous connections cut the network phase and "
        "multiply the cluster's minimum bandwidth."
    )


if __name__ == "__main__":
    main()
