#!/usr/bin/env python3
"""Runtime service: concurrent jobs, drifting bandwidth, mid-job re-plans.

The quickstart plans once per query at submit time.  This example runs
WANify the way the paper positions it — as a *runtime* service:

1. build a 4-DC cluster whose WAN suffers a step capacity drop the
   trained model never saw,
2. start the service: gauge → plan → deploy AIMD agents that publish
   telemetry to a shared store, with a drift detector watching,
3. submit a mix of WordCount / TeraSort / TPC-DS jobs that run
   *concurrently* on the shared substrate,
4. watch the drift detector fire when the drop hits and the service
   re-gauge + re-plan mid-job,
5. compare against the same run with the submit-time plan frozen.

Run:  python examples/runtime_service.py
"""

from repro.net.profiles import network_profile
from repro.runtime.scenarios import StepDrop
from repro.runtime.service import (
    ServiceConfig,
    PipelineService,
    default_job_mix,
)

REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")
SEED = 11


def serve(online: bool) -> PipelineService:
    config = ServiceConfig(
        regions=REGIONS,
        seed=SEED,
        online=online,
        check_interval_s=30.0,
        cooldown_s=180.0,
        n_training_datasets=16,
        n_estimators=12,
    )
    # The substrate loses 65% of its capacity at t=240s — structural
    # drift the offline training campaign never saw.
    base = network_profile(config.profile).fluctuation(seed=SEED)
    weather = StepDrop(base, SEED, at_s=240.0, level=0.35)
    service = PipelineService.build(config, weather=weather)
    for delay, job in default_job_mix(
        REGIONS, count=6, seed=SEED, scale_mb=4000.0
    ):
        service.submit_at(delay, job)
    service.run()  # drains when the last job completes
    service.stop()
    return service


def main() -> None:
    print("== 1. Online service (drift detector armed)")
    online = serve(online=True)
    summary = online.summary()
    for ticket in online.scheduler.completed:
        print(
            f"   {ticket.job.name:<16} wait {ticket.wait_s:6.1f} s  "
            f"jct {ticket.jct_s:7.1f} s"
        )
    print(f"   telemetry samples: {summary.telemetry_samples}")
    for event in summary.events:
        print(f"   re-plan: {event.describe()}")

    print("== 2. Same weather, static submit-time plan")
    static = serve(online=False)
    frozen = static.summary()
    print(
        f"   static total JCT {frozen.total_jct_s:7.1f} s over "
        f"{frozen.completed} jobs"
    )

    print("== 3. What online re-planning bought")
    speedup = frozen.total_jct_s / summary.total_jct_s
    print(
        f"   total JCT {frozen.total_jct_s:.0f} s → "
        f"{summary.total_jct_s:.0f} s  ({speedup:.2f}x), "
        f"{summary.replans} mid-job re-plan(s), "
        f"fairness {summary.fairness:.2f}"
    )


if __name__ == "__main__":
    main()
