#!/usr/bin/env python3
"""SLO scheduling: admission policies racing deadlines on one cluster.

The runtime service used to admit jobs strictly first-come-first-served.
This example overloads a small cluster (jobs arrive five times faster
than a slot frees up) where every job promises a *deadline*, and shows
how the registered admission policies split the same workload:

1. build one job mix with heterogeneous SLOs — tight and loose
   deadlines deliberately scrambled against arrival order,
2. run it under ``fifo``, ``deadline-edf``, and ``fair-share``
   admission (same cluster, same weather, same jobs),
3. compare SLO attainment, per-tenant fairness, and mean JCT —
   earliest-deadline-first trades a little average JCT for a lot of
   attainment,
4. print the re-plan bill: the flash crowd triggers a drift re-plan,
   and the re-gauge's probe cost is charged to the event.

Run:  python examples/slo_scheduling.py
"""

from repro.runtime.scheduling import SLO, spread_slos
from repro.runtime.service import (
    PipelineService,
    ServiceConfig,
    default_job_mix,
)

REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")
SEED = 13
DEADLINE_S = 500.0


def serve(scheduler: str) -> PipelineService:
    """One overloaded service run under the named admission policy."""
    config = ServiceConfig(
        regions=REGIONS,
        seed=SEED,
        scenario="flash-crowd",
        scheduler=scheduler,
        max_concurrent=1,
        drift_threshold=0.35,
        n_training_datasets=4,
        n_estimators=3,
    )
    service = PipelineService.build(config)
    mix = default_job_mix(REGIONS, count=12, seed=SEED, scale_mb=1500.0)
    # Compress arrivals 5× so the queue actually builds, and spread
    # each job's deadline around DEADLINE_S (uniform deadlines would
    # make EDF collapse into FIFO).
    compressed = [(delay * 0.2, job) for delay, job in mix]
    for delay, job, slo in spread_slos(compressed, DEADLINE_S, seed=SEED):
        service.submit_at(delay, job, slo=slo)
    service.run()
    service.stop()
    return service


def main() -> None:
    print(f"== 12 jobs, 1 slot, deadlines around {DEADLINE_S:.0f} s ==\n")
    results = {}
    for scheduler in ("fifo", "deadline-edf", "fair-share"):
        service = serve(scheduler)
        summary = service.summary()
        results[scheduler] = summary
        met = summary.slo_attained
        total = summary.slo_attained + summary.slo_missed
        print(
            f"{scheduler:<14} attainment {met:>2}/{total} "
            f"({summary.slo_attainment * 100.0:3.0f}%)  "
            f"mean JCT {summary.mean_jct_s:6.1f} s  "
            f"fairness {summary.fairness:.2f}"
        )

    print("\n== what the re-plan cost ==")
    for scheduler, summary in results.items():
        for event in summary.events:
            print(f"{scheduler:<14} {event.describe()}")

    print("\n== a job can also carry its own SLO ==")
    print(
        "service.submit(job, slo=SLO(deadline_s=120.0, priority=3,"
        " tenant='etl'))"
    )
    _ = SLO(deadline_s=120.0, priority=3, tenant="etl")  # constructs fine


if __name__ == "__main__":
    main()
