"""Registering a custom stage and sweeping it against the built-ins.

The registry extension recipe from docs/ARCHITECTURE.md, end to end:

1. register a custom ``Gauger`` (here: a snapshot probe that degrades
   its own measurement, standing in for a cheaper/noisier probe);
2. select it by name through ``PipelineConfig`` — no core edits;
3. sweep it against the built-in gaugers with the sweep API and print
   the probe-cost/JCT comparison.

Run from the repo root::

    PYTHONPATH=src python examples/custom_stages.py
"""

from repro import PipelineConfig, Pipeline, Topology, FluctuationModel, register_gauger
from repro.net.measurement import snapshot
from repro.pipeline.stages import GaugeLedger

REGIONS = ("us-east-1", "us-west-1", "eu-west-1")


# ----------------------------------------------------------------------
# 1. A custom gauger, registered by name
# ----------------------------------------------------------------------


@register_gauger("noisy-snapshot")
class NoisySnapshot(GaugeLedger):
    """A snapshot probe whose reading is scaled down 10% — a stand-in
    for any cheaper-but-worse measurement you might want to study."""

    def gauge(self, topology, weather, at_time):
        report = snapshot(topology, weather, at_time)
        for src, dst in report.matrix.pairs():
            report.matrix.set(src, dst, 0.9 * report.matrix.get(src, dst))
        report.mode = "noisy-snapshot"
        return self.log_gauge(report, transfers=topology.n * (topology.n - 1))


def one_shot_demo() -> None:
    """The custom gauger is constructible from a config name alone."""
    config = PipelineConfig(
        n_training_datasets=6, n_estimators=5, seed=42, gauger="noisy-snapshot"
    )
    pipe = Pipeline(Topology.build(REGIONS, "t2.medium"), FluctuationModel(seed=42), config)
    pipe.train()
    bw = pipe.predict(at_time=3600.0)
    print(f"noisy-snapshot pipeline: min predicted BW {bw.min_bw():.0f} Mbps")
    print(f"probe ledger: {pipe.gauger.probe_transfers} transfers, "
          f"${pipe.gauger.probe_cost_usd:.4f}\n")


# ----------------------------------------------------------------------
# 2. Sweeping it against the built-ins
# ----------------------------------------------------------------------


def sweep_demo() -> None:
    """Custom names sweep exactly like built-ins (same registries)."""
    import json
    import tempfile
    from pathlib import Path

    from repro.experiments.sweep import load_sweep, render_markdown, run_sweep

    sweep_toml = """
regions = ["us-east-1", "us-west-1"]
n_training_datasets = 4
n_estimators = 3
seed = 42

[sweep]
gaugers = ["snapshot", "noisy-snapshot", "passive-telemetry"]
jobs = 2
scale_mb = 400.0
"""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sweep.toml"
        path.write_text(sweep_toml)
        result = run_sweep(load_sweep(path))
    print(render_markdown(result))
    cheapest = min(
        result.rows, key=lambda row: row.metrics["probe_cost_usd"]
    )
    print(f"cheapest probing: {cheapest.label} "
          f"(${cheapest.metrics['probe_cost_usd']:.4f})")
    print(json.dumps(result.rows[0].to_json(), indent=2))


if __name__ == "__main__":
    one_shot_demo()
    sweep_demo()
