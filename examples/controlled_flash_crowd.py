#!/usr/bin/env python3
"""Control plane walkthrough: rescuing SLOs through a flash crowd.

PR 4 gave the service a *scheduling* plane — admission order, SLOs,
batched reallocation.  This example shows the *control* plane that
closes the loop on jobs already running, using the committed
flash-crowd comparison from ``repro.experiments.control_plane``:

1. **uncontrolled** — 12 deadline-carrying jobs arrive ~6x faster than
   two slots drain; the flash crowd (t = 600 s) shrinks the WAN under
   them, and FIFO admission lets slack-rich jobs starve urgent ones;
2. **controlled** — the same mix with ``preemption="urgent-slo"``,
   ``governor=True`` and ``autoscale=True``: slack-rich runners are
   checkpointed out of the way of deadline-critical queued jobs, the
   bandwidth governor caps slack-rich jobs' exclusive pairs so poor
   jobs' flows widen, and ``max_concurrent`` scales 2 → 3 while the
   queue backs up;
3. the summary counters tell the story: strictly higher SLO
   attainment, nonzero ``preemptions`` and ``throttle_moves``, and a
   balanced throttle ledger (every cap the governor applied was
   released — the no-leak invariant
   ``tests/runtime/test_control.py`` pins).

Tuning guidance for these knobs lives in docs/OPERATIONS.md ("Flash
crowd" cookbook entry).

Run:  python examples/controlled_flash_crowd.py
"""

from repro.experiments.control_plane import (
    DEADLINE_S,
    JOBS,
    render,
    run_service,
)


def main() -> None:
    print(
        f"== {JOBS} jobs, 2 slots, deadlines around {DEADLINE_S:.0f} s, "
        f"flash crowd at t=600 s ==\n"
    )
    results = {}
    for mode, controlled in (("uncontrolled", False), ("controlled", True)):
        service = run_service(controlled=controlled)
        summary = results[mode] = service.summary()
        print(f"-- {mode} --")
        for ticket in service.scheduler.completed:
            met = (
                "MET "
                if ticket.deadline_s is None
                or ticket.finished_s <= ticket.deadline_s
                else "MISS"
            )
            note = (
                f"  (preempted x{ticket.preemptions})"
                if ticket.preemptions
                else ""
            )
            print(
                f"  {met} {ticket.job.name:<16} "
                f"finished {ticket.finished_s:6.0f} s "
                f"deadline {ticket.deadline_s:6.0f} s{note}"
            )
        print(
            f"  attainment {summary.slo_attained}/"
            f"{summary.slo_attained + summary.slo_missed}, "
            f"preemptions {summary.preemptions}, "
            f"throttle moves {summary.throttle_moves} "
            f"(released {summary.throttle_releases}), "
            f"peak concurrency {summary.concurrency_high_water}\n"
        )

    print(render(results))
    print("Every control knob is a ServiceConfig field — the same")
    print("comparison from the CLI:")
    print(
        "  python -m repro serve us-east-1 us-west-1 ap-southeast-1 \\\n"
        "      --scenario flash-crowd --slo-deadline-s 600 \\\n"
        "      --preemption urgent-slo --governor --autoscale"
    )


if __name__ == "__main__":
    main()
