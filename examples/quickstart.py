#!/usr/bin/env python3
"""Quickstart: gauge runtime WAN bandwidth and plan connections.

This walks the whole WANify pipeline on the paper's 8-region cluster:

1. build the geo-distributed topology and the network-weather model,
2. train the WAN Prediction Model from simulated probe campaigns,
3. take a 1-second snapshot and predict the stable runtime BW matrix,
4. run the global optimizer to get per-pair connection windows,
5. compare what static measurement would have told you instead.

Run:  python examples/quickstart.py
"""

from repro.cloud.regions import PAPER_REGIONS
from repro.pipeline import Pipeline, PipelineConfig
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import measure_independent, stable_runtime
from repro.net.topology import Topology


def main() -> None:
    topology = Topology.build(PAPER_REGIONS, "t2.medium")
    weather = FluctuationModel(seed=42)

    print("== 1. Train the WAN Prediction Model (offline module)")
    pipeline = Pipeline(
        topology,
        weather,
        PipelineConfig(n_training_datasets=40, n_estimators=30),
    )
    summary = pipeline.train()
    print(
        f"   {summary['rows']:.0f} training rows, "
        f"accuracy {summary['train_accuracy_pct']:.2f}% "
        f"(paper: 98.51%), collection cost "
        f"${summary['collection_cost_usd']:.2f}"
    )

    print("== 2. Predict runtime BW from a 1-second snapshot")
    query_time = 2 * 24 * 3600.0  # two days into the simulated week
    predicted = pipeline.predict(at_time=query_time)
    print(predicted.to_table())
    print(
        f"   min {predicted.min_bw():.0f} / mean {predicted.mean_bw():.0f} "
        f"/ max {predicted.max_bw():.0f} Mbps"
    )

    print("== 3. Compare against what the GDA system believed statically")
    static = measure_independent(topology, weather, at_time=0.0).matrix
    actual = stable_runtime(topology, weather, at_time=query_time).matrix
    print(
        f"   significant (>100 Mbps) errors vs actual runtime: "
        f"static {len(static.significant_differences(actual))}, "
        f"predicted {len(predicted.significant_differences(actual))}"
    )

    print("== 4. Global optimization: heterogeneous connection windows")
    plan = pipeline.plan(predicted)
    print("   max connections per pair:")
    print(plan.max_connections.to_table("{:4.0f}"))
    weak_src, weak_dst = min(
        predicted.pairs(), key=lambda p: predicted.get(*p)
    )
    print(
        f"   weakest pair {weak_src} → {weak_dst}: "
        f"window {plan.connection_window(weak_src, weak_dst)}, "
        f"achievable {plan.bw_window(weak_src, weak_dst)[1]:.0f} Mbps"
    )


if __name__ == "__main__":
    main()
