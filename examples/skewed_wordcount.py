#!/usr/bin/env python3
"""Skewed-input WordCount with skew-aware WANify (the Fig. 10 scenario).

Concentrates most of the input into four DCs (as §5.8.1 does by moving
HDFS blocks), then compares Tetrium under four transfer setups: single
connection, uniform parallel, WANify without skew weights, and WANify
with skew weights ``ws`` feeding the global optimizer.

Run:  python examples/skewed_wordcount.py
"""

from repro.cloud.regions import PAPER_REGIONS
from repro.core.heterogeneity import skew_weights_from_sizes
from repro.pipeline import Pipeline, PipelineConfig
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.wordcount import wordcount_job
from repro.net.dynamics import FluctuationModel
from repro.net.topology import Topology

QUERY_TIME = 2 * 24 * 3600.0
INPUT_MB = 16 * 1024.0
SKEW_TARGETS = ["us-east-1", "us-west-1", "ap-south-1", "ap-southeast-1"]


def main() -> None:
    weather = FluctuationModel(seed=42)
    topology = Topology.build(PAPER_REGIONS, "t2.medium")
    pipeline = Pipeline(
        topology,
        weather,
        PipelineConfig(n_training_datasets=40, n_estimators=30),
    )
    print("training WANify...")
    pipeline.train()
    predicted = pipeline.predict(at_time=QUERY_TIME)

    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB, block_size_mb=64.0)
    store.skew_to(SKEW_TARGETS, fraction=0.85)
    data = store.data_by_dc()
    print("input distribution (MB):")
    for dc, mb in sorted(data.items(), key=lambda kv: -kv[1]):
        print(f"   {dc:>16}: {mb:8.0f}")

    job = wordcount_job(data, intermediate_mb=INPUT_MB, name="wc-skew")
    ws = skew_weights_from_sizes(data)

    setups = {
        "single-conn": pipeline.deployment("single"),
        "uniform-8": pipeline.deployment("wanify-p", bw=predicted),
        "wanify (no ws)": pipeline.deployment("wanify-tc", bw=predicted),
        "wanify (ws)": pipeline.deployment(
            "wanify-tc", bw=predicted, skew_weights=ws
        ),
    }
    print(
        f"\n{'setup':>16} {'JCT (s)':>8} {'network (s)':>12} "
        f"{'cost ($)':>9} {'min BW':>8}"
    )
    for label, deployment in setups.items():
        cluster = GeoCluster.build(
            PAPER_REGIONS, "t2.medium",
            fluctuation=weather, time_offset=QUERY_TIME,
        )
        result = GdaEngine(cluster).run(
            job, TetriumPolicy(), decision_bw=predicted,
            deployment=deployment,
        )
        print(
            f"{label:>16} {result.jct_s:>8.1f} {result.network_s:>12.1f} "
            f"{result.cost.total_usd:>9.2f} {result.min_bw_mbps:>8.1f}"
        )

    print(
        "\nExpected shape (paper Fig. 10): skew-aware WANify beats both "
        "the single-connection and uniform baselines."
    )


if __name__ == "__main__":
    main()
