#!/usr/bin/env python3
"""WANify-enabled Tetrium and Kimchi on TPC-DS (the Fig. 7 scenario).

Runs TPC-DS queries 82 / 95 / 11 / 78 on 100 GB under two regimes per
GDA system: unmodified (static iPerf BWs, single connection) and
WANify-enabled (predicted runtime BWs + heterogeneous parallel
connections with throttling).

Run:  python examples/tpcds_gda_systems.py
"""

from repro.cloud.regions import PAPER_REGIONS
from repro.pipeline import Pipeline, PipelineConfig
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.tpcds import QUERY_WEIGHT_CLASS, tpcds_job
from repro.net.dynamics import FluctuationModel
from repro.net.measurement import measure_independent
from repro.net.topology import Topology

QUERY_TIME = 2 * 24 * 3600.0 + 7.5 * 3600.0


def main() -> None:
    weather = FluctuationModel(seed=42)
    topology = Topology.build(PAPER_REGIONS, "t2.medium")
    pipeline = Pipeline(
        topology,
        weather,
        PipelineConfig(n_training_datasets=40, n_estimators=30),
    )
    print("training WANify...")
    pipeline.train()

    static = measure_independent(topology, weather, at_time=0.0).matrix
    predicted = pipeline.predict(at_time=QUERY_TIME)
    store = HdfsStore.uniform(PAPER_REGIONS, 100 * 1024.0)

    print(
        f"\n{'system':>8} {'query':>6} {'class':>8} {'vanilla':>9} "
        f"{'wanify':>8} {'latency Δ':>10} {'cost Δ':>8}"
    )
    for system, policy_cls in (
        ("tetrium", TetriumPolicy),
        ("kimchi", KimchiPolicy),
    ):
        for query in (82, 95, 11, 78):
            job = tpcds_job(query, store.data_by_dc())
            base_cluster = GeoCluster.build(
                PAPER_REGIONS, "t2.medium",
                fluctuation=weather, time_offset=QUERY_TIME,
            )
            base = GdaEngine(base_cluster).run(
                job, policy_cls(), decision_bw=static
            )
            enabled_cluster = GeoCluster.build(
                PAPER_REGIONS, "t2.medium",
                fluctuation=weather, time_offset=QUERY_TIME,
            )
            enabled = GdaEngine(enabled_cluster).run(
                job,
                policy_cls(),
                decision_bw=predicted,
                deployment=pipeline.deployment("wanify-tc", bw=predicted),
            )
            latency_gain = 100 * (base.jct_s - enabled.jct_s) / base.jct_s
            cost_gain = (
                100
                * (base.cost.total_usd - enabled.cost.total_usd)
                / base.cost.total_usd
            )
            print(
                f"{system:>8} {query:>6} {QUERY_WEIGHT_CLASS[query]:>8} "
                f"{base.jct_minutes:>8.1f}m {enabled.jct_minutes:>7.1f}m "
                f"{latency_gain:>9.1f}% {cost_gain:>7.1f}%"
            )

    print(
        "\nExpected shape (paper Fig. 7): light queries barely move; "
        "average/heavy queries gain up to ~24% latency and ~8% cost."
    )


if __name__ == "__main__":
    main()
