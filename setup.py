"""Setup shim.

This environment is offline with setuptools 65 and no ``wheel`` package,
so PEP 660 editable installs cannot build. The shim enables the legacy
path: ``pip install -e . --no-build-isolation --no-use-pep517``
(or plain ``pip install -e .`` where the toolchain is newer).

Installs a ``wanify`` console script wrapping the CLI
(:func:`repro.cli.main`), equivalent to ``python -m repro``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-wanify",
    version="1.2.0",
    description=(
        "Reproduction of WANify: gauging and balancing runtime WAN "
        "bandwidth for geo-distributed data analytics"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": [
            "wanify = repro.cli:main",
        ]
    },
)
