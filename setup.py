"""Setup shim.

This environment is offline with setuptools 65 and no ``wheel`` package,
so PEP 660 editable installs cannot build. The shim enables the legacy
path: ``pip install -e . --no-build-isolation --no-use-pep517``
(or plain ``pip install -e .`` where the toolchain is newer).
"""

from setuptools import setup

setup()
