"""Table 4 — performance/cost improvements against static BWs.

§5.2 feeds three BW matrices into unmodified Tetrium and Kimchi (single
connection throughout):

* static-independent iPerf BWs (the systems' own default) — baseline,
* static-simultaneous BWs (accurate but expensive),
* WANify-predicted runtime BWs (accurate *and* cheap).

Paper: queries 95/11/78 improve up to ~18% in latency and up to ~5.2%
in cost; query 82 (light) moves ~1%; predicted ≈ simultaneous, which is
the headline (the prediction costs ~$5 vs ~$80 for simultaneous
monitoring — ~94% savings).
"""

from __future__ import annotations

from repro.cloud.regions import PAPER_REGIONS
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.tpcds import tpcds_job
from repro.net.measurement import measure_independent, stable_runtime

QUERIES = (82, 95, 11, 78)
INPUT_MB = 100 * 1024.0

#: Paper Table 4 (percent improvements over static-independent).
PAPER = {
    ("tetrium", 82): {"perf": 1.0, "cost": 3.9},
    ("tetrium", 95): {"perf": 8.0, "cost": 2.0},
    ("tetrium", 11): {"perf": 10.2, "cost": 3.5},
    ("tetrium", 78): {"perf": 14.0, "cost": 3.1},
    ("kimchi", 82): {"perf": 1.0, "cost": 5.2},
    ("kimchi", 95): {"perf": 11.7, "cost": 2.8},
    ("kimchi", 11): {"perf": 18.0, "cost": 3.7},
    ("kimchi", 78): {"perf": 13.0, "cost": 1.1},
}


def _run_query(
    query: int, system: str, bw, weather, at_time: float
) -> "JobResult":
    cluster = GeoCluster.build(
        PAPER_REGIONS, "t2.medium", fluctuation=weather, time_offset=at_time
    )
    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB)
    job = tpcds_job(query, store.data_by_dc())
    policy = TetriumPolicy() if system == "tetrium" else KimchiPolicy()
    return GdaEngine(cluster).run(job, policy, decision_bw=bw)


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Run all queries × systems × BW sources."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    topology = common.worker_topology()

    static = measure_independent(topology, weather, at_time=0.0)
    simultaneous = stable_runtime(topology, weather, at_time=at_time)
    predicted = pipeline.predict(at_time=at_time)

    table = {}
    for system in ("tetrium", "kimchi"):
        for query in QUERIES:
            base = _run_query(query, system, static.matrix, weather, at_time)
            sim = _run_query(
                query, system, simultaneous.matrix, weather, at_time
            )
            pred = _run_query(query, system, predicted, weather, at_time)
            table[(system, query)] = {
                "base_jct_min": base.jct_minutes,
                "simultaneous": {
                    "perf": common.improvement_pct(base.jct_s, sim.jct_s),
                    "cost": common.improvement_pct(
                        base.cost.total_usd, sim.cost.total_usd
                    ),
                },
                "predicted": {
                    "perf": common.improvement_pct(base.jct_s, pred.jct_s),
                    "cost": common.improvement_pct(
                        base.cost.total_usd, pred.cost.total_usd
                    ),
                },
                "paper": PAPER[(system, query)],
            }

    monitoring_cost = simultaneous.cost.dollars
    prediction_cost = pipeline.gauge(at_time).cost.dollars
    return {
        "table": table,
        "max_predicted_perf_pct": max(
            v["predicted"]["perf"] for v in table.values()
        ),
        "simultaneous_monitoring_usd": monitoring_cost,
        "snapshot_prediction_usd": prediction_cost,
    }


def render(results: dict) -> str:
    """Print Table 4, measured vs paper."""
    lines = [
        "Table 4: improvements over static-independent BWs (%, higher=better)",
        f"{'system':>8} {'query':>5} {'sim perf':>9} {'sim cost':>9} "
        f"{'pred perf':>10} {'pred cost':>10} {'paper perf':>11}",
    ]
    for (system, query), row in results["table"].items():
        lines.append(
            f"{system:>8} {query:>5} "
            f"{row['simultaneous']['perf']:>9.1f} "
            f"{row['simultaneous']['cost']:>9.1f} "
            f"{row['predicted']['perf']:>10.1f} "
            f"{row['predicted']['cost']:>10.1f} "
            f"{row['paper']['perf']:>11.1f}"
        )
    lines.append(
        f"monitoring ${results['simultaneous_monitoring_usd']:.2f} vs "
        f"snapshot ${results['snapshot_prediction_usd']:.2f} per refresh"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
