"""Fig. 8 — validation of WANify's design (§5.5).

(a) **Ablation** on TPC-DS query 78 for Tetrium and Kimchi:

    * Vanilla — unmodified system (static-independent BWs, single
      connection),
    * Global only — global optimizer's heterogeneous connections applied
      statically (no AIMD agents, no throttling),
    * Local only — AIMD agents within a static 1–8 window (no inferred
      DC closeness),
    * WANify — everything enabled.

    Paper: Global only ≈ 16% better latency than Vanilla (~1.2× min
    BW); Local only ≈ 11% (~1.1×), i.e. ~5% worse than Global only;
    full WANify best at ≈ 23%.

(b) **Prediction-error impact**: ±100 Mbps (the significance boundary)
    randomly added to the predicted BWs.  Paper: +18% latency, +5%
    cost, −38% minimum BW versus clean WANify.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.regions import PAPER_REGIONS
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.tpcds import tpcds_job
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import measure_independent

QUERY = 78
INPUT_MB = 100 * 1024.0

PAPER_GLOBAL_ONLY_GAIN = 16.0
PAPER_LOCAL_ONLY_GAIN = 11.0
PAPER_FULL_GAIN = 23.0
PAPER_ERR_LATENCY_PCT = 18.0
PAPER_ERR_COST_PCT = 5.0
PAPER_ERR_MIN_BW_DROP_PCT = 38.0


def perturbed_matrix(
    matrix: BandwidthMatrix, delta_mbps: float = 100.0, seed: int = 3
) -> BandwidthMatrix:
    """Randomly add/subtract ``delta_mbps`` per pair (WANify-err)."""
    rng = np.random.default_rng(seed)
    out = matrix.copy()
    for src, dst in out.pairs():
        sign = 1.0 if rng.random() < 0.5 else -1.0
        out.set(src, dst, max(5.0, out.get(src, dst) + sign * delta_mbps))
    return out


def _run(
    policy, job, weather, at_time, decision_bw, deployment=None
):
    cluster = GeoCluster.build(
        PAPER_REGIONS, "t2.medium", fluctuation=weather, time_offset=at_time
    )
    return GdaEngine(cluster).run(
        job, policy, decision_bw=decision_bw, deployment=deployment
    )


def run(fast: bool = True, at_time: float = common.ALT_EVAL_TIME) -> dict:
    """Run the ablation and the error-injection comparison."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    topology = common.worker_topology()
    static = measure_independent(topology, weather, at_time=0.0).matrix
    predicted = pipeline.predict(at_time=at_time)
    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB)
    job = tpcds_job(QUERY, store.data_by_dc())

    ablation = {}
    for system, policy_cls in (
        ("tetrium", TetriumPolicy),
        ("kimchi", KimchiPolicy),
    ):
        vanilla = _run(policy_cls(), job, weather, at_time, static)
        global_only = _run(
            policy_cls(), job, weather, at_time, predicted,
            pipeline.deployment("global-only", bw=predicted),
        )
        local_only = _run(
            policy_cls(), job, weather, at_time, predicted,
            pipeline.deployment("local-only", bw=predicted),
        )
        full = _run(
            policy_cls(), job, weather, at_time, predicted,
            pipeline.deployment("wanify-tc", bw=predicted),
        )
        ablation[system] = {
            "vanilla_min": vanilla.jct_minutes,
            "global_only_gain_pct": common.improvement_pct(
                vanilla.jct_s, global_only.jct_s
            ),
            "local_only_gain_pct": common.improvement_pct(
                vanilla.jct_s, local_only.jct_s
            ),
            "full_gain_pct": common.improvement_pct(
                vanilla.jct_s, full.jct_s
            ),
            "global_min_bw_ratio": common.ratio(
                global_only.min_bw_mbps, vanilla.min_bw_mbps
            ),
            "local_min_bw_ratio": common.ratio(
                local_only.min_bw_mbps, vanilla.min_bw_mbps
            ),
            "full_min_bw_ratio": common.ratio(
                full.min_bw_mbps, vanilla.min_bw_mbps
            ),
        }

    # (b) error injection, on Tetrium as in the paper's narrative;
    # averaged over sign patterns (one ±100 draw is high-variance).
    clean = _run(
        TetriumPolicy(), job, weather, at_time, predicted,
        pipeline.deployment("wanify-tc", bw=predicted),
    )
    latency_deltas, cost_deltas, bw_drops = [], [], []
    for seed in (3, 5, 11):
        noisy_bw = perturbed_matrix(predicted, seed=seed)
        err = _run(
            TetriumPolicy(), job, weather, at_time, noisy_bw,
            pipeline.deployment("wanify-tc", bw=noisy_bw),
        )
        latency_deltas.append(
            -common.improvement_pct(clean.jct_s, err.jct_s)
        )
        cost_deltas.append(
            -common.improvement_pct(
                clean.cost.total_usd, err.cost.total_usd
            )
        )
        bw_drops.append(
            100.0
            * (1.0 - common.ratio(err.min_bw_mbps, clean.min_bw_mbps))
        )
    error_impact = {
        "latency_increase_pct": float(np.mean(latency_deltas)),
        "cost_increase_pct": float(np.mean(cost_deltas)),
        "min_bw_drop_pct": float(np.mean(bw_drops)),
        "per_seed_latency_pct": latency_deltas,
    }

    return {
        "ablation": ablation,
        "error_impact": error_impact,
        "paper": {
            "global_only_gain": PAPER_GLOBAL_ONLY_GAIN,
            "local_only_gain": PAPER_LOCAL_ONLY_GAIN,
            "full_gain": PAPER_FULL_GAIN,
            "err_latency_pct": PAPER_ERR_LATENCY_PCT,
            "err_cost_pct": PAPER_ERR_COST_PCT,
            "err_min_bw_drop_pct": PAPER_ERR_MIN_BW_DROP_PCT,
        },
    }


def render(results: dict) -> str:
    """Print both panels of Fig. 8."""
    lines = ["Fig. 8(a): ablation on TPC-DS q78 (latency gain vs vanilla, %)"]
    lines.append(
        f"{'system':>8} {'global only':>12} {'local only':>11} {'full':>6}"
    )
    for system, row in results["ablation"].items():
        lines.append(
            f"{system:>8} {row['global_only_gain_pct']:>12.1f} "
            f"{row['local_only_gain_pct']:>11.1f} "
            f"{row['full_gain_pct']:>6.1f}"
        )
    paper = results["paper"]
    lines.append(
        f"{'paper':>8} {paper['global_only_gain']:>12.1f} "
        f"{paper['local_only_gain']:>11.1f} {paper['full_gain']:>6.1f}"
    )
    err = results["error_impact"]
    lines.append(
        "Fig. 8(b): WANify-err vs WANify — latency "
        f"+{err['latency_increase_pct']:.1f}% (paper +{paper['err_latency_pct']:.0f}%), "
        f"cost +{err['cost_increase_pct']:.1f}% (paper +{paper['err_cost_pct']:.0f}%), "
        f"min BW −{err['min_bw_drop_pct']:.1f}% "
        f"(paper −{paper['err_min_bw_drop_pct']:.0f}%)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
