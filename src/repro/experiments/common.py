"""Shared fixtures for the experiment modules.

Centralizes the things every experiment needs — the 8-region worker and
probe topologies, the network-weather model, and a memoized trained
Pipeline instance (training takes seconds; a dozen experiments shouldn't
repeat it) — plus small formatting helpers for the rendered tables.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cloud.regions import PAPER_REGIONS
from repro.pipeline import Pipeline, PipelineConfig
from repro.net.dynamics import FluctuationModel
from repro.net.topology import Topology

#: Seed for all experiment network weather (reproducible end to end).
WEATHER_SEED = 42

#: Fast settings keep the full suite comfortably under a minute per
#: experiment; full settings match the paper's 100-estimator model.
FAST_CONFIG = PipelineConfig(n_training_datasets=40, n_estimators=30)
FULL_CONFIG = PipelineConfig(n_training_datasets=120, n_estimators=100)

#: Simulation-time instants (seconds into the simulated week) used as
#: "different times of the day" in the evaluation.
EVAL_TIME = 2.0 * 24 * 3600.0 + 7.5 * 3600.0
ALT_EVAL_TIME = 4.0 * 24 * 3600.0 + 16.25 * 3600.0


def fluctuation(seed: int = WEATHER_SEED) -> FluctuationModel:
    """The experiments' network-weather model."""
    return FluctuationModel(seed=seed)


def worker_topology(
    vms_per_dc: int | dict[str, int] = 1,
) -> Topology:
    """The 8-DC t2.medium worker cluster of §5.1."""
    return Topology.build(PAPER_REGIONS, "t2.medium", vms_per_dc)


def probe_topology(region_keys: tuple[str, ...] = PAPER_REGIONS) -> Topology:
    """Unlimited-burst t3.nano probes (the §2.2 motivation setup)."""
    return Topology.build(region_keys, "t3.nano")


@lru_cache(maxsize=8)
def trained_pipeline(
    fast: bool = True,
    vm_key: str = "t2.medium",
    seed: int = WEATHER_SEED,
) -> Pipeline:
    """A Pipeline instance trained on the worker topology (memoized)."""
    topology = Topology.build(PAPER_REGIONS, vm_key)
    config = FAST_CONFIG if fast else FULL_CONFIG
    pipeline = Pipeline(topology, fluctuation(seed), config)
    pipeline.train()
    return pipeline


#: Deprecated spelling kept for downstream callers.
trained_wanify = trained_pipeline


def improvement_pct(baseline: float, value: float) -> float:
    """Percentage improvement of ``value`` over ``baseline`` (positive =
    better, i.e. smaller)."""
    if baseline <= 0:
        raise ValueError(f"non-positive baseline: {baseline}")
    return 100.0 * (baseline - value) / baseline


def ratio(new: float, old: float) -> float:
    """Simple ratio with a zero guard (used for min-BW speedups)."""
    if old <= 0:
        return float("inf") if new > 0 else 1.0
    return new / old


def fmt_row(cells: list[str], widths: list[int]) -> str:
    """Fixed-width table row."""
    return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
