"""Table 2 — accurate prediction saves ~96% in monitoring costs.

Eq. 1 prices a year of runtime BW monitoring: ``O × N × (x·y + z)``
with measurements every 30 minutes (Tetrium's suggestion) on t3.nano
probes at an average of 200 Mbps of probe traffic, against (a) one-off
training-set collection (1000 samples of snapshot + stable windows) and
(b) a year of 1-second snapshot predictions.

Paper values: runtime monitoring $703 / $1055 / $1406 for N = 4/6/8;
training $69 and predictions $56 summed over the three cluster sizes,
i.e. ~96% savings.  (The paper amortizes training over cluster sizes in
a way it does not fully specify — our per-N training costs differ in
distribution but the headline savings ratio is the reproduction
target.)
"""

from __future__ import annotations

from repro.cloud.pricing import PriceBook, monitoring_annual_cost, SECONDS_PER_YEAR
from repro.net.measurement import (
    PROBE_VM,
    SNAPSHOT_WINDOW_S,
    STABLE_WINDOW_S,
)

#: Parameters stated in §2.2.
CLUSTER_SIZES = (4, 6, 8)
CADENCE_S = 30 * 60.0
AVG_BW_MBPS = 200.0
TRAINING_SAMPLES = 1000

#: Paper-reported dollars (runtime monitoring per N; training and
#: prediction totals).
PAPER_MONITORING = {4: 703.0, 6: 1055.0, 8: 1406.0}
PAPER_TRAINING_TOTAL = 69.0
PAPER_PREDICTION_TOTAL = 56.0
PAPER_SAVINGS_PCT = 96.0


def _window_cost(
    nodes: int, window_s: float, prices: PriceBook
) -> float:
    """Cost of one all-pairs probe window on ``nodes`` t3.nano VMs."""
    compute = nodes * prices.compute_cost(PROBE_VM, window_s)
    gigabytes = nodes * AVG_BW_MBPS / 8.0 * window_s / 1024.0
    return compute + prices.network_cost(gigabytes)


def run(fast: bool = True) -> dict:
    """Compute the Table 2 cost comparison."""
    prices = PriceBook()
    occurrences = SECONDS_PER_YEAR / CADENCE_S

    monitoring = {}
    training = {}
    predictions = {}
    for n in CLUSTER_SIZES:
        monitoring[n] = monitoring_annual_cost(
            n, STABLE_WINDOW_S, AVG_BW_MBPS, CADENCE_S, PROBE_VM, prices
        )
        # Training: 1000 samples, each pairing a snapshot with a stable
        # window, split evenly across the three cluster sizes.
        per_size_samples = TRAINING_SAMPLES / len(CLUSTER_SIZES)
        training[n] = per_size_samples * _window_cost(
            n, SNAPSHOT_WINDOW_S + STABLE_WINDOW_S, prices
        )
        # Prediction: a year of snapshots at the monitoring cadence.
        predictions[n] = occurrences * _window_cost(
            n, SNAPSHOT_WINDOW_S, prices
        )

    total_monitoring = sum(monitoring.values())
    total_prediction_side = sum(training.values()) + sum(predictions.values())
    savings_pct = 100.0 * (1.0 - total_prediction_side / total_monitoring)
    return {
        "monitoring_usd": monitoring,
        "training_usd": training,
        "prediction_usd": predictions,
        "total_monitoring_usd": total_monitoring,
        "total_prediction_side_usd": total_prediction_side,
        "savings_pct": savings_pct,
        "paper_monitoring_usd": PAPER_MONITORING,
        "paper_savings_pct": PAPER_SAVINGS_PCT,
    }


def render(results: dict) -> str:
    """Print the Table 2 comparison."""
    lines = [
        "Table 2: annual BW monitoring vs prediction costs (USD)",
        f"{'N':>3} {'monitoring':>11} {'paper':>8} {'training':>9} "
        f"{'predictions':>12}",
    ]
    for n in CLUSTER_SIZES:
        lines.append(
            f"{n:>3} {results['monitoring_usd'][n]:>11.0f} "
            f"{results['paper_monitoring_usd'][n]:>8.0f} "
            f"{results['training_usd'][n]:>9.0f} "
            f"{results['prediction_usd'][n]:>12.0f}"
        )
    lines.append(
        f"savings: measured {results['savings_pct']:.1f}% "
        f"(paper ~{results['paper_savings_pct']:.0f}%)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
