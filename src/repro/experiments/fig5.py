"""Fig. 5 — comparing parallel data transfer approaches on TeraSort.

§5.3.1 isolates WANify's transfer layer from WAN-aware scheduling:
vanilla Spark (locality-aware, single connection) against three WANify
variants on predicted runtime BWs:

* **WANify-P** — uniform parallel connections ("increased latency and
  cost with no key improvements to the minimum BW due to network
  congestion"),
* **WANify-Dynamic** — heterogeneous connections + AIMD (paper: min BW
  to 356 Mbps),
* **WANify-TC** — the default, adding dynamic throttling (paper: best
  latency 61 min, cost $4.7, min BW 790 Mbps).

Reproduction targets: the *ordering* (TC ≥ Dynamic ≫ vanilla ≥ P on
latency; TC/Dynamic min BW a small multiple of vanilla's) rather than
the absolute minutes.
"""

from __future__ import annotations

from repro.cloud.regions import PAPER_REGIONS
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.vanilla import LocalityPolicy
from repro.gda.workloads.terasort import terasort_job

#: 100 GB of TeraSort input (§5.1).
INPUT_MB = 100 * 1024.0

VARIANT_LABELS = {
    "single": "No WANify",
    "wanify-p": "WANify-P",
    "wanify-dynamic": "WANify-Dynamic",
    "wanify-tc": "WANify-TC",
}

#: Paper-reported values for WANify-TC.
PAPER_TC_MINUTES = 61.0
PAPER_TC_MIN_BW = 790.0


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Run the four §5.3.1 variants on 100 GB TeraSort."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB)
    job = terasort_job(store.data_by_dc())
    predicted = pipeline.predict(at_time=at_time)

    results = {}
    for variant in ("single", "wanify-p", "wanify-dynamic", "wanify-tc"):
        cluster = GeoCluster.build(
            PAPER_REGIONS,
            "t2.medium",
            fluctuation=weather,
            time_offset=at_time,
        )
        deployment = pipeline.deployment(variant, bw=predicted)
        outcome = GdaEngine(cluster).run(
            job, LocalityPolicy(), deployment=deployment
        )
        results[variant] = {
            "label": VARIANT_LABELS[variant],
            "jct_min": outcome.jct_minutes,
            "network_min": outcome.network_s / 60.0,
            "cost_usd": outcome.cost.total_usd,
            "min_bw_mbps": outcome.min_bw_mbps,
        }

    base = results["single"]
    tc = results["wanify-tc"]
    p_gain = common.improvement_pct(
        base["jct_min"], results["wanify-p"]["jct_min"]
    )
    dynamic_gain = common.improvement_pct(
        base["jct_min"], results["wanify-dynamic"]["jct_min"]
    )
    return {
        "variants": results,
        "tc_latency_gain_pct": common.improvement_pct(
            base["jct_min"], tc["jct_min"]
        ),
        "tc_min_bw_ratio": common.ratio(
            tc["min_bw_mbps"], base["min_bw_mbps"]
        ),
        "p_gain_pct": p_gain,
        "dynamic_gain_pct": dynamic_gain,
        # The paper's claim, robust to fluid-model noise: uniform
        # parallelism's effect on JCT is marginal next to the
        # heterogeneous fix (the paper measures it *negative* — a fluid
        # network has no loss-driven collapse, so we allow a small win).
        "p_is_marginal": p_gain <= max(2.0, 0.4 * dynamic_gain),
        "paper_tc_minutes": PAPER_TC_MINUTES,
        "paper_tc_min_bw": PAPER_TC_MIN_BW,
    }


def render(results: dict) -> str:
    """Print the Fig. 5 panels."""
    lines = [
        "Fig. 5: parallel data transfer approaches (TeraSort 100 GB)",
        f"{'variant':>16} {'JCT (min)':>10} {'net (min)':>10} "
        f"{'cost ($)':>9} {'min BW':>8}",
    ]
    for variant in ("single", "wanify-p", "wanify-dynamic", "wanify-tc"):
        v = results["variants"][variant]
        lines.append(
            f"{v['label']:>16} {v['jct_min']:>10.1f} "
            f"{v['network_min']:>10.1f} {v['cost_usd']:>9.2f} "
            f"{v['min_bw_mbps']:>8.1f}"
        )
    lines.append(
        f"WANify-TC vs vanilla: {results['tc_latency_gain_pct']:.1f}% faster, "
        f"{results['tc_min_bw_ratio']:.1f}× min BW"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
