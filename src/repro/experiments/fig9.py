"""Fig. 9 — handling dynamics (§5.7).

WANify-enabled Tetrium runs TPC-DS q78; every 5-second AIMD epoch the
US East local optimizer records its per-destination target BWs, and the
ifTop monitor the actual rates.  Panel (a) compares the standard
deviation of the optimizer's targets with that of the monitored runtime
BWs across epochs — they should track (targets fall on congestion, rise
on headroom).  Panel (b) adds 20% random error to the optimizer's
decisions and counts epochs where |target − monitored| SD deltas exceed
100 Mbps (the paper marks 6 such verticals, plus more epochs overall
because the noisy controller keeps re-adjusting).
"""

from __future__ import annotations

import numpy as np

from repro.cloud.regions import PAPER_REGIONS
from repro.core.localopt import LocalOptimizer
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.tpcds import tpcds_job

QUERY = 78
INPUT_MB = 100 * 1024.0
SOURCE_DC = "us-east-1"

PAPER_SIGNIFICANT_EPOCHS = 6


class NoisyLocalOptimizer(LocalOptimizer):
    """LocalOptimizer with ±``noise_fraction`` multiplicative error on
    its targets after every epoch (the Fig. 9(b) fault injection)."""

    def __init__(self, *args, noise_fraction: float = 0.2, seed: int = 9,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.noise_fraction = noise_fraction
        self._rng = np.random.default_rng(seed)

    def epoch(self, now, monitored_mbps, window_volume_mb=None):
        decisions = super().epoch(now, monitored_mbps, window_volume_mb)
        for dst, state in self.states.items():
            noise = 1.0 + self._rng.uniform(
                -self.noise_fraction, self.noise_fraction
            )
            # A faulty controller is not window-disciplined: the noisy
            # target may leave the [min, max] window entirely (that is
            # the point of the fault injection).
            state.target_bw = float(max(1.0, state.target_bw * noise))
            jitter = int(round(state.connections * (noise - 1.0)))
            state.connections = int(
                np.clip(
                    state.connections + jitter,
                    1,
                    state.max_connections + 2,
                )
            )
            decisions[dst] = state.connections
        return decisions


def _epoch_stats(history) -> tuple[list[float], list[float], list[float]]:
    """Per-epoch SDs of target/monitored BWs plus the worst per-link
    |target − monitored| delta.

    Only shuffle-active epochs count: during compute-only phases the
    monitor reads zero and the optimizer (per the < 1 MB rule) holds,
    so those epochs say nothing about tracking quality — ifTop would
    show an idle NIC.  The significance count follows §5.7: "instances
    where the change from actual runtime values is significant, i.e.,
    > 100 Mbps".
    """
    by_time: dict[float, list] = {}
    for record in history:
        by_time.setdefault(record.time, []).append(record)
    target_sds, monitored_sds, max_deltas = [], [], []
    for time in sorted(by_time):
        records = [r for r in by_time[time] if r.monitored_mbps > 1.0]
        if len(records) < 3:
            continue
        target_sds.append(float(np.std([r.target_mbps for r in records])))
        monitored_sds.append(
            float(np.std([r.monitored_mbps for r in records]))
        )
        # Median across links: the controller-wide tracking error.  A
        # healthy controller oscillates one link at a time (AIMD probes),
        # which the median ignores; an erroneous controller is off on
        # every link simultaneously.
        max_deltas.append(
            float(
                np.median(
                    [abs(r.target_mbps - r.monitored_mbps) for r in records]
                )
            )
        )
    return target_sds, monitored_sds, max_deltas


def _run_with_optimizer(
    pipeline, weather, at_time, noisy: bool
) -> tuple[list[float], list[float]]:
    predicted = pipeline.predict(at_time=at_time)
    cluster = GeoCluster.build(
        PAPER_REGIONS, "t2.medium", fluctuation=weather, time_offset=at_time
    )
    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB)
    job = tpcds_job(QUERY, store.data_by_dc())
    deployment = pipeline.deployment("wanify-tc", bw=predicted)
    deployment.install(cluster.network)
    if noisy:
        # Swap the US East agent's optimizer for the noisy variant.
        for agent in deployment.agents_running:
            if agent.dc == SOURCE_DC:
                agent.optimizer = NoisyLocalOptimizer(
                    SOURCE_DC, agent.optimizer.states
                )
    engine = GdaEngine(cluster)
    # install() already ran; run the job on the prepared network.
    engine.run(
        job, TetriumPolicy(), decision_bw=predicted, reset=False
    )
    history = []
    for agent in deployment.agents_running + deployment.retired_agents:
        if agent.dc == SOURCE_DC:
            history = agent.optimizer.history
    deployment.teardown(cluster.network)
    return _epoch_stats(history)


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Collect per-epoch tracking stats for clean and noisy controllers."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()

    clean_target, clean_monitored, clean_deltas = _run_with_optimizer(
        pipeline, weather, at_time, noisy=False
    )
    noisy_target, noisy_monitored, noisy_deltas = _run_with_optimizer(
        pipeline, weather, at_time, noisy=True
    )

    return {
        "clean_epochs": len(clean_deltas),
        "noisy_epochs": len(noisy_deltas),
        "clean_target_sd": clean_target,
        "clean_monitored_sd": clean_monitored,
        "clean_significant": int(
            sum(1 for d in clean_deltas if d > 100.0)
        ),
        "noisy_significant": int(
            sum(1 for d in noisy_deltas if d > 100.0)
        ),
        "paper_noisy_significant": PAPER_SIGNIFICANT_EPOCHS,
        "clean_tracks": bool(
            np.corrcoef(clean_target, clean_monitored)[0, 1] > 0.0
        )
        if len(clean_deltas) >= 3
        else True,
    }


def render(results: dict) -> str:
    """Print the Fig. 9 epoch statistics."""
    return "\n".join(
        [
            "Fig. 9: local-optimizer targets vs monitored BWs",
            f"(a) clean: {results['clean_epochs']} active epochs, "
            f"{results['clean_significant']} with a >100 Mbps "
            "target-vs-runtime instance; targets track monitored: "
            f"{results['clean_tracks']}",
            f"(b) 20% noise: {results['noisy_epochs']} epochs, "
            f"{results['noisy_significant']} significant "
            f"(paper marks {results['paper_noisy_significant']}); "
            "noisy ≥ clean: "
            f"{results['noisy_significant'] >= results['clean_significant']}",
        ]
    )


if __name__ == "__main__":
    print(render(run()))
