"""Fig. 11 — prediction accuracy under heterogeneity (§5.8.2, §5.8.3).

(a) **Heterogeneous number of DCs**: for 4/6/8-DC clusters, compare
    (1) static-independent and (2) WANify-predicted BWs against
    (3) actual runtime BWs, counting significant (>100 Mbps) per-link
    differences.  The predictor — trained across cluster sizes
    (§3.3.2) — should beat static everywhere.

(b) **Heterogeneous number of VMs**: 1–5 extra VMs in three DCs
    (non-uniform deployment); per-VM predictions are scaled by the
    association rule (§3.3.3) and compared the same way.
"""

from __future__ import annotations

import numpy as np

from repro.cloud.regions import PAPER_REGIONS
from repro.core.heterogeneity import associated_bw
from repro.experiments import common
from repro.net.measurement import measure_independent, stable_runtime
from repro.net.topology import Topology

CLUSTER_SIZES = (4, 6, 8)
SIGNIFICANT_MBPS = 100.0


def _count_significant(candidate, runtime) -> int:
    return len(candidate.significant_differences(runtime, SIGNIFICANT_MBPS))


def run(fast: bool = True, at_time: float = common.ALT_EVAL_TIME) -> dict:
    """Count significant differences for both heterogeneity axes."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    full = common.worker_topology()
    rng = np.random.default_rng(17)

    # (a) cluster-size sweep: subsets keep US East as anchor.
    by_size = {}
    for size in CLUSTER_SIZES:
        others = [k for k in PAPER_REGIONS if k != "us-east-1"]
        keys = ["us-east-1"] + list(
            rng.choice(others, size=size - 1, replace=False)
        )
        sub = full.subset(keys)
        static = measure_independent(sub, weather, at_time=0.0).matrix
        runtime = stable_runtime(sub, weather, at_time=at_time).matrix
        predicted = pipeline.predict(
            at_time=at_time, topology=sub
        )
        by_size[size] = {
            "static_significant": _count_significant(static, runtime),
            "predicted_significant": _count_significant(predicted, runtime),
            "links": size * (size - 1),
        }

    # (b) non-uniform VM fleets.
    by_extra = {}
    for extra in (1, 3, 5):
        chosen = list(rng.choice(PAPER_REGIONS, size=3, replace=False))
        vms = {k: (1 + extra if k in chosen else 1) for k in PAPER_REGIONS}
        hetero = Topology.build(PAPER_REGIONS, "t2.medium", vms)
        static = measure_independent(hetero, weather, at_time=0.0).matrix
        runtime = stable_runtime(hetero, weather, at_time=at_time).matrix
        per_vm_pred = pipeline.predict(at_time=at_time)
        predicted = associated_bw(per_vm_pred, vms)
        by_extra[extra] = {
            "static_significant": _count_significant(static, runtime),
            "predicted_significant": _count_significant(predicted, runtime),
            "extra_vm_dcs": chosen,
        }

    return {
        "by_cluster_size": by_size,
        "by_extra_vms": by_extra,
        "predicted_beats_static_sizes": all(
            v["predicted_significant"] <= v["static_significant"]
            for v in by_size.values()
        ),
        "predicted_beats_static_vms": all(
            v["predicted_significant"] <= v["static_significant"]
            for v in by_extra.values()
        ),
    }


def render(results: dict) -> str:
    """Print both Fig. 11 panels."""
    lines = [
        "Fig. 11(a): significant diffs vs runtime, by cluster size",
        f"{'N':>3} {'links':>6} {'static':>7} {'predicted':>10}",
    ]
    for size, row in results["by_cluster_size"].items():
        lines.append(
            f"{size:>3} {row['links']:>6} {row['static_significant']:>7} "
            f"{row['predicted_significant']:>10}"
        )
    lines.append("Fig. 11(b): with extra VMs in 3 DCs")
    lines.append(f"{'+VMs':>5} {'static':>7} {'predicted':>10}")
    for extra, row in results["by_extra_vms"].items():
        lines.append(
            f"{extra:>5} {row['static_significant']:>7} "
            f"{row['predicted_significant']:>10}"
        )
    lines.append(
        "predicted beats static everywhere: "
        f"sizes={results['predicted_beats_static_sizes']}, "
        f"vms={results['predicted_beats_static_vms']}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
