"""Fig. 10 — handling skewed input data (§5.8.1).

WordCount on 600 MB whose HDFS blocks are concentrated in four DCs
(US East, US West, AP South, AP SE — 64 MB blocks), comparing four
approaches that all use predicted runtime BWs for decisions:

* **Tetrium** — single connection,
* **Tetrium-P** — uniform parallel connections,
* **Tetrium-WNS** — WANify without factoring skewness,
* **Tetrium-W** — WANify with skew weights ``ws`` (§3.3.1).

Paper: Tetrium-W improves average latency by 26.5 / 20.3 / 7.1 % and
cost by 26 / 21.7 / 8.1 % over Tetrium / Tetrium-P / Tetrium-WNS, with
1.2–2.1× higher minimum BW.  Kimchi behaves similarly (panel (b)).
"""

from __future__ import annotations

from repro.cloud.regions import PAPER_REGIONS
from repro.core.heterogeneity import skew_weights_from_sizes
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.wordcount import wordcount_job

#: The paper uses 600 MB; our fluid engine has none of Spark's constant
#: per-task overheads, so a 600 MB job finishes in seconds and plan
#: differences vanish into noise.  We scale the input so the WAN phase
#: is a comparable *fraction* of the job to the paper's runs — the
#: skew mechanism under test is unchanged.
INPUT_MB = 16 * 1024.0
SKEW_TARGETS = ["us-east-1", "us-west-1", "ap-south-1", "ap-southeast-1"]
SKEW_FRACTION = 0.85

PAPER_W_VS_SINGLE = 26.5
PAPER_W_VS_P = 20.3
PAPER_W_VS_WNS = 7.1


def skewed_store() -> HdfsStore:
    """600 MB input skewed onto the four §5.8.1 DCs (64 MB blocks)."""
    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB, block_size_mb=64.0)
    store.skew_to(SKEW_TARGETS, SKEW_FRACTION)
    return store


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Run the four variants on both systems."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    store = skewed_store()
    data = store.data_by_dc()
    job = wordcount_job(data, intermediate_mb=INPUT_MB, name="wordcount-skew")
    predicted = pipeline.predict(at_time=at_time)
    ws = skew_weights_from_sizes(data)

    out = {}
    for system, policy_cls in (
        ("tetrium", TetriumPolicy), ("kimchi", KimchiPolicy)
    ):
        variants = {}
        specs = {
            "single": pipeline.deployment("single"),
            "uniform": pipeline.deployment("wanify-p", bw=predicted),
            "wanify-ns": pipeline.deployment("wanify-tc", bw=predicted),
            "wanify-ws": pipeline.deployment(
                "wanify-tc", bw=predicted, skew_weights=ws
            ),
        }
        for label, deployment in specs.items():
            cluster = GeoCluster.build(
                PAPER_REGIONS, "t2.medium",
                fluctuation=weather, time_offset=at_time,
            )
            result = GdaEngine(cluster).run(
                job, policy_cls(), decision_bw=predicted,
                deployment=deployment,
            )
            variants[label] = {
                "jct_s": result.jct_s,
                "cost_usd": result.cost.total_usd,
                "min_bw": result.min_bw_mbps,
            }
        w = variants["wanify-ws"]
        out[system] = {
            "variants": variants,
            "w_vs_single_pct": common.improvement_pct(
                variants["single"]["jct_s"], w["jct_s"]
            ),
            "w_vs_p_pct": common.improvement_pct(
                variants["uniform"]["jct_s"], w["jct_s"]
            ),
            "w_vs_wns_pct": common.improvement_pct(
                variants["wanify-ns"]["jct_s"], w["jct_s"]
            ),
            "w_cost_vs_single_pct": common.improvement_pct(
                variants["single"]["cost_usd"], w["cost_usd"]
            ),
            "min_bw_ratio_vs_single": common.ratio(
                w["min_bw"], variants["single"]["min_bw"]
            ),
        }
    out["paper"] = {
        "w_vs_single": PAPER_W_VS_SINGLE,
        "w_vs_p": PAPER_W_VS_P,
        "w_vs_wns": PAPER_W_VS_WNS,
    }
    return out


def render(results: dict) -> str:
    """Print both Fig. 10 panels."""
    lines = [
        "Fig. 10: skewed WordCount (600 MB into 4 DCs)",
        f"{'system':>8} {'vs single %':>12} {'vs uniform %':>13} "
        f"{'vs no-skew %':>13} {'minBW ×':>8}",
    ]
    for system in ("tetrium", "kimchi"):
        row = results[system]
        lines.append(
            f"{system:>8} {row['w_vs_single_pct']:>12.1f} "
            f"{row['w_vs_p_pct']:>13.1f} {row['w_vs_wns_pct']:>13.1f} "
            f"{row['min_bw_ratio_vs_single']:>8.2f}"
        )
    paper = results["paper"]
    lines.append(
        f"{'paper':>8} {paper['w_vs_single']:>12.1f} "
        f"{paper['w_vs_p']:>13.1f} {paper['w_vs_wns']:>13.1f} "
        f"{'1.2-2.1':>8}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
