"""Table 1 — gaps between static and runtime BWs.

The paper ran iPerf on the 8-DC VPC-peered mesh, measuring one pair at a
time (static-independent) and then all pairs simultaneously (runtime),
and binned the per-pair differences: 7 pairs in (100, 200] Mbps, 8 in
(200, 250], 3 above 250 — 18 significant gaps in total.  It also notes
the *ordering* changes: the statically slowest DC from SA East (AP SE)
is not the slowest at runtime.

We reproduce both: the binned histogram and the slowest-peer inversion.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import common
from repro.net.measurement import measure_independent, stable_runtime

#: The paper's bin edges (Mbps).
BINS: tuple[tuple[float, float], ...] = (
    (100.0, 200.0),
    (200.0, 250.0),
    (250.0, float("inf")),
)

#: Paper-reported counts per bin.
PAPER_COUNTS = (7, 8, 3)


def slowest_peer(matrix, src: str) -> str:
    """The DC with the weakest link from ``src`` (mean of directions)."""
    candidates = [k for k in matrix.keys if k != src]
    return min(
        candidates,
        key=lambda dst: (matrix.get(src, dst) + matrix.get(dst, src)) / 2.0,
    )


def run(
    fast: bool = True,
    static_time: float = 0.0,
    runtime_time: float = common.EVAL_TIME,
) -> dict:
    """Measure the mesh both ways and bin the per-pair differences.

    The static matrix is measured *in advance* (as Tetrium-style systems
    do) and the runtime matrix during "query execution" hours later —
    staleness is part of the gap the paper quantifies.  Differences are
    counted per directed link, matching iPerf's per-direction readings.
    """
    topology = common.probe_topology()
    weather = common.fluctuation()
    static = measure_independent(topology, weather, static_time)
    runtime = stable_runtime(topology, weather, runtime_time)

    diffs = [
        abs(static.matrix.get(src, dst) - runtime.matrix.get(src, dst))
        for src, dst in static.matrix.pairs()
    ]

    counts = []
    for lo, hi in BINS:
        counts.append(int(sum(1 for d in diffs if lo < d <= hi)))

    reference = "sa-east-1"
    return {
        "counts": tuple(counts),
        "paper_counts": PAPER_COUNTS,
        "total_significant": int(sum(counts)),
        "paper_total": int(sum(PAPER_COUNTS)),
        "n_links": len(diffs),
        "max_gap_mbps": float(max(diffs)),
        "static_slowest_from_sa_east": slowest_peer(static.matrix, reference),
        "runtime_slowest_from_sa_east": slowest_peer(runtime.matrix, reference),
        "ordering_changes": slowest_peer(static.matrix, reference)
        != slowest_peer(runtime.matrix, reference),
        "static_cost_usd": static.cost.dollars,
        "runtime_cost_usd": runtime.cost.dollars,
    }


def render(results: dict) -> str:
    """Print the Table 1 histogram, paper vs measured."""
    lines = [
        "Table 1: gaps between static and runtime BWs (Mbps)",
        f"{'interval':>12} {'paper':>6} {'measured':>9}",
    ]
    labels = ["(100,200]", "(200,250]", "> 250"]
    for label, paper, measured in zip(
        labels, results["paper_counts"], results["counts"]
    ):
        lines.append(f"{label:>12} {paper:>6} {measured:>9}")
    lines.append(
        f"{'total':>12} {results['paper_total']:>6} "
        f"{results['total_significant']:>9}"
    )
    lines.append(
        "slowest peer of SA East: static="
        f"{results['static_slowest_from_sa_east']}, runtime="
        f"{results['runtime_slowest_from_sa_east']}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
