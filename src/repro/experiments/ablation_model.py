"""Substrate ablation: which network-model ingredients carry the paper's
phenomena?

DESIGN.md §5 commits to three load-bearing modeling choices beyond the
RTT-calibrated per-connection rates:

* **cap-proportional contention weights** — uniform parallelism must be
  share-preserving (Fig. 2(b): min BW stays near the single-connection
  level); with naive 1/RTT weights, uniform-8 would (wrongly) multiply
  the weak link several-fold — this is the load-bearing ablation;
* **congestion RTT bias** — reported for reference (its effect here is
  indirect; it matters most for throttling's demand-relief mechanism);
* **per-VM stream budget** — reported for reference (the 3-DC uniform
  mesh stays under the knee; the budget bites in the 8-DC experiments).

This is not a paper figure; it regenerates the evidence that our
substitutions preserve the behaviours the experiments rely on.
"""

from __future__ import annotations

from unittest import mock

from repro.experiments import common
from repro.net import simulator as simulator_mod
from repro.net import tcp
from repro.net.measurement import measure_simultaneous

REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")


def _uniform_vs_single(at_time: float) -> tuple[float, float]:
    topology = common.probe_topology(REGIONS)
    weather = common.fluctuation()
    single = measure_simultaneous(
        topology, weather, at_time, connections=1
    ).matrix
    uniform = measure_simultaneous(
        topology, weather, at_time, connections=8
    ).matrix
    return single.min_bw(), uniform.min_bw()


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Measure the three ablations."""
    # Baseline (full model).
    single_min, uniform_min = _uniform_vs_single(at_time)

    # (a) no congestion RTT bias.
    with mock.patch.object(simulator_mod, "CONGESTION_RTT_BIAS", 0.0):
        _, uniform_min_nobias = _uniform_vs_single(at_time)

    # (b) RTT-only weights (1/RTT instead of cap-proportional).  The
    # simulator reads the weight off the topology profile's TcpModel,
    # so the patch goes on the class method.
    def rtt_only_weight(self, rtt_ms, connections, knee=tcp.DEFAULT_KNEE):
        return tcp.parallel_efficiency(connections, knee) / rtt_ms

    with mock.patch.object(tcp.TcpModel, "rtt_weight", rtt_only_weight):
        _, uniform_min_rttonly = _uniform_vs_single(at_time)

    # (c) no per-VM stream budget (NIC efficiency never degrades).
    with mock.patch.object(
        tcp, "vm_efficiency", lambda total, knee=0: 1.0
    ):
        _, uniform_min_nobudget = _uniform_vs_single(at_time)

    return {
        "single_min": single_min,
        "uniform_min": uniform_min,
        "uniform_min_no_bias": uniform_min_nobias,
        "uniform_min_rtt_only_weights": uniform_min_rttonly,
        "uniform_min_no_vm_budget": uniform_min_nobudget,
        # The full model keeps uniform-8 closest to the single-conn
        # minimum (the paper's 120.5 ≈ 121 observation); each ablation
        # should inflate it.
        "uniform_to_single_ratio": uniform_min / single_min,
        "no_bias_ratio": uniform_min_nobias / single_min,
        "rtt_only_ratio": uniform_min_rttonly / single_min,
    }


def render(results: dict) -> str:
    """Print the ablation readout."""
    return "\n".join(
        [
            "Substrate ablation: uniform-8 min BW vs single-conn min BW",
            f"single-connection min BW:        {results['single_min']:8.1f} Mbps",
            f"uniform-8, full model:           {results['uniform_min']:8.1f} "
            f"({results['uniform_to_single_ratio']:.2f}× single; paper ≈1×)",
            f"uniform-8, no congestion bias:   "
            f"{results['uniform_min_no_bias']:8.1f} "
            f"({results['no_bias_ratio']:.2f}×)",
            f"uniform-8, 1/RTT weights:        "
            f"{results['uniform_min_rtt_only_weights']:8.1f} "
            f"({results['rtt_only_ratio']:.2f}×)",
            f"uniform-8, no per-VM budget:     "
            f"{results['uniform_min_no_vm_budget']:8.1f}",
        ]
    )


if __name__ == "__main__":
    print(render(run()))
