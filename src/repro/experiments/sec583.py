"""§5.8.3 "Benefits in GDA" — heterogeneous compute capacities.

TPC-DS query 78 on the 8-DC cluster with one extra t2.medium in US East
(non-uniform compute).  Tetrium supports heterogeneous compute, so:

* vanilla Tetrium — static-independent BWs, single connection,
* Tetrium-r — predicted runtime BWs, still single connection
  (paper: 5% lower latency, 1% lower cost, 1.2× min BW),
* WANify-enabled Tetrium — predicted BWs + heterogeneous parallel
  connections (paper: 15% lower latency, 7.4% lower cost, 2× min BW).
"""

from __future__ import annotations

from repro.cloud.regions import PAPER_REGIONS
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.tpcds import tpcds_job
from repro.net.measurement import measure_independent

QUERY = 78
INPUT_MB = 100 * 1024.0
EXTRA_VMS = {"us-east-1": 2}  # one extra worker in US East

PAPER = {
    "r_latency_pct": 5.0,
    "r_cost_pct": 1.0,
    "r_min_bw_ratio": 1.2,
    "full_latency_pct": 15.0,
    "full_cost_pct": 7.4,
    "full_min_bw_ratio": 2.0,
}


def _cluster(weather, at_time):
    return GeoCluster.build(
        PAPER_REGIONS,
        "t2.medium",
        vms_per_dc={k: EXTRA_VMS.get(k, 1) for k in PAPER_REGIONS},
        fluctuation=weather,
        time_offset=at_time,
    )


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Run the three §5.8.3 configurations."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    hetero_topology = _cluster(weather, at_time).topology
    static = measure_independent(
        hetero_topology, weather, at_time=0.0
    ).matrix
    predicted = pipeline.predict(
        at_time=at_time, topology=common.worker_topology()
    )
    # Association: scale per-VM predictions for the enlarged US East.
    from repro.core.heterogeneity import associated_bw

    predicted_assoc = associated_bw(
        predicted, {k: EXTRA_VMS.get(k, 1) for k in PAPER_REGIONS}
    )

    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB)
    job = tpcds_job(QUERY, store.data_by_dc())

    vanilla = GdaEngine(_cluster(weather, at_time)).run(
        job, TetriumPolicy(), decision_bw=static
    )
    tetrium_r = GdaEngine(_cluster(weather, at_time)).run(
        job, TetriumPolicy(), decision_bw=predicted_assoc
    )
    full_cluster = _cluster(weather, at_time)
    deployment = pipeline.deployment("wanify-tc", bw=predicted)
    full = GdaEngine(full_cluster).run(
        job,
        TetriumPolicy(),
        decision_bw=predicted_assoc,
        deployment=deployment,
    )

    return {
        "vanilla_jct_min": vanilla.jct_minutes,
        "r_latency_pct": common.improvement_pct(
            vanilla.jct_s, tetrium_r.jct_s
        ),
        "r_cost_pct": common.improvement_pct(
            vanilla.cost.total_usd, tetrium_r.cost.total_usd
        ),
        "r_min_bw_ratio": common.ratio(
            tetrium_r.min_bw_mbps, vanilla.min_bw_mbps
        ),
        "full_latency_pct": common.improvement_pct(
            vanilla.jct_s, full.jct_s
        ),
        "full_cost_pct": common.improvement_pct(
            vanilla.cost.total_usd, full.cost.total_usd
        ),
        "full_min_bw_ratio": common.ratio(
            full.min_bw_mbps, vanilla.min_bw_mbps
        ),
        "paper": PAPER,
    }


def render(results: dict) -> str:
    """Print the §5.8.3 comparison."""
    paper = results["paper"]
    return "\n".join(
        [
            "§5.8.3: heterogeneous compute (q78, extra VM in US East)",
            f"Tetrium-r vs vanilla: latency {results['r_latency_pct']:.1f}% "
            f"(paper {paper['r_latency_pct']:.0f}%), cost "
            f"{results['r_cost_pct']:.1f}% (paper {paper['r_cost_pct']:.0f}%), "
            f"min BW {results['r_min_bw_ratio']:.2f}× "
            f"(paper {paper['r_min_bw_ratio']}×)",
            f"WANify-Tetrium vs vanilla: latency "
            f"{results['full_latency_pct']:.1f}% "
            f"(paper {paper['full_latency_pct']:.0f}%), cost "
            f"{results['full_cost_pct']:.1f}% "
            f"(paper {paper['full_cost_pct']}%), min BW "
            f"{results['full_min_bw_ratio']:.2f}× "
            f"(paper {paper['full_min_bw_ratio']}×)",
        ]
    )


if __name__ == "__main__":
    print(render(run()))
