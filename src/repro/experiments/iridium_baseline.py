"""Iridium [33] under WANify — extending the Table 4 methodology to the
third WAN-aware system the paper cites.

§2.1 groups Iridium with Tetrium and Kimchi as systems that "measure
BWs statically and independently to identify weak links" and would
therefore benefit from runtime BWs.  Iridium's signature mechanism is
*data placement* — moving input chunks off bottleneck sites before the
shuffle — so the scenario where BW accuracy matters to it is a skewed
input whose heavy site is WAN-bottlenecked at runtime (the §2.2 /
Fig. 10 premise): 30% of the input sits in AP SE, which static
measurement ranks mid-pack but runtime measurement ranks near the
bottom (the Table 1 ordering inversion).

Treatments per query:

* **static** — static-independent iPerf BWs, single connection: the
  data placement aims at the *statically* weak sites,
* **predicted** — WANify-predicted runtime BWs, single connection: the
  greedy moves the right data,
* **wanify-tc** — predicted BWs plus the heterogeneous-connection
  deployment.

Expected shape: predicted BWs give a modest JCT/cost edge over static
(the data placement stops mis-aiming), and the full deployment holds
that JCT while multiplying the cluster's minimum BW — Iridium's
network-only task placement is slot-bound on this testbed, so its
latency headroom is smaller than Tetrium/Kimchi's (Table 4), which is
itself a finding: WANify's gains concentrate in systems whose
placements respond to BW.
"""

from __future__ import annotations

from repro.cloud.regions import PAPER_REGIONS
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.systems.iridium import IridiumPolicy
from repro.gda.workloads.tpcds import tpcds_job
from repro.net.measurement import measure_independent

QUERIES = (95, 78)
INPUT_MB = 100 * 1024.0

#: The runtime-bottlenecked DC that hoards the skewed input.
HEAVY_DC = "ap-southeast-1"

#: Fraction of the input sitting in the heavy DC.
SKEW_FRACTION = 0.30


def skewed_input() -> dict[str, float]:
    """100 GB with 30% in the heavy DC, the rest uniform."""
    rest = (1.0 - SKEW_FRACTION) / (len(PAPER_REGIONS) - 1)
    return {
        dc: INPUT_MB * (SKEW_FRACTION if dc == HEAVY_DC else rest)
        for dc in PAPER_REGIONS
    }


def _run_query(query: int, bw, weather, at_time: float, deployment=None):
    cluster = GeoCluster.build(
        PAPER_REGIONS, "t2.medium", fluctuation=weather, time_offset=at_time
    )
    job = tpcds_job(query, skewed_input())
    return GdaEngine(cluster).run(
        job, IridiumPolicy(), decision_bw=bw, deployment=deployment
    )


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Three treatments per query, Iridium throughout."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    topology = common.worker_topology()

    static = measure_independent(topology, weather, at_time=0.0).matrix
    predicted = pipeline.predict(at_time=at_time)

    rows = {}
    for query in QUERIES:
        base = _run_query(query, static, weather, at_time)
        pred = _run_query(query, predicted, weather, at_time)
        full = _run_query(
            query,
            predicted,
            weather,
            at_time,
            deployment=pipeline.deployment("wanify-tc", predicted),
        )
        rows[query] = {
            "base_jct_min": base.jct_minutes,
            "base_migration_mb": base.migration_mb,
            "pred_migration_mb": pred.migration_mb,
            "pred_perf": common.improvement_pct(base.jct_s, pred.jct_s),
            "pred_cost": common.improvement_pct(
                base.cost.total_usd, pred.cost.total_usd
            ),
            "full_perf": common.improvement_pct(base.jct_s, full.jct_s),
            "full_cost": common.improvement_pct(
                base.cost.total_usd, full.cost.total_usd
            ),
            "min_bw_ratio": full.min_bw_mbps / max(base.min_bw_mbps, 1e-9),
        }
    return {"rows": rows}


def render(results: dict) -> str:
    """Per-query treatment table plus the data-placement volumes."""
    lines = [
        "Iridium [33] under WANify (TPC-DS, 100 GB, 30% skew into AP SE;"
        " % vs static BWs)",
        f"{'query':>5} {'base min':>9} {'moved GB s/p':>13} "
        f"{'pred perf':>10} {'pred cost':>10} "
        f"{'full perf':>10} {'full cost':>10} {'minBW ×':>8}",
    ]
    for query, row in results["rows"].items():
        moved = (
            f"{row['base_migration_mb'] / 1024:.1f}/"
            f"{row['pred_migration_mb'] / 1024:.1f}"
        )
        lines.append(
            f"{query:>5} {row['base_jct_min']:>9.1f} {moved:>13} "
            f"{row['pred_perf']:>10.1f} {row['pred_cost']:>10.1f} "
            f"{row['full_perf']:>10.1f} {row['full_cost']:>10.1f} "
            f"{row['min_bw_ratio']:>8.2f}"
        )
    heavy = results["rows"][78]
    lines.append(
        f"q78: accurate BWs re-aim the data placement "
        f"({heavy['pred_perf']:+.1f}% JCT, {heavy['pred_cost']:+.1f}% cost); "
        f"the full deployment holds JCT at ×{heavy['min_bw_ratio']:.1f} "
        "min BW.  Iridium's slot-bound task placement leaves it less "
        "latency headroom than Tetrium/Kimchi — WANify's gains "
        "concentrate in systems whose placements respond to BW."
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
