"""Model-choice validation (§3.1): Random Forest vs a neural regressor.

The paper picked a decision-tree-based Random Forest over deep learning
because the latter "resulted in ~85% training accuracy with a higher
number of pair-wise BW differences against the test dataset" on
paper-scale training data.  This experiment trains both models on the
same Bandwidth-Analyzer dataset, evaluates them on held-out (time,
cluster) combinations, and compares training accuracy and significant
(>100 Mbps) per-pair misses.

Reproduction note: our from-scratch dense net is a stronger baseline on
6-feature tabular rows than the paper's image-style CNN, so the gap is
smaller here (RF ~98% vs NN ~96%, paper 98.51% vs ~85%) — but the
direction and the reason (limited training data penalizes the neural
model) reproduce.
"""

from __future__ import annotations

import numpy as np

from repro.core.dataset import build_training_set
from repro.experiments import common
from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import training_accuracy
from repro.ml.mlp import MLPRegressor

PAPER_NN_ACCURACY = 85.0
PAPER_RF_ACCURACY = 98.51


def run(fast: bool = True) -> dict:
    """Train both models on the same data; compare on held-out times."""
    topology = common.worker_topology()
    weather = common.fluctuation()
    n_train = 40 if fast else 120
    train = build_training_set(topology, weather, n_datasets=n_train, seed=3)
    test = build_training_set(topology, weather, n_datasets=12, seed=91)

    forest = RandomForestRegressor(
        n_estimators=30 if fast else 100, random_state=5
    ).fit(train.X, train.y)
    mlp = MLPRegressor(
        epochs=150 if fast else 400, random_state=5
    ).fit(train.X, train.y)

    rf_train_acc = training_accuracy(train.y, forest.predict(train.X))
    nn_train_acc = training_accuracy(train.y, mlp.predict(train.X))

    rf_test = np.maximum(0.0, forest.predict(test.X))
    nn_test = np.maximum(0.0, mlp.predict(test.X))
    rf_misses = int((np.abs(rf_test - test.y) > 100.0).sum())
    nn_misses = int((np.abs(nn_test - test.y) > 100.0).sum())

    return {
        "rf_train_accuracy": rf_train_acc,
        "nn_train_accuracy": nn_train_acc,
        "rf_test_significant_misses": rf_misses,
        "nn_test_significant_misses": nn_misses,
        "test_rows": len(test),
        "paper_rf_accuracy": PAPER_RF_ACCURACY,
        "paper_nn_accuracy": PAPER_NN_ACCURACY,
    }


def render(results: dict) -> str:
    """Print the model comparison."""
    return "\n".join(
        [
            "Model choice (§3.1): Random Forest vs neural regressor",
            f"training accuracy: RF {results['rf_train_accuracy']:.2f}% "
            f"(paper {results['paper_rf_accuracy']}%), NN "
            f"{results['nn_train_accuracy']:.2f}% "
            f"(paper ~{results['paper_nn_accuracy']:.0f}%)",
            f"significant (>100 Mbps) test misses of "
            f"{results['test_rows']} rows: RF "
            f"{results['rf_test_significant_misses']}, NN "
            f"{results['nn_test_significant_misses']}",
        ]
    )


if __name__ == "__main__":
    print(render(run()))
