"""Continuous recalibration vs a static capacity matrix — E-RECAL.

Extension experiment (no paper counterpart): the same deadline-heavy
mix runs twice on the committed multi-path circuit scenario
(``circuit-failover+circuit-flap`` — 30% of links fail over to a
degraded secondary at t ≈ 600 s while another 30% flap on a duty
cycle) —

* **static** — the submit-time predicted matrix is frozen for the
  whole run, exactly as the pre-recalibration service behaved;
* **recalibrated** — the :class:`~repro.runtime.recalibrator
  .CapacityRecalibrator` re-derives each link's usable capacity every
  ``recal_interval_s`` from the p95 of observed throughput and
  republishes it to the scheduler's decision matrix and the governor.

The static run keeps placing work as if the failed-over links still
carried their pre-failure capacity; the recalibrated run learns the
sustained post-failover level within a few windows and steers later
placements (and deadline math) around the degraded paths.  The
committed cell reports strictly higher SLO attainment with
recalibration on, with nonzero ``recalibrations`` /
``recal_adjustments`` counters; ``benchmarks/test_bench_runtime.py``
pins both into ``BENCH_runtime.json``.
"""

from __future__ import annotations

from typing import Optional

from repro.pipeline.config import ServiceConfig
from repro.runtime.service import (
    PipelineService,
    ServiceSummary,
    default_job_mix,
)

TITLE = "Continuous recalibration vs static capacity — circuit chaos"

#: The committed comparison cell (see module docstring).
REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")
SEED = 42
SCENARIO = "circuit-failover+circuit-flap"
JOBS = 10
SCALE_MB = 12000.0
ARRIVAL_SCALE = 0.3
DEADLINE_S = 900.0
MAX_CONCURRENT = 3


def recal_config(recalibrate: bool, fast: bool = True) -> ServiceConfig:
    """The committed cell's config, recalibrated or static."""
    return ServiceConfig(
        regions=REGIONS,
        seed=SEED,
        scenario=SCENARIO,
        scheduler="deadline-edf",
        max_concurrent=MAX_CONCURRENT,
        slo_deadline_s=DEADLINE_S,
        n_training_datasets=4 if fast else 24,
        n_estimators=3 if fast else 16,
        recalibrate=recalibrate,
    )


def run_service(recalibrate: bool, fast: bool = True) -> PipelineService:
    """One full (stopped) service run of the committed cell."""
    service = PipelineService.build(recal_config(recalibrate, fast))
    mix = default_job_mix(REGIONS, count=JOBS, seed=SEED, scale_mb=SCALE_MB)
    mix = [(delay * ARRIVAL_SCALE, job) for delay, job in mix]
    service.submit_mix(mix)
    service.run()
    service.stop()
    return service


def run(fast: bool = True) -> dict[str, ServiceSummary]:
    """Both runs; keys ``static`` and ``recalibrated``."""
    return {
        "static": run_service(recalibrate=False, fast=fast).summary(),
        "recalibrated": run_service(recalibrate=True, fast=fast).summary(),
    }


def render(results: dict[str, ServiceSummary]) -> str:
    """Side-by-side table plus the recalibration counters."""
    lines = [
        f"{'mode':<14} {'attainment':>10} {'mean JCT':>9} {'recals':>7} "
        f"{'adjusts':>8} {'replans':>8}",
    ]
    for mode, summary in results.items():
        attained = summary.slo_attained
        total = attained + summary.slo_missed
        lines.append(
            f"{mode:<14} {attained:>6}/{total:<3} "
            f"{summary.mean_jct_s:>9.1f} {summary.recalibrations:>7} "
            f"{summary.recal_adjustments:>8} {summary.replans:>8}"
        )
    static = results["static"]
    recal = results["recalibrated"]
    delta = (recal.slo_attainment - static.slo_attainment) * 100.0
    lines.append(
        f"\nrecalibration: {delta:+.0f} pts SLO attainment "
        f"({static.slo_attainment * 100.0:.0f}% -> "
        f"{recal.slo_attainment * 100.0:.0f}%) from "
        f"{recal.recalibrations} gauging ticks adjusting "
        f"{recal.recal_adjustments} link capacities"
    )
    return "\n".join(lines) + "\n"


def main(fast: Optional[bool] = True) -> None:
    """CLI hook: run and print."""
    print(render(run(fast=bool(fast))))


if __name__ == "__main__":
    main()
