"""Adaptive bandit switcher vs static policy bundles on drifting weather.

Extension experiment (no paper counterpart): the same overloaded job
mix runs four times on identical drifting weather — a diurnal swing
composed with a flash crowd, so the regime the scheduler faces keeps
changing mid-run:

* **fifo** — the static baseline: FIFO admission, no preemption;
* **edf** — static ``deadline-edf`` admission, no preemption;
* **edf+preempt** — static ``deadline-edf`` plus ``urgent-slo``
  preemption (the strongest static bundle);
* **adaptive** — starts as the fifo baseline but runs the ``ucb1``
  policy switcher, whose default arms are exactly the three static
  bundles above.

The static bundles each fit one phase of the scenario: FIFO wastes the
calm opening, EDF helps once deadlines tighten, preemption pays only
while the flash crowd bites.  The switcher re-decides between control
ticks from live SLO stats per observed regime, so it can ride the
drift — the regression test (``tests/tuner/test_switcher.py``) pins
that the adaptive run's SLO attainment is at least the best static
bundle's at equal or lower probe+replan cost.
"""

from __future__ import annotations

from typing import Optional

from repro.pipeline.config import ServiceConfig
from repro.runtime.service import (
    PipelineService,
    ServiceSummary,
    default_job_mix,
)

TITLE = "Adaptive tuner — bandit switcher vs static policy bundles"

#: The committed comparison cell (see module docstring).
REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")
SEED = 31
SCENARIO = "diurnal+flash-crowd"
JOBS = 12
SCALE_MB = 3200.0
ARRIVAL_SCALE = 0.15
DEADLINE_S = 600.0
MAX_CONCURRENT = 2
SWITCH_COOLDOWN_S = 180.0

#: mode → (scheduler, preemption, tuner) of the committed bundles.
MODES: dict[str, tuple[str, str, str]] = {
    "fifo": ("fifo", "none", "none"),
    "edf": ("deadline-edf", "none", "none"),
    "edf+preempt": ("deadline-edf", "urgent-slo", "none"),
    "adaptive": ("fifo", "none", "ucb1"),
}


def tuner_config(mode: str, fast: bool = True) -> ServiceConfig:
    """The committed cell's config for one mode."""
    scheduler, preemption, tuner = MODES[mode]
    return ServiceConfig(
        regions=REGIONS,
        seed=SEED,
        scenario=SCENARIO,
        scheduler=scheduler,
        preemption=preemption,
        tuner=tuner,
        switch_cooldown_s=SWITCH_COOLDOWN_S,
        max_concurrent=MAX_CONCURRENT,
        slo_deadline_s=DEADLINE_S,
        n_training_datasets=4 if fast else 24,
        n_estimators=3 if fast else 16,
    )


def run_service(mode: str, fast: bool = True) -> PipelineService:
    """One full (stopped) service run of the committed cell."""
    service = PipelineService.build(tuner_config(mode, fast))
    mix = default_job_mix(REGIONS, count=JOBS, seed=SEED, scale_mb=SCALE_MB)
    mix = [(delay * ARRIVAL_SCALE, job) for delay, job in mix]
    service.submit_mix(mix)
    service.run()
    service.stop()
    return service


def cost_usd(summary: ServiceSummary) -> float:
    """The tuning objective's cost side: probe + re-plan dollars."""
    return summary.probe_cost_usd + summary.replan_cost_usd


def best_static(results: dict[str, ServiceSummary]) -> str:
    """The static mode with the highest attainment (cost breaks ties)."""
    statics = [mode for mode in results if mode != "adaptive"]
    return max(
        statics,
        key=lambda mode: (
            results[mode].slo_attainment,
            -cost_usd(results[mode]),
        ),
    )


def run(fast: bool = True) -> dict[str, ServiceSummary]:
    """All four runs, keyed by mode (``adaptive`` last)."""
    return {mode: run_service(mode, fast=fast).summary() for mode in MODES}


def render(results: dict[str, ServiceSummary]) -> str:
    """Side-by-side table plus the adaptive-vs-best-static verdict."""
    lines = [
        f"{'mode':<13} {'attainment':>10} {'mean JCT':>9} "
        f"{'cost $':>8} {'preempt':>8} {'switches':>9} {'arms':>5}",
    ]
    for mode, summary in results.items():
        attained = summary.slo_attained
        total = attained + summary.slo_missed
        lines.append(
            f"{mode:<13} {attained:>6}/{total:<3} "
            f"{summary.mean_jct_s:>9.1f} {cost_usd(summary):>8.4f} "
            f"{summary.preemptions:>8} {summary.policy_switches:>9} "
            f"{len(summary.tuner_arm_stats):>5}"
        )
    static = results[best_static(results)]
    adaptive = results["adaptive"]
    delta = (adaptive.slo_attainment - static.slo_attainment) * 100.0
    lines.append(
        f"\nadaptive vs best static ({best_static(results)}): "
        f"{delta:+.0f} pts SLO attainment "
        f"({static.slo_attainment * 100.0:.0f}% -> "
        f"{adaptive.slo_attainment * 100.0:.0f}%) at "
        f"${cost_usd(adaptive):.4f} vs ${cost_usd(static):.4f} "
        f"probe+replan cost, {adaptive.policy_switches} switches over "
        f"{len(adaptive.tuner_arm_stats)} arms"
    )
    return "\n".join(lines) + "\n"


def main(fast: Optional[bool] = True) -> None:
    """CLI hook: run and print."""
    print(render(run(fast=bool(fast))))


if __name__ == "__main__":
    main()
