"""Fig. 6 — efficacy against various intermediate (shuffle) sizes.

§5.3.2 runs WordCount with all-distinct-word inputs so the intermediate
volume is controllable, comparing vanilla Spark against WANify-TC.  The
paper's finding: for tiny shuffles (2.06, 3.63 MB) both behave alike —
"the required WAN capacity is low" (and WANify's < 1 MB-per-pair rule
keeps its agents quiet) — while beyond ~7.4 MB WANify reduces latency
and cost with improved minimum BW.

The reproduction target is the *crossover*: no gain below a few MB, a
widening gain beyond.
"""

from __future__ import annotations

from repro.cloud.regions import PAPER_REGIONS
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.vanilla import LocalityPolicy
from repro.gda.workloads.wordcount import wordcount_job

#: Intermediate sizes (MB) swept; the first three mirror the paper's
#: small points (2.06, 3.63, 7.4 MB), the rest extend "and beyond".
INTERMEDIATE_MB = (2.06, 3.63, 7.4, 30.0, 120.0, 480.0)

#: WordCount inputs of §5.1 are 100–600 MB.
INPUT_MB = 600.0

PAPER_CROSSOVER_MB = 7.4


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Sweep intermediate sizes with and without WANify-TC."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB, block_size_mb=64.0)
    predicted = pipeline.predict(at_time=at_time)

    rows = []
    for size in INTERMEDIATE_MB:
        job = wordcount_job(store.data_by_dc(), intermediate_mb=size)
        outcomes = {}
        for variant in ("single", "wanify-tc"):
            cluster = GeoCluster.build(
                PAPER_REGIONS,
                "t2.medium",
                fluctuation=weather,
                time_offset=at_time,
            )
            deployment = pipeline.deployment(variant, bw=predicted)
            outcomes[variant] = GdaEngine(cluster).run(
                job, LocalityPolicy(), deployment=deployment
            )
        base, tc = outcomes["single"], outcomes["wanify-tc"]
        rows.append(
            {
                "intermediate_mb": size,
                "vanilla_jct_s": base.jct_s,
                "wanify_jct_s": tc.jct_s,
                "vanilla_cost_usd": base.cost.total_usd,
                "wanify_cost_usd": tc.cost.total_usd,
                "vanilla_min_bw": base.min_bw_mbps,
                "wanify_min_bw": tc.min_bw_mbps,
                "latency_gain_pct": common.improvement_pct(
                    base.jct_s, tc.jct_s
                ),
            }
        )

    # The crossover: first size where WANify's gain is materially
    # positive (> 2%).
    crossover = next(
        (r["intermediate_mb"] for r in rows if r["latency_gain_pct"] > 2.0),
        None,
    )
    return {
        "rows": rows,
        "crossover_mb": crossover,
        "paper_crossover_mb": PAPER_CROSSOVER_MB,
        "small_sizes_equal": all(
            abs(r["latency_gain_pct"]) < 2.0
            for r in rows
            if r["intermediate_mb"] < 4.0
        ),
    }


def render(results: dict) -> str:
    """Print the Fig. 6 sweep."""
    lines = [
        "Fig. 6: WANify-TC vs vanilla across intermediate data sizes",
        f"{'size MB':>8} {'vanilla s':>10} {'wanify s':>10} "
        f"{'gain %':>7} {'minBW v':>8} {'minBW w':>8}",
    ]
    for r in results["rows"]:
        lines.append(
            f"{r['intermediate_mb']:>8.2f} {r['vanilla_jct_s']:>10.1f} "
            f"{r['wanify_jct_s']:>10.1f} {r['latency_gain_pct']:>7.1f} "
            f"{r['vanilla_min_bw']:>8.1f} {r['wanify_min_bw']:>8.1f}"
        )
    lines.append(
        f"crossover: measured ≈{results['crossover_mb']} MB "
        f"(paper ≈{results['paper_crossover_mb']} MB)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
