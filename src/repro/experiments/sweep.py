"""Registry-driven sweep matrices: variants × scenarios × stage choices.

Terra-style cross-layer comparisons need a matrix, not a single run:
the interesting WANify results are *relative* — how much probe cost the
passive-telemetry gauger saves, what that does to re-plan counts, which
placement backend wins under which scenario.  This module expands a
``[sweep]`` TOML section into a full cartesian matrix over the
registries, runs every cell through
:class:`~repro.runtime.service.PipelineService`, and writes a JSON +
markdown comparison report with probe-cost and replan columns.

A sweep file is an ordinary layered-config file plus one table::

    # base ServiceConfig fields (same file also works with `serve`)
    regions = ["us-east-1", "us-west-1", "ap-southeast-1"]
    n_training_datasets = 6
    n_estimators = 5

    [sweep]
    variants  = ["wanify-tc", "single"]
    scenarios = ["step-drop", "diurnal+flash-crowd"]
    gaugers   = ["snapshot", "passive-telemetry"]
    schedulers = ["fifo", "deadline-edf"]
    jobs = 2
    scale_mb = 600.0
    repeats = 3          # per-cell seed range → mean ± stdev columns

Every axis key maps to a :class:`~repro.pipeline.config.ServiceConfig`
field and validates against the matching registry, so anything
registered from user code sweeps the same way the built-ins do.  Cells
that share training-relevant knobs share one trained predictor — an
8-cell sweep trains once, not eight times.

Cells are independent simulations; ``run_sweep(spec, workers=N)``
(``wanify sweep --jobs N``) fans them out over a process pool with
the report rows kept in deterministic matrix order.

Entry points: :func:`run_sweep` in code, ``wanify sweep --config
file.toml`` on the command line (``--dry-run`` prints the matrix
without running it).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import itertools
import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.net.profiles import network_profile
from repro.net.topology import Topology
from repro.pipeline.alternates import CachedPredictor
from repro.pipeline.config import (
    ServiceConfig,
    _coerce,
    _field_types,
    layered_config,
    load_config_file,
)
from repro.pipeline.core import Pipeline
from repro.pipeline.registry import (
    Registry,
    admission_policy_registry,
    build_stage,
    gauger_registry,
    planner_registry,
    policy_registry,
    predictor_registry,
    preemption_policy_registry,
    variant_registry,
)
from repro.pipeline.stages import ForestPredictor

#: ``[sweep]`` axis key → (ServiceConfig field, validating registry).
#: Scenarios validate through :func:`repro.runtime.scenarios
#: .scenario_known` instead (composed ``+`` names are legal there);
#: registry-less non-scenario axes (``governors`` / ``autoscales`` —
#: booleans) coerce through the config field's annotated type, so
#: ``governors = [true, false]`` sweeps the governor on and off.
AXES: tuple[tuple[str, str, Optional[Registry]], ...] = (
    ("variants", "variant", variant_registry),
    ("scenarios", "scenario", None),
    ("gaugers", "gauger", gauger_registry),
    ("predictors", "predictor", predictor_registry),
    ("planners", "planner", planner_registry),
    ("policies", "policy", policy_registry),
    ("schedulers", "scheduler", admission_policy_registry),
    ("preemptions", "preemption", preemption_policy_registry),
    ("governors", "governor", None),
    ("autoscales", "autoscale", None),
    ("recalibrates", "recalibrate", None),
)

#: Entry-point defaults for sweep runs (beneath files/env/overrides):
#: training sizes small enough that a matrix stays interactive.
SWEEP_DEFAULTS: Mapping[str, Any] = {
    "n_training_datasets": 8,
    "n_estimators": 6,
}

#: Columns every report carries, beyond the axis columns.
METRIC_COLUMNS: tuple[str, ...] = (
    "completed",
    "mean_jct_s",
    "total_jct_s",
    "makespan_s",
    "replans",
    "probe_transfers",
    "probe_gb",
    "probe_cost_usd",
    "replan_cost_usd",
    "slo_attainment",
    "fairness",
    "preemptions",
    "throttle_moves",
    "concurrency_high_water",
    "rollup_rows",
    "events_traced",
    "metrics_scrapes",
    "policy_switches",
    "tuner_arms_explored",
    "recalibrations",
    "recal_adjustments",
)


@dataclass(frozen=True)
class SweepSpec:
    """A fully validated sweep: base config, axes, and run knobs."""

    base: ServiceConfig
    #: ServiceConfig field → the values that axis takes (≥ 1 each;
    #: strings for registry/scenario axes, field-typed values — e.g.
    #: booleans — for the rest).
    axes: Mapping[str, tuple[Any, ...]]
    #: Axis fields explicitly listed in the ``[sweep]`` section, in
    #: file order — these become the report's leading columns.
    swept: tuple[str, ...]
    jobs: int = 3
    scale_mb: float = 1000.0
    duration: Optional[float] = None
    #: Multiplier on the job mix's arrival gaps (< 1 compresses the
    #: arrivals and builds queue pressure — the regime where admission
    #: policies actually disagree).
    arrival_scale: float = 1.0
    #: Per-cell repetitions over a seed range (``repeats`` in
    #: ``[sweep]``); metrics aggregate to mean ± stdev.
    repeats: int = 1
    #: Base seed for the repetition range (``seed`` in ``[sweep]``);
    #: ``None`` uses the base config's seed.
    seed: Optional[int] = None

    def seed_for(self, repeat: int) -> int:
        """The weather/campaign seed of repetition ``repeat``."""
        base_seed = self.seed if self.seed is not None else self.base.seed
        return base_seed + repeat

    @property
    def cells(self) -> list[dict[str, Any]]:
        """The cartesian matrix as per-cell config overrides."""
        fields = [f for f in self.axes if len(self.axes[f]) > 0]
        combos = itertools.product(*(self.axes[f] for f in fields))
        return [dict(zip(fields, combo)) for combo in combos]

    def label(self, cell: Mapping[str, Any]) -> str:
        """Compact ``field=value`` label over the swept axes."""
        parts = [f"{f}={cell[f]}" for f in self.swept]
        return " ".join(parts) if parts else "default"

    @property
    def shape(self) -> str:
        """``2×2×2``-style description of the swept axes."""
        sizes = [str(len(self.axes[f])) for f in self.swept]
        return "×".join(sizes) if sizes else "1"


class SweepError(ValueError):
    """A sweep file failed validation (bad axis value, empty matrix…)."""


def load_sweep(
    path: Union[str, Path],
    environ: Optional[Mapping[str, str]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
) -> SweepSpec:
    """Parse and validate a sweep file.

    The top-level table resolves through the ordinary config layers
    (so ``WANIFY_*`` vars and ``overrides`` still apply); the
    ``[sweep]`` table supplies the axes and the per-cell run knobs
    (``jobs``, ``scale_mb``, ``duration``).
    """
    from repro.runtime.scenarios import scenario_known, scenario_names

    data = load_config_file(path)
    section = data.get("sweep", {})
    if not isinstance(section, dict):
        raise SweepError(f"[sweep] in {path} must be a table")
    base = layered_config(
        ServiceConfig,
        path=path,
        environ=environ,
        overrides=overrides,
        defaults=SWEEP_DEFAULTS,
    )

    types = _field_types(ServiceConfig)
    axes: dict[str, tuple[Any, ...]] = {}
    swept: list[str] = []
    for key, config_field_, registry in AXES:
        raw = section.get(key)
        if raw is None:
            # Unswept axes still validate — a bad base-config name
            # should fail here, not as a mid-run traceback.
            axes[config_field_] = (getattr(base, config_field_),)
            continue
        if isinstance(raw, (str, bool)):
            raw = [raw]
        if not isinstance(raw, (list, tuple)):
            raise SweepError(
                f"sweep axis {key!r} must be a value or a list of "
                f"values; got {raw!r}"
            )
        if registry is not None or config_field_ == "scenario":
            values = tuple(str(v) for v in raw)
        else:
            # Registry-less, non-scenario axes (the control-plane
            # booleans): coerce through the config field's type so
            # TOML booleans and "true"/"false" strings both work.
            try:
                values = tuple(
                    _coerce(config_field_, types[config_field_], v)
                    for v in raw
                )
            except ValueError as exc:
                raise SweepError(
                    f"bad value in sweep axis {key!r}: {exc}"
                ) from None
        if not values:
            raise SweepError(f"sweep axis {key!r} is empty")
        axes[config_field_] = values
        swept.append(config_field_)
    for key, config_field_, registry in AXES:
        for value in axes[config_field_]:
            if value is None:  # unswept optional field (scenario)
                continue
            if registry is not None:
                if value not in registry:
                    raise SweepError(
                        f"unknown {registry.kind} {value!r} in sweep axis "
                        f"{key!r}; known: {', '.join(registry.names())}"
                    )
            elif config_field_ == "scenario" and not scenario_known(value):
                raise SweepError(
                    f"unknown scenario {value!r} in sweep axis {key!r}; "
                    f"known: {', '.join(scenario_names(include_composed=True))} "
                    f"(join with + to compose)"
                )

    if any(axes["autoscale"]) and base.autoscale_max < base.max_concurrent:
        raise SweepError(
            f"autoscale_max ({base.autoscale_max}) must be ≥ "
            f"max_concurrent ({base.max_concurrent}) when autoscaling — "
            f"the cell would fail mid-matrix otherwise"
        )
    known_keys = {key for key, _, _ in AXES} | {
        "jobs",
        "scale_mb",
        "duration",
        "arrival_scale",
        "repeats",
        "seed",
    }
    unknown = sorted(set(section) - known_keys)
    if unknown:
        raise SweepError(
            f"unknown [sweep] keys {unknown}; known: {sorted(known_keys)}"
        )
    jobs = int(section.get("jobs", 3))
    if jobs < 1:
        raise SweepError(f"[sweep] jobs must be ≥ 1: {jobs}")
    scale_mb = float(section.get("scale_mb", 1000.0))
    if scale_mb <= 0:
        raise SweepError(f"[sweep] scale_mb must be positive: {scale_mb}")
    duration = section.get("duration")
    arrival_scale = float(section.get("arrival_scale", 1.0))
    if arrival_scale <= 0:
        raise SweepError(
            f"[sweep] arrival_scale must be positive: {arrival_scale}"
        )
    repeats = int(section.get("repeats", 1))
    if repeats < 1:
        raise SweepError(f"[sweep] repeats must be ≥ 1: {repeats}")
    seed = section.get("seed")
    return SweepSpec(
        base=base,
        axes=axes,
        swept=tuple(swept),
        jobs=jobs,
        scale_mb=scale_mb,
        duration=float(duration) if duration is not None else None,
        arrival_scale=arrival_scale,
        repeats=repeats,
        seed=int(seed) if seed is not None else None,
    )


@dataclass
class CellResult:
    """One matrix cell's configuration and measured outcome.

    With ``repeats > 1`` the ``metrics`` are per-seed means and
    ``metrics_std`` carries the matching sample standard deviations.
    """

    cell: dict[str, Any]
    label: str
    metrics: dict[str, float]
    #: Sample stdev per metric (only populated when ``repeats > 1``).
    metrics_std: dict[str, float] = field(default_factory=dict)
    #: Seeds this cell actually ran (one per repetition).
    seeds: tuple[int, ...] = ()
    #: Cache statistics when the cell ran a caching predictor (first
    #: repetition's run).
    cache_hits: Optional[int] = None
    cache_misses: Optional[int] = None
    #: The backend a multi-backend planner settled on (last choice of
    #: the first repetition).
    chosen_policy: Optional[str] = None

    def to_json(self) -> dict[str, Any]:
        """JSON-ready flat representation (stdevs as ``<name>_std``)."""
        out: dict[str, Any] = {"label": self.label, **self.cell}
        out.update(self.metrics)
        for name, value in self.metrics_std.items():
            out[f"{name}_std"] = value
        if len(self.seeds) > 1:
            out["seeds"] = list(self.seeds)
        if self.cache_hits is not None:
            out["cache_hits"] = self.cache_hits
            out["cache_misses"] = self.cache_misses
        if self.chosen_policy is not None:
            out["chosen_policy"] = self.chosen_policy
        return out


@dataclass
class SweepResult:
    """Everything a finished sweep produced."""

    spec: SweepSpec
    rows: list[CellResult] = field(default_factory=list)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready report (axes, run knobs, one row per cell)."""
        return {
            "shape": self.spec.shape,
            "axes": {f: list(v) for f, v in self.spec.axes.items()},
            "swept": list(self.spec.swept),
            "jobs": self.spec.jobs,
            "scale_mb": self.spec.scale_mb,
            "duration": self.spec.duration,
            "repeats": self.spec.repeats,
            "cells": [row.to_json() for row in self.rows],
        }


def _training_key(config: ServiceConfig) -> tuple:
    """Everything the offline campaign depends on — cells sharing this
    share one trained forest."""
    return (
        config.regions,
        config.vm,
        config.profile,
        config.seed,
        config.n_training_datasets,
        config.n_estimators,
    )


def _train_forest(
    config: ServiceConfig, trained: dict[tuple, ForestPredictor]
) -> ForestPredictor:
    """The trained forest for ``config``'s training key (cached).

    The single source of how a cell's forest is built — the sequential
    path (:func:`_cell_pipeline`) and the parallel pre-trainer
    (:func:`_pretrain`) both call this, so ``--jobs N`` cannot drift
    from a sequential run by training differently.
    """
    key = _training_key(config)
    forest = trained.get(key)
    if forest is None:
        profile = network_profile(config.profile)
        base_weather = profile.fluctuation(seed=config.seed)
        topology = Topology.build(config.regions, config.vm, profile=profile)
        forest = ForestPredictor(topology, base_weather, config)
        forest.train(topology, base_weather, config)
        trained[key] = forest
    return forest


def _cell_pipeline(
    config: ServiceConfig, trained: dict[tuple, ForestPredictor]
) -> Pipeline:
    """Build the cell's pipeline, reusing a trained forest when possible.

    The forest predictor is pure at inference time, so cells differing
    only in variant / scenario / gauger / planner share one instance;
    the ``cached`` predictor gets a fresh memo wrapper per cell so one
    cell's cache never leaks into another's measurements.
    """
    profile = network_profile(config.profile)
    base_weather = profile.fluctuation(seed=config.seed)
    topology = Topology.build(config.regions, config.vm, profile=profile)
    context = {"topology": topology, "weather": base_weather, "config": config}

    predictor = None
    if config.predictor in ("forest", "cached"):
        predictor = _train_forest(config, trained)
        if config.predictor == "cached":
            predictor = CachedPredictor(
                inner=predictor,
                ttl_s=config.cache_ttl_s,
                drift_tolerance=config.cache_drift_tolerance,
            )
    else:
        predictor = build_stage(predictor_registry, config.predictor, **context)

    gauger = build_stage(gauger_registry, config.gauger, **context)
    planner = build_stage(planner_registry, config.planner, **context)
    return Pipeline(
        topology,
        base_weather,
        config,
        gauger=gauger,
        predictor=predictor,
        planner=planner,
    )


def _run_once(
    spec: SweepSpec,
    config: ServiceConfig,
    trained: dict[tuple, ForestPredictor],
):
    """One service run for one cell/seed; returns the stopped service."""
    from repro.runtime.service import PipelineService, default_job_mix

    pipeline = _cell_pipeline(config, trained)
    service = PipelineService.build(config, pipeline=pipeline)
    mix = default_job_mix(
        config.regions,
        count=spec.jobs,
        seed=config.seed,
        scale_mb=spec.scale_mb,
    )
    mix = [(delay * spec.arrival_scale, job) for delay, job in mix]
    service.submit_mix(mix)
    service.run(until=spec.duration)
    service.stop()
    return service


def run_cell(
    spec: SweepSpec,
    cell: Mapping[str, Any],
    trained: Optional[dict[tuple, ForestPredictor]] = None,
) -> CellResult:
    """Run one matrix cell (all its repetitions) and collect its row."""
    trained = trained if trained is not None else {}
    seeds = tuple(spec.seed_for(r) for r in range(spec.repeats))
    samples: list[dict[str, float]] = []
    first = None
    for seed in seeds:
        config = dataclasses.replace(spec.base, **dict(cell), seed=seed)
        service = _run_once(spec, config, trained)
        if first is None:
            first = service
        row = service.summary().to_row()
        samples.append({name: row[name] for name in METRIC_COLUMNS})
    metrics = {
        name: statistics.fmean(sample[name] for sample in samples)
        for name in METRIC_COLUMNS
    }
    metrics_std = (
        {
            name: statistics.stdev([sample[name] for sample in samples])
            for name in METRIC_COLUMNS
        }
        if len(samples) > 1
        else {}
    )
    predictor = first.pipeline.predictor
    planner = first.pipeline.planner
    return CellResult(
        cell=dict(cell),
        label=spec.label(cell),
        metrics=metrics,
        metrics_std=metrics_std,
        seeds=seeds,
        cache_hits=getattr(predictor, "hits", None),
        cache_misses=getattr(predictor, "misses", None),
        chosen_policy=getattr(planner, "chosen_policy", None),
    )


def _pretrain(spec: SweepSpec) -> dict[tuple, ForestPredictor]:
    """Train every forest the matrix will need, once, in the parent.

    Parallel workers cannot share a lazily-filled cache (each process
    would train its own copy), so the parallel path trains all
    distinct training keys up front and ships the finished predictors
    to the workers.
    """
    trained: dict[tuple, ForestPredictor] = {}
    for cell in spec.cells:
        for repeat in range(spec.repeats):
            config = dataclasses.replace(
                spec.base, **dict(cell), seed=spec.seed_for(repeat)
            )
            if config.predictor in ("forest", "cached"):
                _train_forest(config, trained)
    return trained


#: Per-worker trained-forest cache, installed by the pool initializer
#: so it is pickled once per worker instead of once per cell.
_WORKER_TRAINED: dict[tuple, ForestPredictor] = {}


def _init_worker(trained: dict[tuple, ForestPredictor]) -> None:
    global _WORKER_TRAINED
    _WORKER_TRAINED = trained


def _run_cell_in_worker(spec: SweepSpec, cell: dict[str, Any]) -> CellResult:
    return run_cell(spec, cell, _WORKER_TRAINED)


def run_sweep(spec: SweepSpec, progress=None, workers: int = 1) -> SweepResult:
    """Run every cell of the matrix.

    Cells are independent simulations, so ``workers > 1`` fans them
    out over a :class:`concurrent.futures.ProcessPoolExecutor`
    (``wanify sweep --jobs N``).  The report is identical either way:
    rows always appear in matrix order, and each cell's simulation is
    a pure function of its config, so parallel and sequential runs
    produce the same numbers.

    ``progress`` is an optional ``callable(index, total, label)`` the
    CLI uses for per-cell status lines.
    """
    if workers < 1:
        raise SweepError(f"workers must be ≥ 1: {workers}")
    result = SweepResult(spec)
    cells = spec.cells
    if workers == 1:
        trained: dict[tuple, ForestPredictor] = {}
        for index, cell in enumerate(cells):
            if progress is not None:
                progress(index, len(cells), spec.label(cell))
            result.rows.append(run_cell(spec, cell, trained))
        return result
    trained = _pretrain(spec)
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=min(workers, len(cells)) or 1,
        initializer=_init_worker,
        initargs=(trained,),
    ) as pool:
        futures = [
            pool.submit(_run_cell_in_worker, spec, cell) for cell in cells
        ]
        if progress is not None:
            # Report cells as they *finish* (real progress, possibly
            # out of matrix order), not as they are submitted.
            labels = {
                future: spec.label(cell)
                for future, cell in zip(futures, cells)
            }
            for done, future in enumerate(
                concurrent.futures.as_completed(futures)
            ):
                progress(done, len(cells), labels[future])
        # Collection in submission order keeps the report deterministic
        # regardless of which worker finishes first.
        result.rows.extend(future.result() for future in futures)
    return result


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 0.01:
            # Probe dollars are fractions of a cent — don't render a
            # nonzero charge as "0.00".
            return f"{value:.4f}"
        return f"{value:.2f}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def render_markdown(result: SweepResult) -> str:
    """The comparison table as GitHub-flavored markdown.

    With ``repeats > 1`` every metric cell reads ``mean ±stdev``.
    """
    spec = result.spec
    axis_columns = list(spec.swept) or ["variant"]
    extra: list[str] = []
    if any(row.cache_hits is not None for row in result.rows):
        extra.append("cache_hits")
    if any(row.chosen_policy is not None for row in result.rows):
        extra.append("chosen_policy")
    header = axis_columns + list(METRIC_COLUMNS) + extra
    seeds = (
        f"seeds: {spec.seed_for(0)}–{spec.seed_for(spec.repeats - 1)} "
        f"({spec.repeats} repeats per cell)"
        if spec.repeats > 1
        else f"seed: {spec.base.seed}"
    )
    lines = [
        f"# Sweep report ({spec.shape} matrix, {len(result.rows)} cells)",
        "",
        f"jobs per cell: {spec.jobs}, scale: {spec.scale_mb:.0f} MB, "
        f"{seeds}",
        "",
        "| " + " | ".join(header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in result.rows:
        flat = row.to_json()
        cells = []
        for col in header:
            rendered = _format_value(flat.get(col, ""))
            if col in row.metrics_std:
                rendered += f" ±{_format_value(row.metrics_std[col])}"
            cells.append(rendered)
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def write_report(result: SweepResult, output: Union[str, Path]) -> tuple[Path, Path]:
    """Write ``sweep.json`` and ``sweep.md`` under ``output``."""
    directory = Path(output)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "sweep.json"
    md_path = directory / "sweep.md"
    json_path.write_text(json.dumps(result.to_json(), indent=2) + "\n")
    md_path.write_text(render_markdown(result))
    return json_path, md_path
