"""Controlled vs uncontrolled flash crowd — the control plane's case.

Extension experiment (no paper counterpart): the same overloaded
flash-crowd mix runs twice on identical weather —

* **uncontrolled** — the PR-4 service as-is: FIFO admission, fixed
  ``max_concurrent``, no preemption, no governor;
* **controlled** — the full control plane: ``urgent-slo`` preemption,
  the deadline-aware bandwidth governor, and concurrency autoscaling
  (ceiling 3).

Twelve jobs arrive ~6× faster than two slots drain, each promising a
deadline spread around 600 s; the flash crowd (t = 600 s) then takes a
bite out of the WAN.  The controlled run rescues deadline-critical
jobs three ways — preempting slack-rich runners, throttling slack-rich
jobs' exclusive pairs so poor jobs' flows widen, and opening a third
slot while the queue backs up — and reports strictly higher SLO
attainment with nonzero ``preemptions`` and ``throttle_moves``.  The
regression test pinning this claim is
``tests/runtime/test_control.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.pipeline.config import ServiceConfig
from repro.runtime.service import (
    PipelineService,
    ServiceSummary,
    default_job_mix,
)

TITLE = "Control plane — flash crowd, controlled vs uncontrolled"

#: The committed comparison cell (see module docstring).
REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")
SEED = 42
SCENARIO = "flash-crowd"
JOBS = 12
SCALE_MB = 3200.0
ARRIVAL_SCALE = 0.15
DEADLINE_S = 600.0
MAX_CONCURRENT = 2
AUTOSCALE_MAX = 3
DRIFT_THRESHOLD = 0.35


def control_config(controlled: bool, fast: bool = True) -> ServiceConfig:
    """The committed cell's config, controlled or uncontrolled."""
    return ServiceConfig(
        regions=REGIONS,
        seed=SEED,
        scenario=SCENARIO,
        scheduler="fifo",
        max_concurrent=MAX_CONCURRENT,
        slo_deadline_s=DEADLINE_S,
        drift_threshold=DRIFT_THRESHOLD,
        n_training_datasets=4 if fast else 24,
        n_estimators=3 if fast else 16,
        preemption="urgent-slo" if controlled else "none",
        governor=controlled,
        autoscale=controlled,
        autoscale_max=AUTOSCALE_MAX,
    )


def run_service(controlled: bool, fast: bool = True) -> PipelineService:
    """One full (stopped) service run of the committed cell."""
    service = PipelineService.build(control_config(controlled, fast))
    mix = default_job_mix(REGIONS, count=JOBS, seed=SEED, scale_mb=SCALE_MB)
    mix = [(delay * ARRIVAL_SCALE, job) for delay, job in mix]
    service.submit_mix(mix)
    service.run()
    service.stop()
    return service


def run(fast: bool = True) -> dict[str, ServiceSummary]:
    """Both runs; keys ``uncontrolled`` and ``controlled``."""
    return {
        "uncontrolled": run_service(controlled=False, fast=fast).summary(),
        "controlled": run_service(controlled=True, fast=fast).summary(),
    }


def render(results: dict[str, ServiceSummary]) -> str:
    """Side-by-side table plus the intervention counters."""
    lines = [
        f"{'mode':<14} {'attainment':>10} {'mean JCT':>9} {'preempt':>8} "
        f"{'migrate':>8} {'throttle':>9} {'peak conc':>10}",
    ]
    for mode, summary in results.items():
        attained = summary.slo_attained
        total = attained + summary.slo_missed
        lines.append(
            f"{mode:<14} {attained:>6}/{total:<3} "
            f"{summary.mean_jct_s:>9.1f} {summary.preemptions:>8} "
            f"{summary.migrations:>8} {summary.throttle_moves:>9} "
            f"{summary.concurrency_high_water:>10}"
        )
    base = results["uncontrolled"]
    ctrl = results["controlled"]
    delta = (ctrl.slo_attainment - base.slo_attainment) * 100.0
    lines.append(
        f"\ncontrol plane: +{delta:.0f} pts SLO attainment "
        f"({base.slo_attainment * 100.0:.0f}% -> "
        f"{ctrl.slo_attainment * 100.0:.0f}%), throttle ledger "
        f"{ctrl.throttle_moves} applied / {ctrl.throttle_releases} released"
    )
    return "\n".join(lines) + "\n"


def main(fast: Optional[bool] = True) -> None:
    """CLI hook: run and print."""
    print(render(run(fast=bool(fast))))


if __name__ == "__main__":
    main()
