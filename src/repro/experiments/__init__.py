"""One module per paper table/figure (see DESIGN.md §4 for the index).

Every module exposes ``run(fast=True) -> dict`` returning the measured
values alongside the paper's reported targets, and ``render(results)``
producing the human-readable table the paper prints.  The benchmark
suite under ``benchmarks/`` times these same entry points, and
``repro.experiments.report`` collects them all into EXPERIMENTS.md.
"""

from repro.experiments import common

__all__ = ["common"]
