"""Network-profile ablation — §2.1's "diverse private and public
networks, including edge-cloud and VPC".

The paper's testbed uses VPC peering because it outperforms the public
Internet (§5.1, citing Skyplane [23]); §2.1 claims WANify handles
diverse network types.  This experiment runs the identical
predict→optimize pipeline on three profiles (VPC peering, public
Internet, edge-cloud) over the same 3-DC cluster and reports:

* the single-connection minimum BW (what vanilla GDA systems see),
* WANify's achievable minimum BW after heterogeneous parallelization,
* the resulting uplift factor.

Expected shape: absolute BWs fall from VPC → public → edge, while the
WANify uplift *rises* — the weaker the single-connection floor, the more
headroom heterogeneous parallel connections recover.  The prediction
model is retrained per profile (different weather and path constants),
exactly as a real deployment would.
"""

from __future__ import annotations

from repro.pipeline import Pipeline, PipelineConfig
from repro.experiments import common
from repro.net.profiles import all_profiles
from repro.net.topology import Topology

#: The 3-DC corner of the testbed used throughout §2.2.
TRIAD = ("us-east-1", "us-west-1", "ap-southeast-1")


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Run the pipeline on every profile; returns per-profile metrics."""
    config = (
        PipelineConfig(n_training_datasets=30, n_estimators=20)
        if fast
        else PipelineConfig(n_training_datasets=80, n_estimators=60)
    )
    rows = []
    for profile in all_profiles():
        topology = Topology.build(TRIAD, "t2.medium", profile=profile)
        weather = profile.fluctuation(seed=common.WEATHER_SEED)
        pipeline = Pipeline(topology, weather, config)
        summary = pipeline.train()
        predicted = pipeline.predict(at_time=at_time)
        plan = pipeline.plan(predicted)
        single_min = predicted.min_bw()
        achievable_min = plan.max_bw.min_bw()
        rows.append(
            {
                "profile": profile.key,
                "train_accuracy_pct": summary["train_accuracy_pct"],
                "single_min_bw": single_min,
                "wanify_min_bw": achievable_min,
                "uplift": achievable_min / max(single_min, 1e-9),
            }
        )
    return {"rows": rows}


def render(results: dict) -> str:
    """Fixed-width per-profile table."""
    lines = [
        "Profile ablation: same pipeline, three WAN environments "
        "(3-DC cluster)",
        "",
        f"{'profile':<17}{'train acc %':>12}{'min BW (1 conn)':>17}"
        f"{'min BW (WANify)':>17}{'uplift':>9}",
    ]
    for row in results["rows"]:
        lines.append(
            f"{row['profile']:<17}"
            f"{row['train_accuracy_pct']:>11.1f} "
            f"{row['single_min_bw']:>14.0f}   "
            f"{row['wanify_min_bw']:>14.0f}   "
            f"{row['uplift']:>7.1f}x"
        )
    lines.append("")
    lines.append(
        "Shape check: absolute BWs fall VPC → public → edge; the WANify"
    )
    lines.append(
        "uplift holds (or grows) as the single-connection floor weakens."
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
