"""Fig. 4 — impact on ML in GDA (§5.6).

Five geo-distributed training variants of the MNIST-scale model, 10
epochs each (test accuracy ~97% for all — quantization does not hurt
accuracy in SAGQ's regime):

* **NoQ** — no quantization,
* **SAGQ** — quantization driven by static-independent BWs,
* **SimQ** — by static-simultaneous BWs,
* **PredQ** — by WANify-predicted BWs,
* **WQ** — predicted BWs + WANify-TC parallel heterogeneous transfers.

Paper: SAGQ cuts ~22% time / ~15% cost vs NoQ; SimQ/PredQ a further
13–14.5% / 7–8% vs SAGQ; WQ is best at ~26% / 16% vs SAGQ (13% / 9% vs
PredQ) on the back of a 2× minimum-BW boost.
"""

from __future__ import annotations

from repro.cloud.regions import PAPER_REGIONS
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.systems.sagq import MLModelSpec, SagqTrainer
from repro.net.measurement import measure_independent, stable_runtime

EPOCHS = 10

PAPER = {
    "sagq_vs_noq_time": 22.0,
    "sagq_vs_noq_cost": 15.0,
    "wq_vs_sagq_time": 26.0,
    "wq_vs_sagq_cost": 16.0,
    "wq_min_bw_ratio": 2.0,
}


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Train all five variants and compare time/cost/min BW."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    topology = common.worker_topology()

    static = measure_independent(topology, weather, at_time=0.0).matrix
    simultaneous = stable_runtime(topology, weather, at_time=at_time).matrix
    predicted = pipeline.predict(at_time=at_time)

    def trainer() -> SagqTrainer:
        cluster = GeoCluster.build(
            PAPER_REGIONS, "t2.medium",
            fluctuation=weather, time_offset=at_time,
        )
        return SagqTrainer(cluster, MLModelSpec(), epochs=EPOCHS)

    results = {
        "NoQ": trainer().run("NoQ", decision_bw=None),
        "SAGQ": trainer().run("SAGQ", decision_bw=static),
        "SimQ": trainer().run("SimQ", decision_bw=simultaneous),
        "PredQ": trainer().run("PredQ", decision_bw=predicted),
    }
    wq_trainer = trainer()
    deployment = pipeline.deployment("wanify-tc", bw=predicted)
    results["WQ"] = wq_trainer.run(
        "WQ", decision_bw=predicted, deployment=deployment
    )

    noq, sagq, predq, wq = (
        results["NoQ"], results["SAGQ"], results["PredQ"], results["WQ"]
    )
    return {
        "variants": {
            name: {
                "minutes": r.total_minutes,
                "network_min": r.network_s / 60.0,
                "cost_usd": r.cost.total_usd,
                "min_bw": r.min_bw_mbps,
                "accuracy": r.test_accuracy,
            }
            for name, r in results.items()
        },
        "sagq_vs_noq_time_pct": common.improvement_pct(
            noq.total_s, sagq.total_s
        ),
        "sagq_vs_noq_cost_pct": common.improvement_pct(
            noq.cost.total_usd, sagq.cost.total_usd
        ),
        "predq_vs_sagq_time_pct": common.improvement_pct(
            sagq.total_s, predq.total_s
        ),
        "wq_vs_sagq_time_pct": common.improvement_pct(
            sagq.total_s, wq.total_s
        ),
        "wq_vs_sagq_cost_pct": common.improvement_pct(
            sagq.cost.total_usd, wq.cost.total_usd
        ),
        "wq_vs_predq_time_pct": common.improvement_pct(
            predq.total_s, wq.total_s
        ),
        "wq_min_bw_ratio": common.ratio(wq.min_bw_mbps, sagq.min_bw_mbps),
        "paper": PAPER,
    }


def render(results: dict) -> str:
    """Print the Fig. 4 comparison."""
    lines = [
        "Fig. 4: geo-distributed ML training (10 epochs, acc ~97%)",
        f"{'variant':>7} {'minutes':>8} {'net min':>8} {'cost $':>7} "
        f"{'min BW':>7}",
    ]
    for name in ("NoQ", "SAGQ", "SimQ", "PredQ", "WQ"):
        v = results["variants"][name]
        lines.append(
            f"{name:>7} {v['minutes']:>8.1f} {v['network_min']:>8.1f} "
            f"{v['cost_usd']:>7.2f} {v['min_bw']:>7.1f}"
        )
    paper = results["paper"]
    lines.append(
        f"SAGQ vs NoQ: {results['sagq_vs_noq_time_pct']:.1f}% time "
        f"(paper {paper['sagq_vs_noq_time']:.0f}%), "
        f"{results['sagq_vs_noq_cost_pct']:.1f}% cost "
        f"(paper {paper['sagq_vs_noq_cost']:.0f}%)"
    )
    lines.append(
        f"WQ vs SAGQ: {results['wq_vs_sagq_time_pct']:.1f}% time "
        f"(paper {paper['wq_vs_sagq_time']:.0f}%), "
        f"{results['wq_vs_sagq_cost_pct']:.1f}% cost "
        f"(paper {paper['wq_vs_sagq_cost']:.0f}%), min BW "
        f"{results['wq_min_bw_ratio']:.1f}× (paper 2×)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
