"""Fig. 2 — single vs uniform vs heterogeneous connections on 3 DCs.

The motivation experiment (§2.2): three DCs — two nearby (DC1, DC2) and
one distant (DC3) — each running an unlimited-burst t3.nano, all six
directed links probed simultaneously.

(a) single connection per link: decent BW between the nearby pair, weak
    BW to/from DC3;
(b) uniform 8 connections: "little benefit as nearby DCs occupy most of
    each other's available network capacity" — min BW ~120.5 Mbps;
(c) heterogeneous distribution of the *same total* (48) connections:
    min BW 255.5 Mbps, a 2.1× improvement, at the cost of the maximum;
(d) network overhead for a WAN-aware reduce stage moving
    {DC1: 2.5, DC2: 2.8, DC3: 0.8} Gb: the slowest-link time drops
    sharply under the heterogeneous scheme.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import common
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import measure_simultaneous

#: DC1/DC2 nearby (US coasts), DC3 distant (Singapore).
REGIONS = ("us-east-1", "us-west-1", "ap-southeast-1")

#: Total connection budget of Fig. 2(b)/(c): 8 per link × 6 links.
TOTAL_CONNECTIONS = 48

#: The paper's Fig. 2(c) connections were "found manually for
#: illustrations" (§2.3): the same 48-connection budget redistributed so
#: the four links touching the distant DC3 get the lion's share while
#: the nearby DC1↔DC2 pair keeps a couple of streams each way.
MANUAL_HETERO_COUNTS = {
    ("us-east-1", "us-west-1"): 2,
    ("us-west-1", "us-east-1"): 2,
    ("us-east-1", "ap-southeast-1"): 11,
    ("ap-southeast-1", "us-east-1"): 11,
    ("us-west-1", "ap-southeast-1"): 11,
    ("ap-southeast-1", "us-west-1"): 11,
}

#: Fig. 2(d) scheduled exchange volumes, gigabits *from* each DC.
EXCHANGE_GBIT = {"us-east-1": 2.5, "us-west-1": 2.8, "ap-southeast-1": 0.8}

#: Paper-reported minimum BWs (Mbps).
PAPER_MIN_UNIFORM = 120.5
PAPER_MIN_HETERO = 255.5
PAPER_MIN_RATIO = 2.1


def manual_hetero_plan() -> BandwidthMatrix:
    """The manually balanced 48-connection plan of Fig. 2(c)."""
    counts = BandwidthMatrix.full(REGIONS, 1.0)
    for (src, dst), k in MANUAL_HETERO_COUNTS.items():
        counts.set(src, dst, float(k))
    total = int(counts.off_diagonal().sum())
    assert total == TOTAL_CONNECTIONS, total
    return counts


def _network_overhead_s(matrix: BandwidthMatrix) -> dict[str, float]:
    """Per-source slowest-link time to ship the Fig. 2(d) volumes.

    Each source spreads its scheduled gigabits across the other two DCs
    evenly; time per link is volume/BW; the overhead is the slowest.
    """
    times = {}
    for src, gbit in EXCHANGE_GBIT.items():
        per_dst = gbit * 1000.0 / 2.0  # Mbit per destination
        worst = 0.0
        for dst in matrix.keys:
            if dst == src:
                continue
            bw = max(matrix.get(src, dst), 1e-6)
            worst = max(worst, per_dst / bw)
        times[src] = worst
    return times


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Measure the three connection schemes and the Fig. 2(d) overhead."""
    topology = common.probe_topology(REGIONS)
    weather = common.fluctuation()

    single = measure_simultaneous(
        topology, weather, at_time, connections=1
    ).matrix
    uniform = measure_simultaneous(
        topology, weather, at_time, connections=8
    ).matrix

    hetero_counts = manual_hetero_plan()
    hetero = measure_simultaneous(
        topology, weather, at_time, connections=hetero_counts
    ).matrix

    overhead = {
        "single": _network_overhead_s(single),
        "uniform": _network_overhead_s(uniform),
        "heterogeneous": _network_overhead_s(hetero),
    }
    return {
        "single_matrix": single,
        "uniform_matrix": uniform,
        "hetero_matrix": hetero,
        "hetero_counts": hetero_counts,
        "min_single": single.min_bw(),
        "min_uniform": uniform.min_bw(),
        "min_hetero": hetero.min_bw(),
        "max_uniform": uniform.max_bw(),
        "max_hetero": hetero.max_bw(),
        "min_ratio": common.ratio(hetero.min_bw(), uniform.min_bw()),
        "paper_min_ratio": PAPER_MIN_RATIO,
        "bottleneck_s": {k: max(v.values()) for k, v in overhead.items()},
        "overhead": overhead,
    }


def render(results: dict) -> str:
    """Print the four panels of Fig. 2."""
    lines = [
        "Fig. 2: BWs and network latency for different approaches",
        f"(a) single-connection min BW:     {results['min_single']:8.1f} Mbps",
        f"(b) uniform 8-connection min BW:  {results['min_uniform']:8.1f} Mbps"
        f"   (paper {PAPER_MIN_UNIFORM})",
        f"(c) heterogeneous min BW:         {results['min_hetero']:8.1f} Mbps"
        f"   (paper {PAPER_MIN_HETERO})",
        f"    min-BW ratio hetero/uniform:  {results['min_ratio']:8.2f}×"
        f"   (paper {PAPER_MIN_RATIO}×)",
        f"    max BW uniform → hetero:      {results['max_uniform']:.0f} → "
        f"{results['max_hetero']:.0f} Mbps (trade-off)",
        "(d) bottleneck network time (s): "
        + ", ".join(
            f"{k}={v:.1f}" for k, v in results["bottleneck_s"].items()
        ),
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
