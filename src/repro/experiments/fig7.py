"""Fig. 7 — state-of-the-art GDA systems with and without WANify.

§5.4: Tetrium and Kimchi run TPC-DS queries 82/95/11/78 on 100 GB,
(a) unmodified — static-independent BWs, single connection — and
(b) WANify-enabled — predicted runtime BWs for decisions plus
heterogeneous parallel connections with throttling for transfers.

Paper: latency down by up to 24%, cost by up to 8% (savings are compute,
not network), and a 3.3× higher minimum BW.
"""

from __future__ import annotations

from repro.cloud.regions import PAPER_REGIONS
from repro.experiments import common
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.engine import GdaEngine
from repro.gda.engine.hdfs import HdfsStore
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.workloads.tpcds import tpcds_job
from repro.net.measurement import measure_independent

QUERIES = (82, 95, 11, 78)
INPUT_MB = 100 * 1024.0

PAPER_MAX_LATENCY_GAIN = 24.0
PAPER_MAX_COST_GAIN = 8.0
PAPER_MIN_BW_RATIO = 3.3


def run(fast: bool = True, at_time: float = common.EVAL_TIME) -> dict:
    """Run every query on both systems, with and without WANify."""
    pipeline = common.trained_pipeline(fast)
    weather = common.fluctuation()
    topology = common.worker_topology()
    static = measure_independent(topology, weather, at_time=0.0).matrix
    predicted = pipeline.predict(at_time=at_time)

    store = HdfsStore.uniform(PAPER_REGIONS, INPUT_MB)
    table = {}
    min_bw_ratios = []
    for system, policy_cls in (("tetrium", TetriumPolicy), ("kimchi", KimchiPolicy)):
        for query in QUERIES:
            job = tpcds_job(query, store.data_by_dc())

            cluster = GeoCluster.build(
                PAPER_REGIONS, "t2.medium",
                fluctuation=weather, time_offset=at_time,
            )
            base = GdaEngine(cluster).run(
                job, policy_cls(), decision_bw=static
            )

            cluster = GeoCluster.build(
                PAPER_REGIONS, "t2.medium",
                fluctuation=weather, time_offset=at_time,
            )
            deployment = pipeline.deployment("wanify-tc", bw=predicted)
            enabled = GdaEngine(cluster).run(
                job, policy_cls(), decision_bw=predicted, deployment=deployment
            )

            if base.min_bw_mbps > 0:
                min_bw_ratios.append(
                    common.ratio(enabled.min_bw_mbps, base.min_bw_mbps)
                )
            table[(system, query)] = {
                "base_jct_min": base.jct_minutes,
                "wanify_jct_min": enabled.jct_minutes,
                "base_cost_usd": base.cost.total_usd,
                "wanify_cost_usd": enabled.cost.total_usd,
                "latency_gain_pct": common.improvement_pct(
                    base.jct_s, enabled.jct_s
                ),
                "cost_gain_pct": common.improvement_pct(
                    base.cost.total_usd, enabled.cost.total_usd
                ),
                "min_bw_ratio": common.ratio(
                    enabled.min_bw_mbps, base.min_bw_mbps
                ),
            }

    import numpy as np

    return {
        "table": table,
        "max_latency_gain_pct": max(
            v["latency_gain_pct"] for v in table.values()
        ),
        "max_cost_gain_pct": max(v["cost_gain_pct"] for v in table.values()),
        # Median across queries: the light query's near-idle WAN makes
        # its per-pair averages (and hence the ratio) unstable.
        "best_min_bw_ratio": float(np.median(min_bw_ratios))
        if min_bw_ratios
        else 1.0,
        "paper_max_latency_gain": PAPER_MAX_LATENCY_GAIN,
        "paper_max_cost_gain": PAPER_MAX_COST_GAIN,
        "paper_min_bw_ratio": PAPER_MIN_BW_RATIO,
    }


def render(results: dict) -> str:
    """Print the Fig. 7 latency/cost panels."""
    lines = [
        "Fig. 7: TPC-DS with/without WANify",
        f"{'system':>8} {'query':>5} {'base min':>9} {'wanify min':>11} "
        f"{'lat gain %':>11} {'cost gain %':>12} {'minBW ×':>8}",
    ]
    for (system, query), row in results["table"].items():
        lines.append(
            f"{system:>8} {query:>5} {row['base_jct_min']:>9.1f} "
            f"{row['wanify_jct_min']:>11.1f} "
            f"{row['latency_gain_pct']:>11.1f} "
            f"{row['cost_gain_pct']:>12.1f} "
            f"{row['min_bw_ratio']:>8.2f}"
        )
    lines.append(
        f"max gains: latency {results['max_latency_gain_pct']:.1f}% "
        f"(paper ≤{results['paper_max_latency_gain']:.0f}%), cost "
        f"{results['max_cost_gain_pct']:.1f}% "
        f"(paper ≤{results['paper_max_cost_gain']:.0f}%), min BW "
        f"{results['best_min_bw_ratio']:.1f}× "
        f"(paper {results['paper_min_bw_ratio']}×)"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run()))
