"""Runtime-service extension: online re-planning vs a static plan.

The paper's evaluation plans once per query at submit time.  The
:mod:`repro.runtime` service goes further: agents publish telemetry to
a shared store, a drift detector compares capacity estimates with the
prediction the current plan was built from, and on divergence the
service re-gauges and re-plans *mid-job*.  This experiment quantifies
what that buys under structural bandwidth dynamics the offline training
never saw.

For each scenario (whole-substrate step drop, persistent link
degradation, transient flash crowd) the same seeded 6-job mix runs
twice on identical weather — once with the control loop live, once with
the submit-time plan frozen — and we compare total completion time
(sum of per-job JCTs including queueing), makespan, and the re-plan
count.  Scenario onsets are pulled early (t≈240 s) so the drift hits
while the mix is in flight.
"""

from __future__ import annotations

from repro.net.profiles import network_profile
from repro.runtime.scenarios import FlashCrowd, LinkDegradation, StepDrop
from repro.runtime.service import (
    ServiceConfig,
    PipelineService,
    default_job_mix,
)

#: 4 DCs keep the two-runs-per-scenario sweep quick while preserving
#: real geographic spread (two US DCs, Europe, Asia-Pacific).
REGIONS = ("us-east-1", "us-west-1", "eu-west-1", "ap-southeast-1")

SEED = 11
JOBS = 6
SCALE_MB = 4000.0


def _scenarios(base) -> dict[str, object]:
    """Scenario shapes with onsets early enough to hit the job mix."""
    return {
        "step-drop": StepDrop(base, SEED, at_s=240.0, level=0.35),
        "link-degradation": LinkDegradation(
            base, SEED, start_s=240.0, ramp_s=120.0,
            residual=0.2, hit_fraction=0.4,
        ),
        "flash-crowd": FlashCrowd(
            base, SEED, start_s=240.0, duration_s=600.0,
            ramp_s=60.0, depth=0.3, hit_fraction=0.6,
        ),
    }


def _serve(weather, online: bool, fast: bool) -> PipelineService:
    config = ServiceConfig(
        regions=REGIONS,
        seed=SEED,
        online=online,
        check_interval_s=30.0,
        cooldown_s=180.0,
        n_training_datasets=10 if fast else 40,
        n_estimators=8 if fast else 30,
    )
    service = PipelineService.build(config, weather=weather)
    for delay, job in default_job_mix(
        REGIONS, count=JOBS, seed=SEED, scale_mb=SCALE_MB
    ):
        service.submit_at(delay, job)
    service.run()
    service.stop()
    return service


def run(fast: bool = True) -> dict:
    """Run every scenario online and static; returns comparison rows."""
    base = network_profile("vpc-peering").fluctuation(seed=SEED)
    rows = {}
    for name, weather in _scenarios(base).items():
        online = _serve(weather, online=True, fast=fast).summary()
        static = _serve(weather, online=False, fast=fast).summary()
        rows[name] = {
            "online_total_jct_s": online.total_jct_s,
            "static_total_jct_s": static.total_jct_s,
            "speedup": (
                static.total_jct_s / online.total_jct_s
                if online.total_jct_s > 0
                else 1.0
            ),
            "online_makespan_s": online.makespan_s,
            "static_makespan_s": static.makespan_s,
            "replans": online.replans,
            "fairness": online.fairness,
            "completed": online.completed,
        }
    return {"rows": rows, "jobs": JOBS}


def render(results: dict) -> str:
    """Paper-style comparison table."""
    lines = [
        "Runtime service — online re-planning vs static plan "
        f"({results['jobs']}-job mix):",
        "",
        f"{'scenario':<18} {'static(s)':>10} {'online(s)':>10} "
        f"{'speedup':>8} {'replans':>8} {'fairness':>9}",
    ]
    for name, row in results["rows"].items():
        lines.append(
            f"{name:<18} {row['static_total_jct_s']:>10.0f} "
            f"{row['online_total_jct_s']:>10.0f} "
            f"{row['speedup']:>7.2f}x {row['replans']:>8.0f} "
            f"{row['fairness']:>9.2f}"
        )
    speedups = [r["speedup"] for r in results["rows"].values()]
    replans = sum(r["replans"] for r in results["rows"].values())
    lines += [
        "",
        f"mid-job re-plans fired: {replans}; total-JCT speedup "
        f"{min(speedups):.2f}–{max(speedups):.2f}x.",
        "Finding: when runtime bandwidth drifts structurally away from",
        "the trained model, re-gauging and re-planning mid-job recovers",
        "completion time a frozen submit-time plan leaves on the table;",
        "a transient flash crowd that ends before the queue drains",
        "shows the smallest gain, persistent drops the largest.",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
