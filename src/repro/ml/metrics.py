"""Regression metrics.

``training_accuracy`` matches how the paper quotes model quality: a
percentage "derived from historical training metrics" (§5.1, 98.51%).
We define it as ``100 × (1 − relative absolute error)``, clipped to
[0, 100] — a standard accuracy-style readout for regression — and also
expose ``fraction_within`` for the >100 Mbps significance tests used in
Figs. 9 and 11.
"""

from __future__ import annotations

import numpy as np


def _pair(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.sqrt(((y_true - y_pred) ** 2).mean()))


def mape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute percentage error (ignores zero targets)."""
    y_true, y_pred = _pair(y_true, y_pred)
    mask = y_true != 0
    if not mask.any():
        raise ValueError("all targets are zero; MAPE undefined")
    return float(
        (np.abs(y_true[mask] - y_pred[mask]) / np.abs(y_true[mask])).mean()
    )


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def fraction_within(
    y_true: np.ndarray, y_pred: np.ndarray, threshold: float
) -> float:
    """Fraction of predictions within ``threshold`` of the target.

    With ``threshold=100`` (Mbps) this is the complement of the paper's
    "significant difference" rate.
    """
    y_true, y_pred = _pair(y_true, y_pred)
    return float((np.abs(y_true - y_pred) <= threshold).mean())


def training_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Accuracy-style percentage: ``100 × (1 − Σ|err| / Σ|y|)``."""
    y_true, y_pred = _pair(y_true, y_pred)
    denom = float(np.abs(y_true).sum())
    if denom == 0:
        raise ValueError("targets sum to zero; accuracy undefined")
    rel_err = float(np.abs(y_true - y_pred).sum()) / denom
    return float(np.clip(100.0 * (1.0 - rel_err), 0.0, 100.0))
