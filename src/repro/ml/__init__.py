"""From-scratch decision-tree machinery.

The paper's predictor is "a decision tree-based Random Forest regressor"
with 100 estimators (§3.1, §5.1).  scikit-learn is not available in this
environment, so this package implements the needed pieces directly on
numpy:

* :mod:`repro.ml.tree` — CART regression trees (variance-reduction
  splits, vectorized split search),
* :mod:`repro.ml.forest` — bootstrap-aggregated forest with feature
  subsampling, warm start (for the §3.3.2/§3.3.4 retraining story), and
  impurity-based feature importances,
* :mod:`repro.ml.metrics` — R², MAE, RMSE, MAPE, and the
  fraction-within-threshold "accuracy" the paper quotes (98.51%).
"""

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import (
    fraction_within,
    mae,
    mape,
    r2_score,
    rmse,
    training_accuracy,
)
from repro.ml.tree import RegressionTree

__all__ = [
    "RandomForestRegressor",
    "RegressionTree",
    "fraction_within",
    "mae",
    "mape",
    "r2_score",
    "rmse",
    "training_accuracy",
]
