"""Bootstrap-aggregated Random Forest regressor.

The paper's model uses 100 estimators (best training accuracy, §5.1)
and relies on warm-start retraining when cluster sizes change or the
model drifts (§3.3.2, §3.3.4) — both supported here.  The "bias-variance
tradeoff in ensemble learning" the paper credits for generalization
(§5.8.2, [8]) is exactly what bagging + feature subsampling provide.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ml.tree import RegressionTree


def _resolve_max_features(spec: object, n_features: int) -> Optional[int]:
    """Translate a scikit-learn-style ``max_features`` spec to an int."""
    if spec is None:
        return None
    if spec == "sqrt":
        return max(1, int(math.sqrt(n_features)))
    if spec == "log2":
        return max(1, int(math.log2(n_features))) if n_features > 1 else 1
    if isinstance(spec, float):
        if not 0 < spec <= 1:
            raise ValueError(f"max_features fraction out of (0, 1]: {spec}")
        return max(1, int(spec * n_features))
    if isinstance(spec, int):
        if spec < 1:
            raise ValueError(f"max_features must be ≥ 1: {spec}")
        return min(spec, n_features)
    raise ValueError(f"unsupported max_features spec: {spec!r}")


@dataclass
class RandomForestRegressor:
    """Random Forest for multivariate regression.

    With ``warm_start=True``, refitting keeps the existing trees and
    grows only the additional ones requested by a larger
    ``n_estimators`` — the paper's retraining path.
    """

    n_estimators: int = 100
    max_depth: Optional[int] = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: object = "sqrt"
    bootstrap: bool = True
    warm_start: bool = False
    random_state: Optional[int] = None
    trees: list[RegressionTree] = field(default_factory=list, repr=False)
    _n_features: int = field(default=0, repr=False)
    _fit_count: int = field(default=0, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit (or, with warm start, extend) the forest."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if self.warm_start and self.trees and X.shape[1] != self._n_features:
            raise ValueError(
                f"warm start requires {self._n_features} features, "
                f"got {X.shape[1]}"
            )
        self._n_features = X.shape[1]
        if not self.warm_start:
            self.trees = []
        if len(self.trees) >= self.n_estimators:
            return self

        per_tree_features = _resolve_max_features(
            self.max_features, self._n_features
        )
        # Seed sequence: distinct per fit call so warm-start batches
        # do not replay the original bootstrap samples.
        base_seed = (
            self.random_state if self.random_state is not None else 0
        ) + 7919 * self._fit_count
        rng = np.random.default_rng(base_seed)
        self._fit_count += 1

        n = len(X)
        while len(self.trees) < self.n_estimators:
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
            else:
                sample = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=per_tree_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[sample], y[sample])
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction across all trees."""
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.asarray(X, dtype=float)
        total = np.zeros(len(X))
        for tree in self.trees:
            total += tree.predict(X)
        return total / len(self.trees)

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R² on the given data."""
        from repro.ml.metrics import r2_score

        return r2_score(np.asarray(y, dtype=float), self.predict(X))

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalized impurity-based importances, summed over trees."""
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        total = np.zeros(self._n_features)
        for tree in self.trees:
            total += tree.feature_importances()
        s = total.sum()
        return total / s if s > 0 else total
