"""CART regression trees.

A straightforward, vectorized CART implementation: at each node the best
axis-aligned split is the one maximizing the reduction in sum of squared
errors, found by sorting each candidate feature once and scanning prefix
sums.  Trees are stored as flat arrays for fast batched prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

_LEAF = -1


@dataclass
class _Node:
    feature: int = _LEAF
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0
    impurity_gain: float = 0.0
    n_samples: int = 0


@dataclass
class RegressionTree:
    """A single CART regression tree.

    Parameters mirror the scikit-learn names the paper's prototype would
    have used.  ``max_features`` limits the features examined per split
    (int, or ``None`` for all — forests pass an int for decorrelation).
    """

    max_depth: Optional[int] = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: Optional[int] = None
    random_state: Optional[int] = None
    _nodes: list[_Node] = field(default_factory=list, repr=False)
    _n_features: int = field(default=0, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Grow the tree on ``X`` (n×d) and targets ``y`` (n,)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_features = X.shape[1]
        self._nodes = []
        rng = np.random.default_rng(self.random_state)
        self._grow(X, y, np.arange(len(X)), depth=0, rng=rng)
        return self

    def _grow(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        depth: int,
        rng: np.random.Generator,
    ) -> int:
        node_id = len(self._nodes)
        node = _Node(value=float(y[idx].mean()), n_samples=len(idx))
        self._nodes.append(node)

        if (
            len(idx) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.ptp(y[idx]) == 0.0
        ):
            return node_id

        split = self._best_split(X, y, idx, rng)
        if split is None:
            return node_id

        feature, threshold, gain = split
        mask = X[idx, feature] <= threshold
        left_idx, right_idx = idx[mask], idx[~mask]
        node.feature = feature
        node.threshold = threshold
        node.impurity_gain = gain
        node.left = self._grow(X, y, left_idx, depth + 1, rng)
        node.right = self._grow(X, y, right_idx, depth + 1, rng)
        return node_id

    def _best_split(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        rng: np.random.Generator,
    ) -> Optional[tuple[int, float, float]]:
        n = len(idx)
        y_node = y[idx]
        sse_parent = float(((y_node - y_node.mean()) ** 2).sum())

        features = np.arange(self._n_features)
        if self.max_features is not None and self.max_features < len(features):
            features = rng.choice(
                features, size=self.max_features, replace=False
            )

        best: Optional[tuple[int, float, float]] = None
        min_leaf = self.min_samples_leaf
        for feature in features:
            values = X[idx, feature]
            order = np.argsort(values, kind="stable")
            v_sorted = values[order]
            y_sorted = y_node[order]
            # Candidate split positions: between distinct values,
            # respecting min_samples_leaf.
            csum = np.cumsum(y_sorted)
            csum2 = np.cumsum(y_sorted**2)
            total, total2 = csum[-1], csum2[-1]
            counts = np.arange(1, n)
            left_sum = csum[:-1]
            left_sse = csum2[:-1] - left_sum**2 / counts
            right_sum = total - left_sum
            right_counts = n - counts
            right_sse = (total2 - csum2[:-1]) - right_sum**2 / right_counts
            valid = (
                (v_sorted[:-1] != v_sorted[1:])
                & (counts >= min_leaf)
                & (right_counts >= min_leaf)
            )
            if not valid.any():
                continue
            gains = sse_parent - (left_sse + right_sse)
            gains[~valid] = -np.inf
            pos = int(np.argmax(gains))
            gain = float(gains[pos])
            if gain <= 1e-12:
                continue
            threshold = float((v_sorted[pos] + v_sorted[pos + 1]) / 2.0)
            if threshold >= v_sorted[pos + 1]:
                # Adjacent floats: the midpoint rounded up and would put
                # every sample left of the split; fall back to the lower
                # value so both children stay non-empty.
                threshold = float(v_sorted[pos])
            if best is None or gain > best[2]:
                best = (int(feature), threshold, gain)
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X`` (n×d)."""
        if not self._nodes:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._n_features:
            raise ValueError(
                f"X must have shape (n, {self._n_features}), got {X.shape}"
            )
        out = np.empty(len(X))
        for row, x in enumerate(X):
            node = self._nodes[0]
            while node.feature != _LEAF:
                node = self._nodes[
                    node.left if x[node.feature] <= node.threshold else node.right
                ]
            out[row] = node.value
        return out

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the grown tree."""
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Depth of the grown tree (root = 0)."""
        if not self._nodes:
            return 0

        def walk(node_id: int) -> int:
            node = self._nodes[node_id]
            if node.feature == _LEAF:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(0)

    def feature_importances(self) -> np.ndarray:
        """Total impurity reduction attributed to each feature."""
        importances = np.zeros(self._n_features)
        for node in self._nodes:
            if node.feature != _LEAF:
                importances[node.feature] += node.impurity_gain
        return importances
