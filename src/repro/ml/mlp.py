"""A small neural-network regressor (the paper's rejected alternative).

§3.1: "we initially tried employing Convolutional Neural Network ... but
that did not yield promising results, i.e., it resulted in ~85% training
accuracy with a higher number of pair-wise BW differences against the
test dataset.  This is because ... a deep learning approach requires
large training data to attain the desired accuracy."

This module provides the comparison point: a from-scratch multilayer
perceptron (dense layers are the data-appropriate analogue of their CNN
for 6-feature tabular rows) trained by mini-batch SGD with momentum.
On the paper-scale training sets (hundreds of rows) it underfits
relative to the Random Forest — exactly the effect the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(0.0, x)


@dataclass
class MLPRegressor:
    """Fully-connected regressor: input → hidden layers (ReLU) → scalar.

    Inputs and targets are standardized internally; training uses
    mini-batch SGD with momentum and L2 weight decay.
    """

    hidden: tuple[int, ...] = (32, 16)
    learning_rate: float = 1e-2
    momentum: float = 0.9
    weight_decay: float = 1e-4
    epochs: int = 200
    batch_size: int = 32
    random_state: int = 0
    _weights: list[np.ndarray] = field(default_factory=list, repr=False)
    _biases: list[np.ndarray] = field(default_factory=list, repr=False)
    _x_mean: np.ndarray = field(default=None, repr=False)
    _x_std: np.ndarray = field(default=None, repr=False)
    _y_mean: float = field(default=0.0, repr=False)
    _y_std: float = field(default=1.0, repr=False)

    def _init_params(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = [n_features, *self.hidden, 1]
        self._weights = []
        self._biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self._weights.append(
                rng.normal(0.0, scale, size=(fan_in, fan_out))
            )
            self._biases.append(np.zeros(fan_out))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        """Train on ``X`` (n×d) and targets ``y`` (n,)."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")

        self._x_mean = X.mean(axis=0)
        self._x_std = X.std(axis=0)
        self._x_std[self._x_std == 0] = 1.0
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        Xn = (X - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std

        rng = np.random.default_rng(self.random_state)
        self._init_params(X.shape[1], rng)
        velocity_w = [np.zeros_like(w) for w in self._weights]
        velocity_b = [np.zeros_like(b) for b in self._biases]

        n = len(Xn)
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                xb, yb = Xn[idx], yn[idx]
                grads_w, grads_b = self._backward(xb, yb)
                for layer in range(len(self._weights)):
                    grads_w[layer] += self.weight_decay * self._weights[layer]
                    velocity_w[layer] = (
                        self.momentum * velocity_w[layer]
                        - self.learning_rate * grads_w[layer]
                    )
                    velocity_b[layer] = (
                        self.momentum * velocity_b[layer]
                        - self.learning_rate * grads_b[layer]
                    )
                    self._weights[layer] += velocity_w[layer]
                    self._biases[layer] += velocity_b[layer]
        return self

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        activations = [X]
        out = X
        for layer in range(len(self._weights) - 1):
            out = _relu(out @ self._weights[layer] + self._biases[layer])
            activations.append(out)
        out = out @ self._weights[-1] + self._biases[-1]
        return activations, out.ravel()

    def _backward(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        activations, preds = self._forward(X)
        n = len(X)
        grads_w = [None] * len(self._weights)
        grads_b = [None] * len(self._biases)
        # MSE loss: dL/dpred = 2 (pred − y) / n.
        delta = (2.0 * (preds - y) / n)[:, None]
        for layer in reversed(range(len(self._weights))):
            grads_w[layer] = activations[layer].T @ delta
            grads_b[layer] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ self._weights[layer].T
                delta = delta * (activations[layer] > 0)
        return grads_w, grads_b

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X`` (n×d)."""
        if not self._weights:
            raise RuntimeError("MLP is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self._x_mean.shape[0]:
            raise ValueError(
                f"X must have shape (n, {self._x_mean.shape[0]}), "
                f"got {X.shape}"
            )
        Xn = (X - self._x_mean) / self._x_std
        _, preds = self._forward(Xn)
        return preds * self._y_std + self._y_mean

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R²."""
        from repro.ml.metrics import r2_score

        return r2_score(np.asarray(y, dtype=float), self.predict(X))
