"""Event queue, simulation clock, and periodic processes.

The simulator is a classic calendar-queue design: events are ``(time,
priority, sequence)``-ordered callbacks popped from a binary heap.  The
sequence number makes the ordering total and deterministic, which matters
because the whole reproduction is seeded — two runs with the same seed
must produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` so the heap pops them in
    deterministic order.  ``cancelled`` events stay in the heap but are
    skipped when popped (lazy deletion).

    ``daemon`` events (periodic samplers, monitors, weather refreshes)
    do not keep an open-ended :meth:`Simulator.run` alive: once only
    daemon events remain, the run returns — the same semantics as daemon
    threads.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    daemon: bool = field(default=False, compare=False)
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it."""
        if not self.cancelled:
            self.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: Pending non-daemon, non-cancelled events; when this reaches
        #: zero an open-ended run() returns even if daemons remain.
        self._live = 0
        #: Total events executed (lazy-cancelled pops excluded) — the
        #: numerator of the ``sim_events_per_s`` benchmark row.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``priority`` breaks ties at equal times (lower fires first);
        it is used e.g. to ensure flow-rate recomputation happens after
        all flow arrivals at the same instant.  ``daemon`` events do not
        keep an open-ended :meth:`run` alive.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = Event(
            self._now + delay, priority, next(self._seq), callback,
            daemon=daemon,
        )
        if not daemon:
            self._live += 1
            event._on_cancel = self._drop_live
        heapq.heappush(self._queue, event)
        return event

    def _drop_live(self) -> None:
        self._live -= 1

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback, priority, daemon)

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Pop and run the next event.  Returns ``False`` when drained."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if not event.daemon:
                self._live -= 1
            self._now = event.time
            self.events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if no event fires there, so periodic samplers
        observe a consistent end time.  Without ``until``, the run also
        returns once only daemon events remain — a forgotten monitor
        cannot wedge the simulation.
        """
        self._running = True
        try:
            while self._running:
                if until is None and self._live <= 0:
                    break
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop an in-progress :meth:`run` after the current event."""
        self._running = False


class Process:
    """A periodic activity: fires ``body(sim.now)`` every ``interval`` seconds.

    Used for agents that poll (WAN monitors, AIMD optimizers, fluctuation
    updates).  The process re-arms itself after each tick until
    :meth:`stop` is called.  Pollers are ``daemon`` by default: they
    observe the simulation but should not keep it alive once the real
    work (transfers) has drained.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        body: Callable[[float], None],
        start_delay: float = 0.0,
        priority: int = 0,
        daemon: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self._sim = sim
        self._interval = interval
        self._body = body
        self._priority = priority
        self._daemon = daemon
        self._stopped = False
        self._event = sim.schedule(start_delay, self._tick, priority, daemon)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._body(self._sim.now)
        if not self._stopped:
            self._event = self._sim.schedule(
                self._interval, self._tick, self._priority, self._daemon
            )

    def stop(self) -> None:
        """Stop the periodic activity; pending tick is cancelled."""
        self._stopped = True
        self._event.cancel()
