"""Event queue, simulation clock, and periodic processes.

The simulator is a classic calendar-queue design: events are ``(time,
priority, sequence)``-ordered callbacks popped from a binary heap.  The
sequence number makes the ordering total and deterministic, which matters
because the whole reproduction is seeded — two runs with the same seed
must produce identical traces.

The hot loop is deliberately lean (this kernel executes every transfer
completion, monitor tick, and scheduler event in the repository, and
the scale benchmarks drain millions of events through it):

* heap entries are plain ``(time, priority, seq, event)`` tuples, so
  sift comparisons are raw tuple compares — the sequence number is
  unique, so the :class:`Event` object itself is never compared;
* cancelled events are skimmed off the heap top exactly once by a
  shared drain helper (:meth:`Simulator._skim`) used by ``peek`` /
  ``step`` / ``run`` — no path pays the old peek-then-step double scan;
* :meth:`Simulator.run` batch-dispatches every event sharing one
  timestamp in a single inner loop, re-entering the outer
  bookkeeping (``until`` bound, live count, head skim) once per
  *instant* instead of once per *event* — same total order, since the
  heap top is always the global ``(time, priority, seq)`` minimum;
* :meth:`Simulator.schedule_many` bulk-inserts a batch of callbacks
  with one heapify instead of per-event pushes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable, Optional


class Event:
    """A scheduled callback.

    Events fire in ``(time, priority, seq)`` order — the heap holds
    that key as a plain tuple, so the event object itself never enters
    a comparison.  ``cancelled`` events stay in the heap but are
    skipped when reached (lazy deletion).

    ``daemon`` events (periodic samplers, monitors, weather refreshes)
    do not keep an open-ended :meth:`Simulator.run` alive: once only
    daemon events remain, the run returns — the same semantics as daemon
    threads.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "cancelled", "daemon",
        "_on_cancel",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        daemon: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.daemon = daemon
        #: Fires on the first cancel of a still-pending event (the
        #: simulator's live-count bookkeeping).  Cleared when the event
        #: executes, so a late ``cancel()`` — e.g. a process stopping
        #: itself from inside its own tick — cannot double-count.
        self._on_cancel: Optional[Callable[[], None]] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return (
            f"Event(time={self.time!r}, priority={self.priority!r}, "
            f"seq={self.seq!r}, {state})"
        )

    def cancel(self) -> None:
        """Mark the event so the simulator skips it.

        Idempotent, and safe to call on an event that already fired:
        the live-count hook runs at most once, and never after
        execution (the kernel clears it when the callback is
        dispatched).
        """
        if not self.cancelled:
            self.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel()
                self._on_cancel = None


#: A heap entry: ``(time, priority, seq, event)``.
_Entry = tuple[float, int, int, Event]


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._queue: list[_Entry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: Pending non-daemon, non-cancelled events; when this reaches
        #: zero an open-ended run() returns even if daemons remain.
        self._live = 0
        #: Total events executed (lazy-cancelled pops excluded) — the
        #: numerator of the ``sim_events_per_s`` benchmark row.
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``priority`` breaks ties at equal times (lower fires first);
        it is used e.g. to ensure flow-rate recomputation happens after
        all flow arrivals at the same instant.  ``daemon`` events do not
        keep an open-ended :meth:`run` alive.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        event = Event(
            self._now + delay, priority, next(self._seq), callback, daemon
        )
        if not daemon:
            self._live += 1
            event._on_cancel = self._drop_live
        heapq.heappush(
            self._queue, (event.time, event.priority, event.seq, event)
        )
        return event

    def schedule_many(
        self,
        entries: Iterable[tuple[float, Callable[[], None]]],
        priority: int = 0,
        daemon: bool = False,
    ) -> list[Event]:
        """Bulk-insert a batch of ``(delay, callback)`` pairs.

        Equivalent to calling :meth:`schedule` once per entry in order
        (sequence numbers are assigned in iteration order, so the total
        event order is identical), but the heap is rebuilt with one
        ``heapify`` — O(queue + batch) — instead of per-event sifts
        when the batch is large relative to the pending queue.  The
        scheduler's batched admission path and the shard executor
        submit their job mixes through this.
        """
        events: list[Event] = []
        for delay, callback in entries:
            if delay < 0:
                raise ValueError(f"negative delay: {delay}")
            event = Event(
                self._now + delay, priority, next(self._seq), callback, daemon
            )
            if not daemon:
                self._live += 1
                event._on_cancel = self._drop_live
            events.append(event)
        queue = self._queue
        if events and len(events) * 8 < len(queue):
            # Small batch onto a deep queue: sifting each entry in is
            # cheaper than re-heapifying everything.
            for event in events:
                heapq.heappush(
                    queue, (event.time, event.priority, event.seq, event)
                )
        elif events:
            queue.extend(
                (event.time, event.priority, event.seq, event)
                for event in events
            )
            heapq.heapify(queue)
        return events

    def _drop_live(self) -> None:
        self._live -= 1

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``.

        ``time`` must not lie in the simulation's past.
        """
        if time < self._now:
            raise ValueError(
                f"schedule_at: time {time} is in the past "
                f"(simulation clock is at {self._now})"
            )
        return self.schedule(time - self._now, callback, priority, daemon)

    def _skim(self) -> Optional[_Entry]:
        """The live heap head, with cancelled entries dropped.

        The one drain loop shared by :meth:`peek`, :meth:`step`, and
        :meth:`run` — each cancelled entry is popped exactly once, and
        no caller re-scans what another already skimmed.
        """
        queue = self._queue
        while queue:
            head = queue[0]
            if head[3].cancelled:
                heapq.heappop(queue)
            else:
                return head
        return None

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        head = self._skim()
        return head[0] if head is not None else None

    def _dispatch(self, event: Event) -> None:
        """Account for and execute one popped, non-cancelled event."""
        if not event.daemon:
            self._live -= 1
        # The event is executing: a late cancel (a process stopping
        # itself mid-tick) must not decrement the live count again.
        event._on_cancel = None
        self._now = event.time
        self.events_processed += 1
        event.callback()

    def step(self) -> bool:
        """Pop and run the next event.  Returns ``False`` when drained."""
        head = self._skim()
        if head is None:
            return False
        heapq.heappop(self._queue)
        self._dispatch(head[3])
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if no event fires there, so periodic samplers
        observe a consistent end time.  Without ``until``, the run also
        returns once only daemon events remain — a forgotten monitor
        cannot wedge the simulation.

        Events sharing one timestamp are dispatched as a batch: the
        outer bookkeeping (bound check, head skim) runs once per
        simulated instant, and the inner loop pops straight off the
        heap — which always yields the global ``(time, priority, seq)``
        minimum, so callbacks scheduling new same-instant events keep
        the exact single-step order.
        """
        queue = self._queue
        heappop = heapq.heappop
        self._running = True
        try:
            while self._running:
                if until is None and self._live <= 0:
                    break
                head = self._skim()
                if head is None:
                    break
                now = head[0]
                if until is not None and now > until:
                    break
                self._now = now
                # Batch-dispatch every event at this instant.
                while self._running:
                    heappop(queue)
                    self._dispatch(head[3])
                    if until is None and self._live <= 0:
                        break
                    head = self._skim()
                    if head is None or head[0] != now:
                        break
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until

    def stop(self) -> None:
        """Stop an in-progress :meth:`run` after the current event."""
        self._running = False


class Process:
    """A periodic activity: fires ``body(sim.now)`` every ``interval`` seconds.

    Used for agents that poll (WAN monitors, AIMD optimizers, fluctuation
    updates).  The process re-arms itself after each tick until
    :meth:`stop` is called.  Pollers are ``daemon`` by default: they
    observe the simulation but should not keep it alive once the real
    work (transfers) has drained.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        body: Callable[[float], None],
        start_delay: float = 0.0,
        priority: int = 0,
        daemon: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self._sim = sim
        self._interval = interval
        self._body = body
        self._priority = priority
        self._daemon = daemon
        self._stopped = False
        self._event = sim.schedule(start_delay, self._tick, priority, daemon)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._body(self._sim.now)
        if not self._stopped:
            self._event = self._sim.schedule(
                self._interval, self._tick, self._priority, self._daemon
            )

    def stop(self) -> None:
        """Stop the periodic activity; pending tick is cancelled.

        Safe to call from inside the process's own ``body``: the tick
        being executed has already left the queue, so cancelling it is
        a no-op for the kernel's live-event accounting, and the
        ``_stopped`` flag suppresses the re-arm.
        """
        self._stopped = True
        self._event.cancel()
