"""Discrete-event simulation kernel.

A tiny, dependency-free event-driven simulator used by the WAN substrate
(:mod:`repro.net`) and the GDA execution engine (:mod:`repro.gda`).

The kernel intentionally exposes only three concepts:

* :class:`~repro.sim.kernel.Event` — a scheduled callback,
* :class:`~repro.sim.kernel.Simulator` — the event loop and clock,
* :class:`~repro.sim.kernel.Process` — a resumable activity built from
  events (used for periodic agents such as the AIMD local optimizer).
"""

from repro.sim.kernel import Event, Process, Simulator

__all__ = ["Event", "Process", "Simulator"]
