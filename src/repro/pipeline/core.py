"""The composed pipeline: gauge → predict → plan → deploy.

:class:`Pipeline` is the public one-shot API (and the object the
runtime service is rebuilt on).  It owns one instance of each stage —
any of which may be swapped for a custom implementation satisfying the
:mod:`~repro.pipeline.stages` protocols::

    from repro.pipeline import Pipeline, PipelineConfig

    pipe = Pipeline(topology, FluctuationModel(seed=42))
    pipe.train()                              # offline module
    bw = pipe.predict(at_time=3600.0)         # snapshot → runtime BWs
    plan = pipe.plan(bw)                      # Eq. 2/3 optimizer
    deployment = pipe.deployment("wanify-tc", bw=bw)

Deployment variants resolve through
:data:`~repro.pipeline.registry.variant_registry`, so variants
registered anywhere — including test code — are constructible here by
name with zero core edits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.globalopt import GlobalPlan
from repro.net.dynamics import StaticModel
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import MeasurementReport
from repro.net.topology import Topology
from repro.pipeline.config import PipelineConfig
from repro.pipeline.deploy import Deployment
from repro.pipeline.registry import (
    build_stage,
    gauger_registry,
    planner_registry,
    predictor_registry,
    variant_registry,
)
from repro.pipeline.stages import Gauger, Planner, Predictor


class Pipeline:
    """End-to-end WANify: offline training + online optimization."""

    def __init__(
        self,
        topology: Topology,
        weather: Optional[object] = None,
        config: Optional[PipelineConfig] = None,
        *,
        gauger: Optional[Gauger] = None,
        predictor: Optional[Predictor] = None,
        planner: Optional[Planner] = None,
    ) -> None:
        self.topology = topology
        self.weather = weather if weather is not None else StaticModel()
        # A fresh config per instance — a shared default instance would
        # alias state across pipelines if a mutable field ever lands.
        self.config = config if config is not None else PipelineConfig()
        # Explicit stage objects win; otherwise the config's stage
        # names resolve through the registries (so ``--gauger
        # passive-telemetry`` and sweep cells reach every seam).
        context = {
            "topology": topology,
            "weather": self.weather,
            "config": self.config,
        }
        self.gauger: Gauger = (
            gauger
            if gauger is not None
            else build_stage(gauger_registry, self.config.gauger, **context)
        )
        self.predictor: Predictor = (
            predictor
            if predictor is not None
            else build_stage(predictor_registry, self.config.predictor, **context)
        )
        self.planner: Planner = (
            planner
            if planner is not None
            else build_stage(planner_registry, self.config.planner, **context)
        )

    # ------------------------------------------------------------------
    # Offline module
    # ------------------------------------------------------------------

    def train(self) -> dict[str, float]:
        """Run the offline campaign and fit the prediction model.

        Returns a summary: rows, target SD (paper: ~184 Mbps), training
        accuracy (paper: 98.51%), and collection cost in dollars.
        """
        return self.predictor.train(self.topology, self.weather, self.config)

    @property
    def is_trained(self) -> bool:
        """Whether the prediction model has been fitted."""
        return self.predictor.is_trained

    # ------------------------------------------------------------------
    # Online module
    # ------------------------------------------------------------------

    def gauge(self, at_time: float = 0.0, topology: Optional[Topology] = None) -> MeasurementReport:
        """Measure the current network state (1-second snapshot)."""
        return self.gauger.gauge(topology or self.topology, self.weather, at_time)

    def predict(
        self,
        at_time: float = 0.0,
        report: Optional[MeasurementReport] = None,
        topology: Optional[Topology] = None,
    ) -> BandwidthMatrix:
        """Gauge (or use ``report``) and predict stable runtime BWs.

        ``topology`` may be a subset of the training topology — the
        model is trained across cluster sizes (§3.3.2).
        """
        if not self.predictor.is_trained:
            raise RuntimeError("call train() before predicting")
        topology = topology or self.topology
        if report is None:
            report = self.gauge(at_time, topology)
        return self.predictor.predict(report, topology)

    def plan(
        self,
        bw: BandwidthMatrix,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> GlobalPlan:
        """Global optimization on a (predicted) runtime BW matrix."""
        return self.planner.plan(bw, self.config, skew_weights, rvec)

    def deployment(
        self,
        variant: Optional[str] = None,
        bw: Optional[BandwidthMatrix] = None,
        at_time: float = 0.0,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
        **build_kwargs: object,
    ) -> Deployment:
        """Build a deployment via a registered variant strategy.

        ``variant`` defaults to the config's ``variant`` field; the
        name resolves through the variant registry, so anything
        registered with ``@register_variant`` works here.  Extra
        keyword arguments (the service's ``epoch_s``/``telemetry``
        agent knobs, or custom strategy options) are forwarded to the
        strategy's ``build``.
        """
        name = variant if variant is not None else self.config.variant
        try:
            strategy = variant_registry.get(name)
        except KeyError:
            known = variant_registry.names()
            raise ValueError(f"unknown variant {name!r}; choose from {known}") from None
        if isinstance(strategy, type):
            strategy = strategy()
        return strategy.build(
            self,
            bw,
            at_time=at_time,
            skew_weights=skew_weights,
            rvec=rvec,
            **build_kwargs,
        )
