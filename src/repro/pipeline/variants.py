"""The built-in deployment variants, registered by name.

These reproduce the evaluation's baselines (the table in
:mod:`repro.core.interface` maps each to its paper section):

=================  ====================================================
variant            meaning
=================  ====================================================
``single``         predicted BW only, single connection (§5.2)
``wanify-p``       uniform parallel connections (§5.3.1)
``wanify-dynamic`` heterogeneous connections + AIMD agents, no
                   throttling (§5.3.1)
``wanify-tc``      the default: heterogeneous + AIMD + TC throttling
``global-only``    global optimizer output applied statically (§5.5)
``local-only``     AIMD within a static 1–8 window (§5.5)
=================  ====================================================

Each is a tiny :class:`~repro.pipeline.stages.DeploymentStrategy`;
registering a new one (``@register_variant("my-variant")``) makes it
reachable from ``Pipeline.deployment("my-variant")``, the runtime
service's ``variant`` config field, and the CLI's ``--variant`` flag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.globalopt import static_range_plan, uniform_plan
from repro.net.matrix import BandwidthMatrix
from repro.pipeline.deploy import Deployment
from repro.pipeline.registry import register_variant

if TYPE_CHECKING:
    from repro.pipeline.core import Pipeline


class VariantStrategy:
    """Shared plumbing: resolve ``bw`` lazily, stamp the variant name.

    ``epoch_s``/``telemetry`` are the service's agent knobs, forwarded
    at build time so custom variants see them too (a variant that
    deploys its own agents must honor them itself).
    """

    #: Registered name; subclasses set their own.
    name = "variant"

    def build(
        self,
        pipeline: "Pipeline",
        bw: Optional[BandwidthMatrix],
        at_time: float = 0.0,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
        epoch_s: Optional[float] = None,
        telemetry: Optional[object] = None,
    ) -> Deployment:
        """Resolve ``bw`` (predicting if absent), then build + configure."""
        if bw is None:
            bw = pipeline.predict(at_time=at_time)
        deployment = self.deployment(pipeline, bw, skew_weights, rvec)
        return self.configure(deployment, epoch_s, telemetry)

    @staticmethod
    def configure(
        deployment: Deployment,
        epoch_s: Optional[float],
        telemetry: Optional[object],
    ) -> Deployment:
        """Apply the forwarded agent knobs (unset ones keep defaults)."""
        if epoch_s is not None:
            deployment.epoch_s = epoch_s
        if telemetry is not None:
            deployment.telemetry = telemetry
        return deployment

    def deployment(
        self,
        pipeline: "Pipeline",
        bw: BandwidthMatrix,
        skew_weights: Optional[dict[str, float]],
        rvec: Optional[dict[str, float]],
    ) -> Deployment:
        """Variant-specific plan construction (subclasses implement)."""
        raise NotImplementedError


@register_variant()
class SingleConnection(VariantStrategy):
    """No plan at all: one TCP connection per pair (the §5.2 baseline)."""

    name = "single"

    def build(
        self,
        pipeline: "Pipeline",
        bw: Optional[BandwidthMatrix],
        at_time: float = 0.0,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
        epoch_s: Optional[float] = None,
        telemetry: Optional[object] = None,
    ) -> Deployment:
        """An empty deployment (deliberately skips prediction)."""
        deployment = Deployment(self.name, None, agents=False, throttling=False)
        return self.configure(deployment, epoch_s, telemetry)


@register_variant()
class UniformParallel(VariantStrategy):
    """Every pair at the maximum connection count (WANify-P)."""

    name = "wanify-p"

    def deployment(self, pipeline, bw, skew_weights, rvec) -> Deployment:
        """A flat max-connections plan, no agents or throttles."""
        plan = uniform_plan(bw, pipeline.config.max_connections)
        return Deployment(self.name, plan, agents=False, throttling=False)


@register_variant()
class LocalOnly(VariantStrategy):
    """AIMD agents inside a static 1–max window (§5.5 ablation)."""

    name = "local-only"

    def deployment(self, pipeline, bw, skew_weights, rvec) -> Deployment:
        """AIMD agents inside the full static 1–max window."""
        plan = static_range_plan(bw, 1, pipeline.config.max_connections)
        return Deployment(self.name, plan, agents=True, throttling=True)


@register_variant()
class GlobalOnly(VariantStrategy):
    """The optimizer's window applied statically, no agents (§5.5)."""

    name = "global-only"

    def deployment(self, pipeline, bw, skew_weights, rvec) -> Deployment:
        """The optimizer's window, installed statically."""
        plan = pipeline.plan(bw, skew_weights, rvec)
        return Deployment(self.name, plan, agents=False, throttling=False)


@register_variant()
class DynamicNoThrottle(VariantStrategy):
    """Heterogeneous connections + AIMD, no throttling (WANify-Dynamic)."""

    name = "wanify-dynamic"

    def deployment(self, pipeline, bw, skew_weights, rvec) -> Deployment:
        """Optimized windows + AIMD agents, throttling off."""
        plan = pipeline.plan(bw, skew_weights, rvec)
        return Deployment(self.name, plan, agents=True, throttling=False)


@register_variant()
class ThrottledDynamic(VariantStrategy):
    """The full system: AIMD agents + TC throttling (WANify-TC)."""

    name = "wanify-tc"

    def deployment(self, pipeline, bw, skew_weights, rvec) -> Deployment:
        """Optimized windows + AIMD agents + TC throttling."""
        plan = pipeline.plan(bw, skew_weights, rvec)
        return Deployment(self.name, plan, agents=True, throttling=True)
