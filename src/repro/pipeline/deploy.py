"""What a pipeline run installs on a network before a query runs.

A :class:`Deployment` is the output of a
:class:`~repro.pipeline.stages.DeploymentStrategy`: the plan to apply,
whether to run AIMD agents, and whether to throttle BW-rich pairs.
``install``/``teardown`` are idempotent bookends around a query (or a
service interval); teardown clears *only this deployment's own
throttles* — with concurrent deployments sharing one substrate,
``tc.clear_all()`` would wipe other jobs' caps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.agent import LocalAgent, deploy_agents
from repro.core.globalopt import GlobalPlan
from repro.core.localopt import EPOCH_S
from repro.core.throttle import apply_throttles
from repro.net.monitor import SampleSink
from repro.net.simulator import NetworkSimulator


@dataclass
class Deployment:
    """What to install on a network before running a query."""

    variant: str
    plan: Optional[GlobalPlan]
    agents: bool
    throttling: bool
    #: AIMD epoch for deployed agents (the service shortens it).
    epoch_s: float = EPOCH_S
    #: Shared sample sink wired into every agent's monitor (the
    #: runtime service's TelemetryStore).
    telemetry: Optional[SampleSink] = None
    agents_running: list[LocalAgent] = field(default_factory=list)
    #: Agents stopped by teardown, kept for post-run inspection (the
    #: Fig. 9 analysis reads their AIMD epoch histories).
    retired_agents: list[LocalAgent] = field(default_factory=list)

    def install(self, network: NetworkSimulator) -> None:
        """Apply connection counts / throttles / agents to the network."""
        if self.plan is None:
            return
        if self.agents:
            # Agents set their own initial (max) counts and throttles.
            self.agents_running = deploy_agents(
                network,
                self.plan,
                throttling=self.throttling,
                epoch_s=self.epoch_s,
                telemetry=self.telemetry,
            )
            return
        plan = self.plan
        if self.variant == "global-only":
            # Without local agents there is no AIMD to back off from the
            # optimistic maximum, so a static deployment pins the
            # window's midpoint — the sustainable configuration.
            counts = plan.max_connections.copy()
            window = plan.min_connections.values + plan.max_connections.values
            counts.values = np.ceil(window / 2.0)
        else:
            counts = plan.max_connections.copy()
        counts.values[counts.values < 1] = 1
        network.set_connection_plan(counts)
        if self.throttling:
            for src in plan.keys:
                apply_throttles(plan, network.tc, src)

    def teardown(self, network: NetworkSimulator) -> None:
        """Stop agents and clear throttles (agents stay inspectable).

        Only the plan's own (src, dst) pairs are cleared — other
        deployments' throttles on the shared substrate survive.
        """
        for agent in self.agents_running:
            agent.stop()
        self.retired_agents.extend(self.agents_running)
        self.agents_running = []
        if self.plan is None:
            return
        for src in self.plan.keys:
            for dst in self.plan.keys:
                if src != dst:
                    network.tc.clear_limit(src, dst)


#: Back-compat spelling (the class predates the pipeline package).
WANifyDeployment = Deployment
