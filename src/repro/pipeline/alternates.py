"""Alternate stage implementations behind the pipeline seams.

PR 2 made every stage of the gauge → predict → plan pipeline a typed
:class:`~typing.Protocol`; this module fills those seams with the
implementations the paper's cost/accuracy trade-off argument needs to
be *measured* rather than asserted:

* :class:`PassiveTelemetryGauger` (``passive-telemetry``, alias
  ``passive``) — reads the runtime
  :class:`~repro.runtime.telemetry.TelemetryStore` instead of paying
  for active probe flows.  Zero probe transfers, zero probe dollars;
  accuracy bounded by what the links happened to carry;
* :class:`CachedPredictor` (``cached``) — memoizes model inference
  across jobs, invalidating on TTL expiry or when the incoming
  snapshot drifts from the one the cached prediction was made from;
* :class:`MultiBackendPlanner` (``multi-backend``) — dispatches a
  representative shuffle to every registered GDA placement backend
  (iridium / tetrium / kimchi by default), scores each by predicted
  completion time, and records the winner for the scheduler to use.

All three are selectable by name from config files, ``WANIFY_*`` env
vars, CLI flags (``--gauger passive-telemetry``), and the sweep
runner's ``[sweep]`` matrix — the registries make them reachable from
every entry point with zero core edits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import (
    SNAPSHOT_WINDOW_S,
    MeasurementCost,
    MeasurementReport,
)
from repro.net.topology import Topology
from repro.pipeline.config import PipelineConfig
from repro.pipeline.registry import (
    placement_policy,
    register_gauger,
    register_planner,
    register_predictor,
)
from repro.pipeline.stages import (
    ForestPredictor,
    GaugeLedger,
    Gauger,
    Predictor,
    SnapshotGauger,
    WindowPlanner,
)

if TYPE_CHECKING:
    from repro.core.globalopt import GlobalPlan
    from repro.runtime.telemetry import TelemetryStore


# ----------------------------------------------------------------------
# Passive-telemetry gauging
# ----------------------------------------------------------------------


@register_gauger("passive")
@register_gauger("passive-telemetry")
class PassiveTelemetryGauger(GaugeLedger):
    """Gauges from the shared telemetry store — no probe flows at all.

    The snapshot gauger launches ``n·(n−1)`` probe flows per gauge and
    pays Table 2's monitoring cost every time.  Agents already publish
    per-link achieved rates to the runtime service's
    :class:`~repro.runtime.telemetry.TelemetryStore`; this gauger
    reuses those sliding-window estimates as the measurement, making
    every gauge free.

    The store arrives through :meth:`bind_telemetry` (the runtime
    service calls it at construction — the telemetry handoff).  Until
    the store covers ``min_coverage`` of the ordered pairs, gauges
    fall back to ``cold_start``:

    * ``"static"`` (default) — the topology's modelled uncontended
      single-connection caps.  Free, so a passive run truly records
      zero probe transfers; inaccurate until telemetry warms up and
      the first drift-triggered re-plan corrects it;
    * ``"probe"`` — one active snapshot through ``fallback``
      (accurate, but the run's probe count is no longer zero).
    """

    def __init__(
        self,
        store: Optional["TelemetryStore"] = None,
        percentile: float = 50.0,
        min_coverage: float = 0.5,
        cold_start: str = "static",
        fallback: Optional[Gauger] = None,
    ) -> None:
        if cold_start not in ("static", "probe"):
            raise ValueError(f"cold_start must be 'static' or 'probe': {cold_start!r}")
        super().__init__()
        self.store = store
        self.percentile = percentile
        self.min_coverage = min_coverage
        self.cold_start = cold_start
        self.fallback = fallback if fallback is not None else SnapshotGauger()
        #: Gauges served purely from telemetry.
        self.passive_gauges = 0
        #: Gauges that had to fall back (cold store).
        self.cold_gauges = 0

    def bind_telemetry(self, store: "TelemetryStore") -> None:
        """Attach the shared store (called by the runtime service)."""
        self.store = store

    def gauge(
        self,
        topology: Topology,
        weather: object,
        at_time: float,
    ) -> MeasurementReport:
        """A free measurement from telemetry (or the cold-start path)."""
        matrix = self._telemetry_matrix(topology)
        if matrix is not None:
            self.passive_gauges += 1
            report = MeasurementReport(
                "passive-telemetry",
                matrix,
                window_s=self.store.window_s,
                time=at_time,
                cost=MeasurementCost(),
            )
            return self.log_gauge(report, transfers=0)
        self.cold_gauges += 1
        if self.cold_start == "probe":
            report = self.fallback.gauge(topology, weather, at_time)
            # Mirror what the fallback actually launched (its own
            # ledger has the true count); only a ledger-less custom
            # fallback is assumed to have probed the full mesh.
            fallback_events = getattr(self.fallback, "events", None)
            if fallback_events:
                transfers = fallback_events[-1].transfers
            else:
                transfers = topology.n * (topology.n - 1)
            return self.log_gauge(report, transfers=transfers)
        report = MeasurementReport(
            "passive-static",
            self._static_matrix(topology),
            window_s=SNAPSHOT_WINDOW_S,
            time=at_time,
            cost=MeasurementCost(),
        )
        return self.log_gauge(report, transfers=0)

    def _telemetry_matrix(self, topology: Topology) -> Optional[BandwidthMatrix]:
        """Percentile estimates per pair; ``None`` while under-covered.

        Pairs idle inside the window fall back to their EWMA; pairs the
        store has never seen get the mean of the known estimates (the
        predictor refines all of it anyway).
        """
        store = self.store
        if store is None:
            return None
        out = BandwidthMatrix.zeros(topology.keys)
        pairs = list(out.pairs())
        sampled_links = set(store.links())
        known: list[tuple[str, str, float]] = []
        for src, dst in pairs:
            if (src, dst) not in sampled_links:
                continue
            estimate = store.estimate(src, dst)
            if estimate.samples > 0:
                value = store.capacity_mbps(src, dst, self.percentile)
            elif estimate.ewma > 0.0:
                value = estimate.ewma
            else:
                continue
            known.append((src, dst, value))
        if not pairs or len(known) < self.min_coverage * len(pairs):
            return None
        fill = float(np.mean([value for _, _, value in known]))
        for src, dst in pairs:
            out.set(src, dst, fill)
        for src, dst, value in known:
            out.set(src, dst, value)
        return out

    @staticmethod
    def _static_matrix(topology: Topology) -> BandwidthMatrix:
        """Modelled uncontended caps — the free cold-start estimate."""
        out = BandwidthMatrix.zeros(topology.keys)
        for src, dst in out.pairs():
            out.set(src, dst, topology.single_connection_cap(src, dst))
        return out


# ----------------------------------------------------------------------
# Cached prediction
# ----------------------------------------------------------------------


@dataclass
class _CacheEntry:
    """What a cached inference remembers: when, from what, and what."""

    time: float
    snapshot: BandwidthMatrix
    predicted: BandwidthMatrix


@register_predictor("cached")
class CachedPredictor:
    """Memoizes model inference across jobs, with TTL + drift invalidation.

    Wraps an inner :class:`~repro.pipeline.stages.Predictor` (a
    :class:`~repro.pipeline.stages.ForestPredictor` built from the
    construction context by default).  A cached matrix is reused while
    both hold:

    * **TTL** — the new report is at most ``ttl_s`` simulated seconds
      newer than the cached one (``cache_ttl_s`` in config);
    * **drift** — the new snapshot's mean relative delta from the
      cached snapshot stays under ``drift_tolerance``
      (``cache_drift_tolerance`` in config).  A drifted snapshot means
      the network moved, and a re-plan fed a stale prediction would
      re-install exactly the plan that just failed.

    ``hits``/``misses`` feed the sweep report's cache column.
    """

    def __init__(
        self,
        topology: Optional[Topology] = None,
        weather: Optional[object] = None,
        config: Optional[PipelineConfig] = None,
        inner: Optional[Predictor] = None,
        ttl_s: Optional[float] = None,
        drift_tolerance: Optional[float] = None,
    ) -> None:
        if inner is None:
            if topology is None or config is None:
                raise ValueError(
                    "CachedPredictor needs an inner predictor or a "
                    "(topology, config) construction context"
                )
            inner = ForestPredictor(topology, weather, config)
        self.inner = inner
        if ttl_s is None:
            ttl_s = getattr(config, "cache_ttl_s", 600.0)
        if drift_tolerance is None:
            drift_tolerance = getattr(config, "cache_drift_tolerance", 0.15)
        self.ttl_s = float(ttl_s)
        self.drift_tolerance = float(drift_tolerance)
        self.hits = 0
        self.misses = 0
        self._cache: dict[tuple[str, ...], _CacheEntry] = {}

    @property
    def is_trained(self) -> bool:
        """Whether the wrapped model has been fitted."""
        return self.inner.is_trained

    def train(
        self,
        topology: Topology,
        weather: object,
        config: PipelineConfig,
    ) -> dict[str, float]:
        """Delegate training; a fresh model invalidates everything."""
        self.invalidate()
        return self.inner.train(topology, weather, config)

    def predict(self, report: MeasurementReport, topology: Topology) -> BandwidthMatrix:
        """Cached inference keyed on the topology's DC set."""
        key = topology.keys
        entry = self._cache.get(key)
        if entry is not None and self._fresh(entry, report):
            self.hits += 1
            return entry.predicted.copy()
        self.misses += 1
        predicted = self.inner.predict(report, topology)
        self._cache[key] = _CacheEntry(
            time=report.time,
            snapshot=report.matrix.copy(),
            predicted=predicted.copy(),
        )
        return predicted

    def invalidate(self) -> None:
        """Drop every cached inference."""
        self._cache.clear()

    def snapshot_drift(self, entry_matrix: BandwidthMatrix, matrix: BandwidthMatrix) -> float:
        """Mean relative per-pair delta between two snapshot matrices."""
        cached = entry_matrix.off_diagonal()
        fresh = matrix.off_diagonal()
        return float(np.mean(np.abs(fresh - cached) / np.maximum(cached, 1.0)))

    def _fresh(self, entry: _CacheEntry, report: MeasurementReport) -> bool:
        age = report.time - entry.time
        if age < 0.0 or age > self.ttl_s:
            return False
        return self.snapshot_drift(entry.snapshot, report.matrix) <= self.drift_tolerance

    def __getattr__(self, name: str):
        # Delegate to the wrapped predictor so callers holding the raw
        # ForestPredictor surface (``analyzer``, ``train_accuracy``,
        # ``refit`` …) keep working against the cached stage.
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)


# ----------------------------------------------------------------------
# Multi-backend planning
# ----------------------------------------------------------------------


@register_planner("multi-backend")
class MultiBackendPlanner:
    """Scores registered GDA backends by predicted completion time.

    The PAPERS.md cross-layer sweeps (Terra, the SDN dynamic-allocation
    line) show allocation strategies trading places as conditions
    change; this planner makes that a runtime decision.  On every
    :meth:`plan` it asks each backend policy to place a representative
    shuffle against the predicted BWs, estimates the stage's completion
    time (bottleneck transfer + compute barrier), and records the
    fastest backend in :attr:`chosen_policy` — the runtime service
    points its scheduler at the winner after each (re-)plan, so jobs
    submitted after a drift event run under the backend that is best
    *now*.  Connection planning itself delegates to ``inner`` (the
    Eq. 2/3 window optimizer by default).
    """

    #: Default backends scored on every plan.
    DEFAULT_BACKENDS: tuple[str, ...] = ("iridium", "tetrium", "kimchi")

    #: Representative shuffle volume (MB) used for scoring.
    SCORING_SHUFFLE_MB = 2000.0

    #: Representative reduce-stage compute intensity (vCPU-s per MB).
    SCORING_CPU_S_PER_MB = 0.05

    def __init__(
        self,
        topology: Optional[Topology] = None,
        config: Optional[PipelineConfig] = None,
        backends: Optional[Sequence[str]] = None,
        inner: Optional[WindowPlanner] = None,
    ) -> None:
        self.topology = topology
        self.backends = tuple(backends or self.DEFAULT_BACKENDS)
        self.inner = inner if inner is not None else WindowPlanner()
        #: Winner of every scoring round, in order.
        self.choices: list[str] = []
        #: ``{backend: estimated completion seconds}`` of the last round.
        self.last_scores: dict[str, float] = {}
        self._cluster = None

    @property
    def chosen_policy(self) -> Optional[str]:
        """The backend the most recent plan picked (``None`` before)."""
        return self.choices[-1] if self.choices else None

    def plan(
        self,
        bw: BandwidthMatrix,
        config: PipelineConfig,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> "GlobalPlan":
        """Score the backends, then delegate connection planning."""
        self._choose(bw, skew_weights)
        return self.inner.plan(bw, config, skew_weights, rvec)

    # -- backend scoring ------------------------------------------------

    def _choose(self, bw: BandwidthMatrix, skew_weights: Optional[dict[str, float]]) -> None:
        cluster = self._scoring_cluster(bw.keys)
        if cluster is None:
            return
        from repro.gda.engine.dag import StageSpec
        from repro.gda.systems.iridium import bottleneck_transfer_s

        stage = StageSpec(
            "scoring-reduce",
            cpu_s_per_mb=self.SCORING_CPU_S_PER_MB,
            output_ratio=1.0,
            shuffle=True,
        )
        data = self._representative_data(bw.keys, skew_weights)
        total = sum(data.values())
        scores: dict[str, float] = {}
        for name in self.backends:
            policy = placement_policy(name)
            fractions = policy.place_stage(stage, data, bw, cluster)
            network_s = bottleneck_transfer_s(data, fractions, bw)
            compute_s = max(
                cluster.compute_seconds(dc, total * frac, stage.cpu_s_per_mb)
                for dc, frac in fractions.items()
            )
            scores[name] = network_s + compute_s
        self.last_scores = scores
        self.choices.append(min(scores, key=scores.get))

    def _representative_data(
        self,
        keys: tuple[str, ...],
        skew_weights: Optional[dict[str, float]],
    ) -> dict[str, float]:
        """Per-DC input for the scoring shuffle (skewed when known)."""
        if skew_weights:
            total_weight = sum(max(0.0, skew_weights.get(dc, 0.0)) for dc in keys)
            if total_weight > 0:
                scale = self.SCORING_SHUFFLE_MB / total_weight
                return {dc: scale * max(0.0, skew_weights.get(dc, 0.0)) for dc in keys}
        share = self.SCORING_SHUFFLE_MB / len(keys)
        return {dc: share for dc in keys}

    def _scoring_cluster(self, keys: tuple[str, ...]):
        """A slots/prices view of the topology for the placement LPs.

        Built lazily (the GDA engine is a heavy import the light
        pipeline package should not pay for) and only when the
        construction context supplied a matching topology.
        """
        if self.topology is None or self.topology.keys != keys:
            return None
        if self._cluster is None:
            from repro.gda.engine.cluster import GeoCluster

            self._cluster = GeoCluster.from_topology(self.topology)
        return self._cluster
