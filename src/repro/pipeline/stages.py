"""Typed stage contracts for the gauge → predict → plan → deploy pipeline.

Each stage of Fig. 3's architecture is a :class:`~typing.Protocol`, so
any object with the right shape plugs in — no inheritance required:

* :class:`Gauger` — measure the live network (a snapshot probe by
  default; swap in a passive-telemetry gauger, a cached gauger, …);
* :class:`Predictor` — turn a measurement into stable runtime BWs
  (the paper's Random Forest by default);
* :class:`Planner` — turn predicted BWs into a
  :class:`~repro.core.globalopt.GlobalPlan` (Eq. 2/3 by default);
* :class:`DeploymentStrategy` — turn a plan into a
  :class:`~repro.pipeline.deploy.Deployment` (the six evaluation
  variants live in :mod:`repro.pipeline.variants`).

The default implementations live here too, as plain classes satisfying
the protocols — they are what :class:`~repro.pipeline.core.Pipeline`
builds when no stage override is supplied.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from repro.core.analyzer import BandwidthAnalyzer
from repro.core.globalopt import GlobalPlan, optimize_connections
from repro.core.predictor import WanPredictionModel
from repro.net.dynamics import FluctuationModel
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import MeasurementReport, snapshot
from repro.net.topology import Topology
from repro.pipeline.config import PipelineConfig
from repro.pipeline.deploy import Deployment

if TYPE_CHECKING:
    from repro.pipeline.core import Pipeline


@runtime_checkable
class Gauger(Protocol):
    """Measures the current network state (the online module's probe)."""

    def gauge(
        self,
        topology: Topology,
        weather: object,
        at_time: float,
    ) -> MeasurementReport:
        """A bandwidth measurement of ``topology`` at ``at_time``."""
        ...


@runtime_checkable
class Predictor(Protocol):
    """Maps a measurement to stable runtime bandwidths."""

    @property
    def is_trained(self) -> bool: ...

    def train(
        self,
        topology: Topology,
        weather: object,
        config: PipelineConfig,
    ) -> dict[str, float]:
        """Run the offline campaign; returns a training summary."""
        ...

    def predict(self, report: MeasurementReport, topology: Topology) -> BandwidthMatrix:
        """Predicted stable runtime BWs for ``topology``."""
        ...


@runtime_checkable
class Planner(Protocol):
    """Maps predicted bandwidths to a connection plan."""

    def plan(
        self,
        bw: BandwidthMatrix,
        config: PipelineConfig,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> GlobalPlan: ...


@runtime_checkable
class DeploymentStrategy(Protocol):
    """Builds a deployment from the pipeline's current state.

    ``epoch_s`` and ``telemetry`` are agent knobs forwarded by the
    runtime service; a strategy that deploys agents must honor them
    (the built-ins inherit handling from ``VariantStrategy``).
    """

    def build(
        self,
        pipeline: "Pipeline",
        bw: Optional[BandwidthMatrix],
        at_time: float = 0.0,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
        epoch_s: Optional[float] = None,
        telemetry: Optional[object] = None,
    ) -> Deployment: ...


# ----------------------------------------------------------------------
# Default implementations
# ----------------------------------------------------------------------


class SnapshotGauger:
    """The paper's 1-second active probe (§3.2, runtime monitoring)."""

    def gauge(
        self,
        topology: Topology,
        weather: object,
        at_time: float,
    ) -> MeasurementReport:
        return snapshot(topology, weather, at_time)


class ForestPredictor:
    """Bandwidth Analyzer + Random-Forest WAN Prediction Model (§3.1)."""

    def __init__(
        self,
        topology: Topology,
        weather: object,
        config: PipelineConfig,
    ) -> None:
        self.model = WanPredictionModel(n_estimators=config.n_estimators, random_state=config.seed)
        # The analyzer's training campaign needs a real fluctuation
        # model; a StaticModel weather falls back to a seeded one.
        if not isinstance(weather, FluctuationModel):
            weather = FluctuationModel(seed=config.seed)
        self.analyzer = BandwidthAnalyzer(
            topology,
            weather,
            n_datasets=config.n_training_datasets,
            seed=config.seed,
        )
        self._trained = False

    @property
    def is_trained(self) -> bool:
        return self._trained

    def train(
        self,
        topology: Topology,
        weather: object,
        config: PipelineConfig,
    ) -> dict[str, float]:
        training = self.analyzer.collect()
        self.model.fit(training)
        self._trained = True
        return {
            "rows": float(len(training)),
            "target_std_mbps": training.target_std(),
            "train_accuracy_pct": self.model.train_accuracy,
            "collection_cost_usd": self.analyzer.last_cost.dollars,
        }

    def predict(self, report: MeasurementReport, topology: Topology) -> BandwidthMatrix:
        return self.model.predict_matrix(report, topology)

    def __getattr__(self, name: str):
        # Delegate to the wrapped model so legacy callers that held the
        # raw WanPredictionModel (``predict_rows``, ``train_accuracy``,
        # ``refit`` …) keep working against the stage.
        if name == "model":
            raise AttributeError(name)
        return getattr(self.model, name)


class WindowPlanner:
    """The Eq. 2/3 global optimizer producing min–max windows."""

    def plan(
        self,
        bw: BandwidthMatrix,
        config: PipelineConfig,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> GlobalPlan:
        return optimize_connections(
            bw,
            max_connections=config.max_connections,
            min_difference=config.min_difference_mbps,
            skew_weights=skew_weights,
            rvec=rvec,
        )
