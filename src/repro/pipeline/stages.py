"""Typed stage contracts for the gauge → predict → plan → deploy pipeline.

Each stage of Fig. 3's architecture is a :class:`~typing.Protocol`, so
any object with the right shape plugs in — no inheritance required:

* :class:`Gauger` — measure the live network (a snapshot probe by
  default; swap in a passive-telemetry gauger, a cached gauger, …);
* :class:`Predictor` — turn a measurement into stable runtime BWs
  (the paper's Random Forest by default);
* :class:`Planner` — turn predicted BWs into a
  :class:`~repro.core.globalopt.GlobalPlan` (Eq. 2/3 by default);
* :class:`DeploymentStrategy` — turn a plan into a
  :class:`~repro.pipeline.deploy.Deployment` (the six evaluation
  variants live in :mod:`repro.pipeline.variants`).

The default implementations live here too, as plain classes satisfying
the protocols — they are what :class:`~repro.pipeline.core.Pipeline`
builds when no stage override is supplied.  Each default registers
itself in the matching stage registry (``snapshot`` / ``forest`` /
``window``), so config files and CLI flags can name them; the alternate
implementations live in :mod:`repro.pipeline.alternates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol, runtime_checkable

from repro.core.analyzer import BandwidthAnalyzer
from repro.core.globalopt import GlobalPlan, optimize_connections
from repro.core.predictor import WanPredictionModel
from repro.net.dynamics import FluctuationModel
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import MeasurementReport, snapshot
from repro.net.topology import Topology
from repro.pipeline.config import PipelineConfig
from repro.pipeline.deploy import Deployment
from repro.pipeline.registry import (
    register_gauger,
    register_planner,
    register_predictor,
)

if TYPE_CHECKING:
    from repro.pipeline.core import Pipeline


@runtime_checkable
class Gauger(Protocol):
    """Measures the current network state (the online module's probe)."""

    def gauge(
        self,
        topology: Topology,
        weather: object,
        at_time: float,
    ) -> MeasurementReport:
        """A bandwidth measurement of ``topology`` at ``at_time``."""
        ...


@runtime_checkable
class Predictor(Protocol):
    """Maps a measurement to stable runtime bandwidths."""

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has run."""
        ...

    def train(
        self,
        topology: Topology,
        weather: object,
        config: PipelineConfig,
    ) -> dict[str, float]:
        """Run the offline campaign; returns a training summary."""
        ...

    def predict(self, report: MeasurementReport, topology: Topology) -> BandwidthMatrix:
        """Predicted stable runtime BWs for ``topology``."""
        ...


@runtime_checkable
class Planner(Protocol):
    """Maps predicted bandwidths to a connection plan."""

    def plan(
        self,
        bw: BandwidthMatrix,
        config: PipelineConfig,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> GlobalPlan:
        """A connection plan for the (predicted) matrix ``bw``."""
        ...


@runtime_checkable
class DeploymentStrategy(Protocol):
    """Builds a deployment from the pipeline's current state.

    ``epoch_s`` and ``telemetry`` are agent knobs forwarded by the
    runtime service; a strategy that deploys agents must honor them
    (the built-ins inherit handling from ``VariantStrategy``).
    """

    def build(
        self,
        pipeline: "Pipeline",
        bw: Optional[BandwidthMatrix],
        at_time: float = 0.0,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
        epoch_s: Optional[float] = None,
        telemetry: Optional[object] = None,
    ) -> Deployment:
        """A ready-to-install deployment for the pipeline's state."""
        ...


# ----------------------------------------------------------------------
# Probe-cost accounting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GaugeEvent:
    """One gauge call's cost-accounting entry.

    ``transfers`` counts probe flows actually launched on the WAN —
    zero for passive gauging; ``gigabytes``/``dollars`` mirror the
    report's Eq. 1-style :class:`~repro.net.measurement.MeasurementCost`.
    """

    time: float
    mode: str
    transfers: int
    gigabytes: float
    dollars: float


class GaugeLedger:
    """Mixin: per-gauger accounting of what measurement actually cost.

    Every built-in gauger records one :class:`GaugeEvent` per
    :meth:`~Gauger.gauge` call; the runtime service and the sweep
    runner read the totals so probe cost shows up next to completion
    time in comparison tables (the passive gauger's whole point).
    """

    def __init__(self) -> None:
        self.events: list[GaugeEvent] = []
        #: Observability hook: called with each appended
        #: :class:`GaugeEvent`.  Observation-only.
        self.on_gauge: Optional[Callable[[GaugeEvent], None]] = None

    def log_gauge(self, report: MeasurementReport, transfers: int) -> MeasurementReport:
        """Append one accounting entry for ``report``; returns it."""
        event = GaugeEvent(
            time=report.time,
            mode=report.mode,
            transfers=transfers,
            gigabytes=report.cost.gigabytes,
            dollars=report.cost.dollars,
        )
        self.events.append(event)
        # getattr, not a bare attribute read: a registered gauger that
        # mixes the ledger in without calling this ``__init__`` still
        # gauges fine, it just cannot be observed.
        hook = getattr(self, "on_gauge", None)
        if hook is not None:
            hook(event)
        return report

    @property
    def probe_transfers(self) -> int:
        """Total probe flows launched across all gauges."""
        return sum(event.transfers for event in self.events)

    @property
    def probe_gb(self) -> float:
        """Total probe traffic (GB) across all gauges."""
        return sum(event.gigabytes for event in self.events)

    @property
    def probe_cost_usd(self) -> float:
        """Total probe cost (USD) across all gauges."""
        return sum(event.dollars for event in self.events)


# ----------------------------------------------------------------------
# Default implementations
# ----------------------------------------------------------------------


class SnapshotGauger(GaugeLedger):
    """The paper's 1-second active probe (§3.2, runtime monitoring)."""

    def gauge(
        self,
        topology: Topology,
        weather: object,
        at_time: float,
    ) -> MeasurementReport:
        """Probe every ordered pair simultaneously for one second."""
        report = snapshot(topology, weather, at_time)
        return self.log_gauge(report, transfers=topology.n * (topology.n - 1))


class ForestPredictor:
    """Bandwidth Analyzer + Random-Forest WAN Prediction Model (§3.1)."""

    def __init__(
        self,
        topology: Topology,
        weather: object,
        config: PipelineConfig,
    ) -> None:
        self.model = WanPredictionModel(n_estimators=config.n_estimators, random_state=config.seed)
        # The analyzer's training campaign needs a real fluctuation
        # model; a StaticModel weather falls back to a seeded one.
        if not isinstance(weather, FluctuationModel):
            weather = FluctuationModel(seed=config.seed)
        self.analyzer = BandwidthAnalyzer(
            topology,
            weather,
            n_datasets=config.n_training_datasets,
            seed=config.seed,
        )
        self._trained = False

    @property
    def is_trained(self) -> bool:
        """Whether the forest has been fitted."""
        return self._trained

    def train(
        self,
        topology: Topology,
        weather: object,
        config: PipelineConfig,
    ) -> dict[str, float]:
        """Run the offline campaign and fit the forest on its rows."""
        training = self.analyzer.collect()
        self.model.fit(training)
        self._trained = True
        return {
            "rows": float(len(training)),
            "target_std_mbps": training.target_std(),
            "train_accuracy_pct": self.model.train_accuracy,
            "collection_cost_usd": self.analyzer.last_cost.dollars,
        }

    def predict(self, report: MeasurementReport, topology: Topology) -> BandwidthMatrix:
        """Stable runtime BWs for every ordered pair in ``report``."""
        return self.model.predict_matrix(report, topology)

    def __getattr__(self, name: str):
        # Delegate to the wrapped model so legacy callers that held the
        # raw WanPredictionModel (``predict_rows``, ``train_accuracy``,
        # ``refit`` …) keep working against the stage.
        if name == "model":
            raise AttributeError(name)
        return getattr(self.model, name)


class WindowPlanner:
    """The Eq. 2/3 global optimizer producing min–max windows."""

    def plan(
        self,
        bw: BandwidthMatrix,
        config: PipelineConfig,
        skew_weights: Optional[dict[str, float]] = None,
        rvec: Optional[dict[str, float]] = None,
    ) -> GlobalPlan:
        """Optimize per-pair connection windows for ``bw``."""
        return optimize_connections(
            bw,
            max_connections=config.max_connections,
            min_difference=config.min_difference_mbps,
            skew_weights=skew_weights,
            rvec=rvec,
        )


# Registered after the class definitions (not as decorators): the first
# registration bootstraps the registries, which imports the alternates
# module, which imports these classes — a decorator would fire before
# its own class exists.
register_gauger("snapshot")(SnapshotGauger)
register_predictor("forest")(ForestPredictor)
register_planner("window")(WindowPlanner)
