"""Composable pipeline API — the architectural seam of the repo.

The paper's Fig. 3 architecture is an explicit staged pipeline; this
package makes each stage a typed, swappable contract and composes them
behind one object:

* :mod:`repro.pipeline.stages` — ``Protocol`` contracts (``Gauger``,
  ``Predictor``, ``Planner``, ``DeploymentStrategy``) plus the default
  implementations (snapshot probe, Random Forest, Eq. 2/3 optimizer);
* :mod:`repro.pipeline.alternates` — the alternate stage
  implementations (passive-telemetry gauger, cached predictor,
  multi-backend planner) the sweep runner compares against the
  defaults;
* :mod:`repro.pipeline.core` — :class:`Pipeline`, the one-shot facade
  the runtime service is also rebuilt on;
* :mod:`repro.pipeline.registry` — string-keyed registries for the
  three stages, deployment variants, placement policies, bandwidth
  scenarios, and scheduler admission policies, with ``@register_*``
  decorators that make extensions reachable from every entry point
  with zero core edits;
* :mod:`repro.pipeline.config` — the layered configuration system
  (dataclass defaults → TOML/JSON file → ``WANIFY_*`` env → explicit
  CLI flags/kwargs) shared by the facade, the service, and the CLI;
* :mod:`repro.pipeline.deploy` — :class:`Deployment`, what a variant
  installs on (and scopes its teardown to) the network.

The legacy ``WANify`` / ``WANifyService`` classes are thin deprecated
shims over this package.
"""

from repro.pipeline.alternates import (
    CachedPredictor,
    MultiBackendPlanner,
    PassiveTelemetryGauger,
)
from repro.pipeline.config import (
    ConfigArguments,
    PipelineConfig,
    ServiceConfig,
    env_overrides,
    layered_config,
    load_config_file,
)
from repro.pipeline.core import Pipeline
from repro.pipeline.deploy import Deployment, WANifyDeployment
from repro.pipeline.registry import (
    Registry,
    admission_policy,
    admission_policy_registry,
    build_stage,
    gauger_registry,
    placement_policy,
    planner_registry,
    policy_registry,
    predictor_registry,
    preemption_policy_registry,
    register_admission_policy,
    register_gauger,
    register_planner,
    register_policy,
    register_predictor,
    register_preemption_policy,
    register_scenario,
    register_tuner_policy,
    register_variant,
    scenario_registry,
    tuner_registry,
    variant_registry,
)
from repro.pipeline.stages import (
    DeploymentStrategy,
    ForestPredictor,
    GaugeEvent,
    GaugeLedger,
    Gauger,
    Planner,
    Predictor,
    SnapshotGauger,
    WindowPlanner,
)
from repro.pipeline.variants import VariantStrategy

__all__ = [
    "CachedPredictor",
    "ConfigArguments",
    "Deployment",
    "DeploymentStrategy",
    "ForestPredictor",
    "GaugeEvent",
    "GaugeLedger",
    "Gauger",
    "MultiBackendPlanner",
    "PassiveTelemetryGauger",
    "Pipeline",
    "PipelineConfig",
    "Planner",
    "Predictor",
    "Registry",
    "ServiceConfig",
    "SnapshotGauger",
    "VariantStrategy",
    "WANifyDeployment",
    "WindowPlanner",
    "admission_policy",
    "admission_policy_registry",
    "build_stage",
    "env_overrides",
    "gauger_registry",
    "layered_config",
    "load_config_file",
    "placement_policy",
    "planner_registry",
    "policy_registry",
    "predictor_registry",
    "preemption_policy_registry",
    "register_admission_policy",
    "register_gauger",
    "register_planner",
    "register_policy",
    "register_predictor",
    "register_preemption_policy",
    "register_scenario",
    "register_tuner_policy",
    "register_variant",
    "scenario_registry",
    "tuner_registry",
    "variant_registry",
]
