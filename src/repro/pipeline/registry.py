"""String-keyed extension registries for the pipeline seams.

Fig. 3's architecture is a staged pipeline, and every stage boundary is
an extension point: the three *stages* themselves (how BWs are gauged,
predicted, and planned), deployment *variants* (how a plan lands on the
network), placement *policies* (how a GDA system splits work across
DCs), and bandwidth *scenarios* (how the substrate drifts under the
service).  Each seam gets one :class:`Registry`, and registration makes
a new implementation reachable from every entry point — the
:class:`~repro.pipeline.core.Pipeline` facade, the runtime service, the
sweep runner, and the CLI — with zero core edits::

    from repro.pipeline import register_variant

    @register_variant("my-variant")
    class MyVariant:
        def build(self, pipeline, bw, **kwargs):
            ...

    pipeline.deployment("my-variant")       # works immediately

Stage registrations work the same way, and their entries may be classes
*or* factories; :func:`build_stage` constructs them, passing whatever
subset of the ``(topology, weather, config)`` context the entry's
signature accepts::

    from repro.pipeline import register_gauger

    @register_gauger("my-gauger")
    class MyGauger:                     # zero-arg: context is optional
        def gauge(self, topology, weather, at_time):
            ...

    Pipeline(topology, config=PipelineConfig(gauger="my-gauger"))

Built-in entries live next to the things they construct (stage defaults
in :mod:`repro.pipeline.stages`, alternates in
:mod:`repro.pipeline.alternates`, variants in
:mod:`repro.pipeline.variants`, policies in :mod:`repro.gda.systems`,
scenarios in :mod:`repro.runtime.scenarios`); each registry lazily
imports its home module(s) on first lookup so the built-ins are always
present without import-order gymnastics.
"""

from __future__ import annotations

import importlib
import inspect
from types import MappingProxyType
from typing import Callable, Iterator, Mapping, Optional, Sequence, TypeVar, Union

T = TypeVar("T")


class Registry:
    """A named string → object mapping with decorator registration.

    ``bootstrap`` is a module path (or a sequence of them) imported on
    first lookup; importing it runs the built-in ``@register_*``
    decorators.  Registration is last-wins so tests can shadow a
    built-in and restore it afterwards (see :meth:`unregister`).
    """

    def __init__(
        self,
        kind: str,
        bootstrap: Union[str, Sequence[str], None] = None,
    ) -> None:
        self.kind = kind
        if isinstance(bootstrap, str):
            bootstrap = (bootstrap,)
        self._bootstrap: Optional[tuple[str, ...]] = (
            tuple(bootstrap) if bootstrap is not None else None
        )
        self._entries: dict[str, object] = {}

    def _ensure_bootstrapped(self) -> None:
        if self._bootstrap is not None:
            modules, self._bootstrap = self._bootstrap, None
            for module in modules:
                importlib.import_module(module)

    def register(self, name: object = None) -> Callable[[T], T]:
        """Decorator: ``@registry.register("name")``.

        Without an explicit name, the object's ``name`` attribute is
        used (every built-in variant/policy/scenario carries one).
        Bare decoration (``@registry.register`` with no call) works
        too — the decorated object must then carry a ``name``.
        """
        # Load the built-ins first so a user registration shadowing one
        # is not clobbered when a later lookup bootstraps.  Re-entrant
        # registrations from the bootstrap module itself no-op here:
        # _bootstrap is cleared before its import starts.
        self._ensure_bootstrapped()

        def decorate(obj: T, key: Optional[str] = None) -> T:
            """Store ``obj`` under ``key`` (or its ``name`` attribute)."""
            key = key if key is not None else getattr(obj, "name", None)
            if not key or not isinstance(key, str):
                msg = f"{self.kind} registration needs a string name; got {key!r} for {obj!r}"
                raise ValueError(msg)
            self._entries[key] = obj
            return obj

        if name is None or isinstance(name, str):
            return lambda obj: decorate(obj, name)
        # Bare decoration: ``@register_variant`` without parentheses
        # hands the class itself in as ``name``.
        return decorate(name)

    def add(self, name: str, obj: object) -> None:
        """Imperative registration (``register`` without the decorator)."""
        self.register(name)(obj)

    def unregister(self, name: str) -> None:
        """Drop an entry (no-op when absent) — test cleanup."""
        self._ensure_bootstrapped()
        self._entries.pop(name, None)

    def get(self, name: str) -> object:
        """Look up an entry; ``KeyError`` names the known alternatives."""
        self._ensure_bootstrapped()
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names())
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}") from None

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        self._ensure_bootstrapped()
        return tuple(sorted(self._entries))

    def __contains__(self, name: object) -> bool:
        self._ensure_bootstrapped()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_bootstrapped()
        return len(self._entries)

    @property
    def mapping(self) -> Mapping[str, object]:
        """A live read-only view of the entries (legacy dict surface)."""
        self._ensure_bootstrapped()
        return MappingProxyType(self._entries)


#: Modules whose import registers the built-in stage implementations
#: (defaults first so alternates may wrap them).
_STAGE_BOOTSTRAP = ("repro.pipeline.stages", "repro.pipeline.alternates")

#: Gauger stage — entries are :class:`~repro.pipeline.stages.Gauger`
#: classes/factories (``snapshot`` by default, ``passive-telemetry``
#: in :mod:`repro.pipeline.alternates`).
gauger_registry = Registry("gauger", bootstrap=_STAGE_BOOTSTRAP)

#: Predictor stage — entries are
#: :class:`~repro.pipeline.stages.Predictor` classes/factories
#: (``forest`` by default, ``cached`` in the alternates).
predictor_registry = Registry("predictor", bootstrap=_STAGE_BOOTSTRAP)

#: Planner stage — entries are :class:`~repro.pipeline.stages.Planner`
#: classes/factories (``window`` by default, ``multi-backend`` in the
#: alternates).
planner_registry = Registry("planner", bootstrap=_STAGE_BOOTSTRAP)

#: Deployment variants — entries are :class:`DeploymentStrategy`
#: factories (classes or zero-arg callables) built in
#: :mod:`repro.pipeline.variants`.
variant_registry = Registry("variant", bootstrap="repro.pipeline.variants")

#: GDA placement policies — entries are
#: :class:`~repro.gda.systems.base.PlacementPolicy` subclasses.
policy_registry = Registry("placement policy", bootstrap="repro.gda.systems")

#: Bandwidth scenarios — entries are ``(base, seed) → ScenarioModel``
#: factories (or ScenarioModel subclasses, wrapped on registration by
#: :func:`repro.runtime.scenarios.register_scenario_model`).
scenario_registry = Registry("scenario", bootstrap="repro.runtime.scenarios")

#: Scheduler admission policies — entries are
#: :class:`~repro.runtime.scheduling.policies.AdmissionPolicy` classes
#: or instances (``fifo`` / ``priority`` / ``deadline-edf`` /
#: ``fair-share`` built in).
admission_policy_registry = Registry(
    "admission policy", bootstrap="repro.runtime.scheduling.policies"
)

#: Control-plane preemption policies — entries are
#: :class:`~repro.runtime.control.preemption.PreemptionPolicy` classes
#: or instances (``none`` / ``urgent-slo`` / ``cost-aware`` built in).
preemption_policy_registry = Registry(
    "preemption policy", bootstrap="repro.runtime.control.preemption"
)

#: Online tuner (bandit) policies for the control plane's
#: :class:`~repro.tuner.switcher.PolicySwitcher` — entries are bandit
#: classes or instances (``none`` / ``epsilon-greedy`` / ``ucb1``
#: built in).  ``none`` is a registered sentinel so config validation
#: has one source of truth; the service never builds a switcher for it.
tuner_registry = Registry("tuner policy", bootstrap="repro.tuner.switcher")

register_gauger = gauger_registry.register
register_predictor = predictor_registry.register
register_planner = planner_registry.register
register_variant = variant_registry.register
register_policy = policy_registry.register
register_scenario = scenario_registry.register
register_admission_policy = admission_policy_registry.register
register_preemption_policy = preemption_policy_registry.register
register_tuner_policy = tuner_registry.register


def build_stage(registry: Registry, name: str, **context: object) -> object:
    """Construct a registered stage, passing only the context it wants.

    Stage entries are heterogenous: ``SnapshotGauger()`` takes nothing,
    ``ForestPredictor(topology, weather, config)`` takes the full
    construction context, and custom factories may take any subset.
    This helper inspects the entry's signature and forwards only the
    ``context`` keys it declares, so one registry holds all of them.
    Non-callable entries (pre-built instances) are returned as-is.
    """
    entry = registry.get(name)
    if not callable(entry):
        return entry
    try:
        # For classes this is the __init__ signature minus ``self``
        # (and an empty one when __init__ is inherited from object).
        parameters = inspect.signature(entry).parameters
    except (TypeError, ValueError):  # builtins without signatures
        return entry()
    accepts_kwargs = any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values())
    if accepts_kwargs:
        kwargs = dict(context)
    else:
        kwargs = {k: v for k, v in context.items() if k in parameters}
    return entry(**kwargs)


def placement_policy(policy: object) -> object:
    """Resolve a policy spec — an instance, class, or registered name.

    The scheduler and service accept all three spellings; strings go
    through the registry, classes are instantiated.
    """
    if isinstance(policy, str):
        policy = policy_registry.get(policy)
    if isinstance(policy, type):
        policy = policy()
    return policy


def admission_policy(spec: object) -> object:
    """Resolve an admission-policy spec — instance, class, or name.

    The scheduler accepts all three spellings, mirroring
    :func:`placement_policy`; strings resolve through
    :data:`admission_policy_registry`, classes are instantiated.
    """
    if isinstance(spec, str):
        spec = admission_policy_registry.get(spec)
    if isinstance(spec, type):
        spec = spec()
    return spec


def preemption_policy(spec: object) -> object:
    """Resolve a preemption-policy spec — instance, class, or name.

    The control plane accepts all three spellings, mirroring
    :func:`admission_policy`; strings resolve through
    :data:`preemption_policy_registry`, classes are instantiated.
    """
    if isinstance(spec, str):
        spec = preemption_policy_registry.get(spec)
    if isinstance(spec, type):
        spec = spec()
    return spec
