"""One layered configuration system for facade, service, and CLI.

Every knob lives in a frozen dataclass — :class:`PipelineConfig` for
the one-shot pipeline, :class:`ServiceConfig` (a superset) for the
runtime service — and every entry point resolves values through the
same four layers, lowest precedence first:

1. dataclass defaults (the paper's settings);
2. a TOML or JSON config file (``--config run.toml`` /
   ``layered_config(path=...)``);
3. ``WANIFY_*`` environment variables (``WANIFY_SEED=7``);
4. explicit overrides — CLI flags actually present on the command
   line, or keyword arguments in code.

CLI arguments are *generated* from the dataclass fields by
:class:`ConfigArguments`, so adding a field to a config class makes it
reachable from the command line (and the environment, and config
files) with no argparse edits.  Field metadata controls the flag
spelling (``cli="--datasets"``), help text, and opt-outs
(``cli=False`` for fields an entry point wires manually).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import typing
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from repro.cloud.regions import PAPER_REGIONS
from repro.core.globalopt import DEFAULT_MAX_CONNECTIONS
from repro.core.localopt import EPOCH_S

#: Prefix for environment-variable overrides (layer 3).
ENV_PREFIX = "WANIFY_"


def config_field(
    default: Any,
    help: str = "",  # noqa: A002 - mirrors argparse's spelling
    cli: Union[str, bool, None] = None,
) -> Any:
    """A dataclass field carrying CLI/help metadata.

    ``cli`` may be a flag spelling (``"--datasets"``), ``False`` to
    keep the field off the command line, or ``None`` for the default
    ``--field-name`` spelling.
    """
    return dataclasses.field(default=default, metadata={"help": help, "cli": cli})


@dataclass(frozen=True)
class PipelineConfig:
    """Tunables for the gauge → predict → plan → deploy pipeline.

    Defaults follow the paper; the ``variant`` and ``policy`` fields
    name entries in the :mod:`repro.pipeline.registry` registries, so
    registered extensions are selectable from any entry point.
    """

    max_connections: int = config_field(DEFAULT_MAX_CONNECTIONS, help="per-pair connection ceiling")
    min_difference_mbps: float = config_field(100.0, help="Eq. 3 balance tolerance (Mbps)")
    n_training_datasets: int = config_field(120, help="training datasets", cli="--datasets")
    n_estimators: int = config_field(100, help="forest size", cli="--estimators")
    seed: int = config_field(13, help="weather / campaign seed")
    variant: str = config_field("wanify-tc", help="deployment variant (registered name)")
    policy: str = config_field("tetrium", help="placement policy (registered name)")
    #: Stage choices — each names an entry in the matching stage
    #: registry, so alternate implementations (``passive-telemetry``,
    #: ``cached``, ``multi-backend``) are selectable from any entry
    #: point, including the sweep matrix.
    gauger: str = config_field("snapshot", help="gauger stage (registered name)")
    predictor: str = config_field("forest", help="predictor stage (registered name)")
    planner: str = config_field("window", help="planner stage (registered name)")
    #: Knobs for the ``cached`` predictor (ignored by the others).
    cache_ttl_s: float = config_field(600.0, help="cached predictor TTL (s)")
    cache_drift_tolerance: float = config_field(
        0.15, help="cached predictor re-infer threshold (relative snapshot drift)"
    )


@dataclass(frozen=True)
class ServiceConfig(PipelineConfig):
    """Everything needed to build and run a service instance.

    Extends :class:`PipelineConfig` — the service hands itself to the
    pipeline it is built on, so every pipeline knob is a service knob.
    """

    regions: tuple[str, ...] = config_field(PAPER_REGIONS, help="region keys", cli=False)
    vm: str = config_field("t2.medium", help="VM type key")
    profile: str = config_field(
        "vpc-peering",
        help="network profile: vpc-peering, public-internet, edge-cloud",
    )
    seed: int = config_field(42, help="weather / campaign seed")
    #: Named (or ``+``-composed) scenario from the scenario registry;
    #: ``None`` runs plain seeded weather.
    scenario: Optional[str] = config_field(
        None,
        help="bandwidth scenario (registered name, + composes)",
    )
    #: ``False`` freezes the control loop after the initial plan.
    online: bool = config_field(True, help="enable online re-planning", cli=False)
    throttling: bool = config_field(True, help="throttle BW-rich pairs")
    max_concurrent: int = config_field(3, help="concurrent jobs admitted")
    #: Admission policy — names an entry in
    #: ``repro.pipeline.registry.admission_policy_registry`` (``fifo``,
    #: ``priority``, ``deadline-edf``, ``fair-share``, or anything
    #: registered from user code).
    scheduler: str = config_field("fifo", help="admission policy (registered name)")
    #: Scheduler shard count.  ``1`` keeps the single shared-queue
    #: ``JobScheduler`` (byte-identical to the pre-sharding service);
    #: ``>1`` builds a ``ShardedScheduler`` hashing tenants across N
    #: independent shards with work-stealing between them on idle.
    scheduler_shards: int = config_field(1, help="scheduler shards (1 = single shared queue)")
    #: Worker processes for the partitioned shard executor (the
    #: ``drain_parallel`` scale-out path).  ``0`` — the default — never
    #: builds the executor, keeping the in-process scheduler
    #: byte-identical to before; ``1`` drains the partitioned shards
    #: serially in-process (the deterministic reference); ``≥ 2`` fans
    #: them out over a multiprocessing pool, one seeded self-contained
    #: simulation per shard, with identical results at any worker
    #: count.
    shard_workers: int = config_field(0, help="shard worker processes (0 = in-process)")
    #: Transfer-advancement kernel for the WAN simulator: ``scalar``
    #: advances each transfer from Python (the reference path);
    #: ``vectorized`` advances each link's concurrent transfers as one
    #: numpy vector (falls back to scalar, with a warning, when numpy
    #: is unavailable).
    kernel: str = config_field("scalar", help="transfer kernel: scalar or vectorized")
    #: Default per-job SLO deadline, seconds from submission.  Unset
    #: means jobs carry no deadline (and SLO attainment reads 100%).
    slo_deadline_s: Optional[float] = config_field(
        None, help="per-job SLO deadline (s from submission; unset = none)"
    )
    #: Submissions between admission-queue re-orderings — the batched
    #: reallocation knob (1 = exact policy order on every admission).
    admit_batch: int = config_field(16, help="submissions between admission re-orderings")
    #: Probe-dollar budget for drift-triggered re-plans; once the
    #: charged re-gauge cost reaches it, further re-plans are skipped.
    replan_budget_usd: Optional[float] = config_field(
        None, help="probe-dollar budget for re-plans (unlimited when unset)"
    )
    #: Preemption policy — names an entry in
    #: ``repro.pipeline.registry.preemption_policy_registry`` (``none``,
    #: ``urgent-slo``, ``cost-aware``, or anything registered from user
    #: code).  ``none`` keeps the pre-control-plane behavior exactly.
    preemption: str = config_field(
        "none", help="preemption policy (registered name)"
    )
    #: Deadline-aware bandwidth governor: shift WAN share from
    #: slack-rich to slack-poor running jobs via traffic-control caps.
    governor: bool = config_field(
        False, help="deadline-aware bandwidth governor"
    )
    #: Autoscale the scheduler's ``max_concurrent`` between its
    #: configured value (the floor) and ``autoscale_max``.
    autoscale: bool = config_field(
        False, help="autoscale max_concurrent from queue depth/attainment"
    )
    #: Control-plane tick period.  Deliberately off the 30 s drift
    #: grid so control and drift interventions interleave rather than
    #: stack on one simulator instant.
    control_interval_s: float = config_field(
        45.0, help="control-plane tick period (s)"
    )
    #: Slack above which a running job may donate WAN share.
    governor_slack_s: float = config_field(
        120.0, help="slack making a job throttle-eligible (s)"
    )
    #: Fraction of a rich pair's current rate its cap allows through.
    governor_throttle_factor: float = config_field(
        0.5, help="governor cap as a fraction of current pair rate"
    )
    #: Autoscaler concurrency ceiling (``max_concurrent`` is the floor).
    autoscale_max: int = config_field(
        6, help="autoscaler max_concurrent ceiling"
    )
    epoch_s: float = config_field(EPOCH_S, help="AIMD agent epoch (s)")
    check_interval_s: float = config_field(30.0, help="drift check period (s)")
    #: Mirrors ``repro.runtime.drift.DEFAULT_THRESHOLD`` — duplicated
    #: here (and equality-tested) so the light config layer does not
    #: import the runtime package.
    drift_threshold: float = config_field(0.45, help="relative error firing a re-plan")
    #: Mirrors ``repro.runtime.drift.DEFAULT_COOLDOWN_S``.
    cooldown_s: float = config_field(240.0, help="minimum gap between re-plans (s)")
    max_replans: Optional[int] = config_field(None, help="re-plan budget (unlimited when unset)")
    #: Sliding window for the shared store.  Shorter than the 300 s
    #: weather grid on purpose: the drift detector's median over this
    #: window is the re-plan trigger, and detection latency is about
    #: half the window for a persistent drop.
    telemetry_window_s: float = config_field(120.0, help="telemetry sliding window (s)")
    #: Continuous capacity recalibration: a background gauger that
    #: re-derives each link's usable capacity from the p95 of observed
    #: throughput on an interval, keeping plans honest between drift
    #: re-plans.  Off by default — every pre-existing run stays
    #: byte-identical.
    recalibrate: bool = config_field(
        False, help="continuous capacity recalibration loop"
    )
    #: Recalibrator tick period.  Off the 30 s drift grid and the 45 s
    #: control grid so the three loops interleave on the simulator
    #: rather than stacking on one instant.
    recal_interval_s: float = config_field(
        60.0, help="capacity recalibration tick period (s)"
    )
    #: Trailing telemetry window the recalibrator derives capacity
    #: from.  Longer than the drift window: recalibration tracks the
    #: sustained level, drift detection the fresh break.
    recal_window_s: float = config_field(
        240.0, help="recalibration trailing window (s)"
    )
    #: Percentile of observed throughput read as usable capacity
    #: (p95 = "capacity when the link was pushed"; lower it toward 50
    #: for chronically flapping circuits).
    recal_percentile: float = config_field(
        95.0, help="throughput percentile read as capacity"
    )
    #: Floor guard: recalibrated capacity never drops below this
    #: fraction of the planned baseline.
    recal_floor_fraction: float = config_field(
        0.2, help="recalibration floor (fraction of baseline)"
    )
    #: Ceiling guard: recalibrated capacity never exceeds this fraction
    #: of the planned baseline (and never the topology link ceiling).
    recal_ceiling_fraction: float = config_field(
        1.2, help="recalibration ceiling (fraction of baseline)"
    )
    #: Maximum move per tick, as a fraction of the baseline — one
    #: corrupt window cannot teleport a link's capacity.
    recal_max_step_fraction: float = config_field(
        0.25, help="max capacity step per tick (fraction of baseline)"
    )
    #: Active samples required in the window before a link is
    #: recalibrated at all (idle links are left at their baseline).
    recal_min_samples: int = config_field(
        3, help="active samples required to recalibrate a link"
    )
    #: The observability hub: metrics warehouse, event trace, and the
    #: Prometheus rendering surface.  On by default — every hook is
    #: observation-only and the ingest path is an O(1) append, so runs
    #: are numerically identical either way (the runtime benchmark
    #: pins the overhead below 5 %).
    observability: bool = config_field(
        True, help="telemetry warehouse + event trace + metrics surface"
    )
    #: Ring-buffer bound on the event trace; oldest events are evicted
    #: past it (``EventTrace.dropped`` counts how many).
    trace_capacity: int = config_field(4096, help="event-trace ring capacity")
    #: Port for the Prometheus ``/metrics`` endpoint during ``serve``
    #: (0 binds an ephemeral port and prints it; unset serves nothing).
    metrics_port: Optional[int] = config_field(
        None, help="serve /metrics on this port (0 = ephemeral; unset = off)"
    )
    #: Online policy switcher — names an entry in
    #: ``repro.pipeline.registry.tuner_registry`` (``none``,
    #: ``epsilon-greedy``, ``ucb1``, or anything registered from user
    #: code).  ``none`` (the default) builds no switcher at all, so
    #: every pre-existing run stays byte-identical.
    tuner: str = config_field("none", help="online policy switcher (registered name)")
    #: SLO-attainment floor the offline ``wanify tune`` search treats
    #: as its feasibility constraint (also the ``[tune]`` table's
    #: default ``target``).
    tune_target: float = config_field(
        0.9, help="SLO-attainment target for `wanify tune`"
    )
    #: Minimum simulated seconds between switcher decisions.  Matches
    #: the re-plan cooldown default so policy churn and re-planning
    #: settle on the same timescale.
    switch_cooldown_s: float = config_field(
        240.0, help="cooldown between policy-switch decisions (s)"
    )
    #: Exploration rate for the ``epsilon-greedy`` switcher.
    tuner_epsilon: float = config_field(
        0.2, help="epsilon-greedy exploration rate"
    )
    #: Training-campaign size (small defaults keep service start cheap;
    #: raise toward the paper's 120/100 for fidelity studies).
    n_training_datasets: int = config_field(24, help="training datasets", cli="--datasets")
    n_estimators: int = config_field(16, help="forest size", cli="--estimators")


# ----------------------------------------------------------------------
# Layer resolution
# ----------------------------------------------------------------------


def _field_types(cls: type) -> dict[str, Any]:
    """Resolved (non-string) annotations for a config dataclass."""
    return typing.get_type_hints(cls)


def _unwrap_optional(tp: Any) -> tuple[Any, bool]:
    """``Optional[X]`` → ``(X, True)``; anything else → ``(tp, False)``."""
    if typing.get_origin(tp) is Union:
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        if len(args) == 1:
            return args[0], True
    return tp, False


_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"0", "false", "no", "off"})


def _coerce(name: str, tp: Any, raw: Any) -> Any:
    """Coerce a file/env value to a field's annotated type."""
    tp, optional = _unwrap_optional(tp)
    if raw is None:
        return None
    if isinstance(raw, str) and optional and raw.lower() in {"", "none"}:
        return None
    if tp is bool:
        if isinstance(raw, bool):
            return raw
        lowered = str(raw).strip().lower()
        if lowered in _TRUTHY:
            return True
        if lowered in _FALSY:
            return False
        raise ValueError(f"cannot read {raw!r} as a boolean for {name!r}")
    if tp in (int, float, str):
        return tp(raw)
    origin = typing.get_origin(tp)
    if origin is tuple:
        if isinstance(raw, str):
            raw = [part for part in raw.replace(",", " ").split() if part]
        return tuple(str(item) for item in raw)
    return raw


def load_config_file(path: Union[str, Path]) -> dict[str, Any]:
    """Read a flat TOML (``.toml``) or JSON mapping of field values."""
    path = Path(path)
    if path.suffix == ".toml":
        import tomllib

        with path.open("rb") as handle:
            data = tomllib.load(handle)
    else:
        data = json.loads(path.read_text())
    if not isinstance(data, dict):
        raise ValueError(f"config file {path} must hold a table/object")
    return data


def env_overrides(cls: type, environ: Optional[Mapping[str, str]] = None) -> dict[str, Any]:
    """``WANIFY_<FIELD>`` values coerced to the fields of ``cls``.

    Fields with a CLI alias accept the alias spelling too
    (``WANIFY_DATASETS`` for ``n_training_datasets``); the field-name
    spelling wins when both are set.
    """
    environ = os.environ if environ is None else environ
    types = _field_types(cls)
    found: dict[str, Any] = {}
    for field_ in dataclasses.fields(cls):
        names = [ENV_PREFIX + field_.name.upper()]
        cli = field_.metadata.get("cli")
        if isinstance(cli, str):
            alias = cli.lstrip("-").replace("-", "_").upper()
            names.append(ENV_PREFIX + alias)
        for env_name in names:
            raw = environ.get(env_name)
            if raw is not None:
                found[field_.name] = _coerce(field_.name, types[field_.name], raw)
                break
    return found


def layered_config(
    cls: type,
    *,
    path: Union[str, Path, None] = None,
    environ: Optional[Mapping[str, str]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    defaults: Optional[Mapping[str, Any]] = None,
):
    """Resolve a config instance through the four layers.

    ``defaults`` sit just above the dataclass defaults (an entry
    point's own preferences, e.g. the CLI's fast training sizes);
    ``overrides`` win over everything (explicit CLI flags / kwargs).
    File keys that are not fields of ``cls`` are ignored, so one file
    can feed entry points with different config classes.
    """
    names = {field_.name for field_ in dataclasses.fields(cls)}
    types = _field_types(cls)
    values: dict[str, Any] = dict(defaults or {})
    if path is not None:
        for key, raw in load_config_file(path).items():
            if key in names:
                values[key] = _coerce(key, types[key], raw)
    values.update(env_overrides(cls, environ))
    values.update(overrides or {})
    return cls(**values)


# ----------------------------------------------------------------------
# CLI generation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ArgSpec:
    field_name: str
    dest: str
    flag: str
    type: Any
    optional: bool
    default: Any
    help: str


class ConfigArguments:
    """Auto-generated argparse arguments for a config dataclass.

    ``defaults`` override the dataclass defaults for this entry point
    (they stay in the *defaults* layer, beneath files and env vars);
    ``exclude`` drops fields the command wires another way.  Call
    :meth:`install` on a subparser, then :meth:`resolve` on the parsed
    namespace — only flags literally present on the command line become
    top-layer overrides, so ``--config`` files and ``WANIFY_*`` vars
    still reach everything left at its default.
    """

    def __init__(
        self,
        cls: type,
        defaults: Optional[Mapping[str, Any]] = None,
        exclude: Sequence[str] = (),
    ) -> None:
        self.cls = cls
        self.defaults = dict(defaults or {})
        self.specs: list[_ArgSpec] = []
        types = _field_types(cls)
        for field_ in dataclasses.fields(cls):
            cli = field_.metadata.get("cli")
            if cli is False or field_.name in exclude:
                continue
            flag = cli or "--" + field_.name.replace("_", "-")
            tp, optional = _unwrap_optional(types[field_.name])
            default = self.defaults.get(field_.name, field_.default)
            spec = _ArgSpec(
                field_name=field_.name,
                # Namespace attribute follows the flag spelling
                # (``--datasets`` → ``args.datasets``), matching
                # what a hand-written parser would produce.
                dest=flag.lstrip("-").replace("-", "_"),
                flag=flag,
                type=tp,
                optional=optional,
                default=default,
                help=field_.metadata.get("help", ""),
            )
            self.specs.append(spec)

    def _add(self, parser: argparse.ArgumentParser, spec: _ArgSpec) -> None:
        help_text = f"{spec.help} (default: {spec.default})"
        if spec.type is bool:
            parser.add_argument(
                spec.flag,
                dest=spec.dest,
                action=argparse.BooleanOptionalAction,
                default=spec.default,
                help=help_text,
            )
        else:
            parser.add_argument(
                spec.flag,
                dest=spec.dest,
                type=spec.type,
                default=spec.default,
                help=help_text,
            )

    def install(self, parser: argparse.ArgumentParser) -> None:
        """Add ``--config`` plus one generated argument per field."""
        parser.add_argument(
            "--config",
            dest="config_file",
            metavar="FILE",
            default=None,
            help="TOML/JSON config file layered beneath explicit flags",
        )
        for spec in self.specs:
            self._add(parser, spec)

    def explicit(self, argv: Sequence[str]) -> dict[str, Any]:
        """Values for flags literally present in ``argv``.

        A twin parser with suppressed defaults re-reads the command
        line, so a flag left unset is absent here — and a config file
        or environment variable can still claim it.
        """
        twin = argparse.ArgumentParser(add_help=False, argument_default=argparse.SUPPRESS)
        for spec in self.specs:
            self._add(twin, dataclasses.replace(spec, default=argparse.SUPPRESS))
        namespace, _ = twin.parse_known_args(list(argv))
        by_dest = {spec.dest: spec.field_name for spec in self.specs}
        return {by_dest[dest]: value for dest, value in vars(namespace).items()}

    def resolve(
        self,
        args: argparse.Namespace,
        environ: Optional[Mapping[str, str]] = None,
        **extra: Any,
    ):
        """Layered config instance for a parsed namespace.

        ``extra`` supplies overrides for fields the command wires
        manually (e.g. ``regions`` from positionals, ``online`` from
        ``--static``).
        """
        argv = getattr(args, "_argv", None)
        if argv is not None:
            overrides = self.explicit(argv)
        else:
            # No raw argv recorded (direct parse_args callers): treat
            # any value differing from this entry point's default as
            # explicit.
            overrides = {
                spec.field_name: getattr(args, spec.dest)
                for spec in self.specs
                if getattr(args, spec.dest) != spec.default
            }
        overrides.update(extra)
        return layered_config(
            self.cls,
            path=getattr(args, "config_file", None),
            environ=environ,
            overrides=overrides,
            defaults=self.defaults,
        )
