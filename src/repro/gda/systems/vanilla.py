"""Vanilla Spark: locality-aware maps, slots-proportional reduces.

The "No WAN-aware" baseline of §5.3.1: map tasks run where their HDFS
blocks live (the engine's in-place semantics already give that), reduce
tasks spread across executors proportionally to slots, and nothing is
migrated — Spark was designed for a single DC and is WAN-oblivious.
"""

from __future__ import annotations

from typing import Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import StageSpec
from repro.gda.systems.base import PlacementPolicy
from repro.pipeline.registry import register_policy
from repro.net.matrix import BandwidthMatrix


@register_policy()
class LocalityPolicy(PlacementPolicy):
    """WAN-oblivious Spark scheduling."""

    name = "vanilla-spark"

    def place_stage(
        self,
        stage: StageSpec,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
    ) -> dict[str, float]:
        """Reduce tasks land proportionally to executor slots."""
        return self.slots_proportional(cluster)
