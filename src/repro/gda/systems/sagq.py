"""SAGQ [15]: self-adaptive gradient quantization for geo-distributed ML.

Geo-distributed synchronous training alternates local compute with an
all-to-all gradient exchange.  SAGQ shrinks the exchanged payload by
quantizing gradients per link — fewer bits over weaker links — "without
compromising model accuracy".  The quantization decision needs a BW
matrix, which is where WANify plugs in:

==========  =========================================================
variant     BW source for quantization / network setup (§5.6)
==========  =========================================================
``NoQ``     no quantization (32-bit everywhere)
``SAGQ``    static-independent BWs
``SimQ``    static-simultaneous BWs
``PredQ``   WANify-predicted runtime BWs
``WQ``      predicted BWs + WANify-TC parallel heterogeneous
            connections installed on the network
==========  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.interface import WANifyDeployment
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.cost import CostBreakdown, job_cost
from repro.net.matrix import BandwidthMatrix

#: Quantization ladder: (minimum decision BW in Mbps, gradient bits).
#: Strong links keep full precision; the weakest drop to 4 bits.  The
#: thresholds sit where static-independent and runtime BWs disagree
#: (mid-distance links measure 200–1200 Mbps statically but deliver a
#: fraction of that under all-to-all gradient exchange), which is what
#: separates SAGQ from SimQ/PredQ in Fig. 4.
BITS_LADDER: tuple[tuple[float, int], ...] = (
    (800.0, 32),
    (350.0, 16),
    (120.0, 8),
    (0.0, 4),
)

#: Full-precision gradient bits.
FULL_BITS = 32


def bits_for_bw(bw_mbps: float) -> int:
    """Gradient precision for a link of the given (believed) BW.

    >>> bits_for_bw(1000.0)
    32
    >>> bits_for_bw(120.0)
    4
    """
    for threshold, bits in BITS_LADDER:
        if bw_mbps >= threshold:
            return bits
    return BITS_LADDER[-1][1]


@dataclass(frozen=True)
class MLModelSpec:
    """The trained model and its communication/compute profile.

    Defaults are calibrated to the paper's setup (§5.6): MNIST expanded
    to ~6.8 GB via PySpark unions, a 3-Dense/3-Activation/2-Dropout
    model trained for 10 epochs on the 8-DC cluster via elephas-style
    synchronization, which ships substantial per-epoch state between
    workers.  ``sync_mb_per_pair`` is the full-precision per-epoch
    gradient/weight traffic per ordered worker pair.
    """

    name: str = "mnist-dense"
    sync_mb_per_pair: float = 600.0
    compute_s_per_epoch: float = 180.0
    test_accuracy: float = 0.97

    def payload_mb(self, bits: int) -> float:
        """Per-pair payload at the given quantization."""
        if bits < 1 or bits > FULL_BITS:
            raise ValueError(f"bits out of range [1, 32]: {bits}")
        return self.sync_mb_per_pair * bits / FULL_BITS


@dataclass
class TrainingResult:
    """Outcome of a geo-distributed training run."""

    variant: str
    epochs: int
    total_s: float
    compute_s: float
    network_s: float
    cost: CostBreakdown
    min_bw_mbps: float
    bits_by_pair: dict[tuple[str, str], int] = field(default_factory=dict)
    test_accuracy: float = 0.97

    @property
    def total_minutes(self) -> float:
        """Training time in minutes (Fig. 4's unit)."""
        return self.total_s / 60.0


class SagqTrainer:
    """Runs quantized synchronous training on a geo cluster."""

    def __init__(
        self,
        cluster: GeoCluster,
        model: MLModelSpec = MLModelSpec(),
        epochs: int = 10,
    ) -> None:
        if epochs < 1:
            raise ValueError(f"epochs must be ≥ 1: {epochs}")
        self.cluster = cluster
        self.model = model
        self.epochs = epochs

    def bits_matrix(
        self, decision_bw: Optional[BandwidthMatrix]
    ) -> dict[tuple[str, str], int]:
        """Per-pair precision from a decision BW matrix (None → 32)."""
        bits: dict[tuple[str, str], int] = {}
        for src in self.cluster.keys:
            for dst in self.cluster.keys:
                if src == dst:
                    continue
                if decision_bw is None:
                    bits[(src, dst)] = FULL_BITS
                else:
                    bits[(src, dst)] = bits_for_bw(decision_bw.get(src, dst))
        return bits

    def run(
        self,
        variant: str,
        decision_bw: Optional[BandwidthMatrix] = None,
        deployment: Optional[WANifyDeployment] = None,
    ) -> TrainingResult:
        """Train for the configured epochs under one §5.6 variant."""
        network = self.cluster.network
        sim = network.sim
        network.reset_statistics()
        network.tc.clear_all()
        network.set_connection_plan(
            BandwidthMatrix.full(self.cluster.keys, 1.0)
        )
        if deployment is not None:
            deployment.install(network)

        bits = self.bits_matrix(decision_bw)
        t0 = sim.now
        compute_total = 0.0
        network_total = 0.0
        for _ in range(self.epochs):
            # Local compute phase (data-parallel, all DCs in lockstep).
            sim.run(until=sim.now + self.model.compute_s_per_epoch)
            compute_total += self.model.compute_s_per_epoch
            # Synchronous gradient exchange.
            start = sim.now
            pending = [0]

            def done(_t) -> None:
                pending[0] -= 1

            for (src, dst), link_bits in bits.items():
                payload = self.model.payload_mb(link_bits)
                pending[0] += 1
                network.start_transfer(
                    src, dst, payload * 8.0, on_complete=done, tag="allreduce"
                )
            while pending[0] > 0:
                if not sim.step():
                    raise RuntimeError("training sync stalled")
            network_total += sim.now - start

        total_s = sim.now - t0
        cost = job_cost(
            self.cluster,
            total_s,
            network.total_wan_mbits(),
            input_mb=6.8 * 1024.0,
        )
        min_bw = network.min_observed_bw()
        if deployment is not None:
            deployment.teardown(network)
        return TrainingResult(
            variant=variant,
            epochs=self.epochs,
            total_s=total_s,
            compute_s=compute_total,
            network_s=network_total,
            cost=cost,
            min_bw_mbps=min_bw,
            bits_by_pair=bits,
            test_accuracy=self.model.test_accuracy,
        )
