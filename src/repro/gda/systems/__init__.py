"""GDA placement policies and the quantized geo-ML trainer.

All policies consume a pluggable *decision* BW matrix — the WANify
integration point: feed them static-independent, static-simultaneous,
or predicted runtime BWs and compare outcomes (Table 4, Fig. 7).

Each policy registers itself by name in
:data:`repro.pipeline.registry.policy_registry` (via
``@register_policy``), so ``--policy kimchi`` on the CLI, the service's
``policy`` config field, and ``scheduler.submit(job, "iridium")`` all
resolve here — and a policy registered from user code is reachable the
same way with zero core edits.
"""

from repro.gda.systems.base import PlacementPolicy
from repro.gda.systems.iridium import IridiumPolicy
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.systems.vanilla import LocalityPolicy
from repro.pipeline.registry import policy_registry

#: Friendly alias — ``LocalityPolicy`` registers as "vanilla-spark"
#: (its results-table name); "locality" reads better on a CLI.
if "locality" not in policy_registry.mapping:
    policy_registry.add("locality", LocalityPolicy)

__all__ = [
    "IridiumPolicy",
    "KimchiPolicy",
    "LocalityPolicy",
    "PlacementPolicy",
    "TetriumPolicy",
]
