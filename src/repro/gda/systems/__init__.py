"""GDA placement policies and the quantized geo-ML trainer.

All policies consume a pluggable *decision* BW matrix — the WANify
integration point: feed them static-independent, static-simultaneous,
or predicted runtime BWs and compare outcomes (Table 4, Fig. 7).
"""

from repro.gda.systems.base import PlacementPolicy
from repro.gda.systems.iridium import IridiumPolicy
from repro.gda.systems.kimchi import KimchiPolicy
from repro.gda.systems.tetrium import TetriumPolicy
from repro.gda.systems.vanilla import LocalityPolicy

__all__ = [
    "IridiumPolicy",
    "KimchiPolicy",
    "LocalityPolicy",
    "PlacementPolicy",
    "TetriumPolicy",
]
