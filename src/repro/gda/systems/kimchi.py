"""Kimchi [30]: network-cost-aware geo-distributed placement.

Kimchi optimizes the dollar cost of a query with latency awareness —
inter-region transfer is billed per GB, so it prefers placements that
move less paid traffic even at some latency expense.  We reuse the
Tetrium LP with a positive network-cost weight in the objective, and a
more conservative evacuation rule (migration itself is paid traffic).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import StageSpec
from repro.gda.systems.base import PlacementPolicy
from repro.pipeline.registry import register_policy
from repro.gda.systems.tetrium import (
    _fan_out_migration,
    _mean_connectivity,
    solve_placement_lp,
)
from repro.net.matrix import BandwidthMatrix

#: Seconds of latency Kimchi will trade to save one transfer dollar.
#: Low enough that the latency term still responds to BW estimates —
#: Kimchi is cost-*aware*, not cost-only.
DEFAULT_COST_WEIGHT = 300.0

#: Same evacuation trigger as Tetrium — Kimchi's cost-awareness lives
#: in its placement objective and its stricter shuffle-benefit bar, not
#: in a different notion of "bottlenecked DC".
EVACUATION_RATIO = 0.55


@register_policy()
class KimchiPolicy(PlacementPolicy):
    """Cost-aware LP placement."""

    name = "kimchi"

    def __init__(
        self,
        cost_weight: float = DEFAULT_COST_WEIGHT,
        migrate_input: bool = True,
        evacuation_ratio: float = EVACUATION_RATIO,
    ) -> None:
        if cost_weight < 0:
            raise ValueError(f"cost_weight must be ≥ 0: {cost_weight}")
        self.cost_weight = cost_weight
        self.migrate_input = migrate_input
        self.evacuation_ratio = evacuation_ratio

    def plan_migration(
        self,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
        shuffle_mb: float = 0.0,
    ) -> list[tuple[str, str, float]]:
        """Evacuate only when a DC is drastically bottlenecked and the
        job is shuffle-heavy enough to repay the paid migration."""
        if not self.migrate_input or bw is None:
            return []
        scores = {
            dc: _mean_connectivity(bw, dc)
            for dc in cluster.keys
            if data_mb_by_dc.get(dc, 0.0) > 0
        }
        if len(scores) < 2:
            return []
        median = float(np.median(list(scores.values())))
        worst = min(scores, key=scores.get)
        if scores[worst] >= self.evacuation_ratio * median:
            return []
        volume = data_mb_by_dc[worst] * 0.7
        if shuffle_mb > 0 and volume > 0.55 * shuffle_mb:
            # Kimchi is cost-aware: a stricter benefit bar than Tetrium.
            return []
        return _fan_out_migration(worst, volume, bw, cluster)

    def place_stage(
        self,
        stage: StageSpec,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
    ) -> dict[str, float]:
        """Cost-weighted LP placement."""
        if bw is None:
            return self.slots_proportional(cluster)
        return solve_placement_lp(
            data_mb_by_dc,
            bw,
            cluster,
            stage.cpu_s_per_mb,
            network_cost_weight=self.cost_weight,
            price_per_gb=cluster.prices.network_per_gb,
        )
