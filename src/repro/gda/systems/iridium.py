"""Iridium [33]: low-latency geo-distributed analytics.

Pu et al.'s Iridium is the third WAN-aware system the paper groups with
Tetrium and Kimchi ("recent GDA systems [20, 21, 30, 33] ... measure
BWs statically and independently", §2.1).  Its two mechanisms:

* **task placement** — choose reduce fractions that minimize the
  *transfer time alone* (no compute term; Iridium assumes compute is
  plentiful and WAN is the bottleneck).  We solve the same fractional
  LP as Tetrium with the compute term dropped (``network_only=True``);
* **data placement** — iteratively move input chunks *off* the site
  whose uplink bottlenecks the anticipated shuffle, onto the
  best-connected sites, until no move improves the bottleneck (or the
  move budget runs out).  This is Iridium's greedy §4.2 heuristic,
  bounded here by the same shuffle-benefit bar the other policies use
  so a cheap shuffle never justifies an expensive migration.

Like the published system, Iridium consumes whatever BW matrix it is
given — static iPerf numbers in its original deployment, predicted
runtime values when WANify fronts it.
"""

from __future__ import annotations

from typing import Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import StageSpec
from repro.gda.systems.base import PlacementPolicy
from repro.pipeline.registry import register_policy
from repro.gda.systems.tetrium import (
    TRANSFER_OVERHEAD,
    _fan_out_migration,
    solve_placement_lp,
)
from repro.net.matrix import BandwidthMatrix

#: Fraction of the bottleneck site's data moved per greedy iteration.
CHUNK_FRACTION = 0.25

#: Maximum greedy data-placement iterations per job.
MAX_MOVES = 4

#: Stop when the predicted bottleneck improves by less than this.
MIN_RELATIVE_GAIN = 0.05

#: Total migrated volume may not exceed this multiple of the job's
#: first-shuffle volume (mirrors Tetrium/Kimchi's benefit bar).
MIGRATION_BUDGET_RATIO = 0.65

#: Iridium's per-DC share cap, as a multiple of the slots-proportional
#: share.  Tighter than Tetrium's: the published system treats compute
#: slots as a hard constraint while optimizing transfer time only, so
#: nothing in its objective resists concentration — the cap is where
#: its slot constraint bites.
IRIDIUM_SPREAD_FACTOR = 1.1

#: A move may not worsen the in-place compute barrier (max per-DC data
#: per compute rate) by more than this factor.  Iridium's published
#: acceptance test is *query speedup*, not transfer time alone — piling
#: chunks onto an already data-heavy site slows every in-place stage at
#: the barrier, which the transfer estimate cannot see.
MAX_BARRIER_GROWTH = 1.05


def _compute_barrier(
    data_mb_by_dc: dict[str, float], cluster: GeoCluster
) -> float:
    """In-place compute barrier: the largest per-DC data volume per unit
    of compute rate.  Every in-place stage's duration is proportional to
    this (the engine runs stages with barrier semantics)."""
    return max(
        (
            mb / (cluster.slots(dc) * cluster.speed(dc))
            for dc, mb in data_mb_by_dc.items()
            if mb > 0
        ),
        default=0.0,
    )


def bottleneck_transfer_s(
    data_mb_by_dc: dict[str, float],
    fractions: dict[str, float],
    bw: BandwidthMatrix,
) -> float:
    """The slowest pairwise transfer of an anticipated shuffle (s).

    Iridium's objective: with ``data`` at the sources and reduce
    ``fractions`` at the destinations, each ordered pair moves
    ``data_src × frac_dst`` and the stage's network time is the max.
    """
    worst = 0.0
    for src, mb in data_mb_by_dc.items():
        if mb <= 0:
            continue
        for dst, frac in fractions.items():
            if src == dst or frac <= 0:
                continue
            rate_mb_s = max(bw.get(src, dst), 1.0) / 8.0
            seconds = mb * frac * TRANSFER_OVERHEAD / rate_mb_s
            worst = max(worst, seconds)
    return worst


@register_policy()
class IridiumPolicy(PlacementPolicy):
    """Network-only LP placement with greedy iterative data placement."""

    name = "iridium"

    def __init__(
        self,
        migrate_input: bool = True,
        max_moves: int = MAX_MOVES,
        chunk_fraction: float = CHUNK_FRACTION,
    ) -> None:
        if not 0.0 < chunk_fraction <= 1.0:
            raise ValueError(
                f"chunk_fraction must be in (0, 1]: {chunk_fraction}"
            )
        self.migrate_input = migrate_input
        self.max_moves = max_moves
        self.chunk_fraction = chunk_fraction

    def plan_migration(
        self,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
        shuffle_mb: float = 0.0,
    ) -> list[tuple[str, str, float]]:
        """Greedy chunk moves off the bottleneck-uplink site (§4.2 of
        Iridium): keep moving while the anticipated shuffle bottleneck
        improves and the migration budget lasts."""
        if not self.migrate_input or bw is None:
            return []
        data = {
            dc: float(mb) for dc, mb in data_mb_by_dc.items() if mb > 0
        }
        if len(data) < 2:
            return []
        budget = (
            MIGRATION_BUDGET_RATIO * shuffle_mb
            if shuffle_mb > 0
            else float("inf")
        )
        moves: list[tuple[str, str, float]] = []
        moved_total = 0.0
        for _ in range(self.max_moves):
            fractions = self._fractions(data, bw, cluster)
            current = bottleneck_transfer_s(data, fractions, bw)
            if current <= 0:
                break
            candidate = self._best_move(data, fractions, bw, cluster)
            if candidate is None:
                break
            src, move_list, improved = candidate
            if improved > current * (1.0 - MIN_RELATIVE_GAIN):
                break
            volume = sum(mb for _, _, mb in move_list)
            if moved_total + volume > budget:
                break
            trial = dict(data)
            for move_src, dst, mb in move_list:
                trial[move_src] = trial.get(move_src, 0.0) - mb
                trial[dst] = trial.get(dst, 0.0) + mb
            # Query-speedup guard: a transfer win that inflates the
            # in-place compute barrier is not a query win.
            if (
                _compute_barrier(trial, cluster)
                > MAX_BARRIER_GROWTH * _compute_barrier(data, cluster)
            ):
                break
            data.update(trial)
            moves.extend(move_list)
            moved_total += volume
        return moves

    def _fractions(
        self,
        data: dict[str, float],
        bw: BandwidthMatrix,
        cluster: GeoCluster,
    ) -> dict[str, float]:
        return solve_placement_lp(
            data,
            bw,
            cluster,
            cpu_s_per_mb=0.0,
            network_only=True,
            spread_factor=IRIDIUM_SPREAD_FACTOR,
        )

    def _best_move(
        self,
        data: dict[str, float],
        fractions: dict[str, float],
        bw: BandwidthMatrix,
        cluster: GeoCluster,
    ) -> Optional[tuple[str, list[tuple[str, str, float]], float]]:
        """The chunk move that most improves the anticipated bottleneck.

        Only the site on the current bottleneck path is a candidate
        source — moving anyone else's data cannot relax the max.
        """
        source = self._bottleneck_site(data, fractions, bw)
        if source is None:
            return None
        volume = data[source] * self.chunk_fraction
        if volume <= 0:
            return None
        move_list = _fan_out_migration(source, volume, bw, cluster)
        if not move_list:
            return None
        trial = dict(data)
        for src, dst, mb in move_list:
            trial[src] = trial.get(src, 0.0) - mb
            trial[dst] = trial.get(dst, 0.0) + mb
        new_fractions = self._fractions(trial, bw, cluster)
        improved = bottleneck_transfer_s(trial, new_fractions, bw)
        return source, move_list, improved

    @staticmethod
    def _bottleneck_site(
        data: dict[str, float],
        fractions: dict[str, float],
        bw: BandwidthMatrix,
    ) -> Optional[str]:
        worst_site, worst_s = None, 0.0
        for src, mb in data.items():
            if mb <= 0:
                continue
            for dst, frac in fractions.items():
                if src == dst or frac <= 0:
                    continue
                rate_mb_s = max(bw.get(src, dst), 1.0) / 8.0
                seconds = mb * frac * TRANSFER_OVERHEAD / rate_mb_s
                if seconds > worst_s:
                    worst_site, worst_s = src, seconds
        return worst_site

    def place_stage(
        self,
        stage: StageSpec,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
    ) -> dict[str, float]:
        """Network-only LP; slots-proportional without a BW matrix."""
        if bw is None:
            return self.slots_proportional(cluster)
        return solve_placement_lp(
            data_mb_by_dc,
            bw,
            cluster,
            cpu_s_per_mb=stage.cpu_s_per_mb,
            network_only=True,
            spread_factor=IRIDIUM_SPREAD_FACTOR,
        )
