"""Placement-policy interface.

A policy answers two questions the engine asks:

* should any input be migrated between DCs before the job starts?
* what fraction of each (shuffle) stage's work goes to each DC?

Both answers may use the *decision* BW matrix — whatever measurement or
prediction the surrounding experiment supplies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import StageSpec
from repro.net.matrix import BandwidthMatrix


class PlacementPolicy(ABC):
    """Base class for GDA task/data placement systems."""

    #: Human-readable system name used in results and plots.
    name: str = "base"

    def plan_migration(
        self,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
        shuffle_mb: float = 0.0,
    ) -> list[tuple[str, str, float]]:
        """Input moves as (src, dst, MB); default: leave data in place.

        ``shuffle_mb`` is the job's expected first-shuffle volume — a
        system weighs migration cost against how much WAN traffic the
        job will actually generate (moving 12 GB of input to speed a
        2 GB shuffle is a losing trade).
        """
        return []

    @abstractmethod
    def place_stage(
        self,
        stage: StageSpec,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
    ) -> dict[str, float]:
        """Per-DC work fractions for a shuffle stage (sum to 1)."""

    @staticmethod
    def slots_proportional(cluster: GeoCluster) -> dict[str, float]:
        """Fractions proportional to compute slots (Spark's default)."""
        slots = {dc: float(cluster.slots(dc)) for dc in cluster.keys}
        total = sum(slots.values())
        return {dc: s / total for dc, s in slots.items()}
