"""Tetrium [21]: multi-resource (network + compute) task placement.

Tetrium chooses reduce-task fractions that jointly minimize the stage's
network and compute completion times.  We solve the fractional
relaxation as a linear program:

    minimize    T_net + T_cmp
    subject to  data_i · p_j  ≤  T_net · BW_ij     for all i ≠ j
                total · p_j · cpu/(slots_j·speed_j) ≤ T_cmp   for all j
                Σ p_j = 1,  p ≥ 0

where BW comes from whatever matrix the experiment supplies — Tetrium's
published system measures it statically with iPerf; WANify swaps in
predicted runtime values.

Tetrium also places *data*: following the §2.2 narrative ("prior works
choose to migrate input data out of AP SE to the nearby DCs"), the
policy evacuates input from a DC whose connectivity is far below the
cluster median, sending it to that DC's best-connected peer.  With
static-independent BWs this picks the statically slowest DC — which at
runtime may be the wrong one, exactly the paper's point.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import StageSpec
from repro.gda.systems.base import PlacementPolicy
from repro.pipeline.registry import register_policy
from repro.net.matrix import BandwidthMatrix

#: A DC whose mean connectivity falls below this multiple of the
#: cluster median is evacuated.
EVACUATION_RATIO = 0.55

#: Evacuated data fans out over this many best-connected destinations
#: (a bulk HDFS move parallelizes across receivers).
EVACUATION_FANOUT = 3

#: Floor (MB/s) to keep LP constraints well-conditioned on dead links.
_MIN_BW_MBPS = 1.0

#: The transfer amplification the placement model assumes for framework
#: shuffles (mirrors the engine's SHUFFLE_OVERHEAD; Tetrium's published
#: model is calibrated on measured Spark transfer times, which include
#: this overhead).
TRANSFER_OVERHEAD = 4.0

#: Concentration limit: a DC may receive at most this multiple of its
#: slots-proportional share.  Reduce parallelism is slot-bound — piling
#: reduce tasks into one DC multiplies task waves, which the fractional
#: LP cannot see; the cap keeps its counterfactuals inside the regime
#: where the fluid model (and a real Spark cluster) behaves.
SPREAD_FACTOR = 1.8

#: The LP consumes the BW matrix's *relative* structure: matrices are
#: rescaled to this common mean before use.  Absolute levels depend on
#: how the matrix was measured (uncontended iPerf runs hot, a fully
#: contended mesh runs cold; the truth during a volume-weighted shuffle
#: sits between), and letting that measurement artifact drive the
#: network-vs-compute trade systematically mis-places work.  What a
#: placement decision actually needs is which links are currently weak
#: relative to the rest — exactly what changes between static and
#: runtime measurements.
REFERENCE_MEAN_BW = 250.0


def _mean_connectivity(bw: BandwidthMatrix, dc: str) -> float:
    """Mean of a DC's outgoing and incoming BWs."""
    values = [bw.get(dc, other) for other in bw.keys if other != dc]
    values += [bw.get(other, dc) for other in bw.keys if other != dc]
    return float(np.mean(values))


def _fan_out_migration(
    worst: str,
    volume: float,
    bw: BandwidthMatrix,
    cluster: GeoCluster,
    fanout: int = EVACUATION_FANOUT,
) -> list[tuple[str, str, float]]:
    """Split an evacuation across the best-connected destinations,
    proportionally to their (believed) BW from the evacuated DC."""
    candidates = sorted(
        (dst for dst in cluster.keys if dst != worst),
        key=lambda dst: -bw.get(worst, dst),
    )[:fanout]
    total_bw = sum(bw.get(worst, dst) for dst in candidates)
    if total_bw <= 0:
        return []
    return [
        (worst, dst, volume * bw.get(worst, dst) / total_bw)
        for dst in candidates
    ]


def solve_placement_lp(
    data_mb_by_dc: dict[str, float],
    bw: BandwidthMatrix,
    cluster: GeoCluster,
    cpu_s_per_mb: float,
    network_cost_weight: float = 0.0,
    price_per_gb: float = 0.02,
    network_only: bool = False,
    spread_factor: float = SPREAD_FACTOR,
) -> dict[str, float]:
    """Shared LP core for Tetrium (weight 0), Kimchi (weight > 0), and
    Iridium (``network_only=True``).

    ``network_cost_weight`` converts transfer dollars into objective
    seconds (a cost-aware system accepts slower placements that move
    less paid traffic).  ``network_only`` drops the compute term from
    the objective — Iridium's published formulation minimizes transfer
    time alone.  ``spread_factor`` caps any DC's share at that multiple
    of its slots-proportional share; a system that does not optimize
    compute (Iridium) needs a tighter cap, because nothing else in its
    objective resists piling work onto two well-connected DCs.
    """
    keys = list(cluster.keys)
    n = len(keys)
    data = np.array([data_mb_by_dc.get(k, 0.0) for k in keys])
    total = data.sum()
    if total <= 0:
        return {k: 1.0 / n for k in keys}

    mean_bw = float(bw.off_diagonal().mean())
    bw_scale = REFERENCE_MEAN_BW / mean_bw if mean_bw > 0 else 1.0

    # Variables: p_0..p_{n-1}, T_net, T_cmp
    c = np.zeros(n + 2)
    c[n] = 1.0
    c[n + 1] = 0.0 if network_only else 1.0
    if network_cost_weight > 0:
        for j, key in enumerate(keys):
            inbound_mb = total - data[j]
            c[j] += network_cost_weight * price_per_gb * inbound_mb / 1024.0

    rows, rhs = [], []
    for i, src in enumerate(keys):
        if data[i] <= 0:
            continue
        for j, dst in enumerate(keys):
            if i == j:
                continue
            bw_mb_s = (
                max(bw.get(src, dst) * bw_scale, _MIN_BW_MBPS) / 8.0
            )
            row = np.zeros(n + 2)
            row[j] = data[i] * TRANSFER_OVERHEAD
            row[n] = -bw_mb_s
            rows.append(row)
            rhs.append(0.0)
    # Per-DC aggregate NIC constraints: without them the LP happily
    # routes everything at the advertised per-link rate into one DC,
    # which a real NIC cannot absorb.
    for j, key in enumerate(keys):
        ingress_mb_s = cluster.topology.dc(key).ingress_cap_mbps / 8.0
        row = np.zeros(n + 2)
        row[j] = (total - data[j]) * TRANSFER_OVERHEAD
        row[n] = -ingress_mb_s
        rows.append(row)
        rhs.append(0.0)
    for i, key in enumerate(keys):
        if data[i] <= 0:
            continue
        egress_mb_s = cluster.topology.dc(key).egress_cap_mbps / 8.0
        # data_i leaves i except the fraction placed back at i:
        # data_i (1 − p_i) ≤ T_net × egress.
        row = np.zeros(n + 2)
        row[i] = -data[i] * TRANSFER_OVERHEAD
        row[n] = -egress_mb_s
        rows.append(row)
        rhs.append(-data[i] * TRANSFER_OVERHEAD)
    if not network_only:
        for j, key in enumerate(keys):
            rate = cluster.slots(key) * cluster.speed(key)
            row = np.zeros(n + 2)
            row[j] = total * cpu_s_per_mb / rate
            row[n + 1] = -1.0
            rows.append(row)
            rhs.append(0.0)

    a_eq = np.zeros((1, n + 2))
    a_eq[0, :n] = 1.0
    total_slots = sum(
        cluster.slots(k) * cluster.speed(k) for k in keys
    )
    bounds = [
        (
            0.0,
            min(
                1.0,
                spread_factor
                * cluster.slots(k)
                * cluster.speed(k)
                / total_slots,
            ),
        )
        for k in keys
    ] + [(0.0, None), (0.0, None)]
    result = linprog(
        c,
        A_ub=np.array(rows),
        b_ub=np.array(rhs),
        A_eq=a_eq,
        b_eq=np.array([1.0]),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        # Degenerate inputs: fall back to slots-proportional.
        return PlacementPolicy.slots_proportional(cluster)
    fractions = np.clip(result.x[:n], 0.0, 1.0)
    fractions = fractions / fractions.sum()
    return {k: float(f) for k, f in zip(keys, fractions)}


@register_policy()
class TetriumPolicy(PlacementPolicy):
    """Network + compute LP placement with bottleneck-DC evacuation."""

    name = "tetrium"

    def __init__(
        self,
        migrate_input: bool = True,
        evacuation_ratio: float = EVACUATION_RATIO,
    ) -> None:
        self.migrate_input = migrate_input
        self.evacuation_ratio = evacuation_ratio

    def plan_migration(
        self,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
        shuffle_mb: float = 0.0,
    ) -> list[tuple[str, str, float]]:
        """Evacuate input from a severely bottlenecked DC — but only
        when the job's shuffle volume justifies paying for the move."""
        if not self.migrate_input or bw is None:
            return []
        scores = {
            dc: _mean_connectivity(bw, dc)
            for dc in cluster.keys
            if data_mb_by_dc.get(dc, 0.0) > 0
        }
        if len(scores) < 2:
            return []
        median = float(np.median(list(scores.values())))
        worst = min(scores, key=scores.get)
        if scores[worst] >= self.evacuation_ratio * median:
            return []
        volume = data_mb_by_dc[worst] * 0.7
        if shuffle_mb > 0 and volume > 0.65 * shuffle_mb:
            # The move itself would dwarf the shuffle it speeds up.
            return []
        return _fan_out_migration(worst, volume, bw, cluster)

    def place_stage(
        self,
        stage: StageSpec,
        data_mb_by_dc: dict[str, float],
        bw: Optional[BandwidthMatrix],
        cluster: GeoCluster,
    ) -> dict[str, float]:
        """LP placement; falls back to slots-proportional without BWs."""
        if bw is None:
            return self.slots_proportional(cluster)
        return solve_placement_lp(
            data_mb_by_dc, bw, cluster, stage.cpu_s_per_mb
        )
