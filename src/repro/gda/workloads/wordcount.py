"""WordCount with a controllable intermediate size (§5.3.2, Fig. 6).

The paper controls shuffle volume by generating inputs with all-distinct
words — the map output (and hence intermediate data) then scales with
the number of distinct words rather than collapsing under combining.
``intermediate_mb`` sets that volume directly; the engine's map stage
emits ``intermediate_mb / input_mb`` per input MB.
"""

from __future__ import annotations

from repro.gda.engine.dag import JobSpec, StageSpec

#: Tokenize + hash per MB — WordCount maps are cheap.
MAP_CPU_S_PER_MB = 0.06

#: Count-aggregation per MB of intermediate data.
REDUCE_CPU_S_PER_MB = 0.05

#: Final counts are a small fraction of the intermediate volume.
OUTPUT_RATIO = 0.05


def wordcount_job(
    input_mb_by_dc: dict[str, float],
    intermediate_mb: float,
    name: str = "wordcount",
) -> JobSpec:
    """Build a WordCount whose shuffle moves ``intermediate_mb`` total."""
    total_input = sum(input_mb_by_dc.values())
    if total_input <= 0:
        raise ValueError("wordcount needs a non-empty input")
    if intermediate_mb < 0:
        raise ValueError(f"negative intermediate size: {intermediate_mb}")
    map_ratio = intermediate_mb / total_input
    return JobSpec(
        name=name,
        stages=[
            StageSpec("tokenize", MAP_CPU_S_PER_MB, output_ratio=map_ratio),
            StageSpec(
                "count",
                REDUCE_CPU_S_PER_MB,
                output_ratio=OUTPUT_RATIO,
                shuffle=True,
            ),
        ],
        input_mb_by_dc=dict(input_mb_by_dc),
    )
