"""Workload definitions used throughout the evaluation (§5.1)."""

from repro.gda.workloads.terasort import terasort_job
from repro.gda.workloads.tpcds import TPCDS_QUERIES, tpcds_job
from repro.gda.workloads.wordcount import wordcount_job

__all__ = ["TPCDS_QUERIES", "terasort_job", "tpcds_job", "wordcount_job"]
