"""TPC-DS query skeletons for queries 82, 95, 11, and 78 (§5.2, §5.4).

The paper classifies them as light-weight (82), average-weight (95, 11),
and heavy-weight (78) [26, 30, 32].  Each skeleton is a scan followed by
one or more shuffle stages; the per-stage compute intensities and
selectivities are calibrated so relative stage weights match the
classification: q82 shuffles ~2% of its input, q95/q11 shuffle
15–25%, and q78 runs three shuffles totalling over half the input.

These are *skeletons*, not SQL executions — what the experiments need is
each query's network/compute profile, which is what drives every result
in Tables 4 and Figs. 7–8.
"""

from __future__ import annotations

from repro.gda.engine.dag import JobSpec, StageSpec

#: Stage templates per query: (name, cpu_s_per_mb, output_ratio, shuffle).
TPCDS_QUERIES: dict[int, list[tuple[str, float, float, bool]]] = {
    # Light-weight: a selective scan with a small aggregation.
    82: [
        ("scan", 0.060, 0.020, False),
        ("aggregate", 0.050, 0.200, True),
    ],
    # Average-weight: scan + join + aggregate.
    95: [
        ("scan", 0.070, 0.160, False),
        ("join", 0.110, 0.350, True),
        ("aggregate", 0.060, 0.100, True),
    ],
    # Average-weight, slightly heavier join chain.
    11: [
        ("scan", 0.080, 0.200, False),
        ("join", 0.120, 0.400, True),
        ("aggregate", 0.070, 0.120, True),
    ],
    # Heavy-weight: three shuffles over large fractions of the input.
    78: [
        ("scan", 0.090, 0.300, False),
        ("join-1", 0.130, 0.550, True),
        ("join-2", 0.110, 0.300, True),
        ("aggregate", 0.060, 0.080, True),
    ],
}

#: Classification used in §5.2.
QUERY_WEIGHT_CLASS = {82: "light", 95: "average", 11: "average", 78: "heavy"}


def tpcds_job(
    query: int, input_mb_by_dc: dict[str, float]
) -> JobSpec:
    """Build the skeleton job for one supported TPC-DS query.

    >>> job = tpcds_job(78, {"us-east-1": 1000.0})
    >>> len(job.shuffle_stages())
    3
    """
    try:
        template = TPCDS_QUERIES[query]
    except KeyError:
        known = sorted(TPCDS_QUERIES)
        raise KeyError(f"unsupported query {query}; known: {known}") from None
    stages = [
        StageSpec(name, cpu, ratio, shuffle)
        for name, cpu, ratio, shuffle in template
    ]
    return JobSpec(
        name=f"tpcds-q{query}",
        stages=stages,
        input_mb_by_dc=dict(input_mb_by_dc),
    )
