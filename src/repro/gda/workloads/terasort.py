"""TeraSort: the canonical shuffle-heavy benchmark (§5.3.1, Fig. 5).

TeraSort's intermediate data equals its input — 100 GB in, 100 GB
shuffled — which makes it the paper's stress test for parallel data
transfer.  Compute intensities are calibrated so a 100 GB sort on the
8 × t2.medium testbed lands in the paper's ~60–85 minute JCT band with
a network phase large enough for WAN optimization to matter.
"""

from __future__ import annotations

from repro.gda.engine.dag import JobSpec, StageSpec

#: vCPU-seconds per MB for the map (partition/sample) phase.
MAP_CPU_S_PER_MB = 0.10

#: vCPU-seconds per MB for the sort/merge reduce phase.
REDUCE_CPU_S_PER_MB = 0.12


def terasort_job(
    input_mb_by_dc: dict[str, float], name: str = "terasort"
) -> JobSpec:
    """Build a TeraSort job over the given input distribution."""
    return JobSpec(
        name=name,
        stages=[
            StageSpec("map", MAP_CPU_S_PER_MB, output_ratio=1.0),
            StageSpec(
                "sort-reduce",
                REDUCE_CPU_S_PER_MB,
                output_ratio=1.0,
                shuffle=True,
            ),
        ],
        input_mb_by_dc=dict(input_mb_by_dc),
    )
