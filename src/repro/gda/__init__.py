"""Spark-like geo-distributed data analytics substrate.

* :mod:`repro.gda.engine` — HDFS-like block store, job/stage specs, the
  execution engine (shuffles run through :mod:`repro.net`), and cost
  accounting;
* :mod:`repro.gda.systems` — placement policies: vanilla locality-aware
  Spark, Tetrium [21], Kimchi [30], and the SAGQ [15] quantized geo-ML
  trainer;
* :mod:`repro.gda.workloads` — TeraSort, WordCount, TPC-DS query
  skeletons (82/95/11/78), and the MNIST-scale ML model.
"""

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.gda.engine.engine import GdaEngine, JobResult

__all__ = ["GdaEngine", "GeoCluster", "JobResult", "JobSpec", "StageSpec"]
