"""Job and stage specifications.

A job is a linear chain of stages (the DAGs of the evaluated workloads
are chains of map/shuffle stages; see :mod:`repro.gda.workloads`).  A
stage is described by its compute intensity, its data reduction ratio,
and whether its input arrives via an all-to-all shuffle from the
previous stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StageSpec:
    """One stage of a GDA job.

    ``cpu_s_per_mb`` — vCPU-seconds needed per MB of stage input (the
    calibration knob for compute-vs-network balance);
    ``output_ratio`` — MB of stage output per MB of stage input;
    ``shuffle`` — whether input arrives via all-to-all shuffle (reduce
    stages) or is processed in place (map/scan stages).
    """

    name: str
    cpu_s_per_mb: float
    output_ratio: float
    shuffle: bool = False

    def __post_init__(self) -> None:
        if self.cpu_s_per_mb < 0:
            raise ValueError(f"negative cpu_s_per_mb: {self.cpu_s_per_mb}")
        if self.output_ratio < 0:
            raise ValueError(f"negative output_ratio: {self.output_ratio}")


@dataclass
class JobSpec:
    """A named chain of stages over a geo-distributed input."""

    name: str
    stages: list[StageSpec]
    input_mb_by_dc: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"job {self.name!r} has no stages")
        if self.stages[0].shuffle:
            raise ValueError(
                f"job {self.name!r}: first stage cannot be a shuffle"
            )
        negatives = {
            dc: mb for dc, mb in self.input_mb_by_dc.items() if mb < 0
        }
        if negatives:
            raise ValueError(f"negative input volumes: {negatives}")

    @property
    def total_input_mb(self) -> float:
        """Total input volume."""
        return sum(self.input_mb_by_dc.values())

    def shuffle_stages(self) -> list[StageSpec]:
        """The stages that move data over the WAN."""
        return [s for s in self.stages if s.shuffle]

    def intermediate_mb(self) -> float:
        """Volume entering the first shuffle (the paper's
        "intermediate data size" knob in Fig. 6)."""
        volume = self.total_input_mb
        for stage in self.stages:
            if stage.shuffle:
                return volume
            volume *= stage.output_ratio
        return 0.0
