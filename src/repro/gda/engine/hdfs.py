"""HDFS-like block store with placement and skew.

The paper stores input in S3-mounted HDFS with data nodes on the worker
VMs (§5.1) and controls skew by "moving HDFS blocks from other DCs to
US East, US West, AP South, and AP SE" with a 64 MB block size (§5.8.1).
This module provides exactly those operations: uniform placement,
weighted (skewed) placement, and block moves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Block:
    """One HDFS block resident in a DC."""

    dc: str
    size_mb: float


@dataclass
class HdfsStore:
    """A set of blocks placed across DCs."""

    block_size_mb: float = 128.0
    blocks: list[Block] = field(default_factory=list)

    @classmethod
    def uniform(
        cls,
        keys: tuple[str, ...] | list[str],
        total_mb: float,
        block_size_mb: float = 128.0,
    ) -> "HdfsStore":
        """Spread ``total_mb`` evenly across DCs in whole blocks."""
        return cls.weighted(
            keys, total_mb, {k: 1.0 for k in keys}, block_size_mb
        )

    @classmethod
    def weighted(
        cls,
        keys: tuple[str, ...] | list[str],
        total_mb: float,
        weights: dict[str, float],
        block_size_mb: float = 128.0,
    ) -> "HdfsStore":
        """Place data proportionally to per-DC weights (skew setup)."""
        if total_mb <= 0:
            raise ValueError(f"total_mb must be positive: {total_mb}")
        if block_size_mb <= 0:
            raise ValueError(f"block size must be positive: {block_size_mb}")
        wsum = sum(max(0.0, weights.get(k, 0.0)) for k in keys)
        if wsum <= 0:
            raise ValueError(f"weights sum to zero over {keys}")
        store = cls(block_size_mb=block_size_mb)
        for key in keys:
            share_mb = total_mb * max(0.0, weights.get(key, 0.0)) / wsum
            n_full = int(share_mb // block_size_mb)
            store.blocks.extend(
                Block(key, block_size_mb) for _ in range(n_full)
            )
            tail = share_mb - n_full * block_size_mb
            if tail > 1e-9:
                store.blocks.append(Block(key, tail))
        return store

    def data_by_dc(self) -> dict[str, float]:
        """MB of input per DC."""
        out: dict[str, float] = {}
        for block in self.blocks:
            out[block.dc] = out.get(block.dc, 0.0) + block.size_mb
        return out

    @property
    def total_mb(self) -> float:
        """Total stored volume."""
        return sum(b.size_mb for b in self.blocks)

    def move(self, src: str, dst: str, mb: float) -> float:
        """Relocate up to ``mb`` of blocks from ``src`` to ``dst``.

        Moves whole blocks (splitting the last one if needed) and
        returns the volume actually moved.
        """
        if mb <= 0:
            return 0.0
        moved = 0.0
        kept: list[Block] = []
        for block in self.blocks:
            if block.dc != src or moved >= mb - 1e-9:
                kept.append(block)
                continue
            room = mb - moved
            if block.size_mb <= room + 1e-9:
                kept.append(Block(dst, block.size_mb))
                moved += block.size_mb
            else:
                kept.append(Block(dst, room))
                kept.append(Block(src, block.size_mb - room))
                moved += room
        self.blocks = kept
        return moved

    def skew_to(
        self, targets: list[str], fraction: float = 0.8
    ) -> dict[str, float]:
        """Concentrate ``fraction`` of all data onto ``targets`` evenly
        (the §5.8.1 skew construction).  Returns the new distribution."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        if not targets:
            raise ValueError("no target DCs")
        data = self.data_by_dc()
        total = self.total_mb
        goal_each = total * fraction / len(targets)
        donors = [dc for dc in data if dc not in targets]
        for target in targets:
            need = goal_each - data.get(target, 0.0)
            for donor in donors:
                if need <= 1e-6:
                    break
                available = self.data_by_dc().get(donor, 0.0)
                surplus = available - total * (1 - fraction) / max(
                    1, len(donors)
                )
                if surplus <= 0:
                    continue
                moved = self.move(donor, target, min(need, surplus))
                need -= moved
        return self.data_by_dc()

    def block_count(self) -> int:
        """Number of blocks (tasks in a map stage ≈ blocks)."""
        return len(self.blocks)

    def tasks_for(self, dc: str) -> int:
        """Map tasks colocated with ``dc``'s blocks."""
        return sum(1 for b in self.blocks if b.dc == dc)

    def ceil_blocks(self, mb: float) -> int:
        """Blocks needed for ``mb`` at the configured block size."""
        return int(math.ceil(mb / self.block_size_mb))
