"""Query cost accounting.

"All query costs include compute, network, and storage costs" (§5.1).
Compute bills every cluster VM for the query's wall-clock duration (the
cluster is reserved for the query) plus the unlimited-burst surcharge;
network bills inter-region egress per GB; storage bills the S3-mounted
input for the query duration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.pricing import PriceBook
from repro.gda.engine.cluster import GeoCluster


@dataclass(frozen=True)
class CostBreakdown:
    """Dollars by category."""

    compute_usd: float
    network_usd: float
    storage_usd: float

    @property
    def total_usd(self) -> float:
        """Grand total."""
        return self.compute_usd + self.network_usd + self.storage_usd

    def __add__(self, other: "CostBreakdown") -> "CostBreakdown":
        return CostBreakdown(
            self.compute_usd + other.compute_usd,
            self.network_usd + other.network_usd,
            self.storage_usd + other.storage_usd,
        )


def job_cost(
    cluster: GeoCluster,
    jct_s: float,
    wan_mbits: float,
    input_mb: float,
    prices: PriceBook | None = None,
) -> CostBreakdown:
    """Price a finished job.

    ``wan_mbits`` is total inter-DC traffic (egress-billed);
    ``input_mb`` the stored input volume.
    """
    if jct_s < 0:
        raise ValueError(f"negative JCT: {jct_s}")
    prices = prices or cluster.prices
    compute = 0.0
    for dc in cluster.topology.dcs:
        compute += dc.num_vms * prices.compute_cost(
            dc.vm.key, jct_s, vcpus=dc.vm.vcpus, burst=True
        )
    network = prices.network_cost(wan_mbits / 8.0 / 1024.0)
    storage = prices.storage_cost(input_mb / 1024.0, jct_s)
    return CostBreakdown(compute, network, storage)
