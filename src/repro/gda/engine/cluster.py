"""The geo-distributed cluster a job runs on.

Bundles a topology with a live network simulator and a price book, and
provides the compute model: each DC has ``vcpus × num_vms`` task slots,
each processing 1 MB of stage input in ``cpu_s_per_mb / speed`` seconds.
The testbed defaults mirror §5.1: t2.medium workers (2 vCPU), one per
DC, unlimited CPU bursts billed at $0.05/vCPU-hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cloud.pricing import PriceBook
from repro.net.dynamics import FluctuationModel, StaticModel
from repro.net.profiles import VPC_PEERING, NetworkProfile
from repro.net.simulator import NetworkSimulator
from repro.net.topology import Topology


@dataclass
class GeoCluster:
    """Topology + network + prices + compute slots."""

    topology: Topology
    network: NetworkSimulator
    prices: PriceBook = field(default_factory=PriceBook)

    @classmethod
    def build(
        cls,
        region_keys: list[str] | tuple[str, ...],
        vm_key: str = "t2.medium",
        vms_per_dc: int | dict[str, int] = 1,
        fluctuation: Optional[FluctuationModel | StaticModel] = None,
        time_offset: float = 0.0,
        prices: Optional[PriceBook] = None,
        profile: NetworkProfile = VPC_PEERING,
        kernel: str = "scalar",
    ) -> "GeoCluster":
        """Build a cluster with a fresh simulator."""
        topology = Topology.build(region_keys, vm_key, vms_per_dc, profile)
        network = NetworkSimulator(
            topology,
            fluctuation=fluctuation,
            time_offset=time_offset,
            kernel=kernel,
        )
        return cls(topology, network, prices or PriceBook())

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        fluctuation: Optional[FluctuationModel | StaticModel] = None,
        time_offset: float = 0.0,
        prices: Optional[PriceBook] = None,
        kernel: str = "scalar",
    ) -> "GeoCluster":
        """Build a cluster around an existing topology (keeps its
        profile and VM layout)."""
        network = NetworkSimulator(
            topology,
            fluctuation=fluctuation,
            time_offset=time_offset,
            kernel=kernel,
        )
        return cls(topology, network, prices or PriceBook())

    @property
    def keys(self) -> tuple[str, ...]:
        """DC keys."""
        return self.topology.keys

    def slots(self, dc: str) -> int:
        """Parallel task slots in a DC."""
        return self.topology.dc(dc).total_vcpus

    def speed(self, dc: str) -> float:
        """Relative per-slot compute speed."""
        return self.topology.dc(dc).vm.speed

    def compute_seconds(self, dc: str, mb: float, cpu_s_per_mb: float) -> float:
        """Wall-clock seconds for a DC to process ``mb`` of input."""
        if mb <= 0:
            return 0.0
        rate = self.slots(dc) * self.speed(dc)
        return mb * cpu_s_per_mb / rate

    def total_vms(self) -> int:
        """VM count across the cluster (for billing)."""
        return sum(dc.num_vms for dc in self.topology.dcs)
