"""The job runner.

Executes a :class:`~repro.gda.engine.dag.JobSpec` on a
:class:`~repro.gda.engine.cluster.GeoCluster` under a placement policy
(:mod:`repro.gda.systems`), with all WAN movement going through the
flow-level network simulator — so shuffle durations, the observed
minimum cluster BW, and egress volumes come out of the same contention
model WANify's agents act on.

Execution model per stage (see DESIGN.md):

1. *(before stage 1 only)* the policy may migrate input between DCs —
   the "input data migration, which is slow and costly" of §2.2 — using
   whatever BW matrix it was given for decisions;
2. the policy chooses per-DC placement fractions for the stage;
3. shuffle stages move ``data_at_src × fraction_dst`` for every ordered
   pair concurrently; the stage's network time is the makespan;
4. each DC then processes its received volume across its task slots;
   the stage's compute time is the slowest DC (barrier semantics);
5. stage output is ``input × output_ratio``, located per the placement.

The *decision* BW matrix is deliberately separate from the *actual*
network: feeding static-independent BWs here while the simulator
enforces runtime contention is exactly the sub-optimality mechanism the
paper demonstrates (§2.2, Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.interface import WANifyDeployment
from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.cost import CostBreakdown, job_cost
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.net.matrix import BandwidthMatrix

#: Transfers below this volume are dropped (numerical dust from
#: fractional placements).  Shared with the runtime executor.
MIN_TRANSFER_MB = 1e-6

#: Spark shuffle amplification: the bytes that actually cross the WAN
#: per logical shuffle byte.  Covers spill re-reads, fetch protocol
#: overhead, retries, and wave serialization — the reasons a real Spark
#: shuffle moves data far slower than a raw iPerf stream.  Applied to
#: shuffle transfers only (bulk input migration is an efficient
#: distcp-style copy).
SHUFFLE_OVERHEAD = 4.0


@dataclass
class StageMetrics:
    """Timings and movement for one executed stage."""

    name: str
    network_s: float = 0.0
    compute_s: float = 0.0
    moved_mb: float = 0.0
    placement: dict[str, float] = field(default_factory=dict)


@dataclass
class JobResult:
    """Everything the evaluation reads off a finished query."""

    job_name: str
    system_name: str
    jct_s: float
    cost: CostBreakdown
    min_bw_mbps: float
    wan_gb: float
    stages: list[StageMetrics] = field(default_factory=list)
    migration_s: float = 0.0
    migration_mb: float = 0.0

    @property
    def jct_minutes(self) -> float:
        """JCT in minutes (the unit of Figs. 5–8)."""
        return self.jct_s / 60.0

    @property
    def network_s(self) -> float:
        """Total time spent in WAN phases."""
        return self.migration_s + sum(s.network_s for s in self.stages)

    @property
    def compute_s(self) -> float:
        """Total time spent in compute phases."""
        return sum(s.compute_s for s in self.stages)


class GdaEngine:
    """Runs jobs on a cluster under a placement policy."""

    def __init__(
        self, cluster: GeoCluster, shuffle_overhead: float = SHUFFLE_OVERHEAD
    ) -> None:
        if shuffle_overhead < 1.0:
            raise ValueError(
                f"shuffle overhead must be ≥ 1: {shuffle_overhead}"
            )
        self.cluster = cluster
        self.shuffle_overhead = shuffle_overhead

    def run(
        self,
        job: JobSpec,
        policy: "PlacementPolicy",
        decision_bw: Optional[BandwidthMatrix] = None,
        deployment: Optional[WANifyDeployment] = None,
        reset: bool = True,
    ) -> JobResult:
        """Execute ``job`` and return its metrics.

        ``decision_bw`` is what the policy *believes* about the network
        (static, simultaneous, or predicted); ``deployment`` optionally
        installs WANify's connection plan/agents/throttles first.  Pass
        ``reset=False`` when the caller has already prepared the network
        (e.g. installed a deployment manually for instrumentation).
        """
        network = self.cluster.network
        sim = network.sim
        if reset:
            self._reset_network()
        if deployment is not None:
            deployment.install(network)
        t0 = sim.now

        data = {
            dc: float(mb)
            for dc, mb in job.input_mb_by_dc.items()
            if mb > 0
        }
        for dc in data:
            self.cluster.topology.index(dc)  # validate keys early

        # Input migration (policy decision, billed as part of the query).
        migration = policy.plan_migration(
            data, decision_bw, self.cluster, shuffle_mb=job.intermediate_mb()
        )
        migration_mb = 0.0
        migration_start = sim.now
        if migration:
            transfers = []
            for src, dst, mb in migration:
                if mb <= MIN_TRANSFER_MB or src == dst:
                    continue
                transfers.append((src, dst, mb))
                data[src] = data.get(src, 0.0) - mb
                data[dst] = data.get(dst, 0.0) + mb
                migration_mb += mb
            self._execute_transfers(transfers, tag="migration")
        migration_s = sim.now - migration_start

        stages: list[StageMetrics] = []
        for stage in job.stages:
            stages.append(self._run_stage(stage, data, policy, decision_bw))

        jct_s = sim.now - t0
        wan_mbits = network.total_wan_mbits()
        min_bw = network.min_observed_bw()
        cost = job_cost(
            self.cluster, jct_s, wan_mbits, job.total_input_mb
        )
        if deployment is not None:
            deployment.teardown(network)
        return JobResult(
            job_name=job.name,
            system_name=policy.name,
            jct_s=jct_s,
            cost=cost,
            min_bw_mbps=min_bw,
            wan_gb=wan_mbits / 8.0 / 1024.0,
            stages=stages,
            migration_s=migration_s,
            migration_mb=migration_mb,
        )

    # ------------------------------------------------------------------

    def _reset_network(self) -> None:
        network = self.cluster.network
        network.reset_statistics()
        network.tc.clear_all()
        network.set_connection_plan(
            BandwidthMatrix.full(self.cluster.keys, 1.0)
        )

    def _run_stage(
        self,
        stage: StageSpec,
        data: dict[str, float],
        policy: "PlacementPolicy",
        decision_bw: Optional[BandwidthMatrix],
    ) -> StageMetrics:
        sim = self.cluster.network.sim
        metrics = StageMetrics(stage.name)

        if stage.shuffle:
            placement = policy.place_stage(
                stage, data, decision_bw, self.cluster
            )
            validate_placement(placement, self.cluster.keys)
            transfers = []
            arriving = {dc: 0.0 for dc in self.cluster.keys}
            for src, mb in data.items():
                for dst, frac in placement.items():
                    volume = mb * frac
                    if volume <= MIN_TRANSFER_MB:
                        continue
                    arriving[dst] += volume
                    if src != dst:
                        transfers.append(
                            (src, dst, volume * self.shuffle_overhead)
                        )
            start = sim.now
            metrics.moved_mb = sum(
                v for _, _, v in transfers
            ) / self.shuffle_overhead
            self._execute_transfers(transfers, tag=stage.name)
            metrics.network_s = sim.now - start
            metrics.placement = dict(placement)
        else:
            # In-place stage: compute where the data lives.
            arriving = dict(data)
            total = sum(arriving.values())
            metrics.placement = {
                dc: (mb / total if total > 0 else 0.0)
                for dc, mb in arriving.items()
            }

        compute_s = max(
            (
                self.cluster.compute_seconds(dc, mb, stage.cpu_s_per_mb)
                for dc, mb in arriving.items()
                if mb > 0
            ),
            default=0.0,
        )
        if compute_s > 0:
            sim.run(until=sim.now + compute_s)
        metrics.compute_s = compute_s

        data.clear()
        for dc, mb in arriving.items():
            out = mb * stage.output_ratio
            if out > 0:
                data[dc] = out
        return metrics

    def _execute_transfers(
        self, transfers: list[tuple[str, str, float]], tag: str
    ) -> None:
        """Start all transfers concurrently and wait for completion."""
        if not transfers:
            return
        network = self.cluster.network
        sim = network.sim
        pending = [0]

        def done(_transfer) -> None:
            pending[0] -= 1

        for src, dst, mb in transfers:
            pending[0] += 1
            network.start_transfer(src, dst, mb * 8.0, on_complete=done, tag=tag)
        while pending[0] > 0:
            if not sim.step():
                raise RuntimeError(
                    f"simulation stalled with {pending[0]} transfers pending"
                )


def validate_placement(
    placement: dict[str, float], keys: tuple[str, ...]
) -> None:
    unknown = set(placement) - set(keys)
    if unknown:
        raise ValueError(f"placement references unknown DCs: {unknown}")
    total = sum(placement.values())
    if not 0.999 <= total <= 1.001:
        raise ValueError(f"placement fractions sum to {total}, expected 1")
    if any(f < -1e-9 for f in placement.values()):
        raise ValueError(f"negative placement fraction: {placement}")
