"""Execution engine: block store, DAGs, cluster, costs, and the runner."""

from repro.gda.engine.cluster import GeoCluster
from repro.gda.engine.cost import CostBreakdown, job_cost
from repro.gda.engine.dag import JobSpec, StageSpec
from repro.gda.engine.engine import GdaEngine, JobResult, StageMetrics
from repro.gda.engine.hdfs import Block, HdfsStore

__all__ = [
    "Block",
    "CostBreakdown",
    "GdaEngine",
    "GeoCluster",
    "HdfsStore",
    "JobResult",
    "JobSpec",
    "StageMetrics",
    "StageSpec",
    "job_cost",
]
