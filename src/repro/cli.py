"""Command-line interface: ``python -m repro <command>``.

Five commands cover the things a downstream user does most:

=============  =========================================================
command        what it does
=============  =========================================================
``list``       list every reproducible experiment (tables & figures)
``run``        run one experiment and print its paper-vs-measured table
``report``     run everything and (re)write EXPERIMENTS.md
``topology``   show distances, RTTs and capacities for a region set
``predict``    train WANify and print static vs predicted runtime BWs
               plus the optimized connection plan
=============  =========================================================

Every command is deterministic given ``--seed`` (the network weather is
a pure function of it).  The module is import-safe: :func:`main` takes
``argv`` and an output stream, so tests drive it without subprocesses.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import IO, Optional

from repro.cloud.regions import PAPER_REGIONS, region
from repro.core.interface import WANify, WANifyConfig
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import measure_independent
from repro.net.profiles import network_profile
from repro.net.topology import Topology

_PROG = "python -m repro"


def _experiment_registry():
    """The (id, title, module) triples from the report harness.

    Imported lazily — the experiment modules pull in the whole stack and
    ``repro topology`` shouldn't pay for that.
    """
    from repro.experiments.report import EXPERIMENTS

    return EXPERIMENTS


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_list(args: argparse.Namespace, out: IO[str]) -> int:
    """List experiment ids and the paper artifacts they regenerate."""
    rows = _experiment_registry()
    width = max(len(exp_id) for exp_id, _, _ in rows)
    for exp_id, title, module in rows:
        out.write(f"{exp_id:<{width}}  {title}\n")
    out.write(
        f"\n{len(rows)} experiments; run one with "
        f"`{_PROG} run <id>`, all with `{_PROG} report`.\n"
    )
    return 0


def cmd_run(args: argparse.Namespace, out: IO[str]) -> int:
    """Run a single experiment and print its rendered table."""
    registry = {exp_id: (title, mod) for exp_id, title, mod in _experiment_registry()}
    exp_id = args.experiment.upper()
    if exp_id not in registry:
        out.write(
            f"unknown experiment {args.experiment!r}; "
            f"`{_PROG} list` shows the valid ids.\n"
        )
        return 2
    title, module = registry[exp_id]
    out.write(f"== {exp_id}: {title} ==\n")
    start = time.time()
    results = module.run(fast=not args.full)
    out.write(module.render(results))
    out.write(f"\n({time.time() - start:.1f} s)\n")
    return 0


def cmd_report(args: argparse.Namespace, out: IO[str]) -> int:
    """Regenerate EXPERIMENTS.md (all experiments)."""
    from repro.experiments.report import generate

    path = generate(args.output)
    out.write(f"wrote {path}\n")
    return 0


def cmd_topology(args: argparse.Namespace, out: IO[str]) -> int:
    """Print the static description of a cluster."""
    keys = tuple(args.regions) if args.regions else PAPER_REGIONS
    try:
        for key in keys:
            region(key)
        profile = network_profile(args.profile)
        topology = Topology.build(keys, args.vm, profile=profile)
    except KeyError as exc:
        out.write(f"{exc.args[0]}\n")
        return 2
    out.write(
        f"{topology.n} DCs, VM type {args.vm}, profile {profile.key}\n\n"
    )
    out.write("Great-circle distances (miles):\n")
    out.write(topology.distance_matrix().to_table("{:7.0f}"))
    out.write("\n\nModelled RTTs (ms):\n")
    rtt = BandwidthMatrix(topology.keys, topology.rtt_matrix())
    out.write(rtt.to_table("{:7.1f}"))
    out.write("\n\nSingle-connection uncontended caps (Mbps):\n")
    caps = BandwidthMatrix.zeros(topology.keys)
    for src, dst in caps.pairs():
        caps.set(src, dst, topology.single_connection_cap(src, dst))
    out.write(caps.to_table("{:7.0f}"))
    out.write("\n")
    return 0


def cmd_predict(args: argparse.Namespace, out: IO[str]) -> int:
    """Train WANify and print static vs predicted BWs plus the plan."""
    keys = tuple(args.regions) if args.regions else PAPER_REGIONS
    try:
        profile = network_profile(args.profile)
        topology = Topology.build(keys, args.vm, profile=profile)
    except KeyError as exc:
        out.write(f"{exc.args[0]}\n")
        return 2
    weather = profile.fluctuation(seed=args.seed)
    config = WANifyConfig(
        n_training_datasets=args.datasets, n_estimators=args.estimators
    )
    wanify = WANify(topology, weather, config)
    out.write(
        f"training on {args.datasets} datasets "
        f"({args.estimators} estimators) ...\n"
    )
    summary = wanify.train()
    out.write(
        f"  rows={summary['rows']:.0f}  "
        f"target SD={summary['target_std_mbps']:.0f} Mbps  "
        f"train accuracy={summary['train_accuracy_pct']:.2f}%\n\n"
    )

    static = measure_independent(topology, weather, at_time=0.0).matrix
    out.write("Static-independent BWs (Mbps, measured one pair at a time):\n")
    out.write(static.to_table())
    predicted = wanify.predict_runtime_bw(at_time=args.at)
    out.write(
        f"\n\nPredicted runtime BWs at t={args.at:.0f}s (Mbps):\n"
    )
    out.write(predicted.to_table())

    plan = wanify.make_plan(predicted)
    out.write("\n\nOptimal connection windows (min–max per pair):\n")
    window = BandwidthMatrix.zeros(topology.keys)
    for src, dst in window.pairs():
        lo, hi = plan.connection_window(src, dst)
        window.set(src, dst, hi)
    out.write(window.to_table("{:7.0f}"))
    out.write(
        f"\n\nmin BW {predicted.min_bw():.0f} → achievable "
        f"{plan.max_bw.min_bw():.0f} Mbps "
        f"({plan.max_bw.min_bw() / max(predicted.min_bw(), 1e-9):.1f}x)\n"
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog=_PROG,
        description="WANify reproduction — experiments and exploration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", help="experiment id, e.g. E-F5")
    p_run.add_argument(
        "--full",
        action="store_true",
        help="paper-scale model (slower; default uses fast settings)",
    )

    p_report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p_report.add_argument(
        "-o", "--output", default="EXPERIMENTS.md", help="output path"
    )

    p_topo = sub.add_parser("topology", help="inspect a cluster topology")
    p_topo.add_argument(
        "regions", nargs="*", help="region keys (default: the paper's 8)"
    )
    p_topo.add_argument("--vm", default="t2.medium", help="VM type key")
    p_topo.add_argument(
        "--profile",
        default="vpc-peering",
        help="network profile: vpc-peering, public-internet, edge-cloud",
    )

    p_pred = sub.add_parser(
        "predict", help="train WANify and print predicted BWs + plan"
    )
    p_pred.add_argument(
        "regions", nargs="*", help="region keys (default: the paper's 8)"
    )
    p_pred.add_argument("--vm", default="t2.medium", help="VM type key")
    p_pred.add_argument(
        "--profile",
        default="vpc-peering",
        help="network profile: vpc-peering, public-internet, edge-cloud",
    )
    p_pred.add_argument("--seed", type=int, default=42, help="weather seed")
    p_pred.add_argument(
        "--at", type=float, default=7.5 * 3600.0, help="prediction time (s)"
    )
    p_pred.add_argument(
        "--datasets", type=int, default=40, help="training datasets"
    )
    p_pred.add_argument(
        "--estimators", type=int, default=30, help="forest size"
    )
    return parser


_COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "report": cmd_report,
    "topology": cmd_topology,
    "predict": cmd_predict,
}


def main(argv: Optional[list[str]] = None, out: Optional[IO[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    stream = out if out is not None else sys.stdout
    return _COMMANDS[args.command](args, stream)
