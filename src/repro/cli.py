"""Command-line interface: ``python -m repro <command>``.

Eight commands cover the things a downstream user does most:

=============  =========================================================
command        what it does
=============  =========================================================
``list``       list every reproducible experiment (tables & figures)
``run``        run one experiment and print its paper-vs-measured table
``report``     run everything and (re)write EXPERIMENTS.md
``topology``   show distances, RTTs and capacities for a region set
``predict``    train WANify and print static vs predicted runtime BWs
               plus the optimized connection plan
``serve``      run the multi-job runtime service under a bandwidth
               scenario (optionally comparing online vs static plans)
``sweep``      expand a ``[sweep]`` config section into a variants ×
               scenarios × stage-choices × schedulers matrix and write
               a JSON + markdown comparison report (``--jobs N`` runs
               cells on parallel workers; ``repeats`` adds mean ±
               stdev columns)
``tune``       successive-halving search over the same matrix for the
               cheapest configuration meeting an SLO-attainment target
               (``[tune]`` table); writes tune.json + tune.md +
               winner.toml
=============  =========================================================

Every command is deterministic given ``--seed`` (the network weather is
a pure function of it).  The module is import-safe: :func:`main` takes
``argv`` and an output stream, so tests drive it without subprocesses.

``predict`` and ``serve`` resolve their knobs through the layered
config system (:mod:`repro.pipeline.config`): most of their flags are
*generated* from the :class:`~repro.pipeline.config.PipelineConfig` /
:class:`~repro.pipeline.config.ServiceConfig` dataclass fields, and
every generated flag can also come from a ``--config file.toml`` or a
``WANIFY_*`` environment variable (explicit flags win).  Registered
extensions plug in by name: ``--variant``, ``--policy``, and
``--scenario`` all resolve through the
:mod:`repro.pipeline.registry` registries, and ``--scenario`` composes
with ``+`` (``diurnal+flash-crowd``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import IO, Optional

from repro.cloud.regions import PAPER_REGIONS, region
from repro.net.matrix import BandwidthMatrix
from repro.net.measurement import measure_independent
from repro.net.profiles import network_profile
from repro.net.topology import Topology
from repro.pipeline.config import (
    ConfigArguments,
    PipelineConfig,
    ServiceConfig,
)
from repro.pipeline.core import Pipeline
from repro.pipeline.registry import (
    Registry,
    admission_policy_registry,
    gauger_registry,
    planner_registry,
    policy_registry,
    predictor_registry,
    preemption_policy_registry,
    tuner_registry,
    variant_registry,
)

_PROG = "python -m repro"

#: Generated flags for ``predict`` — every :class:`PipelineConfig`
#: field the command consumes, with its historical fast-training
#: defaults (``variant``/``policy`` excluded: predict stops at the
#: plan, so those flags would be accepted but dead).
PREDICT_CONFIG = ConfigArguments(
    PipelineConfig,
    defaults={"seed": 42, "n_training_datasets": 40, "n_estimators": 30},
    exclude=("variant", "policy"),
)

#: Generated flags for ``serve`` — every :class:`ServiceConfig` field
#: (``regions`` stays positional, ``online`` is spelled ``--static``).
SERVE_CONFIG = ConfigArguments(
    ServiceConfig,
    defaults={
        "scenario": "step-drop",
        "n_training_datasets": 16,
        "n_estimators": 12,
    },
)


def _experiment_registry():
    """The (id, title, module) triples from the report harness.

    Imported lazily — the experiment modules pull in the whole stack and
    ``repro topology`` shouldn't pay for that.
    """
    from repro.experiments.report import EXPERIMENTS

    return EXPERIMENTS


def _check_registered(config: object, out: IO[str]) -> bool:
    """Validate every registry-resolved name a config carries.

    On failure, prints the known alternatives — every printed name is
    guaranteed to resolve (the registries are the source of truth).
    """
    checks: tuple[tuple[str, Registry], ...] = (
        ("variant", variant_registry),
        ("policy", policy_registry),
        ("gauger", gauger_registry),
        ("predictor", predictor_registry),
        ("planner", planner_registry),
        ("scheduler", admission_policy_registry),
        ("preemption", preemption_policy_registry),
        ("tuner", tuner_registry),
    )
    for field_name, registry in checks:
        value = getattr(config, field_name, None)
        if value is not None and value not in registry:
            out.write(
                f"unknown {registry.kind} {value!r}; "
                f"known: {', '.join(registry.names())}\n"
            )
            return False
    # Not registry-backed, but the same bad-name contract: the transfer
    # kernel accepts exactly the simulator's KERNELS tuple.
    from repro.net.simulator import KERNELS

    kernel = getattr(config, "kernel", None)
    if kernel is not None and kernel not in KERNELS:
        out.write(f"unknown kernel {kernel!r}; known: {', '.join(KERNELS)}\n")
        return False
    return True


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_list(args: argparse.Namespace, out: IO[str]) -> int:
    """List experiment ids and the paper artifacts they regenerate."""
    rows = _experiment_registry()
    width = max(len(exp_id) for exp_id, _, _ in rows)
    for exp_id, title, module in rows:
        out.write(f"{exp_id:<{width}}  {title}\n")
    out.write(
        f"\n{len(rows)} experiments; run one with "
        f"`{_PROG} run <id>`, all with `{_PROG} report`.\n"
    )
    return 0


def cmd_run(args: argparse.Namespace, out: IO[str]) -> int:
    """Run a single experiment and print its rendered table."""
    registry = {exp_id: (title, mod) for exp_id, title, mod in _experiment_registry()}
    exp_id = args.experiment.upper()
    if exp_id not in registry:
        out.write(
            f"unknown experiment {args.experiment!r}; "
            f"`{_PROG} list` shows the valid ids.\n"
        )
        return 2
    title, module = registry[exp_id]
    out.write(f"== {exp_id}: {title} ==\n")
    start = time.time()
    results = module.run(fast=not args.full)
    out.write(module.render(results))
    out.write(f"\n({time.time() - start:.1f} s)\n")
    return 0


def cmd_report(args: argparse.Namespace, out: IO[str]) -> int:
    """Regenerate EXPERIMENTS.md, or emit KPIs for a recorded run.

    Without ``--run`` this is the legacy behavior (re-run every
    experiment and rewrite EXPERIMENTS.md).  With ``--run FILE`` it
    instead reads a recorded service run (``serve --record``) and
    writes the operator KPI report — congestion hot-spots, SLO
    attainment by tenant, failover quality, probe cost — as
    ``kpi.json`` + ``kpi.md``; ``--trace`` adds the reconstructed
    event timeline.
    """
    if args.run_file is not None:
        return _kpi_report(args, out)
    if args.trace:
        out.write("--trace needs --run FILE (a recorded service run)\n")
        return 2
    from repro.experiments.report import generate

    path = generate(args.output)
    out.write(f"wrote {path}\n")
    return 0


def _kpi_report(args: argparse.Namespace, out: IO[str]) -> int:
    """The ``report --run`` path: recorded run → operator KPI tables."""
    from repro.runtime.observability import (
        KpiReport,
        load_run,
        write_kpi_report,
    )

    try:
        run = load_run(args.run_file)
    except (OSError, ValueError, KeyError) as exc:
        out.write(f"bad recorded run {args.run_file!r}: {exc}\n")
        return 2
    report = KpiReport.from_run(run)
    timeline = run.timeline() if args.trace else None
    # `-o` doubles as the report directory here; the EXPERIMENTS.md
    # default belongs to the legacy mode, so swap it for a KPI dir.
    output = (
        args.output if args.output != "EXPERIMENTS.md" else "kpi-report"
    )
    json_path, md_path = write_kpi_report(report, output, timeline=timeline)
    out.write(report.render_markdown())
    if timeline is not None:
        out.write("\n## Event timeline\n\n" + timeline)
        if run.events_dropped:
            out.write(
                f"({run.events_dropped} earlier events evicted by the "
                f"trace ring)\n"
            )
    out.write(f"\nwrote {json_path} and {md_path}\n")
    return 0


def cmd_topology(args: argparse.Namespace, out: IO[str]) -> int:
    """Print the static description of a cluster."""
    keys = tuple(args.regions) if args.regions else PAPER_REGIONS
    try:
        for key in keys:
            region(key)
        profile = network_profile(args.profile)
        topology = Topology.build(keys, args.vm, profile=profile)
    except KeyError as exc:
        out.write(f"{exc.args[0]}\n")
        return 2
    out.write(
        f"{topology.n} DCs, VM type {args.vm}, profile {profile.key}\n\n"
    )
    out.write("Great-circle distances (miles):\n")
    out.write(topology.distance_matrix().to_table("{:7.0f}"))
    out.write("\n\nModelled RTTs (ms):\n")
    rtt = BandwidthMatrix(topology.keys, topology.rtt_matrix())
    out.write(rtt.to_table("{:7.1f}"))
    out.write("\n\nSingle-connection uncontended caps (Mbps):\n")
    caps = BandwidthMatrix.zeros(topology.keys)
    for src, dst in caps.pairs():
        caps.set(src, dst, topology.single_connection_cap(src, dst))
    out.write(caps.to_table("{:7.0f}"))
    out.write("\n")
    return 0


def cmd_predict(args: argparse.Namespace, out: IO[str]) -> int:
    """Train the pipeline and print static vs predicted BWs + the plan."""
    keys = tuple(args.regions) if args.regions else PAPER_REGIONS
    try:
        config = PREDICT_CONFIG.resolve(args)
    except (OSError, ValueError) as exc:
        out.write(f"bad configuration: {exc}\n")
        return 2
    if not _check_registered(config, out):
        return 2
    try:
        profile = network_profile(args.profile)
        topology = Topology.build(keys, args.vm, profile=profile)
    except KeyError as exc:
        out.write(f"{exc.args[0]}\n")
        return 2
    weather = profile.fluctuation(seed=config.seed)
    pipeline = Pipeline(topology, weather, config)
    out.write(
        f"training on {config.n_training_datasets} datasets "
        f"({config.n_estimators} estimators) ...\n"
    )
    summary = pipeline.train()
    out.write(
        f"  rows={summary['rows']:.0f}  "
        f"target SD={summary['target_std_mbps']:.0f} Mbps  "
        f"train accuracy={summary['train_accuracy_pct']:.2f}%\n\n"
    )

    static = measure_independent(topology, weather, at_time=0.0).matrix
    out.write("Static-independent BWs (Mbps, measured one pair at a time):\n")
    out.write(static.to_table())
    predicted = pipeline.predict(at_time=args.at)
    out.write(
        f"\n\nPredicted runtime BWs at t={args.at:.0f}s (Mbps):\n"
    )
    out.write(predicted.to_table())

    plan = pipeline.plan(predicted)
    out.write("\n\nOptimal connection windows (min–max per pair):\n")
    window = BandwidthMatrix.zeros(topology.keys)
    for src, dst in window.pairs():
        lo, hi = plan.connection_window(src, dst)
        window.set(src, dst, hi)
    out.write(window.to_table("{:7.0f}"))
    out.write(
        f"\n\nmin BW {predicted.min_bw():.0f} → achievable "
        f"{plan.max_bw.min_bw():.0f} Mbps "
        f"({plan.max_bw.min_bw() / max(predicted.min_bw(), 1e-9):.1f}x)\n"
    )
    return 0


def _render_service(svc, out: IO[str]) -> None:
    """Per-job table, re-plan events, and the aggregate summary."""
    summary = svc.summary()
    records = getattr(svc, "parallel_records", [])
    if records:
        # The parallel drain ran outside the in-process scheduler;
        # per-job rows come from the merged shard records instead.
        out.write(
            f"{'job':<16} {'tenant':<10} {'shard':>5} {'wait(s)':>8} "
            f"{'jct(s)':>8}\n"
        )
        for record in records:
            out.write(
                f"{record.name:<16} {record.tenant:<10} "
                f"{record.shard:>5d} {record.wait_s:>8.1f} "
                f"{record.jct_s:>8.1f}\n"
            )
    else:
        out.write(
            f"{'job':<16} {'system':<10} {'wait(s)':>8} {'jct(s)':>8} "
            f"{'wan(GB)':>8}\n"
        )
        for ticket in svc.scheduler.completed:
            result = ticket.result
            out.write(
                f"{ticket.job.name:<16} {result.system_name:<10} "
                f"{ticket.wait_s:>8.1f} {ticket.jct_s:>8.1f} "
                f"{result.wan_gb:>8.2f}\n"
            )
    if summary.events:
        out.write("\nre-plan events:\n")
        for event in summary.events:
            out.write(f"  {event.describe()}\n")
    out.write(
        f"\ncompleted {summary.completed} jobs in "
        f"{summary.makespan_s:.0f} s "
        f"({summary.jobs_per_hour:.1f} jobs/sim-hour)\n"
        f"mean wait {summary.mean_wait_s:.1f} s, "
        f"mean JCT {summary.mean_jct_s:.1f} s, "
        f"fairness {summary.fairness:.2f}, "
        f"re-plans {summary.replans}\n"
        f"probe cost: {summary.probe_transfers} transfers, "
        f"{summary.probe_gb:.2f} GB, "
        f"${summary.probe_cost_usd:.4f} "
        f"(re-plan share: ${summary.replan_cost_usd:.4f})\n"
    )
    if summary.slo_attained or summary.slo_missed:
        out.write(
            f"SLO ({summary.scheduler}): "
            f"{summary.slo_attained}/{summary.slo_attained + summary.slo_missed} "
            f"deadlines met "
            f"({summary.slo_attainment * 100.0:.0f}% attainment)\n"
        )
    if summary.preemptions or summary.throttle_moves:
        out.write(
            f"control plane: {summary.preemptions} preemptions "
            f"({summary.migrations} migrated), "
            f"{summary.throttle_moves} throttle moves "
            f"({summary.throttle_releases} released), "
            f"peak concurrency {summary.concurrency_high_water}\n"
        )
    if records:
        workers = (
            f"{summary.shard_worker_count} worker processes"
            if summary.shard_worker_count
            else "in-process (serial)"
        )
        out.write(
            f"parallel drain: {summary.scheduler_shards} shards, "
            f"{workers}, wall {summary.parallel_wall_s:.2f} s\n"
        )


def cmd_serve(args: argparse.Namespace, out: IO[str]) -> int:
    """Run the runtime service on a scenario; optionally compare modes."""
    import dataclasses

    from repro.runtime.scenarios import scenario_known, scenario_names
    from repro.runtime.service import PipelineService, default_job_mix

    try:
        # Positional regions are an explicit override; otherwise the
        # config layers (file / WANIFY_REGIONS / dataclass default)
        # decide.
        if args.regions:
            base_config = SERVE_CONFIG.resolve(
                args, regions=tuple(args.regions)
            )
        else:
            base_config = SERVE_CONFIG.resolve(args)
    except (OSError, ValueError) as exc:
        out.write(f"bad configuration: {exc}\n")
        return 2
    keys = base_config.regions
    if base_config.scenario is not None and not scenario_known(
        base_config.scenario
    ):
        out.write(
            f"unknown scenario {base_config.scenario!r}; "
            f"known: {', '.join(scenario_names(include_composed=True))} "
            f"(join with + to compose)\n"
        )
        return 2
    if not _check_registered(base_config, out):
        return 2
    try:
        for key in keys:
            region(key)
        network_profile(base_config.profile)
    except KeyError as exc:
        out.write(f"{exc.args[0]}\n")
        return 2
    if len(keys) < 2:
        out.write("serve needs at least 2 regions (no WAN otherwise)\n")
        return 2
    if args.jobs < 1:
        out.write(f"--jobs must be ≥ 1 (got {args.jobs})\n")
        return 2
    if base_config.max_concurrent < 1:
        out.write(
            f"--max-concurrent must be ≥ 1 "
            f"(got {base_config.max_concurrent})\n"
        )
        return 2
    if (
        base_config.autoscale
        and base_config.autoscale_max < base_config.max_concurrent
    ):
        out.write(
            f"--autoscale-max ({base_config.autoscale_max}) must be ≥ "
            f"--max-concurrent ({base_config.max_concurrent}) — the "
            f"autoscaler scales between them\n"
        )
        return 2
    if args.scale_mb <= 0:
        out.write(f"--scale-mb must be positive (got {args.scale_mb})\n")
        return 2
    if base_config.shard_workers < 0:
        out.write(
            f"--shard-workers must be ≥ 0 "
            f"(got {base_config.shard_workers})\n"
        )
        return 2

    def run_once(online: bool, metrics: bool = False) -> PipelineService:
        config = dataclasses.replace(base_config, online=online)
        service = PipelineService.build(config)
        if (
            metrics
            and service.hub is not None
            and config.metrics_port is not None
        ):
            endpoint = service.hub.serve_metrics(config.metrics_port)
            out.write(f"metrics: {endpoint.url}\n")
            flush = getattr(out, "flush", None)
            if flush is not None:
                flush()
        mix = default_job_mix(
            keys,
            count=args.jobs,
            seed=config.seed,
            scale_mb=args.scale_mb,
        )
        # submit_mix spreads heterogeneous SLO deadlines over the mix
        # when --slo-deadline-s (or the config layers) set one.  With
        # --shard-workers set the mix instead drains through the
        # partitioned shard executor (tenant-hashed shards, one seeded
        # simulation per shard, optionally in worker processes).
        if config.shard_workers > 0:
            service.drain_parallel(mix)
        else:
            service.submit_mix(mix)
            service.run(until=args.duration)
        service.stop()
        return service

    # --static is an explicit override; otherwise the layered `online`
    # knob (file / WANIFY_ONLINE / dataclass default True) decides.
    primary_online = False if args.static else base_config.online
    mode = "online re-planning" if primary_online else "static plan"
    out.write(
        f"serving {args.jobs} jobs on {len(keys)} DCs, scenario "
        f"{base_config.scenario!r}, {mode} (seed {base_config.seed})\n\n"
    )
    # Only the primary run owns the /metrics endpoint — a comparison
    # run binding the same port would clash.
    primary = run_once(online=primary_online, metrics=True)
    _render_service(primary, out)
    if args.compare:
        # The comparison run is always the *opposite* mode, so
        # `--static --compare` works too.
        other_mode = (
            "static plan (no re-planning)" if primary_online else
            "online re-planning"
        )
        out.write(f"\n-- comparison: {other_mode} --\n\n")
        other = run_once(online=not primary_online)
        _render_service(other, out)
        online_svc, static_svc = (
            (primary, other) if primary_online else (other, primary)
        )
        online_total = online_svc.summary().total_jct_s
        static_total = static_svc.summary().total_jct_s
        if online_total > 0:
            out.write(
                f"\nonline/static total-JCT speedup: "
                f"{static_total / online_total:.2f}x\n"
            )
    if args.record_file is not None:
        if primary.hub is None:
            out.write(
                "cannot record the run: observability is disabled "
                "(--record needs the telemetry warehouse)\n"
            )
            return 2
        from repro.runtime.observability import write_run

        path = write_run(primary, args.record_file)
        out.write(f"recorded run → {path}\n")
    if (
        args.metrics_linger > 0
        and primary.hub is not None
        and primary.hub.endpoint is not None
    ):
        out.write(
            f"metrics endpoint lingering {args.metrics_linger:g}s "
            f"for scrapes…\n"
        )
        flush = getattr(out, "flush", None)
        if flush is not None:
            flush()
        time.sleep(args.metrics_linger)
    if primary.hub is not None:
        primary.hub.close()
    return 0


def cmd_sweep(args: argparse.Namespace, out: IO[str]) -> int:
    """Run (or dry-run) the sweep matrix described by a config file."""
    from repro.experiments.sweep import (
        load_sweep,
        render_markdown,
        run_sweep,
        write_report,
    )

    if args.config_file is None:
        out.write(
            "sweep needs --config FILE (a TOML/JSON config with a "
            "[sweep] table; see examples/sweep.toml)\n"
        )
        return 2
    try:
        spec = load_sweep(args.config_file)
    except (OSError, ValueError) as exc:  # SweepError is a ValueError
        out.write(f"bad sweep configuration: {exc}\n")
        return 2
    if args.workers < 1:
        out.write(f"--jobs must be ≥ 1 (got {args.workers})\n")
        return 2
    cells = spec.cells
    swept = ", ".join(spec.swept) if spec.swept else "nothing (single cell)"
    out.write(
        f"sweep matrix: {spec.shape} over {swept} — {len(cells)} cells, "
        f"{spec.jobs} jobs each (seed {spec.base.seed})\n"
    )
    if args.dry_run:
        for index, cell in enumerate(cells):
            out.write(f"  [{index + 1}/{len(cells)}] {spec.label(cell)}\n")
        out.write("dry run: nothing executed\n")
        return 0

    def progress(index: int, total: int, label: str) -> None:
        out.write(f"  [{index + 1}/{total}] {label}\n")

    result = run_sweep(spec, progress=progress, workers=args.workers)
    json_path, md_path = write_report(result, args.output)
    out.write("\n" + render_markdown(result))
    out.write(f"wrote {json_path} and {md_path}\n")
    return 0


def cmd_tune(args: argparse.Namespace, out: IO[str]) -> int:
    """Run (or dry-run) the successive-halving config search."""
    from repro.tuner.search import (
        load_tune,
        render_tune_markdown,
        rung_plan,
        run_tune,
        write_tune_report,
    )

    if args.config_file is None:
        out.write(
            "tune needs --config FILE (a sweep config, optionally with "
            "a [tune] table; see examples/tune.toml)\n"
        )
        return 2
    try:
        spec = load_tune(args.config_file)
    except (OSError, ValueError) as exc:  # TuneError is a ValueError
        out.write(f"bad tune configuration: {exc}\n")
        return 2
    if args.workers < 1:
        out.write(f"--jobs must be ≥ 1 (got {args.workers})\n")
        return 2
    sweep = spec.sweep
    cells = sweep.cells
    plan = rung_plan(spec)
    swept = ", ".join(sweep.swept) if sweep.swept else "nothing (single cell)"
    out.write(
        f"tune matrix: {sweep.shape} over {swept} — {len(cells)} cells, "
        f"target slo_attainment ≥ {spec.target}, eta {spec.eta}\n"
    )
    for index, (jobs, repeats) in enumerate(plan):
        out.write(
            f"  rung {index + 1}/{len(plan)}: jobs={jobs} repeats={repeats}"
            f"{' (full fidelity)' if index == len(plan) - 1 else ''}\n"
        )
    if args.dry_run:
        for index, cell in enumerate(cells):
            out.write(f"  [{index + 1}/{len(cells)}] {sweep.label(cell)}\n")
        out.write("dry run: nothing executed\n")
        return 0

    def progress(index: int, total: int, label: str) -> None:
        out.write(f"  [{index + 1}/{total}] {label}\n")

    result = run_tune(spec, progress=progress, workers=args.workers)
    json_path, md_path, toml_path = write_tune_report(result, args.output)
    out.write("\n" + render_tune_markdown(result))
    out.write(f"wrote {json_path}, {md_path} and {toml_path}\n")
    return 0 if result.feasible else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The full argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog=_PROG,
        description="WANify reproduction — experiments and exploration.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible experiments")

    p_run = sub.add_parser("run", help="run one experiment")
    p_run.add_argument("experiment", help="experiment id, e.g. E-F5")
    p_run.add_argument(
        "--full",
        action="store_true",
        help="paper-scale model (slower; default uses fast settings)",
    )

    p_report = sub.add_parser(
        "report",
        help="regenerate EXPERIMENTS.md, or (--run) emit operator KPIs "
        "for a recorded service run",
    )
    p_report.add_argument(
        "-o",
        "--output",
        default="EXPERIMENTS.md",
        help="output path (with --run: the KPI report directory; "
        "default kpi-report)",
    )
    p_report.add_argument(
        "--run",
        dest="run_file",
        metavar="FILE",
        default=None,
        help="recorded run (from `serve --record`) → write kpi.json + "
        "kpi.md instead of EXPERIMENTS.md",
    )
    p_report.add_argument(
        "--trace",
        action="store_true",
        help="with --run: append the reconstructed event timeline",
    )

    p_topo = sub.add_parser("topology", help="inspect a cluster topology")
    p_topo.add_argument(
        "regions", nargs="*", help="region keys (default: the paper's 8)"
    )
    p_topo.add_argument("--vm", default="t2.medium", help="VM type key")
    p_topo.add_argument(
        "--profile",
        default="vpc-peering",
        help="network profile: vpc-peering, public-internet, edge-cloud",
    )

    p_pred = sub.add_parser(
        "predict", help="train the pipeline and print predicted BWs + plan"
    )
    p_pred.add_argument(
        "regions", nargs="*", help="region keys (default: the paper's 8)"
    )
    p_pred.add_argument("--vm", default="t2.medium", help="VM type key")
    p_pred.add_argument(
        "--profile",
        default="vpc-peering",
        help="network profile: vpc-peering, public-internet, edge-cloud",
    )
    p_pred.add_argument(
        "--at", type=float, default=7.5 * 3600.0, help="prediction time (s)"
    )
    PREDICT_CONFIG.install(p_pred)

    p_serve = sub.add_parser(
        "serve",
        help="run the multi-job runtime service under a scenario",
    )
    p_serve.add_argument(
        "regions", nargs="*", help="region keys (default: the paper's 8)"
    )
    p_serve.add_argument(
        "--jobs", type=int, default=6, help="jobs in the submission mix"
    )
    p_serve.add_argument(
        "--scale-mb",
        type=float,
        default=4000.0,
        help="per-job input volume (MB)",
    )
    p_serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after this many simulated seconds (default: drain)",
    )
    p_serve.add_argument(
        "--static",
        action="store_true",
        help="freeze the submit-time plan (no online re-planning)",
    )
    p_serve.add_argument(
        "--compare",
        action="store_true",
        help="also run the static baseline and print the speedup",
    )
    p_serve.add_argument(
        "--record",
        dest="record_file",
        metavar="FILE",
        default=None,
        help="write the primary run (summary, rollups, event trace) "
        "as JSON for `report --run`",
    )
    p_serve.add_argument(
        "--metrics-linger",
        type=float,
        default=0.0,
        metavar="S",
        help="keep the /metrics endpoint up this many wall-clock "
        "seconds after the run (with --metrics-port)",
    )
    SERVE_CONFIG.install(p_serve)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a variants × scenarios × stage-choices matrix "
        "from one config file",
    )
    p_sweep.add_argument(
        "--config",
        dest="config_file",
        metavar="FILE",
        default=None,
        help="TOML/JSON config with a [sweep] table (see examples/sweep.toml)",
    )
    p_sweep.add_argument(
        "--output",
        default="sweep-report",
        help="report directory (sweep.json + sweep.md are written there)",
    )
    p_sweep.add_argument(
        "--jobs",
        dest="workers",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes (cells are independent "
        "simulations; the report order stays deterministic)",
    )
    p_sweep.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded matrix cells without running them",
    )

    p_tune = sub.add_parser(
        "tune",
        help="successive-halving search over a sweep matrix for the "
        "cheapest config meeting an SLO target",
    )
    p_tune.add_argument(
        "--config",
        dest="config_file",
        metavar="FILE",
        default=None,
        help="TOML/JSON sweep config, optionally with a [tune] table "
        "(see examples/tune.toml)",
    )
    p_tune.add_argument(
        "--output",
        default="tune-report",
        help="report directory (tune.json + tune.md + winner.toml are "
        "written there)",
    )
    p_tune.add_argument(
        "--jobs",
        dest="workers",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes per rung (rows stay in "
        "deterministic matrix order)",
    )
    p_tune.add_argument(
        "--dry-run",
        action="store_true",
        help="print the rung plan and matrix cells without running them",
    )
    return parser


_COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "report": cmd_report,
    "topology": cmd_topology,
    "predict": cmd_predict,
    "serve": cmd_serve,
    "sweep": cmd_sweep,
    "tune": cmd_tune,
}


def main(argv: Optional[list[str]] = None, out: Optional[IO[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    args = parser.parse_args(argv)
    # The raw argv lets the config layer distinguish flags actually
    # typed from parser defaults (see ConfigArguments.resolve).
    args._argv = list(argv)
    stream = out if out is not None else sys.stdout
    return _COMMANDS[args.command](args, stream)
