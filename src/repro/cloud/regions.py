"""Region catalog with geo-coordinates.

The eight regions match Fig. 1 of the paper: US East (N. Virginia),
US West (N. California), AP South (Mumbai), AP SE (Singapore), AP SE-2
(Sydney), AP NE (Tokyo), EU West (Ireland), SA East (São Paulo).  GCP
regions are included for the multi-cloud heterogeneity experiments
(§5.8.3 mentions AWS + GCP with e2-medium).

Coordinates are the publicly known metro locations of the regions; the
physical distance between VMs (feature ``Dij`` in Table 3) is computed
with the haversine formula, in miles as the paper specifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Region:
    """A cloud region: identifier, human name, provider, and location."""

    key: str
    name: str
    provider: str
    latitude: float
    longitude: float

    def distance_miles(self, other: "Region") -> float:
        """Great-circle distance to ``other`` in miles."""
        return haversine_miles(
            self.latitude, self.longitude, other.latitude, other.longitude
        )


_EARTH_RADIUS_MILES = 3958.7613


def haversine_miles(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> float:
    """Great-circle distance between two (lat, lon) points in miles.

    >>> round(haversine_miles(0, 0, 0, 180))
    12436
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    )
    return 2 * _EARTH_RADIUS_MILES * math.asin(math.sqrt(a))


_CATALOG: dict[str, Region] = {
    r.key: r
    for r in [
        # The 8 AWS regions of Fig. 1.
        Region("us-east-1", "US East (N. Virginia)", "aws", 38.95, -77.45),
        Region("us-west-1", "US West (N. California)", "aws", 37.35, -121.96),
        Region("ap-south-1", "AP South (Mumbai)", "aws", 19.08, 72.88),
        Region("ap-southeast-1", "AP SE (Singapore)", "aws", 1.35, 103.82),
        Region("ap-southeast-2", "AP SE-2 (Sydney)", "aws", -33.87, 151.21),
        Region("ap-northeast-1", "AP NE (Tokyo)", "aws", 35.68, 139.69),
        Region("eu-west-1", "EU West (Ireland)", "aws", 53.34, -6.27),
        Region("sa-east-1", "SA East (São Paulo)", "aws", -23.55, -46.63),
        # GCP regions used for the multi-cloud appendix.
        Region("gcp-us-east1", "GCP US East (S. Carolina)", "gcp", 33.84, -81.16),
        Region("gcp-europe-west1", "GCP EU West (Belgium)", "gcp", 50.45, 3.82),
        Region("gcp-asia-east1", "GCP Asia East (Taiwan)", "gcp", 24.05, 120.52),
    ]
}

#: The 8 AWS regions used throughout the paper's evaluation, in the order
#: they appear in Fig. 1.
PAPER_REGIONS: tuple[str, ...] = (
    "us-east-1",
    "us-west-1",
    "ap-south-1",
    "ap-southeast-1",
    "ap-southeast-2",
    "ap-northeast-1",
    "eu-west-1",
    "sa-east-1",
)


def region(key: str) -> Region:
    """Look up a region by key.

    >>> region("us-east-1").provider
    'aws'
    """
    try:
        return _CATALOG[key]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown region {key!r}; known: {known}") from None


def all_regions() -> list[Region]:
    """All catalogued regions (AWS then GCP, stable order)."""
    return list(_CATALOG.values())
