"""VM instance types.

Only the facts the simulator needs: compute capacity (vCPUs and a
relative per-core speed), memory, the NIC cap, and the provider's WAN
throttle.  The paper notes (§2.1) that AWS halves WAN bandwidth relative
to the advertised NIC cap (m5.large: 10 Gbps NIC → 5 Gbps WAN), and the
testbed uses t2.medium workers, t2.large master, and t3.nano monitors
with unlimited CPU bursts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VMType:
    """An instance type.

    ``nic_gbps`` is the advertised burst NIC capacity; ``wan_factor`` is
    the fraction of it usable across regions (0.5 on AWS per §2.1).
    ``speed`` is a relative per-vCPU compute speed (1.0 = t2 baseline).
    """

    key: str
    provider: str
    vcpus: int
    memory_gb: float
    nic_gbps: float
    wan_factor: float = 0.5
    speed: float = 1.0

    @property
    def wan_cap_mbps(self) -> float:
        """Usable WAN capacity in Mbps (NIC cap × WAN throttle)."""
        return self.nic_gbps * 1000.0 * self.wan_factor


_CATALOG: dict[str, VMType] = {
    v.key: v
    for v in [
        # Burst instances used in the paper's testbed.  The paper's
        # Fig. 1 / Fig. 2 motivation numbers come from *unlimited-burst
        # t3.nano* probes (§2.2), which sustain their 5 Gbps burst NIC;
        # t2-class workers sustain far less than their burst rating
        # (t2 baseline network is a fraction of a Gbps), which is what
        # makes shuffle a WAN bottleneck on the testbed.  The sustained
        # figures below are calibrated accordingly.
        VMType("t2.medium", "aws", 2, 4.0, 2.4, speed=1.0),
        VMType("t2.large", "aws", 2, 8.0, 2.8, speed=1.0),
        VMType("t3.nano", "aws", 2, 0.5, 5.0, speed=0.9),
        VMType("m5.large", "aws", 2, 8.0, 10.0, speed=1.25),
        VMType("e2-medium", "gcp", 2, 4.0, 2.4, speed=1.0),
    ]
}


def vm_type(key: str) -> VMType:
    """Look up an instance type by key.

    >>> vm_type("m5.large").wan_cap_mbps
    5000.0
    """
    try:
        return _CATALOG[key]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown VM type {key!r}; known: {known}") from None
