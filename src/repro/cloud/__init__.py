"""Cloud substrate: region catalog, VM instance types, and pricing.

The paper's testbed is 8 AWS regions connected by VPC peering, plus a
multi-cloud appendix (AWS + GCP).  This package provides the static facts
the rest of the reproduction needs:

* :mod:`repro.cloud.regions` — region identifiers and geo-coordinates
  (used for the ``Dij`` physical-distance feature and the RTT model),
* :mod:`repro.cloud.vm` — instance types with vCPU count, memory, NIC
  caps, and the provider's WAN throttle factor,
* :mod:`repro.cloud.pricing` — compute / network / storage prices and
  the Eq. 1 monitoring-cost model behind Table 2.
"""

from repro.cloud.pricing import PriceBook, monitoring_annual_cost
from repro.cloud.regions import PAPER_REGIONS, Region, haversine_miles, region
from repro.cloud.vm import VMType, vm_type

__all__ = [
    "PAPER_REGIONS",
    "PriceBook",
    "Region",
    "VMType",
    "haversine_miles",
    "monitoring_annual_cost",
    "region",
    "vm_type",
]
