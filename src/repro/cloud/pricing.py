"""Prices and the Eq. 1 monitoring-cost model.

All query costs in the paper include compute, network, and storage
(§5.1); the monitoring-cost analysis (Table 2) uses the formula

    annual_cost = O × N × (x·y + z)                                (Eq. 1)

with ``O`` monitoring occurrences per year, ``N`` nodes, ``x`` the
per-instance-second compute price, ``y`` the monitoring duration, and
``z`` the per-instance network cost of the data exchanged while
monitoring.  Tetrium's suggestion of measuring every ~30 minutes sets
``O``; a t3.nano does the measuring; network traffic is priced at the
inter-region rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Seconds in a (non-leap) year; used to turn a cadence into occurrences.
SECONDS_PER_YEAR = 365 * 24 * 3600


@dataclass(frozen=True)
class PriceBook:
    """Unit prices, modeled on AWS public pricing.

    ``compute_per_hour`` maps VM type key → $/hour.  ``network_per_gb``
    is the inter-region transfer price ($/GB, charged at egress).
    ``burst_per_vcpu_hour`` is the unlimited-CPU-burst surcharge the
    paper adds ($0.05 per vCPU-hour, §5.1).
    """

    compute_per_hour: dict[str, float] = field(
        default_factory=lambda: {
            "t2.medium": 0.0464,
            "t2.large": 0.0928,
            "t3.nano": 0.0052,
            "m5.large": 0.096,
            "e2-medium": 0.0335,
        }
    )
    network_per_gb: float = 0.02
    storage_per_gb_month: float = 0.023
    burst_per_vcpu_hour: float = 0.05

    def compute_cost(
        self, vm_key: str, seconds: float, vcpus: int = 0, burst: bool = False
    ) -> float:
        """Cost of running ``vm_key`` for ``seconds`` (plus burst surcharge)."""
        hourly = self.compute_per_hour[vm_key]
        if burst:
            hourly += self.burst_per_vcpu_hour * vcpus
        return hourly * seconds / 3600.0

    def network_cost(self, gigabytes: float) -> float:
        """Inter-region transfer cost for ``gigabytes`` of egress."""
        return self.network_per_gb * gigabytes

    def storage_cost(self, gigabytes: float, seconds: float) -> float:
        """S3-like storage cost for holding ``gigabytes`` for ``seconds``."""
        months = seconds / (30 * 24 * 3600.0)
        return self.storage_per_gb_month * gigabytes * months


def monitoring_annual_cost(
    nodes: int,
    duration_s: float,
    avg_bw_mbps: float,
    cadence_s: float = 30 * 60.0,
    vm_key: str = "t3.nano",
    prices: PriceBook | None = None,
) -> float:
    """Annual cost of runtime BW monitoring — Eq. 1 of the paper.

    Each occurrence runs ``nodes`` t3.nano probes for ``duration_s``
    seconds, each exchanging ``avg_bw_mbps`` worth of traffic with the
    rest of the mesh for the whole duration.

    >>> cost = monitoring_annual_cost(8, 20.0, 200.0)
    >>> cost > monitoring_annual_cost(4, 20.0, 200.0)
    True
    """
    prices = prices or PriceBook()
    occurrences = SECONDS_PER_YEAR / cadence_s
    x_times_y = prices.compute_cost(vm_key, duration_s)
    gigabytes = avg_bw_mbps / 8.0 * duration_s / 1024.0
    z = prices.network_cost(gigabytes)
    return occurrences * nodes * (x_times_y + z)
