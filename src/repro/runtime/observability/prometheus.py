"""Prometheus text-format exposition: registry, renderer, endpoint.

A dependency-free subset of the Prometheus client model — counters,
gauges, and histograms with labels — rendered in the text exposition
format (version 0.0.4) any Prometheus-compatible scraper ingests:

.. code-block:: text

    # HELP wanify_jobs_admitted_total Jobs admitted to a run slot.
    # TYPE wanify_jobs_admitted_total counter
    wanify_jobs_admitted_total 42

:class:`MetricsEndpoint` serves a registry (or any ``() -> str``
renderer) over HTTP on ``/metrics`` from a daemon thread, which is how
``wanify serve --metrics-port N`` makes a running service scrapable.
:func:`parse_prometheus_text` is the matching strict reader used by the
tests and the CI smoke script — if the rendered text ever stops
parsing, the build fails before an operator's scraper does.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable, Optional

#: Buckets (seconds) for job-latency histograms: sub-minute through
#: multi-hour, matching the JCT range the paper's workloads span.
DEFAULT_JCT_BUCKETS_S: tuple[float, ...] = (
    60.0,
    120.0,
    300.0,
    600.0,
    1200.0,
    3600.0,
    7200.0,
)

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)

_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape(value)}"' for key, value in labels)
    return "{" + inner + "}"


class _Family:
    """One metric family: name, help, type, labeled samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        if not _NAME.match(name):
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.help = help_text
        self._samples: dict[tuple[tuple[str, str], ...], float] = {}

    @staticmethod
    def _key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def render(self) -> list[str]:
        """The family's exposition lines."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labels, value in sorted(self._samples.items()):
            lines.append(
                f"{self.name}{_labels_text(labels)} {_format_value(value)}"
            )
        return lines


class Counter(_Family):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (≥ 0) to the labeled sample."""
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        key = self._key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: str) -> None:
        """Install an externally accumulated total (scrape-time fill)."""
        self._samples[self._key(labels)] = float(value)


class Gauge(_Family):
    """Point-in-time value."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        """Set the labeled sample."""
        self._samples[self._key(labels)] = float(value)


class Histogram(_Family):
    """Cumulative-bucket histogram (one unlabeled series)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Iterable[float] = DEFAULT_JCT_BUCKETS_S,
    ) -> None:
        super().__init__(name, help_text)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._sum += value
        self._count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    def render(self) -> list[str]:
        """Cumulative ``_bucket`` lines plus ``_sum`` / ``_count``."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        cumulative = 0
        for bound, count in zip(self.buckets, self._counts):
            cumulative += count
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} '
                f"{cumulative}"
            )
        cumulative += self._counts[-1]
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{self.name}_sum {_format_value(self._sum)}")
        lines.append(f"{self.name}_count {self._count}")
        return lines


class MetricsRegistry:
    """An ordered collection of metric families with one renderer."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        if family.name in self._families:
            raise ValueError(f"duplicate metric family {family.name!r}")
        self._families[family.name] = family
        return family

    def counter(self, name: str, help_text: str) -> Counter:
        """Create and register a counter family."""
        return self._register(Counter(name, help_text))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str) -> Gauge:
        """Create and register a gauge family."""
        return self._register(Gauge(name, help_text))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets: Iterable[float] = DEFAULT_JCT_BUCKETS_S,
    ) -> Histogram:
        """Create and register a histogram family."""
        return self._register(Histogram(name, help_text, buckets))  # type: ignore[return-value]

    def render(self) -> str:
        """The whole registry in text exposition format."""
        lines: list[str] = []
        for family in self._families.values():
            lines.extend(family.render())
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, dict[str, Any]]:
    """Strictly parse exposition text into families.

    Returns ``{family: {"type": ..., "help": ..., "samples": [(name,
    labels, value), ...]}}``, attaching ``_bucket``/``_sum``/``_count``
    samples to their histogram family.  Raises :class:`ValueError` on
    any malformed line — this is the validation gate the smoke test
    leans on, so it refuses rather than skips.
    """
    families: dict[str, dict[str, Any]] = {}

    def family_of(sample_name: str) -> Optional[str]:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name.removesuffix(suffix)
            if base != sample_name and base in families:
                if families[base]["type"] == "histogram":
                    return base
        return sample_name if sample_name in families else None

    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            if not _NAME.match(name):
                raise ValueError(f"bad HELP name in {line!r}")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if not _NAME.match(name) or kind not in (
                "counter",
                "gauge",
                "histogram",
                "untyped",
            ):
                raise ValueError(f"bad TYPE line {line!r}")
            families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )["type"] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line {line!r}")
        name = match.group("name")
        labels_raw = match.group("labels") or ""
        labels = dict(_LABEL.findall(labels_raw))
        value = float(match.group("value").replace("Inf", "inf"))
        family = family_of(name)
        if family is None:
            raise ValueError(f"sample {name!r} has no HELP/TYPE header")
        families[family]["samples"].append((name, labels, value))
    return families


class MetricsEndpoint:
    """A daemon-thread HTTP server exposing ``/metrics``.

    ``render`` is called per scrape (so the text always reflects live
    state); ``on_scrape`` (when given) is called once per successful
    scrape, after rendering but before the response is written — the
    hub counts them into ``wanify_metrics_scrapes_total``, so each
    scrape reports the scrapes served *before* it.
    Pass ``port=0`` to bind an ephemeral port (tests); the bound port
    is available as :attr:`port`.
    """

    def __init__(
        self,
        render: Callable[[], str],
        port: int = 0,
        host: str = "127.0.0.1",
        on_scrape: Optional[Callable[[], None]] = None,
    ) -> None:
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            """Serves ``/metrics``; 404 elsewhere; silent logs."""

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] != "/metrics":
                    self.send_error(404, "try /metrics")
                    return
                try:
                    body = endpoint.render().encode()
                except Exception as exc:  # noqa: BLE001 - scrape must not kill the server
                    self.send_error(500, f"render failed: {exc!r}")
                    return
                # Count before the response goes out: a client that has
                # read the body may rely on the counter having moved.
                if endpoint.on_scrape is not None:
                    endpoint.on_scrape()
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                """Scrapes are not stdout events."""

        self.render = render
        self.on_scrape = on_scrape
        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="wanify-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def host(self) -> str:
        """Bound host address."""
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        """Bound port (resolved when constructed with ``port=0``)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """The scrape URL."""
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        """Stop serving and join the thread."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
