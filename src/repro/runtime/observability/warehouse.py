"""The telemetry warehouse: an append-only metrics log with rollups.

The :class:`~repro.runtime.telemetry.TelemetryStore` is a sliding
window — it answers "what is this link doing *now*" and forgets.  NOC
operation needs the opposite: durable history an operator (or the
auto-tuner) can aggregate over.  :class:`MetricsLog` is that history:
every monitor tick the store ingests is also appended here, raw and
unbounded, and :meth:`MetricsLog.rollup` turns the log into the
time-grain aggregates real WAN dashboards show — per-link (or
per-region) min/mean/p50/p95/max, *time above threshold* at 70/80/90 %
of link capacity in both **cumulative** (total seconds) and
**continuous** (longest unbroken run) flavors, flap counts, and
availability %.

Threshold semantics follow hourly WAN-circuit reporting practice: a
link pinned above 80 % of capacity for 40 cumulative minutes is busy;
one above 80 % for 40 *continuous* minutes is congested — the two
columns distinguish bursty from sustained saturation.  A **flap** is
an up→down transition (an active link going idle); **availability** is
the share of samples that saw the link carrying traffic at all.

Rollups are computed lazily and memoized on the log length, so the
ingest path stays a bare list append — cheap enough to leave on for
every run (the runtime benchmark pins the overhead below 5 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional

import numpy as np

#: Rollup grain name → bucket width in seconds.
GRAINS: dict[str, float] = {"1m": 60.0, "10m": 600.0, "1h": 3600.0}

#: Capacity thresholds (percent) the time-above columns track.
THRESHOLD_PCTS: tuple[int, ...] = (70, 80, 90)

#: Supported rollup aggregation levels.
ROLLUP_LEVELS: tuple[str, ...] = ("link", "region")


@dataclass(frozen=True)
class RollupRow:
    """One (grain, bucket, group) aggregate of the metrics log.

    ``group`` is ``"src→dst"`` for link-level rollups and the source
    region key for region-level ones.  ``above_s`` / ``continuous_s``
    map a threshold percent (70/80/90) to seconds spent at or above
    that share of capacity — total and longest-unbroken-run
    respectively.  ``capacity_mbps`` is 0 when no capacity oracle was
    attached (threshold columns are then all zero too).
    """

    grain: str
    bucket_start: float
    group: str
    samples: int
    min_mbps: float
    mean_mbps: float
    p50_mbps: float
    p95_mbps: float
    max_mbps: float
    above_s: Mapping[int, float]
    continuous_s: Mapping[int, float]
    flaps: int
    availability_pct: float
    capacity_mbps: float

    def to_json(self) -> dict[str, Any]:
        """Flat JSON-ready representation (threshold maps unpacked)."""
        out: dict[str, Any] = {
            "grain": self.grain,
            "bucket_start": self.bucket_start,
            "group": self.group,
            "samples": self.samples,
            "min_mbps": self.min_mbps,
            "mean_mbps": self.mean_mbps,
            "p50_mbps": self.p50_mbps,
            "p95_mbps": self.p95_mbps,
            "max_mbps": self.max_mbps,
            "flaps": self.flaps,
            "availability_pct": self.availability_pct,
            "capacity_mbps": self.capacity_mbps,
        }
        for pct in sorted(self.above_s):
            out[f"above_{pct}_s"] = self.above_s[pct]
            out[f"above_{pct}_continuous_s"] = self.continuous_s[pct]
        return out

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "RollupRow":
        """Inverse of :meth:`to_json` (for recorded-run files)."""
        above = {
            pct: float(data[f"above_{pct}_s"])
            for pct in THRESHOLD_PCTS
            if f"above_{pct}_s" in data
        }
        continuous = {
            pct: float(data[f"above_{pct}_continuous_s"])
            for pct in THRESHOLD_PCTS
            if f"above_{pct}_continuous_s" in data
        }
        return cls(
            grain=str(data["grain"]),
            bucket_start=float(data["bucket_start"]),
            group=str(data["group"]),
            samples=int(data["samples"]),
            min_mbps=float(data["min_mbps"]),
            mean_mbps=float(data["mean_mbps"]),
            p50_mbps=float(data["p50_mbps"]),
            p95_mbps=float(data["p95_mbps"]),
            max_mbps=float(data["max_mbps"]),
            above_s=above,
            continuous_s=continuous,
            flaps=int(data["flaps"]),
            availability_pct=float(data["availability_pct"]),
            capacity_mbps=float(data["capacity_mbps"]),
        )


def link_key(src: str, dst: str) -> str:
    """The canonical ``src→dst`` spelling of a directed link."""
    return f"{src}→{dst}"


class _LinkBucketStats:
    """Mutable accumulator for one (bucket, link) group."""

    __slots__ = (
        "rates",
        "above",
        "continuous",
        "run",
        "flaps",
        "active",
        "capacity",
    )

    def __init__(self, capacity: float) -> None:
        self.rates: list[float] = []
        self.above: dict[int, float] = {pct: 0.0 for pct in THRESHOLD_PCTS}
        self.continuous: dict[int, float] = {
            pct: 0.0 for pct in THRESHOLD_PCTS
        }
        self.run: dict[int, float] = {pct: 0.0 for pct in THRESHOLD_PCTS}
        self.flaps = 0
        self.active = 0
        self.capacity = capacity


class MetricsLog:
    """Append-only warehouse of per-link bandwidth samples + rollups.

    ``capacity_of(src, dst)`` supplies each link's nominal capacity in
    Mbps for the threshold columns; without it the thresholds read 0
    (min/mean/percentile columns still work).  :meth:`record` matches
    the :data:`~repro.net.monitor.SampleSink` signature, so the log can
    be attached straight to a
    :class:`~repro.runtime.telemetry.TelemetryStore` via
    :meth:`~repro.runtime.telemetry.TelemetryStore.attach`.
    """

    def __init__(
        self,
        capacity_of: Optional[Callable[[str, str], float]] = None,
    ) -> None:
        self.capacity_of = capacity_of
        #: The append-only log: ``(time, src, dst, rate_mbps)`` rows.
        self.entries: list[tuple[float, str, str, float]] = []
        self._capacity_cache: dict[tuple[str, str], float] = {}
        #: (grain, by) → (log length at compute time, rows).
        self._rollup_cache: dict[
            tuple[str, str], tuple[int, list[RollupRow]]
        ] = {}

    # -- ingestion ------------------------------------------------------

    def record(self, dc: str, time: float, rates_mbps: dict[str, float]) -> None:
        """Ingest one monitor tick (the ``SampleSink`` signature)."""
        append = self.entries.append
        for dst, rate in rates_mbps.items():
            append((time, dc, dst, rate))

    def observe(self, time: float, src: str, dst: str, rate_mbps: float) -> None:
        """Append a single link sample (test/synthetic feeder)."""
        self.entries.append((time, src, dst, rate_mbps))

    # -- capacity -------------------------------------------------------

    def capacity_mbps(self, src: str, dst: str) -> float:
        """The link's nominal capacity (0 without an oracle)."""
        key = (src, dst)
        found = self._capacity_cache.get(key)
        if found is None:
            found = (
                float(self.capacity_of(src, dst))
                if self.capacity_of is not None
                else 0.0
            )
            self._capacity_cache[key] = found
        return found

    # -- rollups --------------------------------------------------------

    @property
    def size(self) -> int:
        """Samples ingested so far."""
        return len(self.entries)

    def links(self) -> list[tuple[str, str]]:
        """Every directed link the log has seen, sorted."""
        return sorted({(src, dst) for _, src, dst, _ in self.entries})

    def rollup(self, grain: str = "1m", by: str = "link") -> list[RollupRow]:
        """Aggregate the log at one time grain.

        ``by="link"`` groups per directed link; ``by="region"`` pools
        every link sharing a source region (percentiles over the pooled
        samples, flaps and cumulative time-above summed across member
        links, continuous time-above the max over members, capacity the
        sum).  Rows come back sorted by (bucket, group).  Results are
        memoized until the log grows.
        """
        if grain not in GRAINS:
            raise ValueError(
                f"unknown grain {grain!r}; known: {', '.join(GRAINS)}"
            )
        if by not in ROLLUP_LEVELS:
            raise ValueError(
                f"unknown rollup level {by!r}; known: "
                f"{', '.join(ROLLUP_LEVELS)}"
            )
        cached = self._rollup_cache.get((grain, by))
        if cached is not None and cached[0] == len(self.entries):
            return cached[1]
        rows = self._compute(grain, by)
        self._rollup_cache[(grain, by)] = (len(self.entries), rows)
        return rows

    def rollup_rows(self) -> int:
        """Total link-level rollup rows across every grain."""
        return sum(len(self.rollup(grain)) for grain in GRAINS)

    def _compute(self, grain: str, by: str) -> list[RollupRow]:
        width = GRAINS[grain]
        # Pass 1: per-(bucket, link) accumulation.  Samples arrive in
        # time order per link (monitors tick forward), so consecutive
        # entries of one link bound each sample's represented interval.
        stats: dict[tuple[float, str, str], _LinkBucketStats] = {}
        last_seen: dict[tuple[str, str], tuple[float, float]] = {}
        for time, src, dst, rate in self.entries:
            bucket = float(np.floor(time / width) * width)
            key = (bucket, src, dst)
            group = stats.get(key)
            if group is None:
                group = stats[key] = _LinkBucketStats(
                    self.capacity_mbps(src, dst)
                )
            group.rates.append(rate)
            if rate > 0.0:
                group.active += 1
            previous = last_seen.get((src, dst))
            last_seen[(src, dst)] = (time, rate)
            if previous is None:
                continue
            prev_time, prev_rate = previous
            # The interval this sample represents, clipped to its
            # bucket — a sample straddling a boundary only charges the
            # portion inside its own bucket.
            dt = min(max(0.0, time - prev_time), time - bucket)
            if prev_rate > 0.0 and rate <= 0.0:
                group.flaps += 1
            capacity = group.capacity
            if capacity <= 0.0 or dt <= 0.0:
                continue
            for pct in THRESHOLD_PCTS:
                if rate >= capacity * (pct / 100.0):
                    group.above[pct] += dt
                    group.run[pct] += dt
                    group.continuous[pct] = max(
                        group.continuous[pct], group.run[pct]
                    )
                else:
                    group.run[pct] = 0.0
        if by == "link":
            return [
                self._finish(
                    grain, bucket, link_key(src, dst), group
                )
                for (bucket, src, dst), group in sorted(stats.items())
            ]
        # Region level: merge link accumulators sharing a source.
        merged: dict[tuple[float, str], _LinkBucketStats] = {}
        capacity_seen: dict[tuple[float, str], set[str]] = {}
        for (bucket, src, dst), group in sorted(stats.items()):
            key = (bucket, src)
            pool = merged.get(key)
            if pool is None:
                pool = merged[key] = _LinkBucketStats(0.0)
                capacity_seen[key] = set()
            pool.rates.extend(group.rates)
            pool.active += group.active
            pool.flaps += group.flaps
            if dst not in capacity_seen[key]:
                capacity_seen[key].add(dst)
                pool.capacity += group.capacity
            for pct in THRESHOLD_PCTS:
                pool.above[pct] += group.above[pct]
                pool.continuous[pct] = max(
                    pool.continuous[pct], group.continuous[pct]
                )
        return [
            self._finish(grain, bucket, src, group)
            for (bucket, src), group in sorted(merged.items())
        ]

    @staticmethod
    def _finish(
        grain: str, bucket: float, group: str, acc: _LinkBucketStats
    ) -> RollupRow:
        rates = np.asarray(acc.rates)
        p50, p95 = np.percentile(rates, (50, 95))
        return RollupRow(
            grain=grain,
            bucket_start=bucket,
            group=group,
            samples=len(acc.rates),
            min_mbps=float(rates.min()),
            mean_mbps=float(rates.mean()),
            p50_mbps=float(p50),
            p95_mbps=float(p95),
            max_mbps=float(rates.max()),
            above_s=dict(acc.above),
            continuous_s=dict(acc.continuous),
            flaps=acc.flaps,
            availability_pct=100.0 * acc.active / len(acc.rates),
            capacity_mbps=acc.capacity,
        )


def merge_link_rollups(rows: Iterable[RollupRow]) -> dict[str, dict[str, float]]:
    """Collapse link rollup rows across buckets into per-link totals.

    The KPI layer's congestion view: for each link, the peak and p95
    rates over the whole run, cumulative seconds above each threshold,
    the longest continuous stretch, total flaps, and sample-weighted
    availability.
    """
    out: dict[str, dict[str, float]] = {}
    for row in rows:
        link = out.setdefault(
            row.group,
            {
                "samples": 0.0,
                "p95_mbps": 0.0,
                "max_mbps": 0.0,
                "flaps": 0.0,
                "capacity_mbps": row.capacity_mbps,
                "availability_weighted": 0.0,
                **{f"above_{pct}_s": 0.0 for pct in THRESHOLD_PCTS},
                **{
                    f"above_{pct}_continuous_s": 0.0
                    for pct in THRESHOLD_PCTS
                },
            },
        )
        link["samples"] += row.samples
        link["p95_mbps"] = max(link["p95_mbps"], row.p95_mbps)
        link["max_mbps"] = max(link["max_mbps"], row.max_mbps)
        link["flaps"] += row.flaps
        link["availability_weighted"] += row.availability_pct * row.samples
        for pct in THRESHOLD_PCTS:
            link[f"above_{pct}_s"] += row.above_s.get(pct, 0.0)
            link[f"above_{pct}_continuous_s"] = max(
                link[f"above_{pct}_continuous_s"],
                row.continuous_s.get(pct, 0.0),
            )
    for link in out.values():
        samples = link.pop("samples")
        weighted = link.pop("availability_weighted")
        link["availability_pct"] = weighted / samples if samples else 0.0
        link["samples"] = samples
    return out
