"""The observability hub: one object wiring warehouse, trace, metrics.

:class:`ObservabilityHub` is what a
:class:`~repro.runtime.service.PipelineService` constructs (when
``ServiceConfig.observability`` is on — the default) at the end of
``start()``.  It owns the run's
:class:`~repro.runtime.observability.warehouse.MetricsLog` and
:class:`~repro.runtime.observability.trace.EventTrace`, and threads
lightweight callbacks through every decision-making component:

* the :class:`~repro.runtime.scheduler.JobScheduler`'s ``on_event``
  (submit / admit / finish / preempt),
* the :class:`~repro.runtime.drift.DriftDetector`'s ``on_fire``,
* the :class:`~repro.runtime.control.governor.BandwidthGovernor`'s
  ``on_cap`` and the
  :class:`~repro.runtime.control.autoscaler.ConcurrencyAutoscaler`'s
  ``on_scale`` (when the control plane exists),
* the gauger's :class:`~repro.pipeline.stages.GaugeLedger` ``on_gauge``.

Every hook is observation-only — the hub records and counts, never
steers — so enabling observability cannot change a run's numbers.

:meth:`render_prometheus` turns the live state into Prometheus text
(the families in :data:`REQUIRED_METRIC_FAMILIES` are always present),
and :meth:`serve_metrics` exposes it over HTTP for ``wanify serve
--metrics-port``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.runtime.observability.prometheus import (
    MetricsEndpoint,
    MetricsRegistry,
)
from repro.runtime.observability.trace import EventTrace
from repro.runtime.observability.warehouse import MetricsLog
from repro.runtime.scheduling.slo import tenant_of

if TYPE_CHECKING:
    from repro.pipeline.stages import GaugeEvent
    from repro.runtime.drift import ReplanEvent
    from repro.runtime.scheduler import JobTicket
    from repro.runtime.service import PipelineService

#: Metric families :meth:`ObservabilityHub.render_prometheus` always
#: emits — the contract the CI smoke scrape asserts.
REQUIRED_METRIC_FAMILIES: tuple[str, ...] = (
    "wanify_jobs_submitted_total",
    "wanify_jobs_admitted_total",
    "wanify_jobs_completed_total",
    "wanify_jobs_preempted_total",
    "wanify_replans_total",
    "wanify_drift_events_total",
    "wanify_probe_transfers_total",
    "wanify_probe_cost_usd_total",
    "wanify_telemetry_samples_total",
    "wanify_trace_events_total",
    "wanify_metrics_scrapes_total",
    "wanify_jobs_running",
    "wanify_jobs_queued",
    "wanify_max_concurrent",
    "wanify_governor_caps_held",
    "wanify_metrics_log_entries",
    "wanify_policy_switches_total",
    "wanify_tuner_arm_pulls",
    "wanify_scheduler_shards",
    "wanify_work_steals_total",
    "wanify_shard_workers",
    "wanify_parallel_wall_seconds",
    "wanify_kernel_fallback",
    "wanify_link_estimate_mbps",
    "wanify_recalibrations_total",
    "wanify_recal_capacity_mbps",
    "wanify_job_latency_seconds",
)

#: Scheduler event kind → hub counter key.
_JOB_COUNTER = {
    "submit": "submitted",
    "admit": "admitted",
    "finish": "completed",
    "preempt": "preempted",
    "steal": "stolen",
}


class ObservabilityHub:
    """Owns the warehouse + trace and instruments one service."""

    def __init__(self, service: "PipelineService") -> None:
        self.service = service
        topology = service.cluster.topology

        def capacity_of(src: str, dst: str) -> float:
            # A directed link can carry at most what the source can
            # send and the destination can absorb.
            return min(
                topology.dc(src).egress_cap_mbps,
                topology.dc(dst).ingress_cap_mbps,
            )

        self.log = MetricsLog(capacity_of)
        service.telemetry.attach(self.log.record)
        self.trace = EventTrace(capacity=service.config.trace_capacity)
        self.counters: dict[str, int] = {
            "submitted": 0,
            "admitted": 0,
            "completed": 0,
            "preempted": 0,
            "stolen": 0,
            "drift": 0,
            "gauges": 0,
        }
        #: Completed-job JCTs (seconds) — the latency histogram's feed.
        self.jct_samples: list[float] = []
        self.metrics_scrapes = 0
        self.endpoint: Optional[MetricsEndpoint] = None

        service.scheduler.on_event = self._job_event
        if service.detector is not None:
            service.detector.on_fire = self._drift_fired
        control = service.control
        if control is not None:
            if control.governor is not None:
                control.governor.on_cap = self._cap_moved
            if control.autoscaler is not None:
                control.autoscaler.on_scale = self._scaled
            if control.switcher is not None:
                control.switcher.on_switch = self._policy_switched
        gauger = service.pipeline.gauger
        if hasattr(gauger, "log_gauge"):
            gauger.on_gauge = self._gauged

    # -- hook handlers (observation only) -------------------------------

    @property
    def _now(self) -> float:
        return self.service.sim.now

    def _job_event(self, kind: str, ticket: "JobTicket") -> None:
        counter = _JOB_COUNTER.get(kind)
        if counter is not None:
            self.counters[counter] += 1
        detail: dict[str, object] = {"tenant": tenant_of(ticket)}
        if kind == "admit":
            detail["wait_s"] = ticket.waited_s
        elif kind == "finish":
            detail["jct_s"] = ticket.jct_s
            self.jct_samples.append(ticket.jct_s)
        elif kind == "preempt":
            detail["preemptions"] = ticket.preemptions
        self.trace.record(self._now, kind, ticket.job.name, **detail)

    def _drift_fired(self, event: "ReplanEvent") -> None:
        self.counters["drift"] += 1
        self.trace.record(
            event.time,
            "drift",
            f"{event.src}→{event.dst}",
            rel_error=event.rel_error,
            observed_mbps=event.observed_mbps,
            predicted_mbps=event.predicted_mbps,
        )

    def replan_recorded(self, event: "ReplanEvent") -> None:
        """The service executed a re-plan (called with the charged event)."""
        self.trace.record(
            event.time,
            "replan",
            f"{event.src}→{event.dst}",
            probe_transfers=event.probe_transfers,
            probe_cost_usd=event.probe_cost_usd,
        )

    def recalibration_recorded(self, matrix) -> None:
        """The recalibrator published a matrix (called per tick)."""
        recalibrator = self.service.recalibrator
        self.trace.record(
            self._now,
            "recalibrate",
            "capacity",
            links_adjusted=(
                recalibrator.last_adjusted if recalibrator is not None else 0
            ),
            min_bw_mbps=matrix.min_bw(),
        )

    def _cap_moved(
        self, action: str, pair: tuple[str, str], cap_mbps: float
    ) -> None:
        kind = "cap-apply" if action == "apply" else "cap-release"
        detail = {"cap_mbps": cap_mbps} if action == "apply" else {}
        self.trace.record(self._now, kind, f"{pair[0]}→{pair[1]}", **detail)

    def _scaled(self, direction: str, bound: int) -> None:
        self.trace.record(
            self._now, "scale", direction, max_concurrent=bound
        )

    def _policy_switched(self, event) -> None:
        self.trace.record(
            event.time,
            "policy-switch",
            event.arm.name,
            action=event.action,
            previous=event.previous.name,
            scheduler=event.arm.scheduler,
            preemption=event.arm.preemption,
            regime=event.regime,
        )

    def _gauged(self, event: "GaugeEvent") -> None:
        self.counters["gauges"] += 1
        self.trace.record(
            event.time,
            "gauge",
            event.mode,
            transfers=event.transfers,
            dollars=event.dollars,
        )

    # -- summary surface ------------------------------------------------

    @property
    def rollup_rows(self) -> int:
        """Link-level rollup rows across every grain (computed lazily)."""
        return self.log.rollup_rows()

    @property
    def events_traced(self) -> int:
        """Events ever recorded (including any evicted from the ring)."""
        return self.trace.recorded

    # -- Prometheus exposition ------------------------------------------

    def render_prometheus(self) -> str:
        """The service's live state in Prometheus text format.

        A fresh registry is built per call, so the text always reflects
        the moment of the scrape; totals accumulated elsewhere (probe
        ledger, telemetry store) are read off their owners here rather
        than double-counted through hooks.
        """
        service = self.service
        scheduler = service.scheduler
        registry = MetricsRegistry()

        def counter(name: str, help_text: str, value: float) -> None:
            registry.counter(name, help_text).set_total(value)

        counter(
            "wanify_jobs_submitted_total",
            "Jobs submitted to the scheduler.",
            self.counters["submitted"],
        )
        counter(
            "wanify_jobs_admitted_total",
            "Jobs admitted to a run slot (re-admissions included).",
            self.counters["admitted"],
        )
        counter(
            "wanify_jobs_completed_total",
            "Jobs run to completion.",
            self.counters["completed"],
        )
        counter(
            "wanify_jobs_preempted_total",
            "Preemptions executed by the control plane.",
            self.counters["preempted"],
        )
        counter(
            "wanify_replans_total",
            "Drift-triggered re-plans executed.",
            len(service.replans),
        )
        counter(
            "wanify_drift_events_total",
            "Drift events fired by the detector.",
            self.counters["drift"],
        )
        gauger = service.pipeline.gauger
        counter(
            "wanify_probe_transfers_total",
            "Probe flows launched by the gauger.",
            float(getattr(gauger, "probe_transfers", 0)),
        )
        counter(
            "wanify_probe_cost_usd_total",
            "Probe dollars spent by the gauger.",
            float(getattr(gauger, "probe_cost_usd", 0.0)),
        )
        counter(
            "wanify_telemetry_samples_total",
            "Monitor ticks ingested by the telemetry store.",
            service.telemetry.total_samples,
        )
        counter(
            "wanify_trace_events_total",
            "Events recorded into the trace ring.",
            self.trace.recorded,
        )
        counter(
            "wanify_metrics_scrapes_total",
            "Scrapes served by the /metrics endpoint.",
            self.metrics_scrapes,
        )

        registry.gauge(
            "wanify_jobs_running", "Jobs currently in flight."
        ).set(len(scheduler.running))
        registry.gauge(
            "wanify_jobs_queued", "Jobs waiting for admission."
        ).set(len(scheduler.queued))
        registry.gauge(
            "wanify_max_concurrent",
            "Current concurrency bound (autoscaled when enabled).",
        ).set(scheduler.max_concurrent)
        governor = (
            service.control.governor if service.control is not None else None
        )
        registry.gauge(
            "wanify_governor_caps_held",
            "Bandwidth-governor caps currently in force.",
        ).set(len(governor.held) if governor is not None else 0)
        registry.gauge(
            "wanify_metrics_log_entries",
            "Samples in the append-only metrics log.",
        ).set(self.log.size)
        switcher = (
            service.control.switcher if service.control is not None else None
        )
        counter(
            "wanify_policy_switches_total",
            "Bandit-driven policy switches applied by the tuner.",
            switcher.switches if switcher is not None else 0,
        )
        pulls = registry.gauge(
            "wanify_tuner_arm_pulls",
            "Bandit pulls per tuner arm (label: arm).",
        )
        if switcher is not None:
            for arm_name, stats in switcher.arm_stats().items():
                pulls.set(stats["pulls"], arm=arm_name)

        registry.gauge(
            "wanify_scheduler_shards",
            "Scheduler shards serving the run (1 = single queue).",
        ).set(getattr(scheduler, "shard_count", 1))
        counter(
            "wanify_work_steals_total",
            "Queued tickets moved between shards by work-stealing.",
            getattr(scheduler, "steal_count", 0),
        )
        registry.gauge(
            "wanify_shard_workers",
            "Worker processes the last parallel drain used (0 = in-process).",
        ).set(getattr(service, "parallel_workers", 0))
        registry.gauge(
            "wanify_parallel_wall_seconds",
            "Wall-clock seconds the last parallel drain took.",
        ).set(getattr(service, "parallel_wall_s", 0.0))
        registry.gauge(
            "wanify_kernel_fallback",
            "1 when kernel='vectorized' degraded to scalar (no numpy).",
        ).set(
            1.0
            if getattr(service.network, "kernel_fallback", False)
            else 0.0
        )
        shard_queue = registry.gauge(
            "wanify_shard_jobs_queued",
            "Queued jobs per scheduler shard (label: shard).",
        )
        for index, shard in enumerate(getattr(scheduler, "shards", [])):
            shard_queue.set(len(shard.queued), shard=str(index))

        estimates = registry.gauge(
            "wanify_link_estimate_mbps",
            "Per-link telemetry estimates (labels: src, dst, stat).",
        )
        for src, dst in service.telemetry.links():
            estimate = service.telemetry.estimate(src, dst)
            estimates.set(estimate.p50, src=src, dst=dst, stat="p50")
            estimates.set(estimate.p95, src=src, dst=dst, stat="p95")
            estimates.set(estimate.ewma, src=src, dst=dst, stat="ewma")

        recalibrator = service.recalibrator
        counter(
            "wanify_recalibrations_total",
            "Capacity-recalibration ticks executed.",
            recalibrator.ticks if recalibrator is not None else 0,
        )
        recal_capacity = registry.gauge(
            "wanify_recal_capacity_mbps",
            "Recalibrated per-link capacity (labels: src, dst).",
        )
        if recalibrator is not None:
            current = recalibrator.current
            for src, dst in current.pairs():
                recal_capacity.set(current.get(src, dst), src=src, dst=dst)

        latency = registry.histogram(
            "wanify_job_latency_seconds",
            "Job completion time from submission (JCT).",
        )
        for jct in self.jct_samples:
            latency.observe(jct)
        return registry.render()

    def serve_metrics(self, port: int = 0) -> MetricsEndpoint:
        """Start the /metrics endpoint (``port=0`` binds ephemeral)."""
        if self.endpoint is not None:
            raise RuntimeError("metrics endpoint already serving")
        self.endpoint = MetricsEndpoint(
            self.render_prometheus, port=port, on_scrape=self._scraped
        )
        return self.endpoint

    def _scraped(self) -> None:
        self.metrics_scrapes += 1

    def close(self) -> None:
        """Stop the metrics endpoint if one is serving."""
        if self.endpoint is not None:
            self.endpoint.close()
            self.endpoint = None
