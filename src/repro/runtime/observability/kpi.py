"""Operator KPI reports: recorded runs → congestion/SLO/probe tables.

The warehouse holds rollups and the trace holds events; an operator
wants *answers*: which links are congested, which tenants are getting
their SLOs, what failover (drift → re-plan) actually looked like, and
what continuous gauging costs.  This module closes that gap in two
steps, mirroring the sweep runner's JSON + markdown report shape:

1. :func:`write_run` serializes a finished (or mid-flight) service —
   summary, per-job outcomes, every rollup, the event trace — into one
   JSON *recorded-run* file (``wanify serve --record run.json``);
2. :class:`KpiReport` (via ``wanify report --run run.json``) turns a
   recorded run into the four operator tables, rendered as markdown
   and JSON, with ``--trace`` reconstructing the event timeline.

Keeping the two steps separate means reports are reproducible after
the fact: the recorded run is the artifact, and re-running ``report``
against it is free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.runtime.observability.trace import TraceEvent, render_timeline
from repro.runtime.observability.warehouse import (
    GRAINS,
    THRESHOLD_PCTS,
    RollupRow,
    merge_link_rollups,
)
from repro.runtime.scheduling.slo import deadline_met, tenant_of

if TYPE_CHECKING:
    from repro.runtime.service import PipelineService

#: Version stamp written into recorded-run files.
RUN_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------


def snapshot_run(service: "PipelineService") -> dict[str, Any]:
    """Everything a KPI report needs, as one JSON-ready mapping.

    Requires the service's observability hub (``observability=True``,
    the default) — without it there is no warehouse to report over.
    """
    hub = service.hub
    if hub is None:
        raise ValueError(
            "service has no observability hub "
            "(built with observability=False)"
        )
    summary = service.summary()
    jobs = []
    for ticket in service.scheduler.completed:
        met = deadline_met(ticket)
        jobs.append(
            {
                "name": ticket.job.name,
                "tenant": tenant_of(ticket),
                "submitted_s": ticket.submitted_s,
                "wait_s": ticket.wait_s,
                "jct_s": ticket.jct_s,
                "deadline_s": ticket.deadline_s,
                "met": met,
                "preemptions": ticket.preemptions,
            }
        )
    return {
        "format_version": RUN_FORMAT_VERSION,
        "meta": {
            "regions": list(service.config.regions),
            "scenario": service.config.scenario,
            "variant": service.config.variant,
            "scheduler": summary.scheduler,
            "seed": service.config.seed,
            "sim_time_s": service.sim.now,
        },
        "summary": summary.to_row(),
        "jobs": jobs,
        "link_rollups": [
            row.to_json()
            for grain in GRAINS
            for row in hub.log.rollup(grain, by="link")
        ],
        "region_rollups": [
            row.to_json()
            for grain in GRAINS
            for row in hub.log.rollup(grain, by="region")
        ],
        "events": [event.to_json() for event in hub.trace.events()],
        "events_dropped": hub.trace.dropped,
    }


def write_run(
    service: "PipelineService", path: Union[str, Path]
) -> Path:
    """Record a service run to ``path`` (JSON); returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot_run(service), indent=2) + "\n")
    return path


@dataclass
class RecordedRun:
    """A recorded run loaded back from disk."""

    meta: dict[str, Any]
    summary: dict[str, float]
    jobs: list[dict[str, Any]]
    link_rollups: list[RollupRow]
    region_rollups: list[RollupRow]
    events: list[TraceEvent]
    events_dropped: int = 0

    def link_rollups_at(self, grain: str) -> list[RollupRow]:
        """The link-level rollup rows of one grain."""
        return [row for row in self.link_rollups if row.grain == grain]

    def timeline(self) -> str:
        """The printable event timeline of this run."""
        return render_timeline(self.events)


def load_run(path: Union[str, Path]) -> RecordedRun:
    """Parse a recorded-run file written by :func:`write_run`."""
    data = json.loads(Path(path).read_text())
    version = data.get("format_version")
    if version != RUN_FORMAT_VERSION:
        raise ValueError(
            f"unsupported recorded-run format {version!r} in {path} "
            f"(expected {RUN_FORMAT_VERSION})"
        )
    return RecordedRun(
        meta=dict(data.get("meta", {})),
        summary=dict(data.get("summary", {})),
        jobs=list(data.get("jobs", [])),
        link_rollups=[
            RollupRow.from_json(row) for row in data.get("link_rollups", [])
        ],
        region_rollups=[
            RollupRow.from_json(row)
            for row in data.get("region_rollups", [])
        ],
        events=[
            TraceEvent.from_json(event) for event in data.get("events", [])
        ],
        events_dropped=int(data.get("events_dropped", 0)),
    )


# ----------------------------------------------------------------------
# The KPI layer
# ----------------------------------------------------------------------


@dataclass
class KpiReport:
    """The four operator tables over one recorded run.

    ``congestion`` ranks links by cumulative time above 80 % of
    capacity; ``tenants`` aggregates SLO attainment per tenant;
    ``failover`` summarizes the drift → re-plan loop's quality;
    ``probe_cost`` accounts what continuous gauging cost, per re-plan.
    """

    meta: dict[str, Any] = field(default_factory=dict)
    congestion: list[dict[str, Any]] = field(default_factory=list)
    tenants: list[dict[str, Any]] = field(default_factory=list)
    failover: dict[str, float] = field(default_factory=dict)
    probe_cost: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_run(cls, run: RecordedRun) -> "KpiReport":
        """Compute every KPI table from a recorded run."""
        summary = run.summary
        merged = merge_link_rollups(run.link_rollups_at("1m"))
        congestion = []
        for link in sorted(
            merged,
            key=lambda name: (-merged[name]["above_80_s"], name),
        ):
            totals = merged[link]
            # Hot-spots only: a link that never carried traffic has
            # nothing to report (56 idle rows would drown the table).
            if totals["max_mbps"] <= 0.0:
                continue
            congestion.append(
                {
                    "link": link,
                    "capacity_mbps": totals["capacity_mbps"],
                    "p95_mbps": totals["p95_mbps"],
                    "max_mbps": totals["max_mbps"],
                    **{
                        f"above_{pct}_s": totals[f"above_{pct}_s"]
                        for pct in THRESHOLD_PCTS
                    },
                    "above_80_continuous_s": totals[
                        "above_80_continuous_s"
                    ],
                    "flaps": totals["flaps"],
                    "availability_pct": totals["availability_pct"],
                }
            )

        by_tenant: dict[str, list[dict[str, Any]]] = {}
        for job in run.jobs:
            by_tenant.setdefault(str(job["tenant"]), []).append(job)
        tenants = []
        for tenant in sorted(by_tenant):
            jobs = by_tenant[tenant]
            attained = sum(1 for j in jobs if j["met"] is True)
            missed = sum(1 for j in jobs if j["met"] is False)
            promised = attained + missed
            tenants.append(
                {
                    "tenant": tenant,
                    "jobs": len(jobs),
                    "slo_attained": attained,
                    "slo_missed": missed,
                    # Nothing promised → nothing broken, same convention
                    # as the scheduler's aggregate attainment.
                    "slo_attainment": (
                        attained / promised if promised else 1.0
                    ),
                    "mean_jct_s": (
                        sum(j["jct_s"] for j in jobs) / len(jobs)
                    ),
                    "mean_wait_s": (
                        sum(j["wait_s"] for j in jobs) / len(jobs)
                    ),
                    "preemptions": sum(j["preemptions"] for j in jobs),
                }
            )

        replans = summary.get("replans", 0.0)
        flaps_total = sum(row["flaps"] for row in congestion)
        availability = (
            min(row["availability_pct"] for row in congestion)
            if congestion
            else 100.0
        )
        failover = {
            "drift_events": float(
                sum(1 for e in run.events if e.kind == "drift")
            ),
            "replans": replans,
            "preemptions": summary.get("preemptions", 0.0),
            "migrations": summary.get("migrations", 0.0),
            "flaps_total": float(flaps_total),
            "min_link_availability_pct": availability,
            "replan_cost_usd": summary.get("replan_cost_usd", 0.0),
        }

        probe_cost = {
            "probe_transfers": summary.get("probe_transfers", 0.0),
            "probe_gb": summary.get("probe_gb", 0.0),
            "probe_cost_usd": summary.get("probe_cost_usd", 0.0),
            "replans": replans,
            "replan_cost_usd": summary.get("replan_cost_usd", 0.0),
            "cost_per_replan_usd": (
                summary.get("replan_cost_usd", 0.0) / replans
                if replans
                else 0.0
            ),
            "replan_cost_share": (
                summary.get("replan_cost_usd", 0.0)
                / summary.get("probe_cost_usd", 0.0)
                if summary.get("probe_cost_usd", 0.0)
                else 0.0
            ),
        }
        return cls(
            meta=dict(run.meta),
            congestion=congestion,
            tenants=tenants,
            failover=failover,
            probe_cost=probe_cost,
        )

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation of every table."""
        return {
            "meta": self.meta,
            "congestion": self.congestion,
            "tenants": self.tenants,
            "failover": self.failover,
            "probe_cost": self.probe_cost,
        }

    def render_markdown(self) -> str:
        """All four tables as GitHub-flavored markdown."""
        meta = self.meta
        header = (
            f"# KPI report — scenario {meta.get('scenario')!r}, "
            f"variant {meta.get('variant')!r}, "
            f"scheduler {meta.get('scheduler')!r} "
            f"(seed {meta.get('seed')})"
        )
        parts = [header, ""]
        parts.append("## Congestion hot-spots (links by time ≥ 80% capacity)")
        parts.append("")
        parts.append(
            _table(
                (
                    "link",
                    "capacity_mbps",
                    "p95_mbps",
                    "above_70_s",
                    "above_80_s",
                    "above_90_s",
                    "above_80_continuous_s",
                    "flaps",
                    "availability_pct",
                ),
                self.congestion,
            )
        )
        parts.append("## SLO attainment by tenant")
        parts.append("")
        parts.append(
            _table(
                (
                    "tenant",
                    "jobs",
                    "slo_attained",
                    "slo_missed",
                    "slo_attainment",
                    "mean_jct_s",
                    "mean_wait_s",
                    "preemptions",
                ),
                self.tenants,
            )
        )
        parts.append("## Failover quality")
        parts.append("")
        parts.append(_table(tuple(self.failover), [self.failover]))
        parts.append("## Probe cost per re-plan")
        parts.append("")
        parts.append(_table(tuple(self.probe_cost), [self.probe_cost]))
        return "\n".join(parts)


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:.2f}" if abs(value) < 1000 else f"{value:.0f}"
    return str(value)


def _table(columns: tuple[str, ...], rows: list[dict[str, Any]]) -> str:
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    if not rows:
        lines.append(
            "| " + " | ".join("—" for _ in columns) + " |"
        )
    for row in rows:
        lines.append(
            "| "
            + " | ".join(_format(row.get(col, "")) for col in columns)
            + " |"
        )
    lines.append("")
    return "\n".join(lines)


def write_kpi_report(
    report: KpiReport,
    output: Union[str, Path],
    timeline: Optional[str] = None,
) -> tuple[Path, Path]:
    """Write ``kpi.json`` and ``kpi.md`` under ``output``.

    ``timeline`` (when given) is appended to the markdown as a fenced
    block — the ``wanify report --trace`` artifact.
    """
    directory = Path(output)
    directory.mkdir(parents=True, exist_ok=True)
    json_path = directory / "kpi.json"
    md_path = directory / "kpi.md"
    json_path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    markdown = report.render_markdown()
    if timeline is not None:
        markdown += "\n## Event timeline\n\n```\n" + timeline + "```\n"
    md_path.write_text(markdown)
    return json_path, md_path
