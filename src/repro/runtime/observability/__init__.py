"""Observability for the runtime service: warehouse, trace, KPIs, metrics.

Four cooperating layers, each usable alone:

* :mod:`~repro.runtime.observability.warehouse` — the append-only
  :class:`MetricsLog` and its time-grain :class:`RollupRow` aggregates;
* :mod:`~repro.runtime.observability.trace` — the ring-buffered
  :class:`EventTrace` of control-loop decisions;
* :mod:`~repro.runtime.observability.prometheus` — dependency-free
  Prometheus text exposition (registry, parser, HTTP endpoint);
* :mod:`~repro.runtime.observability.kpi` — recorded-run files and the
  operator :class:`KpiReport` (congestion, tenant SLOs, failover,
  probe cost);

tied together by :class:`~repro.runtime.observability.hub
.ObservabilityHub`, which a :class:`~repro.runtime.service
.PipelineService` wires through every component when
``ServiceConfig.observability`` is on (the default).
"""

from repro.runtime.observability.hub import (
    REQUIRED_METRIC_FAMILIES,
    ObservabilityHub,
)
from repro.runtime.observability.kpi import (
    KpiReport,
    RecordedRun,
    load_run,
    snapshot_run,
    write_kpi_report,
    write_run,
)
from repro.runtime.observability.prometheus import (
    Counter,
    Gauge,
    Histogram,
    MetricsEndpoint,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.runtime.observability.trace import (
    EVENT_KINDS,
    EventTrace,
    TraceEvent,
    render_timeline,
)
from repro.runtime.observability.warehouse import (
    GRAINS,
    THRESHOLD_PCTS,
    MetricsLog,
    RollupRow,
    link_key,
    merge_link_rollups,
)

__all__ = [
    "EVENT_KINDS",
    "GRAINS",
    "REQUIRED_METRIC_FAMILIES",
    "THRESHOLD_PCTS",
    "Counter",
    "EventTrace",
    "Gauge",
    "Histogram",
    "KpiReport",
    "MetricsEndpoint",
    "MetricsLog",
    "MetricsRegistry",
    "ObservabilityHub",
    "RecordedRun",
    "RollupRow",
    "TraceEvent",
    "link_key",
    "load_run",
    "merge_link_rollups",
    "parse_prometheus_text",
    "render_timeline",
    "snapshot_run",
    "write_kpi_report",
    "write_run",
]
