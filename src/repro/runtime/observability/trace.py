"""Structured event tracing: a ring buffer of control-loop decisions.

Aggregates say *how much*; a timeline says *what happened*.  The
:class:`EventTrace` is a bounded ring of :class:`TraceEvent` records —
admissions, preemptions, re-plans, drift firings, governor cap moves,
autoscaler steps — each with its simulated timestamp and a small detail
mapping, so ``wanify report --trace`` can reconstruct the causal story
of any recorded run ("the flash crowd hit, drift fired at t=612, the
re-plan cost $0.003, the governor capped two pairs, job tpcds-4 still
missed by 40 s").

The ring is deliberately bounded (``ServiceConfig.trace_capacity``):
tracing must never become the memory leak it exists to diagnose.  The
``recorded`` counter keeps counting past evictions, so
``dropped = recorded - len(events())`` is always honest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

#: The event kinds the built-in instrumentation emits.  User code may
#: record others; these are the ones the KPI layer knows how to read.
EVENT_KINDS: tuple[str, ...] = (
    "submit",
    "admit",
    "finish",
    "preempt",
    "drift",
    "replan",
    "cap-apply",
    "cap-release",
    "scale",
    "gauge",
)


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence: when, what, to whom, with detail."""

    time: float
    kind: str
    subject: str = ""
    detail: Mapping[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """One timeline line: ``t=  612.0s drift      eu→ap err=0.52``."""
        extras = " ".join(
            f"{key}={self._fmt(value)}"
            for key, value in sorted(self.detail.items())
        )
        line = f"t={self.time:9.1f}s {self.kind:<11} {self.subject}"
        return f"{line} {extras}".rstrip()

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3g}"
        return str(value)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready representation for recorded-run files."""
        return {
            "time": self.time,
            "kind": self.kind,
            "subject": self.subject,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_json`."""
        return cls(
            time=float(data["time"]),
            kind=str(data["kind"]),
            subject=str(data.get("subject", "")),
            detail=dict(data.get("detail", {})),
        )


class EventTrace:
    """Bounded ring buffer of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be ≥ 1: {capacity}")
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        #: Events ever recorded (keeps counting after ring eviction).
        self.recorded = 0

    def record(
        self, time: float, kind: str, subject: str = "", **detail: Any
    ) -> TraceEvent:
        """Append one event; returns it (handy for tests)."""
        event = TraceEvent(time=time, kind=kind, subject=subject, detail=detail)
        self._ring.append(event)
        self.recorded += 1
        return event

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound so far."""
        return self.recorded - len(self._ring)

    def events(self, kind: Optional[str] = None) -> list[TraceEvent]:
        """Retained events in record order, optionally one kind only."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def timeline(self) -> list[str]:
        """Human-readable lines for every retained event, in order."""
        return [event.describe() for event in self._ring]


def render_timeline(events: Iterable[TraceEvent]) -> str:
    """A printable timeline block for a sequence of events."""
    lines = [event.describe() for event in events]
    if not lines:
        return "(no events traced)\n"
    return "\n".join(lines) + "\n"
