"""Shared bandwidth telemetry: bounded series + capacity estimators.

Every DC's :class:`~repro.net.monitor.WanMonitor` publishes its samples
here, making the store the cluster-wide source of truth about observed
WAN rates (each agent previously kept a private history nobody else
could read).  On top of the raw series the store offers the estimators
practical WAN tooling uses for circuit-capacity tracking: sliding-window
percentiles (p50 for "typical achieved rate", p95 for "capacity when the
link was pushed") and an EWMA for a smoothed instantaneous view.

Samples where a link was idle (zero rate) are kept in the series — the
experiment harness reads utilization off them — but are excluded from
capacity percentiles by default: an idle link says nothing about what
it could carry.

The zero samples are *not* dropped, though.  During a full link outage
the monitors keep publishing zero rates, and those ticks are the only
evidence the outage exists: every estimator here accepts
``active_only=False`` to count them toward the percentile window, which
is the view outage-aware consumers (the
:class:`~repro.runtime.recalibrator.CapacityRecalibrator`) read.  With
zeros counted, a window dominated by outage ticks drags the percentile
toward zero instead of replaying the stale pre-outage capacity forever.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.net.matrix import BandwidthMatrix

#: Default sliding window for percentile estimators (seconds).  Matches
#: the fluctuation grid (~5 min): capacity estimates should span one
#: "weather bucket", not average across several.
DEFAULT_WINDOW_S = 300.0

#: Default per-link sample bound.
DEFAULT_MAXLEN = 512

#: Default EWMA smoothing factor.
DEFAULT_EWMA_ALPHA = 0.25


@dataclass(frozen=True)
class LinkEstimate:
    """Summary of one directed link's recent telemetry.

    ``p50``/``p95`` are sliding-window percentiles over *active*
    samples; ``ewma`` smooths all samples (idle included); ``samples``
    counts active samples inside the window; ``last_time`` is the most
    recent sample instant (idle or not), ``nan`` if the link was never
    sampled.
    """

    p50: float
    p95: float
    ewma: float
    samples: int
    last_time: float

    @classmethod
    def empty(cls) -> "LinkEstimate":
        """The sentinel estimate for a never-sampled link.

        All-zero statistics with ``last_time`` ``nan`` — callers that
        need to distinguish "no data" from "measured zero" check
        :attr:`is_empty` instead of comparing magnitudes.
        """
        return cls(
            p50=0.0, p95=0.0, ewma=0.0, samples=0, last_time=float("nan")
        )

    @property
    def is_empty(self) -> bool:
        """No *active* samples backed this estimate.

        True both for a never-sampled link (``last_time`` is ``nan``)
        and for one whose window held only idle samples — in either
        case the percentiles say nothing about capacity.
        """
        return self.samples == 0


class LinkSeries:
    """Bounded time series of (time, rate) samples for one link."""

    def __init__(
        self,
        maxlen: int = DEFAULT_MAXLEN,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
    ) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be ≥ 1: {maxlen}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1]: {ewma_alpha}")
        self.samples: deque[tuple[float, float]] = deque(maxlen=maxlen)
        self.ewma_alpha = ewma_alpha
        self._ewma: float | None = None

    def add(self, time: float, rate_mbps: float) -> None:
        """Record one sample; updates the EWMA."""
        self.samples.append((time, rate_mbps))
        if self._ewma is None:
            self._ewma = rate_mbps
        else:
            a = self.ewma_alpha
            self._ewma = a * rate_mbps + (1.0 - a) * self._ewma

    @property
    def ewma(self) -> float:
        """Smoothed rate (0 before the first sample)."""
        return self._ewma if self._ewma is not None else 0.0

    @property
    def last_time(self) -> float:
        """Time of the newest sample (``nan`` when empty)."""
        return self.samples[-1][0] if self.samples else float("nan")

    def window(self, window_s: float | None = None) -> list[float]:
        """Rates inside the trailing window (all retained if ``None``)."""
        if not self.samples:
            return []
        if window_s is None:
            return [rate for _, rate in self.samples]
        cutoff = self.samples[-1][0] - window_s
        return [rate for t, rate in self.samples if t >= cutoff]

    def percentile(
        self,
        p: float,
        window_s: float | None = None,
        active_only: bool = True,
    ) -> float:
        """Sliding-window percentile of recent rates.

        With ``active_only`` (the default), idle samples are dropped
        first — the estimator answers "what does this link carry when
        it carries something".  Returns 0 for an empty window; a single
        sample is its own percentile for every ``p``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {p}")
        rates = self.window(window_s)
        if active_only:
            rates = [r for r in rates if r > 0.0]
        if not rates:
            return 0.0
        return float(np.percentile(rates, p))

    def estimate(self, window_s: float | None = None) -> LinkEstimate:
        """The full estimator bundle for this link."""
        rates = self.window(window_s)
        active = [r for r in rates if r > 0.0]
        return LinkEstimate(
            p50=float(np.percentile(active, 50)) if active else 0.0,
            p95=float(np.percentile(active, 95)) if active else 0.0,
            ewma=self.ewma,
            samples=len(active),
            last_time=self.last_time,
        )


class TelemetryStore:
    """Cluster-wide store of per-link bandwidth telemetry.

    ``record`` has the signature monitors publish with
    (``on_sample(dc, time, rates)``), so a store instance can be handed
    directly to :class:`~repro.net.monitor.WanMonitor`.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        maxlen: int = DEFAULT_MAXLEN,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
    ) -> None:
        self.window_s = window_s
        self.maxlen = maxlen
        self.ewma_alpha = ewma_alpha
        self._series: dict[tuple[str, str], LinkSeries] = {}
        self.total_samples = 0
        self._sinks: list[Callable[[str, float, dict[str, float]], None]] = []

    # -- ingestion ------------------------------------------------------

    def attach(
        self, sink: Callable[[str, float, dict[str, float]], None]
    ) -> None:
        """Forward every future :meth:`record` call to ``sink`` too.

        ``sink`` has the same ``(dc, time, rates)`` signature monitors
        publish with — this is how the observability warehouse's
        :class:`~repro.runtime.observability.warehouse.MetricsLog`
        receives a copy of every sample without the monitors knowing
        it exists.
        """
        self._sinks.append(sink)

    def record(self, dc: str, time: float, rates_mbps: dict[str, float]) -> None:
        """Ingest one monitor tick: ``dc``'s outgoing rates at ``time``."""
        for dst, rate in rates_mbps.items():
            self.series(dc, dst).add(time, rate)
        self.total_samples += 1
        for sink in self._sinks:
            sink(dc, time, rates_mbps)

    # -- access ---------------------------------------------------------

    def series(self, src: str, dst: str) -> LinkSeries:
        """The (auto-created) series for one directed link."""
        key = (src, dst)
        found = self._series.get(key)
        if found is None:
            found = self._series[key] = LinkSeries(
                self.maxlen, self.ewma_alpha
            )
        return found

    def links(self) -> list[tuple[str, str]]:
        """All links that have ever been sampled, sorted."""
        return sorted(self._series)

    def estimate(
        self, src: str, dst: str, window_s: float | None = None
    ) -> LinkEstimate:
        """Estimator bundle for one link (store window unless given).

        A read-only peek: asking about a never-sampled link returns
        the :meth:`LinkEstimate.empty` sentinel *without* creating a
        series (previously this polluted :meth:`links` with phantom
        entries every probe of an unknown pair).
        """
        found = self._series.get((src, dst))
        if found is None:
            return LinkEstimate.empty()
        return found.estimate(self.window_s if window_s is None else window_s)

    def capacity_mbps(
        self,
        src: str,
        dst: str,
        percentile: float = 95.0,
        window_s: float | None = None,
        active_only: bool = True,
    ) -> float:
        """Sliding-window capacity estimate (p95 by default).

        Read-only like :meth:`estimate`: an unsampled link reads 0
        and leaves no phantom series behind.  ``window_s`` overrides
        the store's default trailing window; ``active_only=False``
        counts zero-rate (idle/outage) ticks toward the percentile —
        the honest view when a link may be down rather than idle.
        """
        found = self._series.get((src, dst))
        if found is None:
            return 0.0
        return found.percentile(
            percentile,
            self.window_s if window_s is None else window_s,
            active_only=active_only,
        )

    def estimate_matrix(
        self,
        keys: tuple[str, ...],
        percentile: float = 50.0,
        window_s: float | None = None,
        active_only: bool = True,
    ) -> BandwidthMatrix:
        """Percentile estimates for every ordered pair as a matrix.

        Unsampled or idle pairs come out 0 — callers blend this with a
        predicted matrix rather than consuming it raw.  ``window_s``
        and ``active_only`` pass through to :meth:`capacity_mbps`.
        """
        out = BandwidthMatrix.zeros(keys)
        for src, dst in out.pairs():
            if (src, dst) in self._series:
                out.set(
                    src,
                    dst,
                    self.capacity_mbps(
                        src,
                        dst,
                        percentile,
                        window_s=window_s,
                        active_only=active_only,
                    ),
                )
        return out
