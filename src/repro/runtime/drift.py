"""Drift detection: telemetry vs. the trained prediction.

The offline model predicts stable runtime BWs from a snapshot; the
telemetry store reports what links actually carry.  When the two
diverge beyond a threshold the network has drifted away from the
conditions the current :class:`~repro.core.globalopt.GlobalPlan` was
computed for, and the service should re-gauge and re-plan *mid-job* —
the online counterpart of the paper's submit-time pipeline.

The detector is deliberately conservative:

* only links with enough *fresh, active* samples are considered — an
  idle link tells us nothing, and application-limited trickles would
  otherwise read as collapse;
* it watches for **degradation** (capacity estimate far below the
  prediction).  A lightly-loaded link legitimately exceeds its
  predicted *contended* stable BW, so "improvement" is ambiguous and is
  off by default;
* a cooldown suppresses event storms — one re-plan per drift episode,
  not one per check tick.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.matrix import BandwidthMatrix
from repro.runtime.telemetry import TelemetryStore

#: Default relative-error threshold before a re-plan fires.
DEFAULT_THRESHOLD = 0.45

#: Default minimum active samples in the window per considered link.
DEFAULT_MIN_SAMPLES = 3

#: Default minimum seconds between fired events.
DEFAULT_COOLDOWN_S = 240.0

#: Links predicted below this are ignored — relative error on a
#: near-dead link is noise.
DEFAULT_MIN_PREDICTED_MBPS = 50.0

#: A link's newest sample must be at most this old to count.
DEFAULT_FRESHNESS_S = 60.0


@dataclass(frozen=True)
class ReplanEvent:
    """One fired drift event: the worst offending link and its error.

    Acting on an event is not free — the service re-gauges before it
    re-plans, and an active gauger launches real probe flows.  The
    service charges that cost back onto the event (via :meth:`charged`,
    from the gauger's :class:`~repro.pipeline.stages.GaugeLedger`
    delta), so every recorded re-plan carries what it cost to make.
    """

    time: float
    src: str
    dst: str
    observed_mbps: float
    predicted_mbps: float
    rel_error: float
    #: Probe flows the re-gauge launched (0 until charged, and for
    #: passive gaugers always).
    probe_transfers: int = 0
    #: Probe traffic (GB) the re-gauge moved.
    probe_gb: float = 0.0
    #: Probe dollars the re-gauge cost (Eq. 1-style accounting).
    probe_cost_usd: float = 0.0

    def charged(
        self, transfers: int, gigabytes: float, dollars: float
    ) -> "ReplanEvent":
        """A copy of this event carrying its re-gauge probe cost."""
        return dataclasses.replace(
            self,
            probe_transfers=transfers,
            probe_gb=gigabytes,
            probe_cost_usd=dollars,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        line = (
            f"t={self.time:.0f}s {self.src}→{self.dst}: "
            f"observed {self.observed_mbps:.0f} vs predicted "
            f"{self.predicted_mbps:.0f} Mbps "
            f"({self.rel_error * 100.0:.0f}% drift)"
        )
        if self.probe_transfers or self.probe_cost_usd:
            line += (
                f" [re-gauge: {self.probe_transfers} probes, "
                f"${self.probe_cost_usd:.4f}]"
            )
        return line


@dataclass
class DriftDetector:
    """Compares telemetry capacity estimates against a reference matrix."""

    store: TelemetryStore
    predicted: BandwidthMatrix
    threshold: float = DEFAULT_THRESHOLD
    min_samples: int = DEFAULT_MIN_SAMPLES
    cooldown_s: float = DEFAULT_COOLDOWN_S
    min_predicted_mbps: float = DEFAULT_MIN_PREDICTED_MBPS
    freshness_s: float = DEFAULT_FRESHNESS_S
    #: Detection percentile.  The *median* (not a high percentile):
    #: after a persistent capacity drop, p_k over a sliding window only
    #: flips once (100-k)% of the window post-dates the drop, so p90
    #: would lag by ~0.9 windows while p50 reacts in half a window.
    percentile: float = 50.0
    #: Observability hook: called with each fired event, after it is
    #: appended to :attr:`events` and before the caller sees it.
    on_fire: Optional[Callable[[ReplanEvent], None]] = None
    events: list[ReplanEvent] = field(default_factory=list)
    _last_fire: float = field(default=float("-inf"), init=False)

    def link_error(self, src: str, dst: str, now: float) -> float | None:
        """Relative degradation of one link, ``None`` if not assessable."""
        estimate = self.store.estimate(src, dst)
        if estimate.samples < self.min_samples:
            return None
        if now - estimate.last_time > self.freshness_s:
            return None
        predicted = self.predicted.get(src, dst)
        if predicted < self.min_predicted_mbps:
            return None
        observed = self.store.capacity_mbps(src, dst, self.percentile)
        return max(0.0, (predicted - observed) / predicted)

    def check(self, now: float) -> ReplanEvent | None:
        """Fire a :class:`ReplanEvent` if drift exceeds the threshold.

        Returns the event (also appended to :attr:`events`) or ``None``.
        Respects the cooldown even when drift persists.
        """
        if now - self._last_fire < self.cooldown_s:
            return None
        worst: ReplanEvent | None = None
        for src, dst in self.store.links():
            error = self.link_error(src, dst, now)
            if error is None or error < self.threshold:
                continue
            if worst is None or error > worst.rel_error:
                worst = ReplanEvent(
                    time=now,
                    src=src,
                    dst=dst,
                    observed_mbps=self.store.capacity_mbps(
                        src, dst, self.percentile
                    ),
                    predicted_mbps=self.predicted.get(src, dst),
                    rel_error=error,
                )
        if worst is not None:
            self.events.append(worst)
            self._last_fire = now
            if self.on_fire is not None:
                self.on_fire(worst)
        return worst

    def rebase(self, predicted: BandwidthMatrix, now: float) -> None:
        """Install a fresh reference after a re-gauge/re-plan.

        Also re-arms the cooldown from ``now`` so the next check
        evaluates the *new* plan's accuracy, not the old episode.
        """
        self.predicted = predicted
        self._last_fire = now
