"""Slack estimation: how much latitude a job still has on its deadline.

Every control-plane decision — who to preempt, which pairs to throttle,
when to scale out — reduces to comparing jobs by *slack*: the seconds
between a job's predicted completion and its SLO deadline.  Negative
slack means the job is predicted to miss; large positive slack means it
can afford to donate WAN share.

The estimate is deliberately a heuristic, not a simulation-in-a-
simulation: remaining WAN volume is projected by walking the job's
remaining stages through their ``output_ratio``s (ignoring placement
locality), and the rate is the job's own achieved throughput so far,
falling back to the service's predicted bottleneck BW before a run has
moved data.  Compute time is ignored — shuffles dominate JCT in every
workload here.  Control policies should therefore treat slack as a
*ranking* signal (who is richer than whom) rather than a calibrated
countdown, which is exactly how the built-in policies use it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.gda.engine.dag import JobSpec
from repro.net.matrix import BandwidthMatrix
from repro.runtime.executor import wan_mb_ahead

if TYPE_CHECKING:
    from repro.runtime.scheduler import JobTicket

#: Floor on any rate estimate (Mbps) — keeps remaining-time projections
#: finite on links telemetry reports as dead.
MIN_RATE_MBPS = 10.0

#: Achieved-throughput samples need at least this much run time before
#: they outrank the predicted fallback rate.
MIN_OBSERVED_S = 5.0


def job_wan_mb(job: JobSpec, shuffle_overhead: float) -> float:
    """Projected lifetime WAN volume of an un-started job (MB).

    :func:`~repro.runtime.executor.wan_mb_ahead` from stage 0 — the
    same projection :meth:`~repro.runtime.executor.JobRun
    .remaining_wan_mb` uses mid-run.
    """
    return wan_mb_ahead(job.stages, job.total_input_mb, shuffle_overhead)


class SlackEstimator:
    """Per-ticket slack against the service's predicted network view.

    ``predicted_bw`` is a zero-arg callable returning the service's
    current decision matrix (or ``None`` before the first plan) — the
    same provider the executor reads, so control decisions and
    placement decisions share one belief about the network.
    """

    def __init__(
        self,
        predicted_bw: Callable[[], Optional[BandwidthMatrix]],
        shuffle_overhead: float,
        achieved_rate_mbps: Optional[Callable[[], Optional[float]]] = None,
    ) -> None:
        self.predicted_bw = predicted_bw
        self.shuffle_overhead = shuffle_overhead
        #: Optional calibration source: typical *achieved* per-job WAN
        #: throughput (Mbps) from completed runs.  The control plane
        #: feeds the median over finished tickets here.
        self.achieved_rate_mbps = achieved_rate_mbps

    def fallback_rate_mbps(self) -> float:
        """Rate estimate for jobs with no achieved throughput yet.

        Prefers the calibrated achieved-throughput signal (jobs shuffle
        over many pairs in parallel, so completed-run throughput is the
        realistic scale); before the first completion, falls back to
        the predicted matrix's *bottleneck* BW.  The raw bottleneck
        alone is far too pessimistic — it marks every queued job as
        doomed and turns the preemption policy into a thrash loop.
        """
        if self.achieved_rate_mbps is not None:
            achieved = self.achieved_rate_mbps()
            if achieved is not None and achieved > 0:
                return max(achieved, MIN_RATE_MBPS)
        predicted = self.predicted_bw()
        if predicted is None:
            return MIN_RATE_MBPS
        return max(predicted.min_bw(), MIN_RATE_MBPS)

    def predicted_remaining_s(self, ticket: "JobTicket", now: float) -> float:
        """Seconds until ``ticket`` is predicted to complete."""
        run = ticket.run
        if run is not None and run.started and not run.done:
            remaining_mb = run.remaining_wan_mb()
            # slice_wan_mbits, not wan_mbits: a resumed run carries its
            # checkpoint volume forward, and dividing that by only the
            # post-resume elapsed time would inflate its throughput
            # (and slack) enormously — re-victimizing the very job a
            # preemption just rescued.
            if run.slice_wan_mbits > 0 and run.elapsed_s > MIN_OBSERVED_S:
                rate = max(
                    run.slice_wan_mbits / run.elapsed_s, MIN_RATE_MBPS
                )
            else:
                rate = self.fallback_rate_mbps()
        else:
            checkpoint = ticket.checkpoint
            if checkpoint is not None:
                # Preempted mid-run: resume volume, not full-job volume.
                remaining_mb = wan_mb_ahead(
                    ticket.job.stages[checkpoint.stage_index:],
                    sum(checkpoint.data.values()),
                    self.shuffle_overhead,
                )
            else:
                remaining_mb = job_wan_mb(ticket.job, self.shuffle_overhead)
            rate = self.fallback_rate_mbps()
        return remaining_mb * 8.0 / rate

    def slack_s(self, ticket: "JobTicket", now: float) -> Optional[float]:
        """Deadline minus predicted completion; ``None`` without a deadline."""
        deadline = ticket.deadline_s
        if deadline is None:
            return None
        return deadline - now - self.predicted_remaining_s(ticket, now)
