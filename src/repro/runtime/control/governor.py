"""Deadline-aware bandwidth governing: shift WAN share by slack.

Connection planning balances *pairs*; the governor balances *jobs*.
Each control tick it classifies running jobs by slack — **poor** (slack
below zero: predicted to miss their deadline) and **rich** (slack above
``rich_slack_s``, or no deadline at all) — and, while at least one poor
job is running, caps the pairs that only rich jobs are using through
the simulator's :class:`~repro.net.traffic_control.TrafficController`.
Max-min reallocation does the rest: capping a rich job's pair frees the
shared NIC capacity at its endpoints, and the poor job's flows absorb
it — the same mechanism WANify's §3.2.2 throttling uses to rescue weak
pairs, pointed at SLO slack instead of pair asymmetry.

Every cap remembers the limit it replaced and is **released** — the
previous limit restored, or the cap cleared — as soon as its
justification lapses: the pair picks up a non-rich job's transfers,
the owning jobs finish or are preempted, no poor job remains, or the
governor shuts down.  After a service re-plan tears the deployment
down (wiping the TC table wholesale), :meth:`forget` drops the now-
stale records without touching the fresh deployment's throttles.
The ``throttle_moves`` / ``throttle_releases`` counters make the
apply/release ledger auditable — a finished run must show them equal,
which ``tests/runtime/test_control.py`` pins as a regression test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.net.simulator import NetworkSimulator

if TYPE_CHECKING:
    from repro.runtime.scheduler import JobTicket

#: Default slack (s) above which a running job may donate WAN share.
DEFAULT_RICH_SLACK_S = 120.0

#: Default fraction of a pair's current rate the cap allows through.
DEFAULT_THROTTLE_FACTOR = 0.5

#: Caps never squeeze a pair below this (Mbps) — a starved donor stops
#: being a donor and starts being a second missed deadline.
DEFAULT_FLOOR_MBPS = 25.0


class BandwidthGovernor:
    """Applies (and scrupulously releases) slack-driven pair caps."""

    def __init__(
        self,
        network: NetworkSimulator,
        rich_slack_s: float = DEFAULT_RICH_SLACK_S,
        throttle_factor: float = DEFAULT_THROTTLE_FACTOR,
        floor_mbps: float = DEFAULT_FLOOR_MBPS,
        capacity_mbps: Optional[
            Callable[[str, str], Optional[float]]
        ] = None,
    ) -> None:
        if not 0.0 < throttle_factor < 1.0:
            raise ValueError(
                f"throttle_factor must be in (0, 1): {throttle_factor}"
            )
        self.network = network
        self.rich_slack_s = rich_slack_s
        self.throttle_factor = throttle_factor
        self.floor_mbps = floor_mbps
        #: Optional recalibrated-capacity hint ``(src, dst) → Mbps``.
        #: When set (the service wires it under ``recalibrate = True``),
        #: caps are additionally clamped to the published capacity — a
        #: cap above what the link can currently carry is a fiction.
        #: ``None`` (the default) changes nothing.
        self.capacity_mbps = capacity_mbps
        #: pair → the limit in force before our cap (``None`` = none).
        self.held: dict[tuple[str, str], Optional[float]] = {}
        #: Observability hook: ``("apply" | "release", pair, cap_mbps)``
        #: on every cap move (``cap_mbps`` is 0 for releases).
        #: Observation-only — must not touch governor or TC state.
        self.on_cap: Optional[
            Callable[[str, tuple[str, str], float], None]
        ] = None
        #: pair → the rich jobs whose transfers justified the cap.
        self._owners: dict[tuple[str, str], frozenset[str]] = {}
        #: Caps applied over the governor's lifetime.
        self.throttle_moves = 0
        #: Caps released (restored, cleared, or forgotten after a
        #: deployment teardown).  Equals ``throttle_moves`` once the
        #: run is over — the no-leak invariant.
        self.throttle_releases = 0

    # -- the rebalancing tick -------------------------------------------

    def rebalance(
        self,
        now: float,
        running: Sequence["JobTicket"],
        slack_s: Callable[["JobTicket"], Optional[float]],
        weight_of: Optional[Callable[["JobTicket"], float]] = None,
    ) -> int:
        """One governing pass; returns the number of caps applied.

        ``weight_of`` couples caps to SLO fairness weights: a pair
        whose owners carry mean weight ``w`` is capped with an
        effective factor of ``1 - (1 - throttle_factor) / w`` — heavy
        (important) donors give up proportionally less bandwidth,
        light ones give up more.  At the default weight of 1.0 the
        expression collapses to ``throttle_factor`` exactly, so runs
        that never set :attr:`~repro.runtime.scheduling.slo.SLO.weight`
        are numerically untouched.
        """
        slacks = {t.job.name: slack_s(t) for t in running}
        weights = (
            {t.job.name: weight_of(t) for t in running}
            if weight_of is not None
            else {}
        )
        poor = {
            name for name, s in slacks.items() if s is not None and s < 0.0
        }
        rich = {
            name
            for name, s in slacks.items()
            if s is None or s > self.rich_slack_s
        }
        users_by_pair: dict[tuple[str, str], set[str]] = {}
        rate_by_pair: dict[tuple[str, str], float] = {}
        for transfer in self.network.active_transfers():
            job = transfer.tag.split(":", 1)[0]
            pair = (transfer.src, transfer.dst)
            users_by_pair.setdefault(pair, set()).add(job)
            rate_by_pair[pair] = (
                rate_by_pair.get(pair, 0.0) + transfer.rate_mbps
            )
        # Release first: a cap outlives its justification the moment the
        # pair carries a non-rich job (we would be throttling the very
        # job we meant to help), the owners left the rich set, or
        # nobody poor remains to benefit.
        for pair in list(self.held):
            users = users_by_pair.get(pair, set())
            owners = self._owners[pair]
            if (
                not poor
                or not (owners & rich)
                or (users - rich)
            ):
                self._release(pair)
        if not poor:
            return 0
        applied = 0
        for pair, users in sorted(users_by_pair.items()):
            if pair in self.held:
                continue
            if not users or not users <= rich:
                continue
            rate = rate_by_pair.get(pair, 0.0)
            if rate <= 0.0:
                continue
            factor = self.throttle_factor
            if weights:
                mean_weight = sum(
                    weights.get(name, 1.0) for name in users
                ) / len(users)
                if mean_weight > 0.0 and mean_weight != 1.0:
                    factor = min(
                        0.95,
                        max(
                            0.05,
                            1.0 - (1.0 - self.throttle_factor) / mean_weight,
                        ),
                    )
            cap = max(rate * factor, self.floor_mbps)
            if self.capacity_mbps is not None:
                known = self.capacity_mbps(*pair)
                if known is not None and known > 0.0:
                    cap = min(cap, max(known, self.floor_mbps))
            previous = self.network.tc.limit(*pair)
            if previous <= cap:
                continue
            self.held[pair] = (
                previous if previous != float("inf") else None
            )
            self._owners[pair] = frozenset(users)
            self.network.tc.set_limit(*pair, cap)
            self.throttle_moves += 1
            applied += 1
            if self.on_cap is not None:
                self.on_cap("apply", pair, cap)
        return applied

    # -- releases --------------------------------------------------------

    def _release(self, pair: tuple[str, str]) -> None:
        previous = self.held.pop(pair)
        self._owners.pop(pair)
        if previous is None:
            self.network.tc.clear_limit(*pair)
        else:
            self.network.tc.set_limit(*pair, previous)
        self.throttle_releases += 1
        if self.on_cap is not None:
            self.on_cap("release", pair, 0.0)

    def release_job(self, job_name: str) -> None:
        """Release every cap the named job's transfers justified.

        Called on job completion *and* preemption — a paused job's
        transfers are gone, so its caps have nothing left to govern.
        """
        for pair in list(self.held):
            if job_name in self._owners[pair]:
                self._release(pair)

    def release_all(self) -> None:
        """Release every held cap (governor shutdown)."""
        for pair in list(self.held):
            self._release(pair)

    def forget(self) -> None:
        """Drop records after a deployment teardown wiped the TC table.

        The caps are already gone (and the next deployment installs its
        own throttles), so restoring previous limits here would clobber
        the fresh plan — the records are simply retired, still counted
        as releases so the apply/release ledger stays balanced.
        """
        retired = list(self.held)
        self.held.clear()
        self._owners.clear()
        self.throttle_releases += len(retired)
        if self.on_cap is not None:
            for pair in retired:
                self.on_cap("release", pair, 0.0)
