"""Runtime control plane: preemption, deadline-aware throttling, autoscaling.

The scheduler decides who *starts*; this package decides what happens
to jobs already running when the world changes.  Three cooperating
mechanisms, one periodic loop:

* :mod:`~repro.runtime.control.preemption` — registered
  :class:`PreemptionPolicy` implementations (``none`` / ``urgent-slo``
  / ``cost-aware``) that checkpoint a slack-rich running job and hand
  its slot to a deadline-critical queued one, optionally migrating the
  victim to the current backend plan on resume;
* :mod:`~repro.runtime.control.governor` — the
  :class:`BandwidthGovernor`, which shifts simulated WAN share from
  slack-rich to slack-poor jobs through the traffic-control table,
  and releases every cap it applies;
* :mod:`~repro.runtime.control.autoscaler` — the
  :class:`ConcurrencyAutoscaler`, driving the scheduler's
  ``max_concurrent`` from queue depth and attainment pressure;
* :mod:`~repro.runtime.control.slack` — the shared
  :class:`SlackEstimator` all three rank jobs with;
* :mod:`~repro.runtime.control.plane` — the :class:`ControlPlane`
  loop wiring them onto a scheduler.

Enable from config — every knob is a
:class:`~repro.pipeline.config.ServiceConfig` field::

    from repro import PipelineService, ServiceConfig

    service = PipelineService.build(ServiceConfig(
        scenario="flash-crowd",
        slo_deadline_s=500.0,
        preemption="urgent-slo",   # or "cost-aware"
        governor=True,
        autoscale=True,
    ))

The operator-facing guide (defaults, tuning, the flash-crowd cookbook)
is ``docs/OPERATIONS.md``.
"""

from repro.runtime.control.autoscaler import ConcurrencyAutoscaler
from repro.runtime.control.governor import BandwidthGovernor
from repro.runtime.control.plane import ControlPlane
from repro.runtime.control.preemption import (
    ControlView,
    CostAwarePreemption,
    NoPreemption,
    PreemptionDecision,
    PreemptionPolicy,
    UrgentSloPreemption,
)
from repro.runtime.control.slack import SlackEstimator, job_wan_mb

__all__ = [
    "BandwidthGovernor",
    "ConcurrencyAutoscaler",
    "ControlPlane",
    "ControlView",
    "CostAwarePreemption",
    "NoPreemption",
    "PreemptionDecision",
    "PreemptionPolicy",
    "SlackEstimator",
    "UrgentSloPreemption",
    "job_wan_mb",
]
