"""Registered preemption policies: when a running job yields its slot.

Admission policies decide who gets a *free* slot; preemption policies
decide when to *make* one.  Each control-plane tick the policy sees a
read-only :class:`ControlView` (running and queued tickets plus slack
and cost estimators) and may return one :class:`PreemptionDecision` —
a (victim, beneficiary) pair the scheduler then swaps: the victim's run
is checkpointed and re-queued, the beneficiary starts in its slot.

Built-ins, registered in
:data:`~repro.pipeline.registry.preemption_policy_registry`::

    @register_preemption_policy("none")        # never preempt (default)
    @register_preemption_policy("urgent-slo")  # rescue deadline-critical
    @register_preemption_policy("cost-aware")  # rescue only when cheap

Register your own the same way admission policies are registered —
the name becomes selectable from ``ServiceConfig(preemption=...)``,
``WANIFY_PREEMPTION``, ``--preemption`` on ``serve``, and the sweep
matrix's ``preemptions`` axis::

    from repro.pipeline.registry import register_preemption_policy

    @register_preemption_policy("oldest-first")
    class OldestFirst:
        name = "oldest-first"

        def select(self, view):
            ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.pipeline.registry import register_preemption_policy

if TYPE_CHECKING:
    from repro.runtime.scheduler import JobTicket


@dataclass(frozen=True)
class PreemptionDecision:
    """One slot swap the policy wants: pause ``victim``, start ``beneficiary``."""

    victim: "JobTicket"
    beneficiary: "JobTicket"
    #: Re-resolve the victim's placement policy from the scheduler's
    #: current default before resume — set when a multi-backend re-plan
    #: has re-pointed the scheduler since the victim started.
    migrate: bool = False
    #: Human-readable rationale, surfaced in control-plane traces.
    reason: str = ""


@dataclass(frozen=True)
class ControlView:
    """Read-only control-plane state handed to preemption policies."""

    #: Current simulated time.
    now: float
    #: Tickets currently executing.
    running: Sequence["JobTicket"]
    #: Tickets waiting for a slot.
    queued: Sequence["JobTicket"]
    #: Slack estimator (``None`` for deadline-free tickets) — see
    #: :class:`~repro.runtime.control.slack.SlackEstimator`.
    slack_s: Callable[["JobTicket"], Optional[float]]
    #: Predicted seconds to completion for a ticket.
    remaining_s: Callable[["JobTicket"], float]
    #: Work (seconds) a preemption of this ticket would discard — the
    #: time spent inside the run's current phase.
    phase_cost_s: Callable[["JobTicket"], float]
    #: The scheduler's current default placement policy name (what a
    #: migrated victim would resume under).
    default_policy_name: str = ""
    #: Whether the slack estimator has real throughput to calibrate
    #: against (at least one completed job).  Slack numbers before
    #: calibration are order-of-magnitude pessimistic — the built-in
    #: policies refuse to preempt on them.
    calibrated: bool = False


@runtime_checkable
class PreemptionPolicy(Protocol):
    """Chooses at most one (victim, beneficiary) swap per control tick."""

    #: Registry key, reported in control-plane stats.
    name: str

    def select(self, view: ControlView) -> Optional[PreemptionDecision]:
        """The swap to perform now, or ``None`` to leave slots alone."""
        ...


@register_preemption_policy("none")
class NoPreemption:
    """Never preempts — the default, and the pre-control-plane behavior."""

    name = "none"

    def select(self, view: ControlView) -> Optional[PreemptionDecision]:
        """No swap, ever."""
        return None


@register_preemption_policy("urgent-slo")
class UrgentSloPreemption:
    """Rescue a deadline-critical queued job from a slack-rich runner.

    Fires when a queued job's slack has gone below ``urgency_s`` while
    a running job holds at least ``min_gain_s`` *more* slack than it
    (deadline-free runners count as infinitely slack-rich).  Guards
    against thrash — every preemption discards in-flight phase work,
    so a trigger-happy policy loses more deadlines than it saves:

    * a ticket is never victimized twice within ``cooldown_s``, more
      than ``max_preemptions`` times total, or while its own slack is
      below ``victim_floor_s`` (preempting one deadline-critical job
      for another just moves the miss around);
    * a queued job whose slack has sunk below ``rescue_floor_s`` is
      *hopeless* — it misses even if started this instant, so burning
      a victim on it is pure loss;
    * at most one swap fires per ``fire_interval_s`` across all
      tickets, bounding total churn regardless of queue depth.
    """

    name = "urgent-slo"

    def __init__(
        self,
        urgency_s: float = 90.0,
        min_gain_s: float = 120.0,
        cooldown_s: float = 240.0,
        max_preemptions: int = 2,
        victim_floor_s: float = 120.0,
        rescue_floor_s: float = -180.0,
        fire_interval_s: float = 120.0,
    ) -> None:
        self.urgency_s = urgency_s
        self.min_gain_s = min_gain_s
        self.cooldown_s = cooldown_s
        self.max_preemptions = max_preemptions
        self.victim_floor_s = victim_floor_s
        self.rescue_floor_s = rescue_floor_s
        self.fire_interval_s = fire_interval_s
        self._last_fire = float("-inf")

    def _most_urgent(
        self, view: ControlView
    ) -> Optional[tuple["JobTicket", float]]:
        """The queued ticket most below the urgency line, if any."""
        best: Optional[tuple["JobTicket", float]] = None
        for ticket in view.queued:
            slack = view.slack_s(ticket)
            if slack is None or slack > self.urgency_s:
                continue
            if slack < self.rescue_floor_s:
                continue
            if best is None or (slack, ticket.seq) < (best[1], best[0].seq):
                best = (ticket, slack)
        return best

    def _eligible_victims(
        self, view: ControlView
    ) -> list[tuple["JobTicket", float]]:
        """Pausable running tickets, slack-richest first.

        Deadline-free runners count as infinitely slack-rich; tickets
        inside their cooldown, past their preemption cap, or below the
        victim floor are excluded.
        """
        victims: list[tuple["JobTicket", float]] = []
        for ticket in view.running:
            if ticket.preemptions >= self.max_preemptions:
                continue
            if (
                ticket.preempted_at is not None
                and view.now - ticket.preempted_at < self.cooldown_s
            ):
                continue
            slack = view.slack_s(ticket)
            effective = float("inf") if slack is None else slack
            if effective < self.victim_floor_s:
                continue
            victims.append((ticket, effective))
        victims.sort(key=lambda pair: (-pair[1], pair[0].seq))
        return victims

    def _decide(
        self,
        view: ControlView,
        victim: "JobTicket",
        victim_slack: float,
        urgent: "JobTicket",
        urgent_slack: float,
    ) -> PreemptionDecision:
        # Migrate only tickets that took the scheduler's *default*
        # policy at submit: their plan has been re-pointed from under
        # them (multi-backend re-plan).  An explicitly-submitted
        # per-job policy is the caller's choice — never overwrite it.
        migrate = (
            not getattr(victim, "policy_pinned", True)
            and bool(view.default_policy_name)
            and getattr(victim.policy, "name", "") != view.default_policy_name
        )
        return PreemptionDecision(
            victim=victim,
            beneficiary=urgent,
            migrate=migrate,
            reason=(
                f"{urgent.job.name} slack {urgent_slack:.0f}s < "
                f"{self.urgency_s:.0f}s; {victim.job.name} slack "
                f"{victim_slack:.0f}s"
            ),
        )

    def _propose(self, view: ControlView) -> Optional[PreemptionDecision]:
        """The swap this policy would make, without fire bookkeeping.

        Subclasses refine this (the cost-aware policy adds its price
        gate here); :meth:`select` owns the calibration/fire-interval
        guards and only advances the fire clock for a decision that is
        actually returned — a rejected proposal must not delay the
        next evaluation.
        """
        found = self._most_urgent(view)
        if found is None:
            return None
        urgent, urgent_slack = found
        for victim, victim_slack in self._eligible_victims(view):
            if victim_slack - urgent_slack < self.min_gain_s:
                break  # sorted descending: nobody further is richer
            return self._decide(
                view, victim, victim_slack, urgent, urgent_slack
            )
        return None

    def select(self, view: ControlView) -> Optional[PreemptionDecision]:
        """Swap a slack-rich runner for the most urgent queued job."""
        if not view.calibrated:
            return None
        if view.now - self._last_fire < self.fire_interval_s:
            return None
        decision = self._propose(view)
        if decision is not None:
            self._last_fire = view.now
        return decision


@register_preemption_policy("cost-aware")
class CostAwarePreemption(UrgentSloPreemption):
    """``urgent-slo`` that also prices the preemption before firing.

    A preemption costs the victim its in-flight phase progress
    (``phase_cost_s`` — redone on resume) plus a fixed
    ``switch_overhead_s`` for checkpoint/restart bookkeeping; it buys
    the urgent job the victim's predicted remaining runtime of queue
    wait (``remaining_s``).  A swap only fires when the buy exceeds
    ``cost_factor ×`` the bill — a victim that just started a long
    shuffle is cheap to pause, one about to finish it is not.  Unlike
    a simple post-filter on the richest victim, the gate walks the
    eligible victims richest-first and takes the first *affordable*
    one, so an expensive top victim does not block a cheap runner-up.
    """

    name = "cost-aware"

    def __init__(
        self,
        cost_factor: float = 2.0,
        switch_overhead_s: float = 10.0,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self.cost_factor = cost_factor
        self.switch_overhead_s = switch_overhead_s

    def _affordable(self, view: ControlView, victim: "JobTicket") -> bool:
        """Whether pausing ``victim`` buys more than it discards."""
        benefit_s = view.remaining_s(victim)
        cost_s = view.phase_cost_s(victim) + self.switch_overhead_s
        return benefit_s >= self.cost_factor * cost_s

    def _propose(self, view: ControlView) -> Optional[PreemptionDecision]:
        """``urgent-slo`` selection gated on benefit ≥ factor × cost."""
        found = self._most_urgent(view)
        if found is None:
            return None
        urgent, urgent_slack = found
        for victim, victim_slack in self._eligible_victims(view):
            if victim_slack - urgent_slack < self.min_gain_s:
                break
            if not self._affordable(view, victim):
                continue
            return self._decide(
                view, victim, victim_slack, urgent, urgent_slack
            )
        return None
